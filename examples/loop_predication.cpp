//===- examples/loop_predication.cpp - Diverge loop branches in action --------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Demonstrates Section 5: dynamic predication of loop exit branches.  A
// parser-like loop with data-dependent trip counts is simulated with and
// without loop predication, and the early-exit / late-exit / no-exit
// outcome taxonomy of Section 5.1 is reported, next to what the analytical
// loop cost model (Eq. 18-20) would have predicted.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/DivergeSelector.h"
#include "harness/Experiment.h"
#include "support/RNG.h"

#include <cstdio>

using namespace dmp;

int main() {
  workloads::BenchmarkSpec Spec;
  Spec.Name = "loops";
  Spec.OuterIters = 4096;
  Spec.DataLoops = 3;
  Spec.SimpleEasy = 1;
  Spec.Straight = 2;
  Spec.Seed = 2026;

  harness::ExperimentOptions Options;
  harness::BenchContext Bench(Spec, Options);
  const auto &Prof = Bench.profileData(workloads::InputSetKind::Run);

  // Show what the profiler learned about each loop.
  std::printf("=== Loop profiles ===\n");
  for (const auto &Entry : Prof.Loops.all()) {
    const profile::LoopStats &S = Entry.second;
    if (S.Invocations < 100)
      continue; // skip the outer driver loop
    std::printf("loop @%u: %llu invocations, avg %.2f iterations, avg "
                "dynamic size %.1f instrs\n",
                Entry.first, static_cast<unsigned long long>(S.Invocations),
                S.avgIterations(), S.avgDynamicSize());
  }

  // Selection with and without the loop feature.
  const core::DivergeMap NoLoops =
      Bench.select(core::SelectionFeatures::exactFreqShortRet(),
                   workloads::InputSetKind::Run);
  const core::DivergeMap WithLoops = Bench.select(
      core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run);
  std::printf("\nselected without loop feature: %zu branches; with: %zu\n",
              NoLoops.size(), WithLoops.size());

  const sim::SimStats &Base = Bench.baseline();
  const sim::SimStats NoLoopStats = Bench.simulateWith(NoLoops);
  const sim::SimStats LoopStats = Bench.simulateWith(WithLoops);

  std::printf("\n=== Simulation ===\n");
  std::printf("baseline      : IPC %.3f, %llu flushes\n", Base.ipc(),
              static_cast<unsigned long long>(Base.Flushes));
  std::printf("DMP w/o loops : IPC %.3f (%+.1f%%)\n", NoLoopStats.ipc(),
              100.0 * harness::ipcImprovement(Base, NoLoopStats));
  std::printf("DMP w/ loops  : IPC %.3f (%+.1f%%)\n", LoopStats.ipc(),
              100.0 * harness::ipcImprovement(Base, LoopStats));

  std::printf("\n=== Loop dpred outcome taxonomy (Section 5.1) ===\n");
  std::printf("loop episodes : %llu\n",
              static_cast<unsigned long long>(LoopStats.DpredEntriesLoop));
  std::printf("  correct     : %llu (select-uop overhead only)\n",
              static_cast<unsigned long long>(LoopStats.LoopCorrect));
  std::printf("  early-exit  : %llu (flush: exited too soon)\n",
              static_cast<unsigned long long>(LoopStats.LoopEarlyExit));
  std::printf("  late-exit   : %llu (benefit: extra iterations -> NOPs)\n",
              static_cast<unsigned long long>(LoopStats.LoopLateExit));
  std::printf("  no-exit     : %llu (flush: never predicted the exit)\n",
              static_cast<unsigned long long>(LoopStats.LoopNoExit));
  std::printf("  extra-iteration instructions fetched: %llu\n",
              static_cast<unsigned long long>(LoopStats.LoopExtraIterInstrs));

  // What the Eq. 18-20 model says about a loop with these parameters.
  const uint64_t Episodes = LoopStats.DpredEntriesLoop;
  if (Episodes > 0) {
    core::LoopCostInputs In;
    In.BodyInstrs = 8; // body filler + counter + branch
    In.SelectUops = 5;
    In.DpredIter = 3.5;
    In.DpredExtraIter = 1.5;
    In.PCorrect =
        static_cast<double>(LoopStats.LoopCorrect) / Episodes;
    In.PEarlyExit =
        static_cast<double>(LoopStats.LoopEarlyExit) / Episodes;
    In.PLateExit =
        static_cast<double>(LoopStats.LoopLateExit) / Episodes;
    In.PNoExit = static_cast<double>(LoopStats.LoopNoExit) / Episodes;
    core::SelectionConfig Config;
    const core::LoopCost Cost = core::evaluateLoopCost(In, Config);
    std::printf("\n=== Eq. 18-20 with the measured outcome mix ===\n");
    std::printf("P(correct)=%.2f P(early)=%.2f P(late)=%.2f P(no)=%.2f\n",
                In.PCorrect, In.PEarlyExit, In.PLateExit, In.PNoExit);
    std::printf("expected dpred_cost: %.2f cycles/episode -> %s\n",
                Cost.CostCycles,
                Cost.Selected ? "predication pays off" : "not worth it");
  }
  return 0;
}
