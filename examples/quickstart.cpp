//===- examples/quickstart.cpp - End-to-end DMP walkthrough -------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The 60-second tour of the public API:
//   1. build a program with a hard-to-predict hammock,
//   2. profile it,
//   3. run the paper's diverge-branch selection (All-best-heur),
//   4. simulate the baseline and the DMP machine,
//   5. print the speedup.
//
//===----------------------------------------------------------------------===//

#include "core/DivergeSelector.h"
#include "harness/Experiment.h"
#include "ir/Printer.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace dmp;

int main() {
  // 1. A small synthetic benchmark: one mispredicted simple hammock, one
  //    frequently-hammock, and one unpredictable loop.
  workloads::BenchmarkSpec Spec;
  Spec.Name = "quickstart";
  Spec.OuterIters = 4096;
  Spec.SimpleHard = 1;
  Spec.Freq = 1;
  Spec.DataLoops = 1;
  Spec.Seed = 7;

  harness::ExperimentOptions Options;
  harness::BenchContext Bench(Spec, Options);
  std::printf("program '%s': %u static instructions, %zu functions\n",
              Bench.workload().Name.c_str(),
              Bench.workload().Prog->instrCount(),
              Bench.workload().Prog->functions().size());

  // 2-3. Profile on the run input and select diverge branches with every
  //      technique of the paper enabled (All-best-heur).
  core::SelectionStats SelStats;
  const core::DivergeMap Diverge = Bench.select(
      core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run,
      &SelStats);
  std::printf("selected %zu diverge branches "
              "(%zu exact, %zu freq, %zu loop, %zu always-predicated)\n",
              Diverge.size(), SelStats.SelectedExact, SelStats.SelectedFreq,
              SelStats.SelectedLoop, SelStats.SelectedShort);
  for (uint32_t Addr : Diverge.sortedAddrs()) {
    const core::DivergeAnnotation &Ann = *Diverge.find(Addr);
    std::printf("  branch @%u: kind=%s, %zu CFM point(s)%s\n", Addr,
                core::divergeKindName(Ann.Kind), Ann.Cfms.size(),
                Ann.AlwaysPredicate ? ", always-predicate" : "");
  }

  // 4. Simulate.
  const sim::SimStats &Base = Bench.baseline();
  const sim::SimStats Dmp = Bench.simulateWith(Diverge);

  // 5. Report.
  std::printf("\nbaseline : IPC %.3f, %.2f flushes/kinstr, MPKI %.2f\n",
              Base.ipc(), Base.flushesPerKiloInstr(), Base.mpki());
  std::printf("DMP      : IPC %.3f, %.2f flushes/kinstr, "
              "%llu dpred entries, %llu flushes avoided\n",
              Dmp.ipc(), Dmp.flushesPerKiloInstr(),
              static_cast<unsigned long long>(Dmp.DpredEntries),
              static_cast<unsigned long long>(Dmp.DpredSavedFlushes));
  std::printf("speedup  : %s\n",
              formatPercent(harness::ipcImprovement(Base, Dmp)).c_str());
  return 0;
}
