//===- examples/input_sensitivity.cpp - Profile input-set effects -------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Demonstrates Section 7.3: profile a benchmark with its run input and with
// a different (train) input, compare the selected diverge-branch sets, and
// show that performance barely moves — because the confidence estimator
// re-decides at run time which dynamic instances actually get predicated.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include <algorithm>
#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;
  // A benchmark with deliberately borderline selection decisions.
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    if (std::string(Spec.Name) != "crafty")
      continue;
    harness::BenchContext Bench(Spec, Options);

    const core::DivergeMap RunMap = Bench.select(
        core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run);
    const core::DivergeMap TrainMap =
        Bench.select(core::SelectionFeatures::allBestHeur(),
                     workloads::InputSetKind::Train);

    std::printf("=== Selected diverge branches (%s) ===\n", Spec.Name);
    std::printf("%-10s %-12s %-12s\n", "branch", "run-profile",
                "train-profile");
    std::vector<uint32_t> Union = RunMap.sortedAddrs();
    for (uint32_t Addr : TrainMap.sortedAddrs())
      if (!RunMap.contains(Addr))
        Union.push_back(Addr);
    std::sort(Union.begin(), Union.end());
    for (uint32_t Addr : Union)
      std::printf("@%-9u %-12s %-12s\n", Addr,
                  RunMap.contains(Addr) ? "selected" : "-",
                  TrainMap.contains(Addr) ? "selected" : "-");

    const sim::SimStats &Base = Bench.baseline();
    const sim::SimStats Same = Bench.simulateWith(RunMap);
    const sim::SimStats Diff = Bench.simulateWith(TrainMap);
    std::printf("\nbaseline IPC      : %.3f\n", Base.ipc());
    std::printf("profile=run  input: IPC %.3f (%+.1f%%)\n", Same.ipc(),
                100.0 * harness::ipcImprovement(Base, Same));
    std::printf("profile=train input: IPC %.3f (%+.1f%%)\n", Diff.ipc(),
                100.0 * harness::ipcImprovement(Base, Diff));
    std::printf("\nThe gap stays small because branches selected by either "
                "profile are\nonly *predicated* when the runtime confidence "
                "estimator flags them,\nso a slightly different static set "
                "changes little dynamically\n(paper Section 7.3).\n");
  }
  return 0;
}
