//===- examples/compiler_explorer.cpp - Inspect the compiler's decisions ------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Builds one of each control-flow shape from the paper's Figure 3, profiles
// the program, and walks through what the DMP compiler sees: CFG analysis
// (IPOSDOM), path enumeration, CFM candidates with merge probabilities,
// chain reduction, the cost-benefit numbers, and the final selection.
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "core/CostModel.h"
#include "core/DivergeSelector.h"
#include "core/HammockAnalysis.h"
#include "core/LoopSelect.h"
#include "ir/Printer.h"
#include "profile/Profiler.h"
#include "workloads/SpecSuite.h"

#include <cstdio>

using namespace dmp;

int main() {
  // One of each Figure 3 shape, plus a return-CFM function.
  workloads::BenchmarkSpec Spec;
  Spec.Name = "explorer";
  Spec.OuterIters = 4096;
  Spec.SimpleHard = 1;
  Spec.Nested = 1;
  Spec.Freq = 1;
  Spec.RetFuncs = 1;
  Spec.DataLoops = 1;
  Spec.Big = 1;
  Spec.Seed = 42;
  const workloads::Workload W = workloads::buildBenchmark(Spec);

  std::printf("=== Program ===\n%s\n",
              ir::printProgram(*W.Prog).c_str());

  cfg::ProgramAnalysis PA(*W.Prog);
  const profile::ProfileData Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  std::printf("profiled %llu dynamic instructions, profile MPKI %.2f\n\n",
              static_cast<unsigned long long>(Prof.DynamicInstrs),
              Prof.profileMPKI());

  core::SelectionConfig Config;
  std::printf("=== Per-branch compiler analysis ===\n");
  for (uint32_t Addr : W.Prog->condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    const ir::BasicBlock *Block = W.Prog->blockAt(Addr);
    std::printf("branch @%u in %s/%s: taken %.2f, profiled misp %.2f\n",
                Addr, Block->getParent()->getName().c_str(),
                Block->getName().c_str(), Prof.Edges.takenProb(Addr),
                Prof.Branches.mispRate(Addr));

    if (core::isLoopExitBranch(PA, Addr)) {
      std::printf("  loop exit branch (Section 5); heuristics decide\n");
      continue;
    }

    const core::BranchCandidate Cand =
        core::analyzeBranch(PA, Prof.Edges, Addr, Config, Config.MaxInstr,
                            Config.MaxCondBr);
    std::printf("  kind: %s; IPOSDOM: %s; longest explored path: %u\n",
                core::divergeKindName(Cand.StructKind),
                Cand.Iposdom ? Cand.Iposdom->getName().c_str() : "(none)",
                Cand.maxPathInstrs());
    for (const core::CfmCandidate &Cfm : Cand.Cfms)
      std::printf("  CFM candidate: %s  merge prob %.3f (pT %.3f, pNT "
                  "%.3f)\n",
                  Cfm.IsReturn ? "(return)" : Cfm.Block->getName().c_str(),
                  Cfm.MergeProb, Cfm.ReachTaken, Cfm.ReachNotTaken);

    if (!Cand.Cfms.empty() && !Cand.Cfms[0].IsReturn) {
      const core::HammockCost Cost = core::evaluateHammockCost(
          Cand, {Cand.Cfms[0]}, Config, core::OverheadMethod::EdgeProfile);
      std::printf("  cost model (cost-edge): dpred insts %.1f, useless "
                  "%.1f, overhead %.2f cycles, dpred_cost %.2f -> %s\n",
                  Cost.DpredInstsPerCfm[0], Cost.UselessInstsPerCfm[0],
                  Cost.OverheadCycles, Cost.CostCycles,
                  Cost.Selected ? "SELECT" : "reject");
    }
  }

  std::printf("\n=== Final selection (All-best-heur) ===\n");
  core::SelectionStats Stats;
  const core::DivergeMap Map = core::selectDivergeBranches(
      PA, Prof, Config, core::SelectionFeatures::allBestHeur(), &Stats);
  for (uint32_t Addr : Map.sortedAddrs()) {
    const core::DivergeAnnotation &Ann = *Map.find(Addr);
    std::printf("  diverge branch @%u: %s, %zu CFM(s)%s\n", Addr,
                core::divergeKindName(Ann.Kind), Ann.Cfms.size(),
                Ann.AlwaysPredicate ? ", always-predicate" : "");
  }
  std::printf("considered %zu candidates; selected %zu (%zu exact, %zu "
              "freq, %zu loop)\n",
              Stats.CandidatesConsidered, Map.size(), Stats.SelectedExact,
              Stats.SelectedFreq, Stats.SelectedLoop);
  return 0;
}
