
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annotations.cpp" "tests/CMakeFiles/dmp_tests.dir/test_annotations.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_annotations.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/dmp_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_costmodel.cpp" "tests/CMakeFiles/dmp_tests.dir/test_costmodel.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_costmodel.cpp.o.d"
  "/root/repo/tests/test_dotexport.cpp" "tests/CMakeFiles/dmp_tests.dir/test_dotexport.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_dotexport.cpp.o.d"
  "/root/repo/tests/test_emulator.cpp" "tests/CMakeFiles/dmp_tests.dir/test_emulator.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_emulator.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dmp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/dmp_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_model_properties.cpp" "tests/CMakeFiles/dmp_tests.dir/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_model_properties.cpp.o.d"
  "/root/repo/tests/test_paths.cpp" "tests/CMakeFiles/dmp_tests.dir/test_paths.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_paths.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/dmp_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_selection.cpp" "tests/CMakeFiles/dmp_tests.dir/test_selection.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_selection.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/dmp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/dmp_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_uarch.cpp" "tests/CMakeFiles/dmp_tests.dir/test_uarch.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_uarch.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/dmp_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/dmp_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
