# Empty compiler generated dependencies file for dmp_tests.
# This may be replaced when dependencies are built.
