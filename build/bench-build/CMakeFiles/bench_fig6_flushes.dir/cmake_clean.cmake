file(REMOVE_RECURSE
  "../bench/bench_fig6_flushes"
  "../bench/bench_fig6_flushes.pdb"
  "CMakeFiles/bench_fig6_flushes.dir/bench_fig6_flushes.cpp.o"
  "CMakeFiles/bench_fig6_flushes.dir/bench_fig6_flushes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_flushes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
