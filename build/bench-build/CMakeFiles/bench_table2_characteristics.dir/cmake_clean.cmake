file(REMOVE_RECURSE
  "../bench/bench_table2_characteristics"
  "../bench/bench_table2_characteristics.pdb"
  "CMakeFiles/bench_table2_characteristics.dir/bench_table2_characteristics.cpp.o"
  "CMakeFiles/bench_table2_characteristics.dir/bench_table2_characteristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
