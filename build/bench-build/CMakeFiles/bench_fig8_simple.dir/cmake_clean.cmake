file(REMOVE_RECURSE
  "../bench/bench_fig8_simple"
  "../bench/bench_fig8_simple.pdb"
  "CMakeFiles/bench_fig8_simple.dir/bench_fig8_simple.cpp.o"
  "CMakeFiles/bench_fig8_simple.dir/bench_fig8_simple.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
