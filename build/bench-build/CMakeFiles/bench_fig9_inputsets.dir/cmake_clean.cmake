file(REMOVE_RECURSE
  "../bench/bench_fig9_inputsets"
  "../bench/bench_fig9_inputsets.pdb"
  "CMakeFiles/bench_fig9_inputsets.dir/bench_fig9_inputsets.cpp.o"
  "CMakeFiles/bench_fig9_inputsets.dir/bench_fig9_inputsets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_inputsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
