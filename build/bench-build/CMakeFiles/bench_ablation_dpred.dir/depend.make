# Empty dependencies file for bench_ablation_dpred.
# This may be replaced when dependencies are built.
