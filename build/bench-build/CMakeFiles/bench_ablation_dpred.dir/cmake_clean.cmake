file(REMOVE_RECURSE
  "../bench/bench_ablation_dpred"
  "../bench/bench_ablation_dpred.pdb"
  "CMakeFiles/bench_ablation_dpred.dir/bench_ablation_dpred.cpp.o"
  "CMakeFiles/bench_ablation_dpred.dir/bench_ablation_dpred.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
