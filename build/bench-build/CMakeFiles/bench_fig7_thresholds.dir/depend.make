# Empty dependencies file for bench_fig7_thresholds.
# This may be replaced when dependencies are built.
