file(REMOVE_RECURSE
  "CMakeFiles/loop_predication.dir/loop_predication.cpp.o"
  "CMakeFiles/loop_predication.dir/loop_predication.cpp.o.d"
  "loop_predication"
  "loop_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
