# Empty compiler generated dependencies file for loop_predication.
# This may be replaced when dependencies are built.
