# Empty compiler generated dependencies file for dmpc.
# This may be replaced when dependencies are built.
