file(REMOVE_RECURSE
  "CMakeFiles/dmpc.dir/dmpc.cpp.o"
  "CMakeFiles/dmpc.dir/dmpc.cpp.o.d"
  "dmpc"
  "dmpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
