# Empty compiler generated dependencies file for dmp.
# This may be replaced when dependencies are built.
