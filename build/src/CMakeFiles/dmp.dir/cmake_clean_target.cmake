file(REMOVE_RECURSE
  "libdmp.a"
)
