
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/Analysis.cpp" "src/CMakeFiles/dmp.dir/cfg/Analysis.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/Analysis.cpp.o.d"
  "/root/repo/src/cfg/CFG.cpp" "src/CMakeFiles/dmp.dir/cfg/CFG.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/CFG.cpp.o.d"
  "/root/repo/src/cfg/Dominators.cpp" "src/CMakeFiles/dmp.dir/cfg/Dominators.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/Dominators.cpp.o.d"
  "/root/repo/src/cfg/DotExport.cpp" "src/CMakeFiles/dmp.dir/cfg/DotExport.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/DotExport.cpp.o.d"
  "/root/repo/src/cfg/EdgeProfile.cpp" "src/CMakeFiles/dmp.dir/cfg/EdgeProfile.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/EdgeProfile.cpp.o.d"
  "/root/repo/src/cfg/LoopInfo.cpp" "src/CMakeFiles/dmp.dir/cfg/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/LoopInfo.cpp.o.d"
  "/root/repo/src/cfg/PathEnumerator.cpp" "src/CMakeFiles/dmp.dir/cfg/PathEnumerator.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/cfg/PathEnumerator.cpp.o.d"
  "/root/repo/src/core/AnnotationIO.cpp" "src/CMakeFiles/dmp.dir/core/AnnotationIO.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/AnnotationIO.cpp.o.d"
  "/root/repo/src/core/CostModel.cpp" "src/CMakeFiles/dmp.dir/core/CostModel.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/CostModel.cpp.o.d"
  "/root/repo/src/core/DivergeInfo.cpp" "src/CMakeFiles/dmp.dir/core/DivergeInfo.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/DivergeInfo.cpp.o.d"
  "/root/repo/src/core/DivergeSelector.cpp" "src/CMakeFiles/dmp.dir/core/DivergeSelector.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/DivergeSelector.cpp.o.d"
  "/root/repo/src/core/HammockAnalysis.cpp" "src/CMakeFiles/dmp.dir/core/HammockAnalysis.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/HammockAnalysis.cpp.o.d"
  "/root/repo/src/core/LoopSelect.cpp" "src/CMakeFiles/dmp.dir/core/LoopSelect.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/LoopSelect.cpp.o.d"
  "/root/repo/src/core/SimpleSelectors.cpp" "src/CMakeFiles/dmp.dir/core/SimpleSelectors.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/core/SimpleSelectors.cpp.o.d"
  "/root/repo/src/harness/Experiment.cpp" "src/CMakeFiles/dmp.dir/harness/Experiment.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/harness/Experiment.cpp.o.d"
  "/root/repo/src/harness/Reports.cpp" "src/CMakeFiles/dmp.dir/harness/Reports.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/harness/Reports.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/dmp.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/dmp.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/CMakeFiles/dmp.dir/ir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/dmp.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/dmp.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/CMakeFiles/dmp.dir/ir/Program.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/Program.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/dmp.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/profile/Emulator.cpp" "src/CMakeFiles/dmp.dir/profile/Emulator.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/profile/Emulator.cpp.o.d"
  "/root/repo/src/profile/Profiler.cpp" "src/CMakeFiles/dmp.dir/profile/Profiler.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/profile/Profiler.cpp.o.d"
  "/root/repo/src/profile/TwoDProfile.cpp" "src/CMakeFiles/dmp.dir/profile/TwoDProfile.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/profile/TwoDProfile.cpp.o.d"
  "/root/repo/src/sim/DmpCore.cpp" "src/CMakeFiles/dmp.dir/sim/DmpCore.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/sim/DmpCore.cpp.o.d"
  "/root/repo/src/sim/SimConfig.cpp" "src/CMakeFiles/dmp.dir/sim/SimConfig.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/sim/SimConfig.cpp.o.d"
  "/root/repo/src/sim/SimStats.cpp" "src/CMakeFiles/dmp.dir/sim/SimStats.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/sim/SimStats.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/dmp.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/sim/WrongPathWalker.cpp" "src/CMakeFiles/dmp.dir/sim/WrongPathWalker.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/sim/WrongPathWalker.cpp.o.d"
  "/root/repo/src/support/Histogram.cpp" "src/CMakeFiles/dmp.dir/support/Histogram.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/support/Histogram.cpp.o.d"
  "/root/repo/src/support/Statistic.cpp" "src/CMakeFiles/dmp.dir/support/Statistic.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/support/Statistic.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/CMakeFiles/dmp.dir/support/StringUtils.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/support/StringUtils.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/dmp.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/support/Table.cpp.o.d"
  "/root/repo/src/uarch/BTB.cpp" "src/CMakeFiles/dmp.dir/uarch/BTB.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/uarch/BTB.cpp.o.d"
  "/root/repo/src/uarch/BranchPredictor.cpp" "src/CMakeFiles/dmp.dir/uarch/BranchPredictor.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/uarch/BranchPredictor.cpp.o.d"
  "/root/repo/src/uarch/Cache.cpp" "src/CMakeFiles/dmp.dir/uarch/Cache.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/uarch/Cache.cpp.o.d"
  "/root/repo/src/uarch/ConfidenceEstimator.cpp" "src/CMakeFiles/dmp.dir/uarch/ConfidenceEstimator.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/uarch/ConfidenceEstimator.cpp.o.d"
  "/root/repo/src/uarch/ReturnAddressStack.cpp" "src/CMakeFiles/dmp.dir/uarch/ReturnAddressStack.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/uarch/ReturnAddressStack.cpp.o.d"
  "/root/repo/src/workloads/ComponentBuilder.cpp" "src/CMakeFiles/dmp.dir/workloads/ComponentBuilder.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/workloads/ComponentBuilder.cpp.o.d"
  "/root/repo/src/workloads/Patterns.cpp" "src/CMakeFiles/dmp.dir/workloads/Patterns.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/workloads/Patterns.cpp.o.d"
  "/root/repo/src/workloads/SpecSuite.cpp" "src/CMakeFiles/dmp.dir/workloads/SpecSuite.cpp.o" "gcc" "src/CMakeFiles/dmp.dir/workloads/SpecSuite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
