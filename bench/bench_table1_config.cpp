//===- bench/bench_table1_config.cpp - Table 1 reproduction -------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Prints the simulated machine configuration: the reproduction of Table 1,
// "Baseline processor configuration and additional support needed for DMP".
//
//===----------------------------------------------------------------------===//

#include "sim/SimConfig.h"

#include <cstdio>

using namespace dmp;

int main() {
  sim::SimConfig Config;
  Config.EnableDmp = true;
  std::printf("== Table 1: baseline processor configuration and DMP support "
              "==\n%s",
              Config.toString().c_str());
  std::printf("Branch policy  : minimum misprediction penalty ~%u cycles "
              "(front end %u + resolution %u)\n",
              Config.FrontEndDepth + Config.latencyFor(ir::Opcode::CondBr),
              Config.FrontEndDepth, Config.latencyFor(ir::Opcode::CondBr));
  return 0;
}
