//===- bench/bench_fig9_inputsets.cpp - Figure 9 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 9, "Performance improvement of DMP when a different
// input set is used for profiling": All-best-heur and All-best-cost with
// the profiling input equal to (same) or different from (diff) the run
// input.
//
// Paper shape: profiling with a different input set costs only ~0.5% on
// average (19.8% vs 20.4%) — DMP is insensitive to the profiling input.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "harness/Reports.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
    workloads::InputSetKind ProfileInput;
  };
  const Config Configs[] = {
      {"heur-same", core::SelectionFeatures::allBestHeur(),
       workloads::InputSetKind::Run},
      {"heur-diff", core::SelectionFeatures::allBestHeur(),
       workloads::InputSetKind::Train},
      {"cost-same", core::SelectionFeatures::allBestCost(),
       workloads::InputSetKind::Run},
      {"cost-diff", core::SelectionFeatures::allBestCost(),
       workloads::InputSetKind::Train},
  };

  harness::CellNeeds Needs;
  Needs.TrainProfile = true; // the *-diff columns profile on train
  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  std::vector<std::string> Names;
  for (const Config &C : Configs)
    Names.push_back(C.Name);
  harness::CampaignJournal *Journal = Engine.journalFor(
      "fig9", harness::paramsDigest(Names), Suite.size(), std::size(Configs));
  const std::vector<std::vector<StatusOr<double>>> Matrix =
      Engine.runMatrix<double>(
          Suite, std::size(Configs),
          [&Configs](harness::Cell &C) {
            const Config &Cfg = Configs[C.Config];
            const sim::SimStats Dmp =
                C.Bench.runSelection(Cfg.Features, Cfg.ProfileInput);
            return harness::ipcImprovement(C.Bench.baseline(), Dmp);
          },
          Needs, Journal, &harness::doubleCellCodec());

  harness::ImprovementReport Report(Names);
  for (size_t B = 0; B < Suite.size(); ++B)
    Report.addBenchmark(Suite[B].Name, Matrix[B]);

  std::printf("%s",
              Report
                  .render("== Figure 9: DMP IPC improvement, same vs "
                          "different profiling input set ==")
                  .c_str());
  return harness::finishDriver(Engine);
}
