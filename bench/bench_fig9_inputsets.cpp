//===- bench/bench_fig9_inputsets.cpp - Figure 9 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 9, "Performance improvement of DMP when a different
// input set is used for profiling": All-best-heur and All-best-cost with
// the profiling input equal to (same) or different from (diff) the run
// input.
//
// Paper shape: profiling with a different input set costs only ~0.5% on
// average (19.8% vs 20.4%) — DMP is insensitive to the profiling input.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reports.h"

#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
    workloads::InputSetKind ProfileInput;
  };
  const Config Configs[] = {
      {"heur-same", core::SelectionFeatures::allBestHeur(),
       workloads::InputSetKind::Run},
      {"heur-diff", core::SelectionFeatures::allBestHeur(),
       workloads::InputSetKind::Train},
      {"cost-same", core::SelectionFeatures::allBestCost(),
       workloads::InputSetKind::Run},
      {"cost-diff", core::SelectionFeatures::allBestCost(),
       workloads::InputSetKind::Train},
  };

  std::vector<std::string> Names;
  for (const Config &C : Configs)
    Names.push_back(C.Name);
  harness::ImprovementReport Report(Names);

  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    harness::BenchContext Bench(Spec, Options);
    std::vector<double> Row;
    for (const Config &C : Configs) {
      const sim::SimStats Dmp =
          Bench.runSelection(C.Features, C.ProfileInput);
      Row.push_back(harness::ipcImprovement(Bench.baseline(), Dmp));
    }
    Report.addBenchmark(Spec.Name, Row);
  }

  std::printf("%s",
              Report
                  .render("== Figure 9: DMP IPC improvement, same vs "
                          "different profiling input set ==")
                  .c_str());
  return 0;
}
