//===- bench/bench_micro_components.cpp - Component throughput ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// google-benchmark microbenchmarks of the substrate components: branch
// predictors, confidence estimator, caches, the functional emulator, the
// path enumerator, and full baseline/DMP simulation throughput.  These are
// engineering benchmarks (simulator speed), not paper results.
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "cfg/PathEnumerator.h"
#include "core/DivergeSelector.h"
#include "profile/Emulator.h"
#include "profile/Profiler.h"
#include "sim/Simulator.h"
#include "support/RNG.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/ConfidenceEstimator.h"
#include "workloads/SpecSuite.h"

#include <benchmark/benchmark.h>

using namespace dmp;

static void BM_PerceptronPredictUpdate(benchmark::State &State) {
  uarch::PerceptronPredictor Predictor;
  RNG Rng(1);
  uint32_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Predictor.predict(Addr));
    Predictor.update(Addr, Rng.nextBool(0.5));
    Addr = (Addr + 37) & 0xFFFF;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PerceptronPredictUpdate);

static void BM_GSharePredictUpdate(benchmark::State &State) {
  uarch::GSharePredictor Predictor;
  RNG Rng(2);
  uint32_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Predictor.predict(Addr));
    Predictor.update(Addr, Rng.nextBool(0.5));
    Addr = (Addr + 37) & 0xFFFF;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GSharePredictUpdate);

static void BM_ConfidenceEstimator(benchmark::State &State) {
  uarch::ConfidenceEstimator Conf;
  RNG Rng(3);
  uint32_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Conf.isLowConfidence(Addr));
    Conf.update(Addr, Rng.nextBool(0.8), Rng.nextBool(0.5));
    Addr = (Addr + 11) & 0xFFF;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ConfidenceEstimator);

static void BM_CacheAccess(benchmark::State &State) {
  uarch::Cache C(64 * 1024, 4, 64, 2);
  RNG Rng(4);
  for (auto _ : State)
    benchmark::DoNotOptimize(C.access(Rng.nextBelow(1 << 20)));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheAccess);

static void BM_EmulatorThroughput(benchmark::State &State) {
  const workloads::Workload W = workloads::buildByName("gzip");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    profile::Emulator Emu(*W.Prog, Image);
    profile::DynInstr D;
    uint64_t Budget = 100000;
    while (Budget-- && Emu.step(D)) {
    }
    Instrs += Emu.executedCount();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_EmulatorThroughput)->Unit(benchmark::kMillisecond);

static void BM_PathEnumeration(benchmark::State &State) {
  const workloads::Workload W = workloads::buildByName("go");
  cfg::ProgramAnalysis PA(*W.Prog);
  const auto Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  core::SelectionConfig Config;
  for (auto _ : State) {
    for (uint32_t Addr : W.Prog->condBranchAddrs()) {
      if (!Prof.Edges.wasExecuted(Addr))
        continue;
      const ir::BasicBlock *Block = W.Prog->blockAt(Addr);
      const auto &FA = PA.forFunction(*Block->getParent());
      cfg::PathLimits Limits;
      Limits.MaxInstr = Config.MaxInstr;
      Limits.MaxCondBr = Config.MaxCondBr;
      benchmark::DoNotOptimize(cfg::enumeratePaths(
          W.Prog->instrAt(Addr).Target, FA.PDT.ipostdom(Block), Prof.Edges,
          Limits));
    }
  }
}
BENCHMARK(BM_PathEnumeration)->Unit(benchmark::kMicrosecond);

static void BM_SelectionAllBestHeur(benchmark::State &State) {
  const workloads::Workload W = workloads::buildByName("go");
  cfg::ProgramAnalysis PA(*W.Prog);
  const auto Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  core::SelectionConfig Config;
  for (auto _ : State)
    benchmark::DoNotOptimize(core::selectDivergeBranches(
        PA, Prof, Config, core::SelectionFeatures::allBestHeur()));
}
BENCHMARK(BM_SelectionAllBestHeur)->Unit(benchmark::kMicrosecond);

static void BM_SimulatorBaseline(benchmark::State &State) {
  const workloads::Workload W = workloads::buildByName("gzip");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  sim::SimConfig Config;
  Config.MaxInstrs = 100000;
  uint64_t Instrs = 0;
  for (auto _ : State) {
    const sim::SimStats Stats = sim::simulateBaseline(*W.Prog, Image, Config);
    Instrs += Stats.RetiredInstrs;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_SimulatorBaseline)->Unit(benchmark::kMillisecond);

static void BM_SimulatorDmp(benchmark::State &State) {
  const workloads::Workload W = workloads::buildByName("gzip");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  cfg::ProgramAnalysis PA(*W.Prog);
  const auto Prof = profile::collectProfile(*W.Prog, PA, Image);
  core::SelectionConfig SelConfig;
  const core::DivergeMap Map = core::selectDivergeBranches(
      PA, Prof, SelConfig, core::SelectionFeatures::allBestHeur());
  sim::SimConfig Config;
  Config.MaxInstrs = 100000;
  uint64_t Instrs = 0;
  for (auto _ : State) {
    const sim::SimStats Stats = sim::simulateDmp(*W.Prog, Map, Image, Config);
    Instrs += Stats.RetiredInstrs;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_SimulatorDmp)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
