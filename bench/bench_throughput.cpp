//===- bench/bench_throughput.cpp - Simulator throughput snapshot --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Measures how fast the engine itself runs — not what it computes — and
// writes BENCH_throughput.json, the committed perf baseline for the fast
// paths (predecoded emulator dispatch, block-batched Emulator::run, the
// flattened DmpCore hot loop):
//
//   * emu-MIPS for all three functional stepping modes, per workload:
//     run() (block-batched), step() (predecoded per-step), and
//     stepReference() (the original IR-dispatch interpreter the fast paths
//     are differentially tested against);
//   * sim-MIPS: retired instructions per second of the cycle-level DmpCore
//     in the baseline (Table 1) configuration;
//   * the 17-cell campaign digest (the same campaign BENCH_serve.json
//     pins), so a throughput optimization that changes *results* shows up
//     in this file's diff, not just in test failures.
//
// Every workload is measured best-of-N because the numbers are wall-clock
// on a shared machine; the committed snapshot is the perf *baseline*, and
// `--check=<snapshot>` (used by `scripts/check.sh --bench` via the `perf`
// ctest label) re-measures in `--smoke` mode and fails on a >3x aggregate
// regression — wide enough for machine noise, tight enough to catch a fast
// path silently falling back to the slow one.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "harness/CellRun.h"
#include "profile/Emulator.h"
#include "serialize/Hash.h"
#include "serialize/ProfileIO.h"
#include "sim/DmpCore.h"
#include "sim/FinalState.h"
#include "sim/SimConfig.h"
#include "support/ExitCodes.h"
#include "support/Json.h"
#include "workloads/SpecSuite.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dmp;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

double mips(uint64_t Instrs, double Sec) {
  return Sec > 0.0 ? static_cast<double>(Instrs) / Sec / 1e6 : 0.0;
}

struct Options {
  bool Smoke = false;
  std::string CheckPath; ///< Committed snapshot to gate against; empty = off.
  std::string OutPath = "BENCH_throughput.json";
  unsigned Reps = 0;          ///< 0 = mode default.
  size_t LimitBenches = 0;    ///< 0 = whole suite.

  // Per-leg dynamic instruction budgets (mode defaults; the reference
  // interpreter gets a smaller budget because it is the slow leg).
  uint64_t EmuInstrs = 4'000'000;
  uint64_t RefInstrs = 2'000'000;
  uint64_t SimInstrs = 1'000'000;

  static Options parseOrExit(int Argc, char **Argv) {
    Options O;
    for (int I = 1; I < Argc; ++I) {
      const std::string Arg = Argv[I];
      auto Value = [&](const char *Prefix) -> const char * {
        return Arg.rfind(Prefix, 0) == 0 ? Arg.c_str() + std::strlen(Prefix)
                                         : nullptr;
      };
      if (Arg == "--smoke") {
        O.Smoke = true;
      } else if (const char *V = Value("--check=")) {
        O.CheckPath = V;
      } else if (const char *V = Value("--out=")) {
        O.OutPath = V;
      } else if (const char *V = Value("--reps=")) {
        O.Reps = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      } else if (const char *V = Value("--limit-benches=")) {
        O.LimitBenches = std::strtoul(V, nullptr, 10);
      } else {
        std::fprintf(stderr,
                     "usage: bench_throughput [--smoke] [--check=SNAPSHOT] "
                     "[--out=PATH] [--reps=N] [--limit-benches=N]\n");
        std::exit(Arg == "-h" || Arg == "--help" ? exitcode::Ok
                                                 : exitcode::Usage);
      }
    }
    if (O.Smoke) {
      O.EmuInstrs = 600'000;
      O.RefInstrs = 300'000;
      O.SimInstrs = 150'000;
    }
    if (O.Reps == 0)
      O.Reps = O.Smoke ? 2 : 3;
    return O;
  }
};

/// Best-of-reps measurements for one workload, in MIPS.
struct WorkloadResult {
  std::string Name;
  double EmuRun = 0.0;
  double EmuStep = 0.0;
  double EmuRef = 0.0;
  double Sim = 0.0;
  double SimIpc = 0.0;
  // Instructions actually executed per leg (a workload may halt before the
  // budget), for the aggregate instrs/sec computation.
  uint64_t EmuInstrs = 0;
  uint64_t RefInstrs = 0;
  uint64_t SimInstrs = 0;
  // Best (smallest) wall times, seconds.
  double EmuRunSec = 0.0;
  double EmuStepSec = 0.0;
  double EmuRefSec = 0.0;
  double SimSec = 0.0;
};

/// The suite plus a synthetic long-run variant: a loop-heavy composition
/// with an effectively unbounded outer trip count, so every leg runs to its
/// full instruction budget (the 17 suite members may halt early under the
/// larger full-mode budgets).
std::vector<workloads::Workload> buildWorkloads(size_t LimitBenches) {
  std::vector<workloads::Workload> All;
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    All.push_back(workloads::buildBenchmark(Spec));
    if (LimitBenches != 0 && All.size() >= LimitBenches)
      return All;
  }
  workloads::BenchmarkSpec LongRun;
  LongRun.Name = "longrun";
  LongRun.OuterIters = 1u << 30;
  LongRun.SimpleEasy = 1;
  LongRun.Short = 1;
  LongRun.DataLoops = 1;
  LongRun.Straight = 3;
  LongRun.Seed = 424242;
  All.push_back(workloads::buildBenchmark(LongRun));
  return All;
}

WorkloadResult measureWorkload(const workloads::Workload &W,
                               const Options &Opts) {
  WorkloadResult R;
  R.Name = W.Name;
  const std::vector<int64_t> Image =
      W.buildImage(workloads::InputSetKind::Run);

  double BestRun = 1e30, BestStep = 1e30, BestRef = 1e30, BestSim = 1e30;
  for (unsigned Rep = 0; Rep < Opts.Reps; ++Rep) {
    // Leg 1: block-batched run().
    {
      profile::Emulator Emu(*W.Prog, Image);
      const auto T0 = Clock::now();
      Emu.run(Opts.EmuInstrs);
      const double Sec = secondsSince(T0);
      R.EmuInstrs = Emu.executedCount();
      BestRun = std::min(BestRun, Sec);
    }
    // Leg 2: per-step predecoded dispatch (what the profiler/sim loops pay).
    {
      profile::Emulator Emu(*W.Prog, Image);
      profile::DynInstr D;
      const auto T0 = Clock::now();
      while (Emu.executedCount() < Opts.EmuInstrs && Emu.step(D)) {
      }
      const double Sec = secondsSince(T0);
      if (Emu.executedCount() != R.EmuInstrs) {
        std::fprintf(stderr,
                     "bench_throughput: %s: step() executed %llu vs run() "
                     "%llu — fast paths diverge\n",
                     W.Name.c_str(),
                     static_cast<unsigned long long>(Emu.executedCount()),
                     static_cast<unsigned long long>(R.EmuInstrs));
        std::exit(exitcode::Failure);
      }
      BestStep = std::min(BestStep, Sec);
    }
    // Leg 3: the reference interpreter (smaller budget; it is the 1x line).
    {
      profile::Emulator Emu(*W.Prog, Image);
      profile::DynInstr D;
      const auto T0 = Clock::now();
      while (Emu.executedCount() < Opts.RefInstrs && Emu.stepReference(D)) {
      }
      const double Sec = secondsSince(T0);
      R.RefInstrs = Emu.executedCount();
      BestRef = std::min(BestRef, Sec);
    }
    // Leg 4: the cycle simulator, baseline configuration.
    {
      sim::SimConfig Cfg;
      Cfg.MaxInstrs = Opts.SimInstrs;
      sim::DmpCore Core(*W.Prog, /*Diverge=*/nullptr, Cfg);
      const auto T0 = Clock::now();
      const sim::SimStats Stats = Core.run(Image);
      const double Sec = secondsSince(T0);
      R.SimInstrs = Stats.RetiredInstrs;
      R.SimIpc = Stats.ipc();
      BestSim = std::min(BestSim, Sec);
    }
  }
  R.EmuRunSec = BestRun;
  R.EmuStepSec = BestStep;
  R.EmuRefSec = BestRef;
  R.SimSec = BestSim;
  R.EmuRun = mips(R.EmuInstrs, BestRun);
  R.EmuStep = mips(R.EmuInstrs, BestStep);
  R.EmuRef = mips(R.RefInstrs, BestRef);
  R.Sim = mips(R.SimInstrs, BestSim);
  return R;
}

/// One sanity pass of the digest-identity contract inside the bench itself:
/// the simulator fed by the fast emulator and by the reference interpreter
/// must produce byte-identical stats and retired state.  Cheap (one small
/// workload) — the exhaustive version lives in tests/test_throughput_diff.
bool verifyEmuModeIdentity() {
  const workloads::Workload W = workloads::buildByName("mcf");
  const std::vector<int64_t> Image =
      W.buildImage(workloads::InputSetKind::Run);
  sim::SimConfig Cfg;
  Cfg.MaxInstrs = 100'000;
  sim::FinalState FastState, RefState;
  sim::DmpCore Fast(*W.Prog, nullptr, Cfg);
  const sim::SimStats FastStats =
      Fast.run(Image, &FastState, sim::DmpCore::EmuMode::Fast);
  sim::DmpCore Ref(*W.Prog, nullptr, Cfg);
  const sim::SimStats RefStats =
      Ref.run(Image, &RefState, sim::DmpCore::EmuMode::Reference);
  if (serialize::encodeSimStats(FastStats) !=
          serialize::encodeSimStats(RefStats) ||
      FastState.MemoryFingerprint != RefState.MemoryFingerprint ||
      FastState.Regs != RefState.Regs) {
    std::fprintf(stderr, "bench_throughput: EmuMode::Fast and Reference "
                         "disagree — fast paths are broken\n");
    return false;
  }
  return true;
}

/// SHA-256 over the 17-cell campaign BENCH_serve.json also pins (one cell
/// per suite benchmark, 400k profile / 100k sim instructions): the identity
/// anchor of this snapshot.
std::string campaignDigest() {
  serialize::Hasher H;
  for (const workloads::BenchmarkSpec &B : workloads::specSuite()) {
    harness::CellSpec Spec;
    Spec.Benchmark = B.Name;
    Spec.SimInstrs = 100'000;
    Spec.ProfileInstrs = 400'000;
    StatusOr<harness::CellResult> R =
        harness::runCellSpec(Spec, /*Cache=*/nullptr);
    if (!R.ok()) {
      std::fprintf(stderr, "bench_throughput: cell %s failed: %s\n", B.Name,
                   R.status().toString().c_str());
      std::exit(exitcode::Failure);
    }
    const std::vector<uint8_t> Blob = harness::encodeCellResult(*R);
    H.update(Blob.data(), Blob.size());
  }
  return H.finish().hex();
}

struct Aggregate {
  double EmuRun = 0.0;
  double EmuStep = 0.0;
  double EmuRef = 0.0;
  double Sim = 0.0;
};

Aggregate aggregate(const std::vector<WorkloadResult> &Results) {
  uint64_t EmuI = 0, RefI = 0, SimI = 0;
  double RunS = 0, StepS = 0, RefS = 0, SimS = 0;
  for (const WorkloadResult &R : Results) {
    EmuI += R.EmuInstrs;
    RefI += R.RefInstrs;
    SimI += R.SimInstrs;
    RunS += R.EmuRunSec;
    StepS += R.EmuStepSec;
    RefS += R.EmuRefSec;
    SimS += R.SimSec;
  }
  Aggregate A;
  A.EmuRun = mips(EmuI, RunS);
  A.EmuStep = mips(EmuI, StepS);
  A.EmuRef = mips(RefI, RefS);
  A.Sim = mips(SimI, SimS);
  return A;
}

void writeSnapshot(const Options &Opts, const Aggregate &A,
                   const std::vector<WorkloadResult> &Results,
                   const std::string &Digest) {
  bench::BenchJson J("throughput");
  J.string("mode", Opts.Smoke ? "smoke" : "full");
  J.integer("reps", Opts.Reps);
  J.beginObject("budgets");
  J.integer("emu_instrs", Opts.EmuInstrs);
  J.integer("ref_instrs", Opts.RefInstrs);
  J.integer("sim_instrs", Opts.SimInstrs);
  J.endObject();
  J.beginObject("aggregate");
  J.number("emu_run_mips", A.EmuRun, 1);
  J.number("emu_step_mips", A.EmuStep, 1);
  J.number("emu_ref_mips", A.EmuRef, 1);
  J.number("sim_mips", A.Sim, 1);
  J.number("emu_speedup_vs_ref", A.EmuRef > 0 ? A.EmuRun / A.EmuRef : 0.0,
           2);
  J.endObject();
  J.beginArray("workloads");
  for (const WorkloadResult &R : Results) {
    J.beginElement();
    J.string("name", R.Name);
    J.number("emu_run_mips", R.EmuRun, 1);
    J.number("emu_step_mips", R.EmuStep, 1);
    J.number("emu_ref_mips", R.EmuRef, 1);
    J.number("sim_mips", R.Sim, 1);
    J.number("sim_ipc", R.SimIpc, 3);
    J.endElement();
  }
  J.endArray();
  J.string("campaign_digest", Digest);
  std::fputs(J.render().c_str(), stdout);
  if (!J.writeFile(Opts.OutPath)) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n",
                 Opts.OutPath.c_str());
    std::exit(exitcode::Failure);
  }
  std::printf("wrote %s\n", Opts.OutPath.c_str());
}

/// The perf-regression gate: re-measured aggregate MIPS must be within 3x
/// of the committed snapshot (machine noise allowance), and the campaign
/// digest must match exactly.
int checkAgainst(const std::string &Path, const Aggregate &A,
                 const std::string &Digest) {
  StatusOr<json::Value> Parsed = json::parseFile(Path);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "bench_throughput: %s\n",
                 Parsed.status().toString().c_str());
    return exitcode::Failure;
  }
  const json::Value &Root = *Parsed;
  const json::Value *Schema = Root.findString("schema");
  const json::Value *Bench = Root.findString("bench");
  if (!Schema || Schema->asString() != bench::kBenchSchema || !Bench ||
      Bench->asString() != "throughput") {
    std::fprintf(stderr, "bench_throughput: %s is not a throughput snapshot\n",
                 Path.c_str());
    return exitcode::Failure;
  }
  const json::Value *Committed = Root.findString("campaign_digest");
  if (!Committed || Committed->asString() != Digest) {
    std::fprintf(stderr,
                 "bench_throughput: campaign digest drifted\n"
                 "  committed: %s\n  measured : %s\n",
                 Committed ? Committed->asString().c_str() : "(missing)",
                 Digest.c_str());
    return exitcode::Failure;
  }
  const json::Value *Agg = Root.findObject("aggregate");
  if (!Agg) {
    std::fprintf(stderr, "bench_throughput: snapshot has no aggregate\n");
    return exitcode::Failure;
  }
  constexpr double Tolerance = 3.0;
  const std::pair<const char *, double> Gates[] = {
      {"emu_run_mips", A.EmuRun},
      {"emu_step_mips", A.EmuStep},
      {"emu_ref_mips", A.EmuRef},
      {"sim_mips", A.Sim},
  };
  int Rc = exitcode::Ok;
  for (const auto &[Key, Measured] : Gates) {
    const json::Value *V = Agg->findNumber(Key);
    if (!V) {
      std::fprintf(stderr, "bench_throughput: snapshot aggregate lacks %s\n",
                   Key);
      Rc = exitcode::Failure;
      continue;
    }
    const double Floor = V->asNumber() / Tolerance;
    std::printf("check %-14s measured %8.1f MIPS  committed %8.1f  floor "
                "%8.1f  %s\n",
                Key, Measured, V->asNumber(), Floor,
                Measured >= Floor ? "ok" : "REGRESSED");
    if (Measured < Floor)
      Rc = exitcode::Failure;
  }
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options Opts = Options::parseOrExit(Argc, Argv);

  if (!verifyEmuModeIdentity())
    return exitcode::Failure;

  const std::vector<workloads::Workload> Suite =
      buildWorkloads(Opts.LimitBenches);
  std::printf("bench_throughput: %zu workloads, %u reps, budgets "
              "emu=%llu ref=%llu sim=%llu (%s)\n",
              Suite.size(), Opts.Reps,
              static_cast<unsigned long long>(Opts.EmuInstrs),
              static_cast<unsigned long long>(Opts.RefInstrs),
              static_cast<unsigned long long>(Opts.SimInstrs),
              Opts.Smoke ? "smoke" : "full");

  std::vector<WorkloadResult> Results;
  for (const workloads::Workload &W : Suite) {
    Results.push_back(measureWorkload(W, Opts));
    const WorkloadResult &R = Results.back();
    std::printf("  %-8s emu run %7.1f  step %7.1f  ref %7.1f  sim %6.1f "
                "MIPS\n",
                R.Name.c_str(), R.EmuRun, R.EmuStep, R.EmuRef, R.Sim);
  }

  const Aggregate A = aggregate(Results);
  const std::string Digest = campaignDigest();

  if (!Opts.CheckPath.empty())
    return checkAgainst(Opts.CheckPath, A, Digest);

  writeSnapshot(Opts, A, Results, Digest);
  return exitcode::Ok;
}
