//===- bench/bench_fig8_simple.cpp - Figure 8 reproduction --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 8, "Performance improvement of DMP with alternative
// simple algorithms for selecting diverge branches": Every-br, Random-50,
// High-BP-5, Immediate, If-else versus All-best-heur.
//
// Paper shapes: the simple selectors cluster around +4-4.5% while
// All-best-heur reaches +20.4%; simple selectors do best on benchmarks
// whose mispredictions sit in simple hammocks (eon, perlbmk, li).
//
//===----------------------------------------------------------------------===//

#include "core/SimpleSelectors.h"
#include "guard/Guard.h"
#include "harness/Engine.h"
#include "harness/Reports.h"

#include <cstdio>
#include <functional>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  using SelectorFn = std::function<core::DivergeMap(harness::BenchContext &)>;
  struct Config {
    const char *Name;
    SelectorFn Select;
  };
  const Config Configs[] = {
      {"Every-br",
       [](harness::BenchContext &B) {
         return core::selectEveryBranch(
             B.analysis(), B.profileData(workloads::InputSetKind::Run));
       }},
      {"Random-50",
       [](harness::BenchContext &B) {
         return core::selectRandom50(
             B.analysis(), B.profileData(workloads::InputSetKind::Run));
       }},
      {"High-BP-5",
       [](harness::BenchContext &B) {
         return core::selectHighBP(
             B.analysis(), B.profileData(workloads::InputSetKind::Run));
       }},
      {"Immediate",
       [](harness::BenchContext &B) {
         return core::selectImmediate(
             B.analysis(), B.profileData(workloads::InputSetKind::Run));
       }},
      {"If-else",
       [](harness::BenchContext &B) {
         return core::selectIfElse(B.analysis(),
                                   B.profileData(workloads::InputSetKind::Run),
                                   B.options().Selection);
       }},
      {"All-best-heur",
       [](harness::BenchContext &B) {
         return B.select(core::SelectionFeatures::allBestHeur(),
                         workloads::InputSetKind::Run);
       }},
  };

  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  std::vector<std::string> Names;
  for (const Config &C : Configs)
    Names.push_back(C.Name);
  harness::CampaignJournal *Journal = Engine.journalFor(
      "fig8", harness::paramsDigest(Names), Suite.size(), std::size(Configs));
  const std::vector<std::vector<StatusOr<double>>> Matrix =
      Engine.runMatrix<double>(
          Suite, std::size(Configs),
          [&Configs](harness::Cell &C) {
            const sim::SimStats Dmp =
                C.Bench.simulateWith(Configs[C.Config].Select(C.Bench));
            return harness::ipcImprovement(C.Bench.baseline(), Dmp);
          },
          harness::CellNeeds(), Journal, &harness::doubleCellCodec());

  harness::ImprovementReport Report(Names);
  for (size_t B = 0; B < Suite.size(); ++B)
    Report.addBenchmark(Suite[B].Name, Matrix[B]);

  std::printf("%s",
              Report
                  .render("== Figure 8: DMP IPC improvement with alternative "
                          "simple selection algorithms ==")
                  .c_str());
  return harness::finishDriver(Engine);
}
