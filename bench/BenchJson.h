//===- bench/BenchJson.h - BENCH_*.json snapshot writer ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one writer every perf snapshot goes through, so all BENCH_*.json
/// files share one shape: a single ordered object that always starts with
///
///   { "schema": "dmp-bench/1", "bench": "<name>", ... }
///
/// and is committed to the repo as the perf baseline.  Values keep insertion
/// order (the diff of a snapshot should read top-to-bottom like the bench's
/// stdout report), numbers are emitted with a fixed precision per field so
/// reruns produce minimal diffs, and the output always round-trips through
/// support/Json — which tests/test_benchjson.cpp asserts for the committed
/// snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_BENCH_BENCHJSON_H
#define DMP_BENCH_BENCHJSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmp::bench {

/// Schema tag every snapshot carries; bump when the shared shape changes.
inline constexpr const char *kBenchSchema = "dmp-bench/1";

/// Ordered JSON object builder for one snapshot.  Nested objects and arrays
/// open/close explicitly; misuse (unbalanced close, values at top level
/// after render) asserts.
class BenchJson {
public:
  /// Starts the snapshot with the uniform schema + bench-name header.
  explicit BenchJson(const std::string &BenchName);

  // Scalar fields (Key must be unique within the enclosing object; this is
  // not checked — the schema test catches duplicates via round-trip).
  void integer(const std::string &Key, uint64_t V);
  void number(const std::string &Key, double V, int Precision = 3);
  void string(const std::string &Key, const std::string &V);
  void boolean(const std::string &Key, bool V);

  // Nested structure.
  void beginObject(const std::string &Key);
  void endObject();
  /// Array of objects (the per-workload table): each element is opened with
  /// beginElement() and closed with endElement().
  void beginArray(const std::string &Key);
  void beginElement();
  void endElement();
  void endArray();

  /// The complete snapshot text (closes the root; call once, at the end).
  std::string render();

  /// Renders and writes the snapshot to \p Path (and returns false on I/O
  /// failure).  Also the canonical way to print it: writeFile("/dev/stdout").
  bool writeFile(const std::string &Path);

private:
  void emitKey(const std::string &Key);
  void emitPrefix();
  std::string Out;
  /// One entry per open scope: true = object (elements carry keys).
  std::vector<bool> ScopeIsObject;
  /// Whether the current scope already has a member (comma discipline).
  std::vector<bool> ScopeHasMember;
  bool Rendered = false;
};

} // namespace dmp::bench

#endif // DMP_BENCH_BENCHJSON_H
