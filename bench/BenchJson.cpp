//===- bench/BenchJson.cpp - BENCH_*.json snapshot writer ----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

using namespace dmp::bench;

BenchJson::BenchJson(const std::string &BenchName) {
  Out = "{\n";
  ScopeIsObject.push_back(true);
  ScopeHasMember.push_back(false);
  string("schema", kBenchSchema);
  string("bench", BenchName);
}

void BenchJson::emitPrefix() {
  assert(!Rendered && "snapshot already rendered");
  assert(!ScopeIsObject.empty() && "value outside any scope");
  if (ScopeHasMember.back())
    Out += ",\n";
  ScopeHasMember.back() = true;
  Out.append(2 * ScopeIsObject.size(), ' ');
}

void BenchJson::emitKey(const std::string &Key) {
  emitPrefix();
  assert(ScopeIsObject.back() && "keyed value inside an array");
  Out += '"';
  Out += Key; // Keys are identifiers chosen by the benches; no escaping.
  Out += "\": ";
}

void BenchJson::integer(const std::string &Key, uint64_t V) {
  emitKey(Key);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void BenchJson::number(const std::string &Key, double V, int Precision) {
  emitKey(Key);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  Out += Buf;
}

void BenchJson::string(const std::string &Key, const std::string &V) {
  emitKey(Key);
  Out += '"';
  for (char C : V) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void BenchJson::boolean(const std::string &Key, bool V) {
  emitKey(Key);
  Out += V ? "true" : "false";
}

void BenchJson::beginObject(const std::string &Key) {
  emitKey(Key);
  Out += "{\n";
  ScopeIsObject.push_back(true);
  ScopeHasMember.push_back(false);
}

void BenchJson::endObject() {
  assert(ScopeIsObject.size() > 1 && ScopeIsObject.back() &&
         "unbalanced endObject");
  ScopeIsObject.pop_back();
  ScopeHasMember.pop_back();
  Out += '\n';
  Out.append(2 * ScopeIsObject.size(), ' ');
  Out += '}';
}

void BenchJson::beginArray(const std::string &Key) {
  emitKey(Key);
  Out += "[\n";
  ScopeIsObject.push_back(false);
  ScopeHasMember.push_back(false);
}

void BenchJson::beginElement() {
  emitPrefix();
  assert(!ScopeIsObject.back() && "element outside an array");
  Out += "{\n";
  ScopeIsObject.push_back(true);
  ScopeHasMember.push_back(false);
}

void BenchJson::endElement() { endObject(); }

void BenchJson::endArray() {
  assert(ScopeIsObject.size() > 1 && !ScopeIsObject.back() &&
         "unbalanced endArray");
  ScopeIsObject.pop_back();
  ScopeHasMember.pop_back();
  Out += '\n';
  Out.append(2 * ScopeIsObject.size(), ' ');
  Out += ']';
}

std::string BenchJson::render() {
  if (!Rendered) {
    assert(ScopeIsObject.size() == 1 && "unclosed scopes at render");
    Out += "\n}\n";
    Rendered = true;
  }
  return Out;
}

bool BenchJson::writeFile(const std::string &Path) {
  const std::string Text = render();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return std::fclose(F) == 0 && Ok;
}
