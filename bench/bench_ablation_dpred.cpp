//===- bench/bench_ablation_dpred.cpp - Runtime mechanism ablations -----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Microarchitecture-side ablations of the dpred mechanism (complementing
// the compiler-side ablations in bench_ablation_costmodel):
//
//  1. CFM points vs pure dual-path execution: strip every CFM point from
//     the All-best-heur selection, so each episode runs as dual-path until
//     resolution (footnotes 2/10 describe this mode);
//  2. dpred-mode instruction budget (window pressure, Figure 7's
//     "too-large hammocks fill the window" effect);
//  3. confidence-estimator threshold: lower thresholds enter dpred-mode
//     less often (fewer wasted entries, fewer saved flushes).
//
// Sweep points mutate the simulator config, so benchmark contexts are
// per-cell; each sweep fans its suite out over a shared pool and artifact
// cache via exec::parallelMap.
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"
#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

namespace {

exec::ThreadPool *Pool;
std::shared_ptr<serialize::ArtifactCache> Cache;

/// Runs All-best-heur over the suite with a simulator-config mutation and a
/// map transform; returns the geomean improvement.
template <typename MutateSim, typename MutateMap>
double geomeanWith(MutateSim MutSim, MutateMap MutMap) {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  const std::vector<double> Ratios = exec::parallelMap<double>(
      *Pool, Suite.size(), [&](size_t I) {
        harness::ExperimentOptions Options;
        MutSim(Options.Sim);
        Options.Cache = Cache;
        harness::BenchContext Bench(Suite[I], Options);
        core::DivergeMap Map =
            Bench.select(core::SelectionFeatures::allBestHeur(),
                         workloads::InputSetKind::Run);
        MutMap(Map);
        const sim::SimStats Dmp = Bench.simulateWith(Map);
        return 1.0 + harness::ipcImprovement(Bench.baseline(), Dmp);
      });
  return geomean(Ratios) - 1.0;
}

core::DivergeMap stripCfms(const core::DivergeMap &Map) {
  core::DivergeMap Stripped;
  for (uint32_t Addr : Map.sortedAddrs()) {
    core::DivergeAnnotation Ann = *Map.find(Addr);
    if (Ann.Kind == core::DivergeKind::Loop)
      continue; // loop predication is meaningless without its CFM
    Ann.Kind = core::DivergeKind::NoCfm;
    Ann.Cfms.clear();
    Ann.AlwaysPredicate = false;
    Stripped.add(Addr, Ann);
  }
  return Stripped;
}

} // namespace

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  exec::ThreadPool ThePool(EngineOpts.Jobs);
  Pool = &ThePool;
  if (EngineOpts.UseCache)
    Cache = std::make_shared<serialize::ArtifactCache>(EngineOpts.CacheDir);

  std::printf("== Ablation A: CFM points vs pure dual-path execution ==\n");
  {
    const double WithCfm = geomeanWith([](sim::SimConfig &) {},
                                       [](core::DivergeMap &) {});
    const double DualPath =
        geomeanWith([](sim::SimConfig &) {},
                    [](core::DivergeMap &Map) { Map = stripCfms(Map); });
    std::printf("All-best-heur with CFM points : %s\n",
                formatPercent(WithCfm).c_str());
    std::printf("same branches, no CFM points  : %s\n",
                formatPercent(DualPath).c_str());
    std::printf("value of control-flow merging : %s\n",
                formatPercent(WithCfm - DualPath).c_str());
  }

  std::printf("\n== Ablation B: dpred-mode instruction budget ==\n");
  {
    Table T({"MaxDpredInstrs", "geomean"});
    for (unsigned Budget : {50u, 100u, 200u, 400u, 800u}) {
      const double G = geomeanWith(
          [Budget](sim::SimConfig &C) { C.MaxDpredInstrs = Budget; },
          [](core::DivergeMap &) {});
      T.addRow({formatString("%u", Budget), formatPercent(G)});
    }
    T.print();
  }

  std::printf("\n== Ablation C: confidence threshold (JRS MDC) ==\n");
  {
    Table T({"threshold", "geomean"});
    for (unsigned Threshold : {4u, 8u, 12u, 14u, 15u}) {
      const double G = geomeanWith(
          [Threshold](sim::SimConfig &C) { C.ConfThreshold = Threshold; },
          [](core::DivergeMap &) {});
      T.addRow({formatString("%u", Threshold), formatPercent(G)});
    }
    T.print();
    std::printf("(higher threshold = more branches treated as low-"
                "confidence = more dpred entries)\n");
  }
  return 0;
}
