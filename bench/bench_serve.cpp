//===- bench/bench_serve.cpp - Campaign-service perf snapshot ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Smoke-benchmarks the dmp::serve stack end to end — a live daemon loop,
// forked cell workers, and a real `dmpc --remote`-style client on this
// process's side of the Unix socket — and writes the repo's first
// machine-readable perf snapshot, BENCH_serve.json:
//
//   * warm-cache campaign throughput (cells/sec across repeated campaigns
//     whose artifacts all hit the shared cache),
//   * client-observed campaign latency percentiles (submit -> fetch,
//     including the status polling a real client does), plus raw ping RTT
//     percentiles for the protocol floor, and
//   * restart recovery latency: how long a fresh daemon takes to come back
//     up on the same socket and job store (recoverJobs included) and how
//     long the rejoining client needs to land the interrupted campaign, and
//   * a saturation probe: a deterministic HostileClient half-open flood
//     several times past --max-conns while one well-behaved client keeps
//     pinging, recording the shed rate (defensive drops per hostile
//     connect) and the honest client's RTT tail under attack.
//
// Each campaign is acked before the next submit: the server dedups
// identical in-flight requests by digest, so an unacked round would serve
// the next one straight from memory and measure nothing but the fetch.
//
// The snapshot also records the campaign digest so a perf-motivated serve
// change that silently alters results shows up in the diff of this file.
//
// Shares the engine driver flags (--jobs caps the worker count, --cache-dir
// / --no-cache pick the artifact store, --limit-benches trims the suite).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "guard/Guard.h"
#include "harness/CellRun.h"
#include "harness/Engine.h"
#include "serve/Client.h"
#include "serve/HostileClient.h"
#include "serve/Server.h"
#include "serve/WorkerPool.h"
#include "support/ExitCodes.h"
#include "support/StringUtils.h"
#include "workloads/SpecSuite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace dmp;
using namespace dmp::serve;

namespace {

constexpr unsigned kWarmCampaigns = 1;
constexpr unsigned kMeasuredCampaigns = 24;
constexpr unsigned kPings = 200;
constexpr unsigned kSaturationPings = 100;
constexpr unsigned kBenchMaxConns = 32;

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Nearest-rank percentile over an unsorted sample (sorts a copy).
double percentile(std::vector<double> Sample, double P) {
  if (Sample.empty())
    return 0.0;
  std::sort(Sample.begin(), Sample.end());
  const size_t Rank = std::min(
      Sample.size() - 1,
      static_cast<size_t>(P / 100.0 * static_cast<double>(Sample.size())));
  return Sample[Rank];
}

/// The benchmarked campaign: one small cell per suite benchmark, sized like
/// the serve test cells so the whole snapshot stays smoke-fast.
SubmitRequest campaignRequest(size_t LimitBenches) {
  SubmitRequest Req;
  for (const workloads::BenchmarkSpec &B : workloads::specSuite()) {
    harness::CellSpec Spec;
    Spec.Benchmark = B.Name;
    Spec.SimInstrs = 100'000;
    Spec.ProfileInstrs = 400'000;
    Req.Cells.push_back(std::move(Spec));
    if (LimitBenches != 0 && Req.Cells.size() >= LimitBenches)
      break;
  }
  return Req;
}

/// Digest over the whole fetched campaign (order is the submit order, so
/// this is deterministic).
std::string campaignDigest(const FetchReplyData &Reply) {
  serialize::Hasher H;
  for (const StatusOr<harness::CellResult> &Cell : Reply.Cells) {
    if (!Cell.ok())
      return "FAILED: " + Cell.status().toString();
    const std::vector<uint8_t> Blob = harness::encodeCellResult(*Cell);
    H.update(Blob.data(), Blob.size());
  }
  return H.finish().hex();
}

/// Snapshot via the shared writer, so BENCH_serve.json and
/// BENCH_throughput.json carry the same schema header (bench/BenchJson.h).
struct RestartMetrics {
  double ListenRecoverMs = 0.0;
  double RejoinCampaignMs = 0.0;
  uint64_t JobsRecovered = 0;
  uint64_t CellsResumed = 0;
};

struct SaturationMetrics {
  uint64_t HostileConnects = 0;
  uint64_t Sheds = 0;
  std::vector<double> PingMs;
};

bench::BenchJson buildJson(unsigned Workers, size_t Cells, unsigned Campaigns,
                           double CellsPerSec,
                           const std::vector<double> &CampaignMs,
                           const std::vector<double> &PingUs,
                           const RestartMetrics &Restart,
                           const SaturationMetrics &Sat,
                           const std::string &Digest) {
  bench::BenchJson J("serve");
  J.integer("workers", Workers);
  J.integer("cells_per_campaign", Cells);
  J.integer("warm_campaigns", kWarmCampaigns);
  J.integer("measured_campaigns", Campaigns);
  J.number("throughput_cells_per_sec", CellsPerSec, 1);
  J.beginObject("campaign_latency_ms");
  J.number("p50", percentile(CampaignMs, 50), 3);
  J.number("p90", percentile(CampaignMs, 90), 3);
  J.number("p99", percentile(CampaignMs, 99), 3);
  J.endObject();
  J.beginObject("ping_rtt_us");
  J.number("p50", percentile(PingUs, 50), 1);
  J.number("p90", percentile(PingUs, 90), 1);
  J.number("p99", percentile(PingUs, 99), 1);
  J.endObject();
  J.beginObject("restart_recovery");
  J.number("listen_recover_ms", Restart.ListenRecoverMs, 3);
  J.number("rejoin_campaign_ms", Restart.RejoinCampaignMs, 3);
  J.integer("jobs_recovered", Restart.JobsRecovered);
  J.integer("cells_resumed", Restart.CellsResumed);
  J.endObject();
  J.beginObject("saturation");
  J.integer("max_conns", kBenchMaxConns);
  J.integer("hostile_connects", Sat.HostileConnects);
  J.integer("sheds", Sat.Sheds);
  J.number("shed_rate",
           Sat.HostileConnects != 0
               ? static_cast<double>(Sat.Sheds) /
                     static_cast<double>(Sat.HostileConnects)
               : 0.0,
           3);
  J.beginObject("well_behaved_rtt_ms");
  J.number("p50", percentile(Sat.PingMs, 50), 3);
  J.number("p90", percentile(Sat.PingMs, 90), 3);
  J.number("p99", percentile(Sat.PingMs, 99), 3);
  J.endObject();
  J.endObject();
  J.string("campaign_digest", Digest);
  return J;
}

} // namespace

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);

  // Fork the workers while this process is still single-threaded, then run
  // the server loop on a thread and benchmark from the client side.
  WorkerPoolOptions PoolOpts;
  PoolOpts.Workers = std::clamp(EngineOpts.Jobs, 1u, 8u);
  PoolOpts.CacheDir = EngineOpts.CacheDir;
  PoolOpts.UseCache = EngineOpts.UseCache;
  WorkerPool Pool(PoolOpts);

  ServerOptions SrvOpts;
  SrvOpts.SocketPath = formatString("%s/bench-serve.%d.sock",
                                    std::filesystem::temp_directory_path()
                                        .string()
                                        .c_str(),
                                    static_cast<int>(::getpid()));
  SrvOpts.Quiet = true;
  // A small accept cap so the saturation probe below can flood well past
  // it without needing thousands of fds; the bench itself only ever holds
  // a couple of connections.
  SrvOpts.MaxConns = kBenchMaxConns;
  guard::CancelToken Drain;
  auto Srv = std::make_unique<Server>(SrvOpts, Pool, &Drain);
  if (Status S = Srv->listen(); !S.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", S.toString().c_str());
    return exitcode::Failure;
  }
  Status RunResult;
  std::thread Loop([&] { RunResult = Srv->run(); });

  Client C;
  if (Status S = C.connect(SrvOpts.SocketPath); !S.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", S.toString().c_str());
    Srv->requestStop();
    Loop.join();
    return exitcode::Failure;
  }

  const SubmitRequest Req = campaignRequest(EngineOpts.LimitBenches);
  std::printf("bench_serve: %u workers, %zu cells/campaign, cache %s\n",
              Pool.size(), Req.Cells.size(),
              PoolOpts.UseCache ? PoolOpts.CacheDir.c_str() : "off");

  // Protocol floor: round-trip latency of an empty frame pair.
  std::vector<double> PingUs;
  PingUs.reserve(kPings);
  for (unsigned I = 0; I < kPings; ++I) {
    const auto T0 = Clock::now();
    if (!C.ping().ok()) {
      std::fprintf(stderr, "bench_serve: ping failed\n");
      return exitcode::Failure;
    }
    PingUs.push_back(msSince(T0) * 1000.0);
  }

  // Warm phase: populate the artifact cache (and fault in every workload)
  // so the measured campaigns see steady state.
  std::string Digest;
  for (unsigned I = 0; I < kWarmCampaigns; ++I) {
    StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
    if (!Reply.ok()) {
      std::fprintf(stderr, "bench_serve: warm campaign failed: %s\n",
                   Reply.status().toString().c_str());
      return exitcode::Failure;
    }
    Digest = campaignDigest(*Reply);
    (void)C.ack(Reply->Job);
  }

  // Measured phase.
  std::vector<double> CampaignMs;
  CampaignMs.reserve(kMeasuredCampaigns);
  const auto MeasureStart = Clock::now();
  for (unsigned I = 0; I < kMeasuredCampaigns; ++I) {
    const auto T0 = Clock::now();
    StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
    if (!Reply.ok()) {
      std::fprintf(stderr, "bench_serve: campaign %u failed: %s\n", I,
                   Reply.status().toString().c_str());
      return exitcode::Failure;
    }
    CampaignMs.push_back(msSince(T0));
    (void)C.ack(Reply->Job);
    const std::string D = campaignDigest(*Reply);
    if (D != Digest) {
      std::fprintf(stderr,
                   "bench_serve: digest drifted between campaigns\n"
                   "  warm    : %s\n  round %u: %s\n",
                   Digest.c_str(), I, D.c_str());
      return exitcode::Failure;
    }
  }
  const double TotalSec = msSince(MeasureStart) / 1000.0;
  const double CellsPerSec =
      TotalSec > 0.0
          ? static_cast<double>(Req.Cells.size()) * kMeasuredCampaigns /
                TotalSec
          : 0.0;

  // Saturation probe: a half-open flood several times past --max-conns
  // while a well-behaved client keeps pinging.  The daemon must shed the
  // dead weight (every drop counted) and keep serving the honest client;
  // the probe records the shed rate and the honest RTT tail under attack.
  // HalfOpen — not SubmitStorm — keeps the job store clean, so the
  // restart metrics below measure recovery, not storm debris, and the
  // pinned campaign digest stays untouched.
  SaturationMetrics Sat;
  {
    const auto ShedTotal = [&Srv] {
      const Server::Counters Ct = Srv->counters();
      return Ct.ReadTimeouts + Ct.IdleDrops + Ct.SlowConsumerDrops +
             Ct.ConnsShed + Ct.ConnsRefused;
    };
    const uint64_t Shed0 = ShedTotal();
    HostilePlan Plan;
    Plan.Seed = 2026;
    Plan.Kind = HostileAttack::HalfOpen;
    Plan.Connections = 4 * kBenchMaxConns;
    Plan.OpsPerConn = 32;
    Plan.PaceUs = 200;
    HostileClient Flood(SrvOpts.SocketPath, Plan);
    if (Status S = Flood.start(); !S.ok()) {
      std::fprintf(stderr, "bench_serve: hostile flood: %s\n",
                   S.toString().c_str());
      return exitcode::Failure;
    }
    Client Honest;
    (void)Honest.connect(SrvOpts.SocketPath);
    for (unsigned I = 0; I < kSaturationPings; ++I) {
      const auto T0 = Clock::now();
      if (!Honest.ping().ok()) {
        // The flood may shed this connection too while it sits idle; a
        // well-behaved client just reconnects.  The reconnect round is
        // not timed.
        Honest.close();
        (void)Honest.connect(SrvOpts.SocketPath);
        ::usleep(1000);
        continue;
      }
      Sat.PingMs.push_back(msSince(T0));
      ::usleep(2000);
    }
    Flood.stop();
    Honest.close();
    Sat.HostileConnects = Flood.connects();
    Sat.Sheds = ShedTotal() - Shed0;
    if (Sat.PingMs.empty() || Sat.Sheds == 0 || Sat.HostileConnects == 0) {
      std::fprintf(stderr,
                   "bench_serve: saturation probe starved "
                   "(pings=%zu sheds=%llu connects=%llu)\n",
                   Sat.PingMs.size(),
                   static_cast<unsigned long long>(Sat.Sheds),
                   static_cast<unsigned long long>(Sat.HostileConnects));
      return exitcode::Failure;
    }
    // The flood may have shed the idle campaign connection; rejoin before
    // the restart phase below relies on it.
    C.close();
    if (Status S = C.connect(SrvOpts.SocketPath); !S.ok()) {
      std::fprintf(stderr, "bench_serve: rejoin after flood: %s\n",
                   S.toString().c_str());
      return exitcode::Failure;
    }
  }

  // Restart recovery: leave a campaign in flight, stop the daemon, bring a
  // fresh one up on the same socket and job store, and measure (a) how
  // long listen() takes recovery included and (b) how long the rejoining
  // client needs to land the interrupted campaign (which dedups onto the
  // recovered job).  Skipped without a cache: there is no store to
  // recover from.
  RestartMetrics Restart;
  if (PoolOpts.UseCache) {
    StatusOr<uint64_t> Job = C.submit(Req);
    if (!Job.ok()) {
      std::fprintf(stderr, "bench_serve: restart-phase submit failed: %s\n",
                   Job.status().toString().c_str());
      return exitcode::Failure;
    }
    // Let at least one cell land in the checkpoint so the recovery below
    // genuinely resumes (cells_resumed >= 1) instead of starting over.
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      if (!S.ok()) {
        std::fprintf(stderr, "bench_serve: restart-phase status failed: %s\n",
                     S.status().toString().c_str());
        return exitcode::Failure;
      }
      if (S->Done >= 1)
        break;
      ::usleep(1000);
    }
    Srv->requestStop();
    Loop.join();
    if (!RunResult.ok()) {
      std::fprintf(stderr, "bench_serve: server loop: %s\n",
                   RunResult.toString().c_str());
      return exitcode::Failure;
    }
    C.close();
    Srv.reset();

    const auto TRecover = Clock::now();
    Srv = std::make_unique<Server>(SrvOpts, Pool, &Drain);
    if (Status S = Srv->listen(); !S.ok()) {
      std::fprintf(stderr, "bench_serve: relisten: %s\n",
                   S.toString().c_str());
      return exitcode::Failure;
    }
    Restart.ListenRecoverMs = msSince(TRecover);
    Restart.JobsRecovered = Srv->counters().JobsRecovered;
    Restart.CellsResumed = Srv->counters().CellsResumed;
    Loop = std::thread([&] { RunResult = Srv->run(); });

    const auto TRejoin = Clock::now();
    Client C2;
    if (Status S = C2.connect(SrvOpts.SocketPath); !S.ok()) {
      std::fprintf(stderr, "bench_serve: reconnect: %s\n",
                   S.toString().c_str());
      return exitcode::Failure;
    }
    StatusOr<FetchReplyData> Reply = C2.runCampaign(Req);
    if (!Reply.ok()) {
      std::fprintf(stderr, "bench_serve: rejoined campaign failed: %s\n",
                   Reply.status().toString().c_str());
      return exitcode::Failure;
    }
    Restart.RejoinCampaignMs = msSince(TRejoin);
    (void)C2.ack(Reply->Job);
    const std::string D = campaignDigest(*Reply);
    if (D != Digest) {
      std::fprintf(stderr,
                   "bench_serve: digest drifted across the restart\n"
                   "  warm     : %s\n  recovered: %s\n",
                   Digest.c_str(), D.c_str());
      return exitcode::Failure;
    }
    C2.shutdownServer();
  } else {
    C.shutdownServer();
  }
  Loop.join();
  if (!RunResult.ok()) {
    std::fprintf(stderr, "bench_serve: server loop: %s\n",
                 RunResult.toString().c_str());
    return exitcode::Failure;
  }

  bench::BenchJson J = buildJson(Pool.size(), Req.Cells.size(),
                                 kMeasuredCampaigns, CellsPerSec, CampaignMs,
                                 PingUs, Restart, Sat, Digest);
  std::fputs(J.render().c_str(), stdout);
  if (!J.writeFile("BENCH_serve.json")) {
    std::fprintf(stderr, "bench_serve: cannot write BENCH_serve.json\n");
    return exitcode::Failure;
  }
  std::printf("wrote BENCH_serve.json\n");
  return exitcode::Ok;
}
