//===- bench/bench_fig5_selection.cpp - Figure 5 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates both panels of Figure 5, "Performance improvement of DMP with
// different selection algorithms":
//
//   left : cumulative heuristic configurations — exact, exact+freq,
//          exact+freq+short, exact+freq+short+ret, and All-best-heur
//          (exact+freq+short+ret+loop);
//   right: cost-benefit configurations — cost-long, cost-edge,
//          cost-edge+short, cost-edge+short+ret, and All-best-cost.
//
// Paper shapes to check: Alg-exact alone ~+4.5%; adding frequently-hammocks
// is the single largest contributor; All-best-heur ~+20.4%; All-best-cost
// lands within noise of All-best-heur (~+20.2%).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reports.h"

#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
  };

  const Config Left[] = {
      {"exact", core::SelectionFeatures::exactOnly()},
      {"+freq", core::SelectionFeatures::exactFreq()},
      {"+short", core::SelectionFeatures::exactFreqShort()},
      {"+ret", core::SelectionFeatures::exactFreqShortRet()},
      {"+loop", core::SelectionFeatures::allBestHeur()},
  };

  core::SelectionFeatures CostEdgeShort = core::SelectionFeatures::costEdge();
  CostEdgeShort.ShortHammocks = true;
  core::SelectionFeatures CostEdgeShortRet = CostEdgeShort;
  CostEdgeShortRet.ReturnCfm = true;
  const Config Right[] = {
      {"cost-long", core::SelectionFeatures::costLong()},
      {"cost-edge", core::SelectionFeatures::costEdge()},
      {"+short", CostEdgeShort},
      {"+ret", CostEdgeShortRet},
      {"+loop", core::SelectionFeatures::allBestCost()},
  };

  auto runPanel = [&](const char *Title, const Config *Configs,
                      size_t Count) {
    std::vector<std::string> Names;
    for (size_t I = 0; I < Count; ++I)
      Names.push_back(Configs[I].Name);
    harness::ImprovementReport Report(Names);

    for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
      harness::BenchContext Bench(Spec, Options);
      const sim::SimStats &Base = Bench.baseline();
      std::vector<double> Row;
      for (size_t I = 0; I < Count; ++I) {
        const sim::SimStats Dmp = Bench.runSelection(Configs[I].Features);
        Row.push_back(harness::ipcImprovement(Base, Dmp));
      }
      Report.addBenchmark(Spec.Name, Row);
    }
    std::printf("%s", Report.render(Title).c_str());
    std::printf("\n");
  };

  runPanel("== Figure 5 (left): DMP IPC improvement, cumulative heuristic "
           "selection ==",
           Left, std::size(Left));
  runPanel("== Figure 5 (right): DMP IPC improvement, cost-benefit model ==",
           Right, std::size(Right));
  return 0;
}
