//===- bench/bench_fig5_selection.cpp - Figure 5 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates both panels of Figure 5, "Performance improvement of DMP with
// different selection algorithms":
//
//   left : cumulative heuristic configurations — exact, exact+freq,
//          exact+freq+short, exact+freq+short+ret, and All-best-heur
//          (exact+freq+short+ret+loop);
//   right: cost-benefit configurations — cost-long, cost-edge,
//          cost-edge+short, cost-edge+short+ret, and All-best-cost.
//
// Paper shapes to check: Alg-exact alone ~+4.5%; adding frequently-hammocks
// is the single largest contributor; All-best-heur ~+20.4%; All-best-cost
// lands within noise of All-best-heur (~+20.2%).
//
// Cells run on the parallel experiment engine: both panels fan out as one
// (benchmark x config) matrix; results are identical for any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "harness/Reports.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
  };

  const Config Left[] = {
      {"exact", core::SelectionFeatures::exactOnly()},
      {"+freq", core::SelectionFeatures::exactFreq()},
      {"+short", core::SelectionFeatures::exactFreqShort()},
      {"+ret", core::SelectionFeatures::exactFreqShortRet()},
      {"+loop", core::SelectionFeatures::allBestHeur()},
  };

  core::SelectionFeatures CostEdgeShort = core::SelectionFeatures::costEdge();
  CostEdgeShort.ShortHammocks = true;
  core::SelectionFeatures CostEdgeShortRet = CostEdgeShort;
  CostEdgeShortRet.ReturnCfm = true;
  const Config Right[] = {
      {"cost-long", core::SelectionFeatures::costLong()},
      {"cost-edge", core::SelectionFeatures::costEdge()},
      {"+short", CostEdgeShort},
      {"+ret", CostEdgeShortRet},
      {"+loop", core::SelectionFeatures::allBestCost()},
  };

  // Both panels fan out as one 17x10 matrix so the pool stays busy.
  std::vector<Config> Configs(std::begin(Left), std::end(Left));
  Configs.insert(Configs.end(), std::begin(Right), std::end(Right));

  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  std::vector<std::string> ConfigNames;
  for (const Config &C : Configs)
    ConfigNames.push_back(C.Name);
  harness::CampaignJournal *Journal =
      Engine.journalFor("fig5", harness::paramsDigest(ConfigNames),
                        Suite.size(), Configs.size());

  const std::vector<std::vector<StatusOr<double>>> Matrix =
      Engine.runMatrix<double>(
          Suite, Configs.size(),
          [&Configs](harness::Cell &C) {
            const sim::SimStats Dmp =
                C.Bench.runSelection(Configs[C.Config].Features);
            return harness::ipcImprovement(C.Bench.baseline(), Dmp);
          },
          harness::CellNeeds(), Journal, &harness::doubleCellCodec());

  auto renderPanel = [&](const char *Title, size_t Offset, size_t Count) {
    std::vector<std::string> Names;
    for (size_t I = 0; I < Count; ++I)
      Names.push_back(Configs[Offset + I].Name);
    harness::ImprovementReport Report(Names);
    for (size_t B = 0; B < Suite.size(); ++B) {
      std::vector<StatusOr<double>> Row(Matrix[B].begin() + Offset,
                                        Matrix[B].begin() + Offset + Count);
      Report.addBenchmark(Suite[B].Name, Row);
    }
    std::printf("%s", Report.render(Title).c_str());
    std::printf("\n");
  };

  renderPanel("== Figure 5 (left): DMP IPC improvement, cumulative heuristic "
              "selection ==",
              0, std::size(Left));
  renderPanel("== Figure 5 (right): DMP IPC improvement, cost-benefit model ==",
              std::size(Left), std::size(Right));
  return harness::finishDriver(Engine);
}
