//===- bench/bench_ablation_costmodel.cpp - Cost-model ablations --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Ablation studies for the design choices the paper discusses but does not
// plot:
//
//  1. Acc_Conf sensitivity (footnote 5: "the cost-benefit model is not
//     sensitive to reasonable variations in Acc_Conf (20%-50%)");
//  2. select-µop overhead (Section 4.4 assumption 4: "negligible; on
//     average less than 0.5 fetch cycles per entry into dpred-mode");
//  3. short-hammock heuristic parameters (Section 3.4's 10-instr / 95% /
//     5% choice);
//  4. the always-predicate mechanism itself (short hammocks with vs
//     without the confidence-estimator bypass).
//
// Each sweep point mutates the campaign options, so benchmark contexts are
// per-cell; the cells of one sweep fan out over a shared pool and artifact
// cache via exec::parallelMap.
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"
#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

namespace {

exec::ThreadPool *Pool;
std::shared_ptr<serialize::ArtifactCache> Cache;

/// Geomean improvement of All-best-cost over the suite under \p Mutate.
template <typename MutateFn>
double geomeanWith(MutateFn Mutate, bool CostMode = true) {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  const std::vector<double> Ratios = exec::parallelMap<double>(
      *Pool, Suite.size(), [&](size_t I) {
        harness::ExperimentOptions Options;
        Mutate(Options);
        Options.Cache = Cache;
        harness::BenchContext Bench(Suite[I], Options);
        const sim::SimStats Dmp = Bench.runSelection(
            CostMode ? core::SelectionFeatures::allBestCost()
                     : core::SelectionFeatures::allBestHeur());
        return 1.0 + harness::ipcImprovement(Bench.baseline(), Dmp);
      });
  return geomean(Ratios) - 1.0;
}

} // namespace

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  exec::ThreadPool ThePool(EngineOpts.Jobs);
  Pool = &ThePool;
  if (EngineOpts.UseCache)
    Cache = std::make_shared<serialize::ArtifactCache>(EngineOpts.CacheDir);

  std::printf("== Ablation 1: Acc_Conf sensitivity of the cost model ==\n");
  std::printf("(paper footnote 5: insensitive within 20%%-50%%)\n");
  {
    Table T({"Acc_Conf", "All-best-cost geomean"});
    for (double Acc : {0.20, 0.30, 0.40, 0.50}) {
      const double G = geomeanWith(
          [Acc](harness::ExperimentOptions &O) { O.Selection.AccConf = Acc; });
      T.addRow({formatPercent(Acc).substr(1), formatPercent(G)});
    }
    T.print();
  }

  std::printf("\n== Ablation 2: select-uop overhead per dpred entry ==\n");
  std::printf("(paper Section 4.4: < 0.5 fetch cycles per entry)\n");
  {
    const std::vector<workloads::BenchmarkSpec> &Suite =
        workloads::specSuite();
    const harness::ExperimentOptions Options;
    const std::vector<sim::SimStats> Runs = exec::parallelMap<sim::SimStats>(
        *Pool, Suite.size(), [&Suite](size_t I) {
          harness::ExperimentOptions CellOptions;
          CellOptions.Cache = Cache;
          harness::BenchContext Bench(Suite[I], CellOptions);
          return Bench.runSelection(core::SelectionFeatures::allBestHeur());
        });

    Table T({"benchmark", "select-uops/entry", "fetch cycles/entry"});
    double WorstCycles = 0.0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      const double PerEntry = Runs[I].selectUopsPerEntry();
      const double Cycles = PerEntry / Options.Sim.FetchWidth;
      WorstCycles = std::max(WorstCycles, Cycles);
      T.addRow({Suite[I].Name, formatDouble(PerEntry, 2),
                formatDouble(Cycles, 2)});
    }
    T.print();
    std::printf("worst case: %.2f fetch cycles/entry (paper: < 0.5 on "
                "average)\n",
                WorstCycles);
  }

  std::printf("\n== Ablation 3: short-hammock thresholds ==\n");
  {
    Table T({"max instrs/side", "min merge", "min misp",
             "All-best-heur geomean"});
    struct Point {
      unsigned MaxInstr;
      double MinMerge;
      double MinMisp;
    };
    const Point Points[] = {
        {10, 0.95, 0.05}, // paper values
        {5, 0.95, 0.05},
        {20, 0.95, 0.05},
        {10, 0.50, 0.05},
        {10, 0.95, 0.20},
    };
    for (const Point &Pt : Points) {
      const double G = geomeanWith(
          [&Pt](harness::ExperimentOptions &O) {
            O.Selection.ShortHammockMaxInstr = Pt.MaxInstr;
            O.Selection.ShortHammockMinMergeProb = Pt.MinMerge;
            O.Selection.ShortHammockMinMispRate = Pt.MinMisp;
          },
          /*CostMode=*/false);
      T.addRow({formatString("%u", Pt.MaxInstr),
                formatPercent(Pt.MinMerge).substr(1),
                formatPercent(Pt.MinMisp).substr(1), formatPercent(G)});
    }
    T.print();
  }

  std::printf("\n== Ablation 4: always-predicate vs confidence-gated short "
              "hammocks ==\n");
  {
    // With the short feature, qualifying hammocks bypass the confidence
    // estimator; without it, the same branches are predicated only when
    // low-confidence.  The delta is the value of Section 3.4.
    const double With = geomeanWith([](harness::ExperimentOptions &) {},
                                    /*CostMode=*/false);
    double Without;
    {
      const std::vector<workloads::BenchmarkSpec> &Suite =
          workloads::specSuite();
      const std::vector<double> Ratios = exec::parallelMap<double>(
          *Pool, Suite.size(), [&Suite](size_t I) {
            harness::ExperimentOptions Options;
            Options.Cache = Cache;
            harness::BenchContext Bench(Suite[I], Options);
            core::SelectionFeatures F = core::SelectionFeatures::allBestHeur();
            F.ShortHammocks = false;
            const sim::SimStats Dmp = Bench.runSelection(F);
            return 1.0 + harness::ipcImprovement(Bench.baseline(), Dmp);
          });
      Without = geomean(Ratios) - 1.0;
    }
    std::printf("with always-predicate   : %s\n",
                formatPercent(With).c_str());
    std::printf("confidence-gated only   : %s\n",
                formatPercent(Without).c_str());
    std::printf("short-hammock increment : %s\n",
                formatPercent(With - Without).c_str());
  }
  return 0;
}
