//===- bench/bench_ablation_costmodel.cpp - Cost-model ablations --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Ablation studies for the design choices the paper discusses but does not
// plot:
//
//  1. Acc_Conf sensitivity (footnote 5: "the cost-benefit model is not
//     sensitive to reasonable variations in Acc_Conf (20%-50%)");
//  2. select-µop overhead (Section 4.4 assumption 4: "negligible; on
//     average less than 0.5 fetch cycles per entry into dpred-mode");
//  3. short-hammock heuristic parameters (Section 3.4's 10-instr / 95% /
//     5% choice);
//  4. the always-predicate mechanism itself (short hammocks with vs
//     without the confidence-estimator bypass).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

namespace {

/// Geomean improvement of All-best-cost over the suite under \p Mutate.
template <typename MutateFn>
double geomeanWith(MutateFn Mutate, bool CostMode = true) {
  std::vector<double> Ratios;
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    harness::ExperimentOptions Options;
    Mutate(Options);
    harness::BenchContext Bench(Spec, Options);
    const sim::SimStats Dmp = Bench.runSelection(
        CostMode ? core::SelectionFeatures::allBestCost()
                 : core::SelectionFeatures::allBestHeur());
    Ratios.push_back(1.0 +
                     harness::ipcImprovement(Bench.baseline(), Dmp));
  }
  return geomean(Ratios) - 1.0;
}

} // namespace

int main() {
  std::printf("== Ablation 1: Acc_Conf sensitivity of the cost model ==\n");
  std::printf("(paper footnote 5: insensitive within 20%%-50%%)\n");
  {
    Table T({"Acc_Conf", "All-best-cost geomean"});
    for (double Acc : {0.20, 0.30, 0.40, 0.50}) {
      const double G = geomeanWith(
          [Acc](harness::ExperimentOptions &O) { O.Selection.AccConf = Acc; });
      T.addRow({formatPercent(Acc).substr(1), formatPercent(G)});
    }
    T.print();
  }

  std::printf("\n== Ablation 2: select-uop overhead per dpred entry ==\n");
  std::printf("(paper Section 4.4: < 0.5 fetch cycles per entry)\n");
  {
    Table T({"benchmark", "select-uops/entry", "fetch cycles/entry"});
    double WorstCycles = 0.0;
    for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
      harness::ExperimentOptions Options;
      harness::BenchContext Bench(Spec, Options);
      const sim::SimStats Dmp =
          Bench.runSelection(core::SelectionFeatures::allBestHeur());
      const double PerEntry = Dmp.selectUopsPerEntry();
      const double Cycles = PerEntry / Options.Sim.FetchWidth;
      WorstCycles = std::max(WorstCycles, Cycles);
      T.addRow({Spec.Name, formatDouble(PerEntry, 2),
                formatDouble(Cycles, 2)});
    }
    T.print();
    std::printf("worst case: %.2f fetch cycles/entry (paper: < 0.5 on "
                "average)\n",
                WorstCycles);
  }

  std::printf("\n== Ablation 3: short-hammock thresholds ==\n");
  {
    Table T({"max instrs/side", "min merge", "min misp",
             "All-best-heur geomean"});
    struct Point {
      unsigned MaxInstr;
      double MinMerge;
      double MinMisp;
    };
    const Point Points[] = {
        {10, 0.95, 0.05}, // paper values
        {5, 0.95, 0.05},
        {20, 0.95, 0.05},
        {10, 0.50, 0.05},
        {10, 0.95, 0.20},
    };
    for (const Point &Pt : Points) {
      const double G = geomeanWith(
          [&Pt](harness::ExperimentOptions &O) {
            O.Selection.ShortHammockMaxInstr = Pt.MaxInstr;
            O.Selection.ShortHammockMinMergeProb = Pt.MinMerge;
            O.Selection.ShortHammockMinMispRate = Pt.MinMisp;
          },
          /*CostMode=*/false);
      T.addRow({formatString("%u", Pt.MaxInstr),
                formatPercent(Pt.MinMerge).substr(1),
                formatPercent(Pt.MinMisp).substr(1), formatPercent(G)});
    }
    T.print();
  }

  std::printf("\n== Ablation 4: always-predicate vs confidence-gated short "
              "hammocks ==\n");
  {
    // With the short feature, qualifying hammocks bypass the confidence
    // estimator; without it, the same branches are predicated only when
    // low-confidence.  The delta is the value of Section 3.4.
    const double With = geomeanWith([](harness::ExperimentOptions &) {},
                                    /*CostMode=*/false);
    double Without;
    {
      std::vector<double> Ratios;
      for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
        harness::ExperimentOptions Options;
        harness::BenchContext Bench(Spec, Options);
        core::SelectionFeatures F = core::SelectionFeatures::allBestHeur();
        F.ShortHammocks = false;
        const sim::SimStats Dmp = Bench.runSelection(F);
        Ratios.push_back(1.0 +
                         harness::ipcImprovement(Bench.baseline(), Dmp));
      }
      Without = geomean(Ratios) - 1.0;
    }
    std::printf("with always-predicate   : %s\n",
                formatPercent(With).c_str());
    std::printf("confidence-gated only   : %s\n",
                formatPercent(Without).c_str());
    std::printf("short-hammock increment : %s\n",
                formatPercent(With - Without).c_str());
  }
  return 0;
}
