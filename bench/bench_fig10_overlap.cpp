//===- bench/bench_fig10_overlap.cpp - Figure 10 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 10, "Diverge branches selected with different input
// sets": the fraction of *dynamic* diverge-branch instances whose static
// branch is selected by profiling with either input set (either-run-train),
// only the run input (only-run), or only the train input (only-train).
// Dynamic weights come from the run-input execution counts.
//
// Paper shape: more than 74% of dynamic diverge branches are selected with
// either input set in every benchmark.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  // Per-benchmark dynamic diverge-branch weights by selection overlap.
  struct Overlap {
    uint64_t Either = 0, OnlyRun = 0, OnlyTrain = 0;
  };

  harness::CellNeeds Needs;
  Needs.TrainProfile = true;
  Needs.Baseline = false; // no simulation in this figure
  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  const std::vector<StatusOr<Overlap>> Rows = Engine.runPerBenchmark<Overlap>(
      Suite,
      [](harness::Cell &C) {
        const core::DivergeMap RunMap =
            C.Bench.select(core::SelectionFeatures::allBestHeur(),
                           workloads::InputSetKind::Run);
        const core::DivergeMap TrainMap =
            C.Bench.select(core::SelectionFeatures::allBestHeur(),
                           workloads::InputSetKind::Train);
        const profile::ProfileData &RunProf =
            C.Bench.profileData(workloads::InputSetKind::Run);

        Overlap O;
        auto weightOf = [&](uint32_t Addr) {
          return RunProf.Edges.branchCounts(Addr).total();
        };
        for (uint32_t Addr : RunMap.sortedAddrs()) {
          if (TrainMap.contains(Addr))
            O.Either += weightOf(Addr);
          else
            O.OnlyRun += weightOf(Addr);
        }
        for (uint32_t Addr : TrainMap.sortedAddrs())
          if (!RunMap.contains(Addr))
            O.OnlyTrain += weightOf(Addr);
        return O;
      },
      Needs);

  Table T({"benchmark", "either-run-train", "only-run", "only-train"});
  double WorstEither = 1.0;
  for (size_t B = 0; B < Suite.size(); ++B) {
    if (!Rows[B].ok()) {
      // Failed benchmark: explicit gap row; the worst-case summary skips it.
      T.addRow({Suite[B].Name, "--", "--", "--"});
      continue;
    }
    const Overlap &O = *Rows[B];
    const double Total =
        static_cast<double>(O.Either + O.OnlyRun + O.OnlyTrain);
    const double EitherFrac = Total == 0.0 ? 1.0 : O.Either / Total;
    WorstEither = std::min(WorstEither, EitherFrac);
    T.addRow(
        {Suite[B].Name, formatPercent(EitherFrac).substr(1),
         formatPercent(Total == 0.0 ? 0.0 : O.OnlyRun / Total).substr(1),
         formatPercent(Total == 0.0 ? 0.0 : O.OnlyTrain / Total).substr(1)});
  }

  std::printf("== Figure 10: dynamic diverge branches selected per profiling "
              "input set ==\n");
  T.print();
  std::printf("worst-case either-run-train fraction: %s (paper: >74%% in "
              "all benchmarks)\n",
              formatPercent(WorstEither).substr(1).c_str());
  return harness::finishDriver(Engine);
}
