//===- bench/bench_fig10_overlap.cpp - Figure 10 reproduction -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 10, "Diverge branches selected with different input
// sets": the fraction of *dynamic* diverge-branch instances whose static
// branch is selected by profiling with either input set (either-run-train),
// only the run input (only-run), or only the train input (only-train).
// Dynamic weights come from the run-input execution counts.
//
// Paper shape: more than 74% of dynamic diverge branches are selected with
// either input set in every benchmark.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;

  Table T({"benchmark", "either-run-train", "only-run", "only-train"});
  double WorstEither = 1.0;

  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    harness::BenchContext Bench(Spec, Options);
    const core::DivergeMap RunMap = Bench.select(
        core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run);
    const core::DivergeMap TrainMap =
        Bench.select(core::SelectionFeatures::allBestHeur(),
                     workloads::InputSetKind::Train);
    const profile::ProfileData &RunProf =
        Bench.profileData(workloads::InputSetKind::Run);

    uint64_t Either = 0, OnlyRun = 0, OnlyTrain = 0;
    auto weightOf = [&](uint32_t Addr) {
      return RunProf.Edges.branchCounts(Addr).total();
    };
    for (uint32_t Addr : RunMap.sortedAddrs()) {
      if (TrainMap.contains(Addr))
        Either += weightOf(Addr);
      else
        OnlyRun += weightOf(Addr);
    }
    for (uint32_t Addr : TrainMap.sortedAddrs())
      if (!RunMap.contains(Addr))
        OnlyTrain += weightOf(Addr);

    const double Total =
        static_cast<double>(Either + OnlyRun + OnlyTrain);
    const double EitherFrac = Total == 0.0 ? 1.0 : Either / Total;
    WorstEither = std::min(WorstEither, EitherFrac);
    T.addRow({Spec.Name, formatPercent(EitherFrac).substr(1),
              formatPercent(Total == 0.0 ? 0.0 : OnlyRun / Total).substr(1),
              formatPercent(Total == 0.0 ? 0.0 : OnlyTrain / Total).substr(1)});
  }

  std::printf("== Figure 10: dynamic diverge branches selected per profiling "
              "input set ==\n");
  T.print();
  std::printf("worst-case either-run-train fraction: %s (paper: >74%% in "
              "all benchmarks)\n",
              formatPercent(WorstEither).substr(1).c_str());
  return 0;
}
