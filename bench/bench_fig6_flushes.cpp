//===- bench/bench_fig6_flushes.cpp - Figure 6 reproduction -------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 6, "Pipeline flushes due to branch mispredictions in
// the baseline and DMP": flushes per kilo-instruction for the baseline
// processor and for DMP under each cumulative selection configuration.
// The paper's shape: flushes decrease monotonically as selection techniques
// are added.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
  };
  const Config Configs[] = {
      {"exact", core::SelectionFeatures::exactOnly()},
      {"+freq", core::SelectionFeatures::exactFreq()},
      {"+short", core::SelectionFeatures::exactFreqShort()},
      {"+ret", core::SelectionFeatures::exactFreqShortRet()},
      {"+loop", core::SelectionFeatures::allBestHeur()},
  };

  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  std::vector<std::string> ConfigNames;
  for (const Config &C : Configs)
    ConfigNames.push_back(C.Name);
  harness::CampaignJournal *Journal =
      Engine.journalFor("fig6", harness::paramsDigest(ConfigNames),
                        Suite.size(), std::size(Configs));
  const std::vector<std::vector<StatusOr<double>>> Matrix =
      Engine.runMatrix<double>(
          Suite, std::size(Configs),
          [&Configs](harness::Cell &C) {
            const sim::SimStats Dmp =
                C.Bench.runSelection(Configs[C.Config].Features);
            return Dmp.flushesPerKiloInstr();
          },
          harness::CellNeeds(), Journal, &harness::doubleCellCodec());

  std::vector<std::string> Header = {"benchmark", "baseline"};
  for (const Config &C : Configs)
    Header.push_back(C.Name);
  Table T(Header);

  double BaseSum = 0.0;
  std::vector<double> Sums(std::size(Configs), 0.0);
  std::vector<size_t> Counts(std::size(Configs), 0);

  for (size_t B = 0; B < Suite.size(); ++B) {
    std::vector<std::string> Row = {Suite[B].Name};
    // Baselines were computed (or replayed from cache) as matrix stage
    // tasks; this just reads the per-context memo.
    const double Base =
        Engine.contextFor(Suite[B]).baseline().flushesPerKiloInstr();
    Row.push_back(formatDouble(Base, 2));
    BaseSum += Base;
    for (size_t I = 0; I < std::size(Configs); ++I) {
      // A failed cell is an explicit gap; the average skips it.
      if (Matrix[B][I].ok()) {
        Row.push_back(formatDouble(*Matrix[B][I], 2));
        Sums[I] += *Matrix[B][I];
        ++Counts[I];
      } else {
        Row.push_back("--");
      }
    }
    T.addRow(Row);
  }

  T.addSeparator();
  std::vector<std::string> Mean = {"average",
                                   formatDouble(BaseSum / Suite.size(), 2)};
  for (size_t I = 0; I < std::size(Configs); ++I)
    Mean.push_back(Counts[I] == 0 ? "--" : formatDouble(Sums[I] / Counts[I], 2));
  T.addRow(Mean);

  std::printf("== Figure 6: pipeline flushes per kilo-instruction, baseline "
              "vs DMP ==\n");
  T.print();
  return harness::finishDriver(Engine);
}
