//===- bench/bench_fig6_flushes.cpp - Figure 6 reproduction -------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 6, "Pipeline flushes due to branch mispredictions in
// the baseline and DMP": flushes per kilo-instruction for the baseline
// processor and for DMP under each cumulative selection configuration.
// The paper's shape: flushes decrease monotonically as selection techniques
// are added.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;

  struct Config {
    const char *Name;
    core::SelectionFeatures Features;
  };
  const Config Configs[] = {
      {"exact", core::SelectionFeatures::exactOnly()},
      {"+freq", core::SelectionFeatures::exactFreq()},
      {"+short", core::SelectionFeatures::exactFreqShort()},
      {"+ret", core::SelectionFeatures::exactFreqShortRet()},
      {"+loop", core::SelectionFeatures::allBestHeur()},
  };

  std::vector<std::string> Header = {"benchmark", "baseline"};
  for (const Config &C : Configs)
    Header.push_back(C.Name);
  Table T(Header);

  double BaseSum = 0.0;
  std::vector<double> Sums(std::size(Configs), 0.0);
  size_t Count = 0;

  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    harness::BenchContext Bench(Spec, Options);
    std::vector<std::string> Row = {Spec.Name};
    const double Base = Bench.baseline().flushesPerKiloInstr();
    Row.push_back(formatDouble(Base, 2));
    BaseSum += Base;
    for (size_t I = 0; I < std::size(Configs); ++I) {
      const sim::SimStats Dmp = Bench.runSelection(Configs[I].Features);
      const double Flushes = Dmp.flushesPerKiloInstr();
      Row.push_back(formatDouble(Flushes, 2));
      Sums[I] += Flushes;
    }
    ++Count;
    T.addRow(Row);
  }

  T.addSeparator();
  std::vector<std::string> Mean = {"average",
                                   formatDouble(BaseSum / Count, 2)};
  for (double S : Sums)
    Mean.push_back(formatDouble(S / Count, 2));
  T.addRow(Mean);

  std::printf("== Figure 6: pipeline flushes per kilo-instruction, baseline "
              "vs DMP ==\n");
  T.print();
  return 0;
}
