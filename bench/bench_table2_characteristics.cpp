//===- bench/bench_table2_characteristics.cpp - Table 2 reproduction ----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Table 2, "Characteristics of the benchmarks": baseline IPC,
// MPKI, retired instructions, static conditional branches, static diverge
// branches under All-best-heur, and the average number of CFM points per
// diverge branch.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main() {
  harness::ExperimentOptions Options;

  Table T({"benchmark", "Base IPC", "MPKI", "Insts(K)", "All br.",
           "Diverge br.", "Avg. # CFM"});
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    harness::BenchContext Bench(Spec, Options);
    const sim::SimStats &Base = Bench.baseline();
    const core::DivergeMap Diverge = Bench.select(
        core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run);
    T.addRow({Spec.Name, formatDouble(Base.ipc(), 2),
              formatDouble(Base.mpki(), 1),
              formatString("%llu", static_cast<unsigned long long>(
                                       Base.RetiredInstrs / 1000)),
              formatString("%zu",
                           Bench.workload().Prog->condBranchAddrs().size()),
              formatString("%zu", Diverge.size()),
              formatDouble(Diverge.avgCfmPoints(), 2)});
  }

  std::printf("== Table 2: characteristics of the benchmarks ==\n");
  std::printf("(synthetic SPEC-like suite; see DESIGN.md for the workload "
              "substitution)\n");
  T.print();
  return 0;
}
