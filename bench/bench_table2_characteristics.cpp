//===- bench/bench_table2_characteristics.cpp - Table 2 reproduction ----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Table 2, "Characteristics of the benchmarks": baseline IPC,
// MPKI, retired instructions, static conditional branches, static diverge
// branches under All-best-heur, and the average number of CFM points per
// diverge branch.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  struct Row {
    double Ipc = 0.0, Mpki = 0.0, AvgCfm = 0.0;
    uint64_t InstsK = 0;
    size_t AllBranches = 0, DivergeBranches = 0;
  };

  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  const std::vector<StatusOr<Row>> Rows = Engine.runPerBenchmark<Row>(
      Suite, [](harness::Cell &C) {
        const sim::SimStats &Base = C.Bench.baseline();
        const core::DivergeMap Diverge =
            C.Bench.select(core::SelectionFeatures::allBestHeur(),
                           workloads::InputSetKind::Run);
        Row R;
        R.Ipc = Base.ipc();
        R.Mpki = Base.mpki();
        R.InstsK = Base.RetiredInstrs / 1000;
        R.AllBranches = C.Bench.workload().Prog->condBranchAddrs().size();
        R.DivergeBranches = Diverge.size();
        R.AvgCfm = Diverge.avgCfmPoints();
        return R;
      });

  Table T({"benchmark", "Base IPC", "MPKI", "Insts(K)", "All br.",
           "Diverge br.", "Avg. # CFM"});
  for (size_t B = 0; B < Suite.size(); ++B) {
    if (!Rows[B].ok()) {
      T.addRow({Suite[B].Name, "--", "--", "--", "--", "--", "--"});
      continue;
    }
    const Row &R = *Rows[B];
    T.addRow({Suite[B].Name, formatDouble(R.Ipc, 2), formatDouble(R.Mpki, 1),
              formatString("%llu", static_cast<unsigned long long>(R.InstsK)),
              formatString("%zu", R.AllBranches),
              formatString("%zu", R.DivergeBranches),
              formatDouble(R.AvgCfm, 2)});
  }

  std::printf("== Table 2: characteristics of the benchmarks ==\n");
  std::printf("(synthetic SPEC-like suite; see DESIGN.md for the workload "
              "substitution)\n");
  T.print();
  return harness::finishDriver(Engine);
}
