//===- bench/bench_fig7_thresholds.cpp - Figure 7 reproduction ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 7, "Performance improvement of DMP with different
// MAX_INSTR and MIN_MERGE_PROB heuristics": a sweep of the two main
// thresholds with Alg-exact + Alg-freq only (no short/ret/loop), reporting
// the geomean IPC improvement for each combination.
//
// Paper shapes: too-small MAX_INSTR (10) hurts (misses mispredicted
// hammocks); too-large (200) hurts (window-filling hammocks get selected);
// MAX_INSTR = 50 with small MIN_MERGE_PROB is best; selecting only
// high-merge-probability CFMs (90%) already gets most of the benefit.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main() {
  const unsigned MaxInstrValues[] = {10, 50, 100, 200};
  const double MergeProbValues[] = {0.01, 0.05, 0.30, 0.90};

  // Per-benchmark contexts are reused across the 16 sweep points.
  std::vector<std::unique_ptr<harness::BenchContext>> Benches;
  harness::ExperimentOptions Options;
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite())
    Benches.push_back(std::make_unique<harness::BenchContext>(Spec, Options));

  Table T({"MAX_INSTR", "MIN_MERGE=1%", "5%", "30%", "90%"});
  for (unsigned MaxInstr : MaxInstrValues) {
    std::vector<std::string> Row = {formatString("%u", MaxInstr)};
    for (double MergeProb : MergeProbValues) {
      std::vector<double> Ratios;
      for (auto &Bench : Benches) {
        harness::ExperimentOptions Sweep = Bench->options();
        core::SelectionConfig Config =
            Sweep.Selection.withMaxInstr(MaxInstr).withMinMergeProb(MergeProb);
        const core::DivergeMap Map = core::selectDivergeBranches(
            Bench->analysis(),
            Bench->profileData(workloads::InputSetKind::Run), Config,
            core::SelectionFeatures::exactFreq());
        const sim::SimStats Dmp = Bench->simulateWith(Map);
        Ratios.push_back(1.0 + harness::ipcImprovement(Bench->baseline(), Dmp));
      }
      Row.push_back(formatPercent(geomean(Ratios) - 1.0));
    }
    T.addRow(Row);
  }

  std::printf("== Figure 7: DMP IPC improvement (geomean) vs MAX_INSTR and "
              "MIN_MERGE_PROB ==\n");
  std::printf("(Alg-exact + Alg-freq only; MAX_CBR = MAX_INSTR/10)\n");
  T.print();
  return 0;
}
