//===- bench/bench_fig7_thresholds.cpp - Figure 7 reproduction ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Regenerates Figure 7, "Performance improvement of DMP with different
// MAX_INSTR and MIN_MERGE_PROB heuristics": a sweep of the two main
// thresholds with Alg-exact + Alg-freq only (no short/ret/loop), reporting
// the geomean IPC improvement for each combination.
//
// Paper shapes: too-small MAX_INSTR (10) hurts (misses mispredicted
// hammocks); too-large (200) hurts (window-filling hammocks get selected);
// MAX_INSTR = 50 with small MIN_MERGE_PROB is best; selecting only
// high-merge-probability CFMs (90%) already gets most of the benefit.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace dmp;

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  const harness::EngineOptions EngineOpts =
      harness::EngineOptions::parseOrExit(Argc, Argv);
  harness::ExperimentEngine Engine(harness::ExperimentOptions(), EngineOpts);

  const unsigned MaxInstrValues[] = {10, 50, 100, 200};
  const double MergeProbValues[] = {0.01, 0.05, 0.30, 0.90};

  // All 16 sweep points fan out as one matrix; the engine reuses each
  // benchmark's context (profile + baseline) across every point.
  struct Point {
    unsigned MaxInstr;
    double MergeProb;
  };
  std::vector<Point> Points;
  for (unsigned MaxInstr : MaxInstrValues)
    for (double MergeProb : MergeProbValues)
      Points.push_back({MaxInstr, MergeProb});

  std::vector<std::string> PointNames;
  for (const Point &Pt : Points)
    PointNames.push_back(formatString("max-instr=%u merge-prob=%.2f",
                                      Pt.MaxInstr, Pt.MergeProb));
  const std::vector<workloads::BenchmarkSpec> Suite =
      harness::limitSuite(workloads::specSuite(), EngineOpts);
  harness::CampaignJournal *Journal = Engine.journalFor(
      "fig7", harness::paramsDigest(PointNames),
      Suite.size(), Points.size());
  const std::vector<std::vector<StatusOr<double>>> Ratios =
      Engine.runMatrix<double>(
          Suite, Points.size(),
          [&Points](harness::Cell &C) {
            const Point &Pt = Points[C.Config];
            const core::SelectionConfig Config =
                C.Bench.options()
                    .Selection.withMaxInstr(Pt.MaxInstr)
                    .withMinMergeProb(Pt.MergeProb);
            const core::DivergeMap Map = core::selectDivergeBranches(
                C.Bench.analysis(),
                C.Bench.profileData(workloads::InputSetKind::Run), Config,
                core::SelectionFeatures::exactFreq());
            const sim::SimStats Dmp = C.Bench.simulateWith(Map);
            return 1.0 + harness::ipcImprovement(C.Bench.baseline(), Dmp);
          },
          harness::CellNeeds(), Journal, &harness::doubleCellCodec());

  Table T({"MAX_INSTR", "MIN_MERGE=1%", "5%", "30%", "90%"});
  for (size_t MI = 0; MI < std::size(MaxInstrValues); ++MI) {
    std::vector<std::string> Row = {formatString("%u", MaxInstrValues[MI])};
    for (size_t MP = 0; MP < std::size(MergeProbValues); ++MP) {
      std::vector<double> Column;
      for (const std::vector<StatusOr<double>> &PerBench : Ratios)
        if (const StatusOr<double> &Cell =
                PerBench[MI * std::size(MergeProbValues) + MP];
            Cell.ok())
          Column.push_back(*Cell);
      // Failed cells are gaps; an all-failed sweep point renders as "--".
      Row.push_back(Column.empty() ? "--"
                                   : formatPercent(geomean(Column) - 1.0));
    }
    T.addRow(Row);
  }

  std::printf("== Figure 7: DMP IPC improvement (geomean) vs MAX_INSTR and "
              "MIN_MERGE_PROB ==\n");
  std::printf("(Alg-exact + Alg-freq only; MAX_CBR = MAX_INSTR/10)\n");
  T.print();
  return harness::finishDriver(Engine);
}
