//===- tools/dmp_lint.cpp - Batch static checker CLI ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Batch front end for the analyze:: static checker: build one or more
// synthetic workloads, profile them, run diverge-branch selection, and lint
// the program + profile + annotations through the standard pass pipeline
// (IRLint, AnnotationConsistency, CfmLegality, ProfileSanity).  With
// --map=FILE the annotations are read from a serialized diverge map
// instead of running selection, which is how externally produced (or
// corrupted) annotation files are vetted before simulation.
//
// Usage:
//   dmp_lint [benchmark...] [options]
//
// Options:
//   --all                        lint every benchmark of the suite (the
//                                default when no benchmark is named)
//   --algo=<...>                 selection algorithm (dmpc's names;
//                                default all)
//   --profile-input=<run|train>  profiling input set (default run)
//   --map=FILE                   lint FILE as the annotation set for the
//                                (single) named benchmark; also checks the
//                                serialized text for duplicate entries
//   --format=<text|machine>      diagnostic rendering (default text;
//                                machine is one tab-separated line per
//                                diagnostic: code, severity, function,
//                                block, addr, message)
//   --profile-instrs=<n>         profiler instruction budget (default
//                                4000000; lower for quick smoke lints)
//   --max-instr=<n>              selection MAX_INSTR threshold (default 50)
//   --min-merge-prob=<p>         selection MIN_MERGE_PROB (default 0.01)
//   --werror                     exit non-zero on warnings too
//   --meld-report                print the dataflow meldability TSV (one
//                                row per annotated branch, a leading
//                                workload column) instead of linting
//   --json                       print one machine-readable JSON snapshot
//                                of all diagnostics to stdout (round-trips
//                                through dmp::json)
//   --help                       full option and exit-code documentation
//
// Exit codes (support/ExitCodes.h): 0 clean, 1 diagnostics at gating
// severity, 2 usage error.  --help prints the same contract.
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"
#include "bench/BenchJson.h"
#include "core/AnnotationIO.h"
#include "core/SimpleSelectors.h"
#include "dataflow/Meldability.h"
#include "harness/Experiment.h"
#include "support/ExitCodes.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace dmp;

namespace {

struct CliOptions {
  std::vector<std::string> Benchmarks;
  bool All = false;
  std::string Algo = "all";
  workloads::InputSetKind ProfileInput = workloads::InputSetKind::Run;
  std::string MapFile;
  bool MachineFormat = false;
  uint64_t ProfileInstrs = 4'000'000;
  unsigned MaxInstr = 50;
  double MinMergeProb = 0.01;
  bool WarningsAsErrors = false;
  bool MeldReport = false;
  bool Json = false;
  bool Help = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: dmp_lint [benchmark...] [--all] [--algo=...] "
               "[--profile-input=run|train] [--map=FILE] "
               "[--format=text|machine] [--profile-instrs=N] "
               "[--max-instr=N] [--min-merge-prob=P] [--werror] "
               "[--meld-report] [--json] [--help]\n");
}

void help() {
  std::printf(
      "usage: dmp_lint [benchmark...] [options]\n"
      "\n"
      "Build the named synthetic workloads (all of them with --all, the\n"
      "default), profile them, run diverge-branch selection, and lint the\n"
      "program + profile + annotations through the standard analyze pass\n"
      "pipeline (IRLint, AnnotationConsistency, CfmLegality,\n"
      "PredicationSafety, ProfileSanity).\n"
      "\n"
      "Options:\n"
      "  --all                        lint every benchmark of the suite\n"
      "  --algo=<name>                selection algorithm (dmpc's names;\n"
      "                               default all)\n"
      "  --profile-input=<run|train>  profiling input set (default run)\n"
      "  --map=FILE                   lint FILE as the annotation set for\n"
      "                               the (single) named benchmark\n"
      "  --format=<text|machine>      stderr diagnostic rendering (default\n"
      "                               text; machine is one tab-separated\n"
      "                               line per diagnostic)\n"
      "  --profile-instrs=<n>         profiler instruction budget (default\n"
      "                               4000000)\n"
      "  --max-instr=<n>              selection MAX_INSTR (default 50)\n"
      "  --min-merge-prob=<p>         selection MIN_MERGE_PROB (default\n"
      "                               0.01)\n"
      "  --werror                     warnings gate the exit code too\n"
      "  --meld-report                print the meldability TSV (one row\n"
      "                               per annotated branch, leading\n"
      "                               workload column) to stdout instead\n"
      "                               of linting; always exits 0 unless a\n"
      "                               usage error occurs\n"
      "  --json                       print one JSON snapshot of every\n"
      "                               diagnostic to stdout (schema\n"
      "                               dmp-bench/1, bench \"lint\"); replaces\n"
      "                               the text summary, exit codes are\n"
      "                               unchanged\n"
      "  --help                       this text\n"
      "\n"
      "Exit codes:\n"
      "  0  clean: no error diagnostics (and no warnings under --werror)\n"
      "  1  gating diagnostics: at least one error-severity finding, or\n"
      "     any warning when --werror is set\n"
      "  2  usage error: unknown option/benchmark/algorithm, invalid\n"
      "     option value, or unreadable --map file\n");
}

bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg == "--all") {
      Opts.All = true;
    } else if (Arg.rfind("--algo=", 0) == 0) {
      Opts.Algo = Arg.substr(7);
    } else if (Arg.rfind("--profile-input=", 0) == 0) {
      const std::string V = Arg.substr(16);
      if (V == "train")
        Opts.ProfileInput = workloads::InputSetKind::Train;
      else if (V != "run") {
        std::fprintf(stderr, "error: invalid --profile-input '%s'\n",
                     V.c_str());
        return false;
      }
    } else if (Arg.rfind("--map=", 0) == 0) {
      Opts.MapFile = Arg.substr(6);
      if (Opts.MapFile.empty()) {
        std::fprintf(stderr, "error: empty --map value\n");
        return false;
      }
    } else if (Arg.rfind("--format=", 0) == 0) {
      const std::string V = Arg.substr(9);
      if (V == "machine")
        Opts.MachineFormat = true;
      else if (V != "text") {
        std::fprintf(stderr, "error: invalid --format '%s'\n", V.c_str());
        return false;
      }
    } else if (Arg.rfind("--profile-instrs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 17, U) || U == 0) {
        std::fprintf(stderr, "error: invalid --profile-instrs value '%s'\n",
                     Arg.c_str() + 17);
        return false;
      }
      Opts.ProfileInstrs = U;
    } else if (Arg.rfind("--max-instr=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, U) || U == 0 || U > 1'000'000) {
        std::fprintf(stderr, "error: invalid --max-instr value '%s'\n",
                     Arg.c_str() + 12);
        return false;
      }
      Opts.MaxInstr = static_cast<unsigned>(U);
    } else if (Arg.rfind("--min-merge-prob=", 0) == 0) {
      char *End = nullptr;
      const double P = std::strtod(Arg.c_str() + 17, &End);
      if (End == Arg.c_str() + 17 || *End != '\0' || P < 0.0 || P > 1.0) {
        std::fprintf(stderr, "error: invalid --min-merge-prob value '%s'\n",
                     Arg.c_str() + 17);
        return false;
      }
      Opts.MinMergeProb = P;
    } else if (Arg == "--werror") {
      Opts.WarningsAsErrors = true;
    } else if (Arg == "--meld-report") {
      Opts.MeldReport = true;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--help" || Arg == "-h") {
      Opts.Help = true;
      return true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else {
      Opts.Benchmarks.push_back(Arg);
    }
  }
  if (Opts.Benchmarks.empty())
    Opts.All = true;
  if (!Opts.MapFile.empty() && (Opts.All || Opts.Benchmarks.size() != 1)) {
    std::fprintf(stderr,
                 "error: --map requires exactly one named benchmark\n");
    return false;
  }
  if (Opts.MeldReport && Opts.Json) {
    std::fprintf(stderr,
                 "error: --meld-report and --json both claim stdout; "
                 "pick one\n");
    return false;
  }
  return true;
}

core::DivergeMap runSelection(harness::BenchContext &Bench,
                              const CliOptions &Opts, bool &Ok) {
  using core::SelectionFeatures;
  Ok = true;
  const auto Input = Opts.ProfileInput;
  if (Opts.Algo == "exact")
    return Bench.select(SelectionFeatures::exactOnly(), Input);
  if (Opts.Algo == "freq")
    return Bench.select(SelectionFeatures::exactFreq(), Input);
  if (Opts.Algo == "short")
    return Bench.select(SelectionFeatures::exactFreqShort(), Input);
  if (Opts.Algo == "ret")
    return Bench.select(SelectionFeatures::exactFreqShortRet(), Input);
  if (Opts.Algo == "all")
    return Bench.select(SelectionFeatures::allBestHeur(), Input);
  if (Opts.Algo == "cost-long")
    return Bench.select(SelectionFeatures::costLong(), Input);
  if (Opts.Algo == "cost-edge")
    return Bench.select(SelectionFeatures::costEdge(), Input);
  if (Opts.Algo == "all-cost")
    return Bench.select(SelectionFeatures::allBestCost(), Input);

  const auto &PA = Bench.analysis();
  const auto &Prof = Bench.profileData(Input);
  if (Opts.Algo == "every-br")
    return core::selectEveryBranch(PA, Prof);
  if (Opts.Algo == "random-50")
    return core::selectRandom50(PA, Prof);
  if (Opts.Algo == "high-bp-5")
    return core::selectHighBP(PA, Prof);
  if (Opts.Algo == "immediate")
    return core::selectImmediate(PA, Prof);
  if (Opts.Algo == "if-else")
    return core::selectIfElse(PA, Prof, Bench.options().Selection);

  std::fprintf(stderr, "error: unknown algorithm '%s'\n", Opts.Algo.c_str());
  Ok = false;
  return core::DivergeMap();
}

/// Appends one diagnostics element to the --json snapshot's per-workload
/// array (caller opened the array).
void appendJsonWorkload(bench::BenchJson &Json,
                        const workloads::BenchmarkSpec &Spec,
                        const core::DivergeMap &Map,
                        const analyze::DiagnosticSink &Sink) {
  Json.beginElement();
  Json.string("name", Spec.Name);
  Json.integer("annotations", Map.size());
  Json.integer("errors", Sink.errorCount());
  Json.integer("warnings", Sink.warningCount());
  Json.beginArray("diagnostics");
  for (const analyze::Diagnostic &D : Sink.diagnostics()) {
    Json.beginElement();
    Json.string("code", analyze::diagCodeName(D.Code));
    Json.string("severity", analyze::severityName(D.Sev));
    Json.string("function", D.Loc.Function);
    Json.string("block", D.Loc.Block);
    if (D.Loc.Addr != ir::InvalidAddr)
      Json.integer("addr", D.Loc.Addr);
    Json.string("message", D.Message);
    Json.endElement();
  }
  Json.endArray();
  Json.endElement();
}

/// Lints one benchmark; returns false when diagnostics gate (errors, or
/// warnings under --werror).  With \p Json the snapshot element replaces
/// the stdout/stderr report; \p First gates the --meld-report header line.
bool lintBenchmark(const workloads::BenchmarkSpec &Spec,
                   const CliOptions &Opts, bool &UsageError,
                   bench::BenchJson *Json, bool First) {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = Opts.ProfileInstrs;
  Options.Selection = Options.Selection.withMaxInstr(Opts.MaxInstr)
                          .withMinMergeProb(Opts.MinMergeProb);
  harness::BenchContext Bench(Spec, Options);

  analyze::DiagnosticSink Sink;
  core::DivergeMap Map;
  if (!Opts.MapFile.empty()) {
    std::ifstream In(Opts.MapFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot read map file '%s'\n",
                   Opts.MapFile.c_str());
      UsageError = true;
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Text = Buf.str();
    // Duplicate entries only exist in the serialized text: the in-memory
    // map collapses them at parse time.
    analyze::lintDivergeMapText(Text, Sink);
    const Status ParseStatus = core::parseDivergeMap(Text, Map);
    if (!ParseStatus.ok()) {
      std::fprintf(stderr, "%s: map parse failed: %s\n", Spec.Name,
                   ParseStatus.toString().c_str());
      return false;
    }
  } else {
    bool AlgoOk = true;
    Map = runSelection(Bench, Opts, AlgoOk);
    if (!AlgoOk) {
      UsageError = true;
      return false;
    }
  }

  if (Opts.MeldReport) {
    const ir::Program &P = *Bench.workload().Prog;
    const dataflow::ProgramDataflow PD(P);
    const dataflow::MeldReport Report =
        dataflow::analyzeMeldability(P, Bench.analysis(), Map, PD);
    std::string Tsv =
        dataflow::renderMeldReportTsv(Report, {"workload"}, {Spec.Name});
    if (!First)
      Tsv.erase(0, Tsv.find('\n') + 1);
    std::fputs(Tsv.c_str(), stdout);
    return true;
  }

  analyze::AnalysisInput Input;
  Input.P = Bench.workload().Prog.get();
  Input.PA = &Bench.analysis();
  Input.Profile = &Bench.profileData(Opts.ProfileInput).Edges;
  Input.Annotations = &Map;
  analyze::lintAll(Input, &Sink);

  if (Json != nullptr) {
    appendJsonWorkload(*Json, Spec, Map, Sink);
  } else {
    if (!Sink.empty())
      std::fprintf(stderr, "%s",
                   Opts.MachineFormat ? Sink.renderMachine().c_str()
                                      : Sink.renderText().c_str());
    std::printf("%-10s %zu annotations: %s\n", Spec.Name, Map.size(),
                Sink.summaryLine().c_str());
  }
  if (Sink.errorCount() > 0)
    return false;
  if (Opts.WarningsAsErrors && Sink.warningCount() > 0)
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return exitcode::Usage;
  }
  if (Opts.Help) {
    help();
    return exitcode::Ok;
  }

  std::vector<const workloads::BenchmarkSpec *> Specs;
  if (Opts.All) {
    for (const auto &Spec : workloads::specSuite())
      Specs.push_back(&Spec);
  } else {
    for (const std::string &Name : Opts.Benchmarks) {
      const workloads::BenchmarkSpec *Found = nullptr;
      for (const auto &Spec : workloads::specSuite())
        if (Name == Spec.Name)
          Found = &Spec;
      if (Found == nullptr) {
        std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
        return exitcode::Usage;
      }
      Specs.push_back(Found);
    }
  }

  std::unique_ptr<bench::BenchJson> Json;
  if (Opts.Json) {
    Json = std::make_unique<bench::BenchJson>("lint");
    Json->string("algo", Opts.Algo);
    Json->string("profile_input",
                 Opts.ProfileInput == workloads::InputSetKind::Train ? "train"
                                                                     : "run");
    Json->boolean("werror", Opts.WarningsAsErrors);
    Json->beginArray("workloads");
  }

  bool AllClean = true;
  bool First = true;
  for (const workloads::BenchmarkSpec *Spec : Specs) {
    bool UsageError = false;
    if (!lintBenchmark(*Spec, Opts, UsageError, Json.get(), First)) {
      if (UsageError)
        return exitcode::Usage;
      AllClean = false;
    }
    First = false;
  }

  if (Json != nullptr) {
    Json->endArray();
    Json->boolean("clean", AllClean);
    Json->writeFile("/dev/stdout");
  }
  return AllClean ? exitcode::Ok : exitcode::Failure;
}
