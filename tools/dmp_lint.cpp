//===- tools/dmp_lint.cpp - Batch static checker CLI ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Batch front end for the analyze:: static checker: build one or more
// synthetic workloads, profile them, run diverge-branch selection, and lint
// the program + profile + annotations through the standard pass pipeline
// (IRLint, AnnotationConsistency, CfmLegality, ProfileSanity).  With
// --map=FILE the annotations are read from a serialized diverge map
// instead of running selection, which is how externally produced (or
// corrupted) annotation files are vetted before simulation.
//
// Usage:
//   dmp_lint [benchmark...] [options]
//
// Options:
//   --all                        lint every benchmark of the suite (the
//                                default when no benchmark is named)
//   --algo=<...>                 selection algorithm (dmpc's names;
//                                default all)
//   --profile-input=<run|train>  profiling input set (default run)
//   --map=FILE                   lint FILE as the annotation set for the
//                                (single) named benchmark; also checks the
//                                serialized text for duplicate entries
//   --format=<text|machine>      diagnostic rendering (default text;
//                                machine is one tab-separated line per
//                                diagnostic: code, severity, function,
//                                block, addr, message)
//   --profile-instrs=<n>         profiler instruction budget (default
//                                4000000; lower for quick smoke lints)
//   --max-instr=<n>              selection MAX_INSTR threshold (default 50)
//   --min-merge-prob=<p>         selection MIN_MERGE_PROB (default 0.01)
//   --werror                     exit non-zero on warnings too
//
// Exit codes (support/ExitCodes.h): 0 clean, 1 diagnostics at gating
// severity, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"
#include "core/AnnotationIO.h"
#include "core/SimpleSelectors.h"
#include "harness/Experiment.h"
#include "support/ExitCodes.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dmp;

namespace {

struct CliOptions {
  std::vector<std::string> Benchmarks;
  bool All = false;
  std::string Algo = "all";
  workloads::InputSetKind ProfileInput = workloads::InputSetKind::Run;
  std::string MapFile;
  bool MachineFormat = false;
  uint64_t ProfileInstrs = 4'000'000;
  unsigned MaxInstr = 50;
  double MinMergeProb = 0.01;
  bool WarningsAsErrors = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: dmp_lint [benchmark...] [--all] [--algo=...] "
               "[--profile-input=run|train] [--map=FILE] "
               "[--format=text|machine] [--profile-instrs=N] "
               "[--max-instr=N] [--min-merge-prob=P] [--werror]\n");
}

bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg == "--all") {
      Opts.All = true;
    } else if (Arg.rfind("--algo=", 0) == 0) {
      Opts.Algo = Arg.substr(7);
    } else if (Arg.rfind("--profile-input=", 0) == 0) {
      const std::string V = Arg.substr(16);
      if (V == "train")
        Opts.ProfileInput = workloads::InputSetKind::Train;
      else if (V != "run") {
        std::fprintf(stderr, "error: invalid --profile-input '%s'\n",
                     V.c_str());
        return false;
      }
    } else if (Arg.rfind("--map=", 0) == 0) {
      Opts.MapFile = Arg.substr(6);
      if (Opts.MapFile.empty()) {
        std::fprintf(stderr, "error: empty --map value\n");
        return false;
      }
    } else if (Arg.rfind("--format=", 0) == 0) {
      const std::string V = Arg.substr(9);
      if (V == "machine")
        Opts.MachineFormat = true;
      else if (V != "text") {
        std::fprintf(stderr, "error: invalid --format '%s'\n", V.c_str());
        return false;
      }
    } else if (Arg.rfind("--profile-instrs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 17, U) || U == 0) {
        std::fprintf(stderr, "error: invalid --profile-instrs value '%s'\n",
                     Arg.c_str() + 17);
        return false;
      }
      Opts.ProfileInstrs = U;
    } else if (Arg.rfind("--max-instr=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, U) || U == 0 || U > 1'000'000) {
        std::fprintf(stderr, "error: invalid --max-instr value '%s'\n",
                     Arg.c_str() + 12);
        return false;
      }
      Opts.MaxInstr = static_cast<unsigned>(U);
    } else if (Arg.rfind("--min-merge-prob=", 0) == 0) {
      char *End = nullptr;
      const double P = std::strtod(Arg.c_str() + 17, &End);
      if (End == Arg.c_str() + 17 || *End != '\0' || P < 0.0 || P > 1.0) {
        std::fprintf(stderr, "error: invalid --min-merge-prob value '%s'\n",
                     Arg.c_str() + 17);
        return false;
      }
      Opts.MinMergeProb = P;
    } else if (Arg == "--werror") {
      Opts.WarningsAsErrors = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else {
      Opts.Benchmarks.push_back(Arg);
    }
  }
  if (Opts.Benchmarks.empty())
    Opts.All = true;
  if (!Opts.MapFile.empty() && (Opts.All || Opts.Benchmarks.size() != 1)) {
    std::fprintf(stderr,
                 "error: --map requires exactly one named benchmark\n");
    return false;
  }
  return true;
}

core::DivergeMap runSelection(harness::BenchContext &Bench,
                              const CliOptions &Opts, bool &Ok) {
  using core::SelectionFeatures;
  Ok = true;
  const auto Input = Opts.ProfileInput;
  if (Opts.Algo == "exact")
    return Bench.select(SelectionFeatures::exactOnly(), Input);
  if (Opts.Algo == "freq")
    return Bench.select(SelectionFeatures::exactFreq(), Input);
  if (Opts.Algo == "short")
    return Bench.select(SelectionFeatures::exactFreqShort(), Input);
  if (Opts.Algo == "ret")
    return Bench.select(SelectionFeatures::exactFreqShortRet(), Input);
  if (Opts.Algo == "all")
    return Bench.select(SelectionFeatures::allBestHeur(), Input);
  if (Opts.Algo == "cost-long")
    return Bench.select(SelectionFeatures::costLong(), Input);
  if (Opts.Algo == "cost-edge")
    return Bench.select(SelectionFeatures::costEdge(), Input);
  if (Opts.Algo == "all-cost")
    return Bench.select(SelectionFeatures::allBestCost(), Input);

  const auto &PA = Bench.analysis();
  const auto &Prof = Bench.profileData(Input);
  if (Opts.Algo == "every-br")
    return core::selectEveryBranch(PA, Prof);
  if (Opts.Algo == "random-50")
    return core::selectRandom50(PA, Prof);
  if (Opts.Algo == "high-bp-5")
    return core::selectHighBP(PA, Prof);
  if (Opts.Algo == "immediate")
    return core::selectImmediate(PA, Prof);
  if (Opts.Algo == "if-else")
    return core::selectIfElse(PA, Prof, Bench.options().Selection);

  std::fprintf(stderr, "error: unknown algorithm '%s'\n", Opts.Algo.c_str());
  Ok = false;
  return core::DivergeMap();
}

/// Lints one benchmark; returns false when diagnostics gate (errors, or
/// warnings under --werror).
bool lintBenchmark(const workloads::BenchmarkSpec &Spec,
                   const CliOptions &Opts, bool &UsageError) {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = Opts.ProfileInstrs;
  Options.Selection = Options.Selection.withMaxInstr(Opts.MaxInstr)
                          .withMinMergeProb(Opts.MinMergeProb);
  harness::BenchContext Bench(Spec, Options);

  analyze::DiagnosticSink Sink;
  core::DivergeMap Map;
  if (!Opts.MapFile.empty()) {
    std::ifstream In(Opts.MapFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot read map file '%s'\n",
                   Opts.MapFile.c_str());
      UsageError = true;
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Text = Buf.str();
    // Duplicate entries only exist in the serialized text: the in-memory
    // map collapses them at parse time.
    analyze::lintDivergeMapText(Text, Sink);
    const Status ParseStatus = core::parseDivergeMap(Text, Map);
    if (!ParseStatus.ok()) {
      std::fprintf(stderr, "%s: map parse failed: %s\n", Spec.Name,
                   ParseStatus.toString().c_str());
      return false;
    }
  } else {
    bool AlgoOk = true;
    Map = runSelection(Bench, Opts, AlgoOk);
    if (!AlgoOk) {
      UsageError = true;
      return false;
    }
  }

  analyze::AnalysisInput Input;
  Input.P = Bench.workload().Prog.get();
  Input.PA = &Bench.analysis();
  Input.Profile = &Bench.profileData(Opts.ProfileInput).Edges;
  Input.Annotations = &Map;
  analyze::lintAll(Input, &Sink);

  if (!Sink.empty())
    std::fprintf(stderr, "%s",
                 Opts.MachineFormat ? Sink.renderMachine().c_str()
                                    : Sink.renderText().c_str());
  std::printf("%-10s %zu annotations: %s\n", Spec.Name, Map.size(),
              Sink.summaryLine().c_str());
  if (Sink.errorCount() > 0)
    return false;
  if (Opts.WarningsAsErrors && Sink.warningCount() > 0)
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return exitcode::Usage;
  }

  std::vector<const workloads::BenchmarkSpec *> Specs;
  if (Opts.All) {
    for (const auto &Spec : workloads::specSuite())
      Specs.push_back(&Spec);
  } else {
    for (const std::string &Name : Opts.Benchmarks) {
      const workloads::BenchmarkSpec *Found = nullptr;
      for (const auto &Spec : workloads::specSuite())
        if (Name == Spec.Name)
          Found = &Spec;
      if (Found == nullptr) {
        std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
        return exitcode::Usage;
      }
      Specs.push_back(Found);
    }
  }

  bool AllClean = true;
  for (const workloads::BenchmarkSpec *Spec : Specs) {
    bool UsageError = false;
    if (!lintBenchmark(*Spec, Opts, UsageError)) {
      if (UsageError)
        return exitcode::Usage;
      AllClean = false;
    }
  }
  return AllClean ? exitcode::Ok : exitcode::Failure;
}
