//===- tools/dmpc.cpp - The DMP profiling-compiler driver ----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Command-line driver mirroring the paper's binary-analysis toolset
// (Section 6.1): profile a benchmark, select diverge branches with a chosen
// algorithm, emit the annotation list that would be "attached to the
// binary", and optionally simulate baseline vs DMP.
//
// Usage:
//   dmpc <benchmark> [options]
//
// Options:
//   --algo=<exact|freq|short|ret|all|cost-long|cost-edge|all-cost|
//           every-br|random-50|high-bp-5|immediate|if-else>   (default all)
//   --profile-input=<run|train>   profiling input set (default run)
//   --max-instr=<n>               MAX_INSTR threshold (default 50)
//   --min-merge-prob=<p>          MIN_MERGE_PROB (default 0.01)
//   --2d-filter                   drop always-easy branches (2D profiling)
//   --dump-dot                    print Graphviz CFGs with the selection
//   --emit-map                    print the serialized diverge map
//   --dump-program                print the program listing
//   --simulate                    run baseline and DMP simulations
//   --lint                        run the static checker (IR lint +
//                                 annotation/CFM legality + profile sanity)
//                                 over the selection and exit; non-zero on
//                                 any error-severity diagnostic
//   --no-lint                     skip the implicit lint gate that
//                                 otherwise runs before --simulate/--verify
//   --verify                      run the differential oracle (reference
//                                 emulator vs baseline/DMP-selected/
//                                 DMP-adversarial simulator legs) and exit
//                                 non-zero on any retired-state mismatch
//                                 or invariant violation
//   --inject-fault=<0|1|2>        with --verify: inject a canary fault into
//                                 the DMP-selected leg (1 = drop first
//                                 retired store, 2 = flip a bit of r1);
//                                 the oracle must then fail
//   --sim-instrs=<n>              simulation budget (default 1200000)
//   --jobs=<n>                    worker threads (baseline and DMP
//                                 simulations overlap under --simulate)
//   --cache-dir=<dir>             artifact cache location (default
//                                 $DMP_CACHE_DIR or .dmp-cache)
//   --no-cache                    recompute; skip the artifact cache
//   --remote=<socket>             run the cell on a dmp_served daemon
//                                 instead of in-process (implies
//                                 --simulate; the printed stats digest is
//                                 bit-identical to a local run)
//   --ping                        with --remote: health-probe the daemon
//                                 and print its epoch, load snapshot
//                                 (jobs/cells in flight, shed counters)
//                                 and the round-trip time; no benchmark
//                                 argument needed
//   --list                        list available benchmarks and exit
//
// Unknown options and malformed numeric values are rejected with usage and
// a non-zero exit, so scripted sweeps fail loudly instead of silently
// running the default configuration.
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"
#include "cfg/DotExport.h"
#include "check/Oracle.h"
#include "core/AnnotationIO.h"
#include "exec/TaskGraph.h"
#include "guard/Guard.h"
#include "harness/CellRun.h"
#include "harness/Engine.h"
#include "ir/Printer.h"
#include "profile/TwoDProfile.h"
#include "serve/Client.h"
#include "support/ExitCodes.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dmp;

namespace {

struct CliOptions {
  std::string Benchmark;
  std::string Algo = "all";
  workloads::InputSetKind ProfileInput = workloads::InputSetKind::Run;
  unsigned MaxInstr = 50;
  double MinMergeProb = 0.01;
  bool TwoDFilter = false;
  bool EmitMap = false;
  bool DumpProgram = false;
  bool DumpDot = false;
  bool Simulate = false;
  bool LintOnly = false;
  bool LintGate = true;
  bool Verify = false;
  unsigned InjectFault = 0;
  uint64_t SimInstrs = 1'200'000;
  unsigned Jobs = exec::ThreadPool::defaultThreadCount();
  std::string CacheDir = harness::EngineOptions::defaultCacheDir();
  bool UseCache = true;
  std::string RemoteSocket; ///< non-empty: ship the cell to a dmp_served
  bool Ping = false;        ///< --remote health probe, no cell shipped
};

void usage() {
  std::fprintf(stderr,
               "usage: dmpc <benchmark> [--algo=...] [--profile-input=...] "
               "[--max-instr=N] [--min-merge-prob=P] [--2d-filter] "
               "[--emit-map] [--dump-program] [--simulate] [--lint] "
               "[--no-lint] [--verify] "
               "[--inject-fault=0|1|2] [--sim-instrs=N] "
               "[--jobs=N] [--cache-dir=DIR] [--no-cache] "
               "[--remote=SOCKET [--ping]] | --list\n");
}

/// Strict numeric parsing: the whole value must be a number, or we fail
/// the command line instead of sweeping a silently-mangled threshold.
bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseF64(const char *V, double &Out) {
  char *End = nullptr;
  Out = std::strtod(V, &End);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg == "--list") {
      for (const auto &Spec : workloads::specSuite())
        std::printf("%s\n", Spec.Name);
      std::exit(0);
    } else if (Arg.rfind("--algo=", 0) == 0) {
      Opts.Algo = Arg.substr(7);
    } else if (Arg.rfind("--profile-input=", 0) == 0) {
      const std::string V = Arg.substr(16);
      if (V == "train")
        Opts.ProfileInput = workloads::InputSetKind::Train;
      else if (V != "run") {
        std::fprintf(stderr, "error: invalid --profile-input '%s'\n",
                     V.c_str());
        return false;
      }
    } else if (Arg.rfind("--max-instr=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, U) || U == 0 || U > 1'000'000) {
        std::fprintf(stderr, "error: invalid --max-instr value '%s'\n",
                     Arg.c_str() + 12);
        return false;
      }
      Opts.MaxInstr = static_cast<unsigned>(U);
    } else if (Arg.rfind("--min-merge-prob=", 0) == 0) {
      double P = 0.0;
      if (!parseF64(Arg.c_str() + 17, P) || P < 0.0 || P > 1.0) {
        std::fprintf(stderr, "error: invalid --min-merge-prob value '%s'\n",
                     Arg.c_str() + 17);
        return false;
      }
      Opts.MinMergeProb = P;
    } else if (Arg.rfind("--sim-instrs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, U) || U == 0) {
        std::fprintf(stderr, "error: invalid --sim-instrs value '%s'\n",
                     Arg.c_str() + 13);
        return false;
      }
      Opts.SimInstrs = U;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 7, U) || U == 0 || U > 1024) {
        std::fprintf(stderr, "error: invalid --jobs value '%s'\n",
                     Arg.c_str() + 7);
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = Arg.substr(12);
      if (Opts.CacheDir.empty()) {
        std::fprintf(stderr, "error: empty --cache-dir value\n");
        return false;
      }
    } else if (Arg == "--no-cache") {
      Opts.UseCache = false;
    } else if (Arg.rfind("--remote=", 0) == 0) {
      Opts.RemoteSocket = Arg.substr(9);
      if (Opts.RemoteSocket.empty()) {
        std::fprintf(stderr, "error: empty --remote value\n");
        return false;
      }
    } else if (Arg == "--ping") {
      Opts.Ping = true;
    } else if (Arg == "--2d-filter") {
      Opts.TwoDFilter = true;
    } else if (Arg == "--emit-map") {
      Opts.EmitMap = true;
    } else if (Arg == "--dump-program") {
      Opts.DumpProgram = true;
    } else if (Arg == "--dump-dot") {
      Opts.DumpDot = true;
    } else if (Arg == "--simulate") {
      Opts.Simulate = true;
    } else if (Arg == "--lint") {
      Opts.LintOnly = true;
    } else if (Arg == "--no-lint") {
      Opts.LintGate = false;
    } else if (Arg == "--verify") {
      Opts.Verify = true;
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 15, U) || U > 2) {
        std::fprintf(stderr, "error: invalid --inject-fault value '%s'\n",
                     Arg.c_str() + 15);
        return false;
      }
      Opts.InjectFault = static_cast<unsigned>(U);
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else if (Opts.Benchmark.empty()) {
      Opts.Benchmark = Arg;
    } else {
      return false;
    }
  }
  // --ping is a daemon probe, not a cell run: no benchmark needed.
  return !Opts.Benchmark.empty() || Opts.Ping;
}

/// Runs the requested selection algorithm via the shared per-cell entry
/// point (harness::selectByAlgo), so dmpc and the serve workers parse one
/// grammar and run one implementation.
core::DivergeMap runSelection(harness::BenchContext &Bench,
                              const CliOptions &Opts,
                              core::SelectionStats &Stats) {
  StatusOr<core::DivergeMap> Map =
      harness::selectByAlgo(Bench, Opts.Algo, Opts.ProfileInput, &Stats);
  if (!Map.ok()) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 Opts.Algo.c_str());
    std::exit(exitcode::Usage);
  }
  return *std::move(Map);
}

void printSimReport(const sim::SimStats &Base, const sim::SimStats &Dmp) {
  std::printf("baseline: IPC %.3f  MPKI %.2f  flushes/kinstr %.2f\n",
              Base.ipc(), Base.mpki(), Base.flushesPerKiloInstr());
  std::printf("DMP     : IPC %.3f  flushes/kinstr %.2f  dpred entries "
              "%llu  merged %llu  saved flushes %llu\n",
              Dmp.ipc(), Dmp.flushesPerKiloInstr(),
              static_cast<unsigned long long>(Dmp.DpredEntries),
              static_cast<unsigned long long>(Dmp.DpredMerged),
              static_cast<unsigned long long>(Dmp.DpredSavedFlushes));
  std::printf("speedup : %s\n",
              formatPercent(harness::ipcImprovement(Base, Dmp)).c_str());
}

/// `dmpc --remote=SOCKET --ping`: one PING round trip, rendered as the
/// daemon's epoch, its load snapshot (when the daemon is new enough to
/// send one), and the measured RTT.
int runPing(const CliOptions &Opts) {
  serve::Client Client;
  if (Status S = Client.connect(Opts.RemoteSocket); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.toString().c_str());
    return exitcode::Failure;
  }
  const auto T0 = std::chrono::steady_clock::now();
  uint64_t Epoch = 0;
  StatusOr<serve::PongLoad> Load = Client.serverLoad(&Epoch);
  const double RttMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - T0)
          .count();
  if (!Load.ok() && Load.status().code() != ErrorCode::NotFound) {
    std::fprintf(stderr, "error: %s\n", Load.status().toString().c_str());
    return exitcode::Failure;
  }
  std::printf("pong: epoch=%llu rtt=%.3fms\n",
              static_cast<unsigned long long>(Epoch), RttMs);
  if (Load.ok())
    std::printf("load: jobs-active=%llu cells-running=%llu "
                "jobs-shed=%llu conns-shed=%llu\n",
                static_cast<unsigned long long>(Load->JobsActive),
                static_cast<unsigned long long>(Load->CellsRunning),
                static_cast<unsigned long long>(Load->JobsShed),
                static_cast<unsigned long long>(Load->ConnsShed));
  else
    std::printf("load: unavailable (daemon predates the load snapshot)\n");
  return exitcode::Ok;
}

/// `dmpc --remote`: ship the cell to a dmp_served daemon and render the
/// same report a local --simulate run prints, including the stats digest —
/// which must come back bit-identical to local execution.
int runRemote(const CliOptions &Opts) {
  harness::CellSpec Spec;
  Spec.Benchmark = Opts.Benchmark;
  Spec.Algo = Opts.Algo;
  Spec.ProfileInput = Opts.ProfileInput;
  Spec.MaxInstr = Opts.MaxInstr;
  Spec.MinMergeProb = Opts.MinMergeProb;
  Spec.SimInstrs = Opts.SimInstrs;
  if (Status S = Spec.validate(); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.toString().c_str());
    return exitcode::Usage;
  }

  serve::Client Client;
  if (Status S = Client.connect(Opts.RemoteSocket); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.toString().c_str());
    return exitcode::Failure;
  }
  serve::SubmitRequest Req;
  Req.Cells.push_back(Spec);
  // runCampaign rides through daemon blips and restarts: reconnect under
  // deterministic backoff, epoch check, idempotent resubmit.
  StatusOr<serve::FetchReplyData> Reply = Client.runCampaign(Req);
  if (!Reply.ok()) {
    std::fprintf(stderr, "error: %s\n", Reply.status().toString().c_str());
    return guard::interrupted() ? exitcode::Interrupted : exitcode::Failure;
  }
  // Results are in hand: release the job's durable record.  Best-effort —
  // if the ack is lost the server GC (or the next identical submit's
  // dedup) cleans up.
  (void)Client.ack(Reply->Job);
  if (Reply->Cells.size() != 1) {
    std::fprintf(stderr, "error: server returned %zu cells for 1 submitted\n",
                 Reply->Cells.size());
    return exitcode::Failure;
  }
  const StatusOr<harness::CellResult> &Cell = Reply->Cells[0];
  if (!Cell.ok()) {
    std::fprintf(stderr, "error: %s\n", Cell.status().toString().c_str());
    return exitcode::Failure;
  }

  std::printf("%s: algo=%s profile=%s -> %llu diverge branches "
              "(avg %.2f CFM points)\n",
              Opts.Benchmark.c_str(), Opts.Algo.c_str(),
              Opts.ProfileInput == workloads::InputSetKind::Run ? "run"
                                                                : "train",
              static_cast<unsigned long long>(Cell->DivergeBranches),
              Cell->AvgCfmPoints);
  printSimReport(Cell->Baseline, Cell->Dmp);
  std::printf("digest  : %s\n",
              harness::cellResultDigest(*Cell).hex().c_str());
  return exitcode::Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return exitcode::Usage;
  }

  if (Opts.Ping) {
    if (Opts.RemoteSocket.empty()) {
      std::fprintf(stderr, "error: --ping requires --remote=SOCKET\n");
      return exitcode::Usage;
    }
    return runPing(Opts);
  }

  const workloads::BenchmarkSpec *Spec = nullptr;
  for (const auto &S : workloads::specSuite())
    if (Opts.Benchmark == S.Name)
      Spec = &S;
  if (!Spec) {
    std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                 Opts.Benchmark.c_str());
    return exitcode::Usage;
  }

  if (!Opts.RemoteSocket.empty()) {
    // Remote mode runs exactly one profile->select->simulate cell on the
    // daemon; the local-only analysis/report modes don't ship.
    if (Opts.TwoDFilter || Opts.EmitMap || Opts.DumpProgram || Opts.DumpDot ||
        Opts.LintOnly || Opts.Verify) {
      std::fprintf(stderr,
                   "error: --remote supports only the simulate pipeline "
                   "(no --2d-filter/--emit-map/--dump-*/--lint/--verify)\n");
      return exitcode::Usage;
    }
    return runRemote(Opts);
  }

  harness::ExperimentOptions Options;
  Options.Selection =
      Options.Selection.withMaxInstr(Opts.MaxInstr)
          .withMinMergeProb(Opts.MinMergeProb);
  Options.Sim.MaxInstrs = Opts.SimInstrs;
  if (Opts.UseCache)
    Options.Cache = std::make_shared<serialize::ArtifactCache>(Opts.CacheDir);
  harness::BenchContext Bench(*Spec, Options);

  if (Opts.DumpProgram)
    std::printf("%s\n", ir::printProgram(*Bench.workload().Prog).c_str());

  core::SelectionStats Stats;
  core::DivergeMap Map = runSelection(Bench, Opts, Stats);
  std::printf("%s: algo=%s profile=%s -> %zu diverge branches "
              "(avg %.2f CFM points)\n",
              Opts.Benchmark.c_str(), Opts.Algo.c_str(),
              Opts.ProfileInput == workloads::InputSetKind::Run ? "run"
                                                                : "train",
              Map.size(), Map.avgCfmPoints());

  if (Opts.TwoDFilter) {
    const profile::TwoDProfileData TwoD = profile::collectTwoDProfile(
        *Bench.workload().Prog,
        Bench.workload().buildImage(Opts.ProfileInput));
    size_t Dropped = 0;
    Map = profile::filterAlwaysEasyBranches(Map, TwoD, &Dropped);
    std::printf("2D-profiling filter dropped %zu always-easy branches; %zu "
                "remain\n",
                Dropped, Map.size());
  }

  if (Opts.EmitMap)
    std::printf("%s", core::serializeDivergeMap(Map).c_str());

  if (Opts.DumpDot) {
    cfg::DotOptions DotOpts;
    const auto &Prof = Bench.profileData(Opts.ProfileInput);
    DotOpts.Edges = &Prof.Edges;
    DotOpts.Diverge = &Map;
    for (const auto &F : Bench.workload().Prog->functions())
      std::printf("%s\n", cfg::exportFunctionDot(*F, DotOpts).c_str());
  }

  // Static checker: with --lint, check and exit; otherwise gate the
  // expensive oracle/simulation phases on a clean lint (--no-lint skips).
  if (Opts.LintOnly ||
      (Opts.LintGate && (Opts.Simulate || Opts.Verify))) {
    analyze::AnalysisInput LintInput;
    LintInput.P = Bench.workload().Prog.get();
    LintInput.PA = &Bench.analysis();
    LintInput.Profile = &Bench.profileData(Opts.ProfileInput).Edges;
    LintInput.Annotations = &Map;
    analyze::DiagnosticSink Sink;
    const Status LintStatus = analyze::lintAll(LintInput, &Sink);
    // The implicit pre-simulation gate stays quiet unless something gates;
    // --lint is the reporting mode and prints warnings too.
    if (Opts.LintOnly) {
      if (!Sink.empty())
        std::fprintf(stderr, "%s", Sink.renderText().c_str());
      std::printf("lint: %s %s\n", Opts.Benchmark.c_str(),
                  Sink.summaryLine().c_str());
      return LintStatus.ok() ? exitcode::Ok : exitcode::Failure;
    }
    if (!LintStatus.ok()) {
      for (const analyze::Diagnostic &D : Sink.diagnostics())
        if (D.Sev == analyze::Severity::Error)
          std::fprintf(stderr, "%s\n", D.renderText().c_str());
    }
    if (!LintStatus.ok()) {
      std::fprintf(stderr,
                   "lint: refusing to simulate a selection with error "
                   "diagnostics (use --no-lint to bypass)\n");
      return exitcode::Failure;
    }
  }

  // Phase boundaries double as interrupt points: a first SIGINT lets the
  // current phase finish, then we stop cleanly with the distinct exit code
  // instead of starting the (expensive) oracle or simulation phases.
  if (guard::interrupted()) {
    std::fprintf(stderr, "[guard] interrupted: skipping remaining phases\n");
    return exitcode::Interrupted;
  }

  if (Opts.Verify) {
    check::OracleOptions OracleOpts;
    OracleOpts.MaxInstrs = Opts.SimInstrs;
    OracleOpts.InjectFault = Opts.InjectFault;
    const check::OracleReport Report = check::runOracle(
        *Bench.workload().Prog, Bench.analysis(),
        Bench.workload().buildImage(workloads::InputSetKind::Run),
        OracleOpts);
    for (const check::LegResult &Leg : Report.Legs)
      std::printf("verify %-15s %s\n", Leg.Name.c_str(),
                  Leg.Errors.empty() ? "ok" : "FAILED");
    if (!Report.ok()) {
      std::fprintf(stderr, "%s", Report.summary().c_str());
      std::fprintf(stderr, "verify: %s FAILED\n", Opts.Benchmark.c_str());
      return exitcode::Failure;
    }
    std::printf("verify: %s ok (all legs match the reference emulator)\n",
                Opts.Benchmark.c_str());
  }

  if (guard::interrupted()) {
    std::fprintf(stderr, "[guard] interrupted: skipping remaining phases\n");
    return exitcode::Interrupted;
  }

  if (Opts.Simulate) {
    // The baseline and DMP simulations are independent; overlap them when
    // more than one worker is available.
    sim::SimStats Dmp;
    {
      exec::ThreadPool Pool(Opts.Jobs);
      exec::TaskGraph Graph;
      Graph.add([&Bench] { Bench.baseline(); });
      Graph.add([&Bench, &Map, &Dmp] { Dmp = Bench.simulateWith(Map); });
      Graph.run(Pool);
    }
    const sim::SimStats &Base = Bench.baseline();
    printSimReport(Base, Dmp);
    // The digest a --remote run of the same spec must reproduce.
    harness::CellResult Local;
    Local.Baseline = Base;
    Local.Dmp = Dmp;
    Local.DivergeBranches = Map.size();
    Local.AvgCfmPoints = Map.avgCfmPoints();
    std::printf("digest  : %s\n",
                harness::cellResultDigest(Local).hex().c_str());
  }

  if (const serialize::ArtifactCache *Cache = Options.Cache.get())
    std::fprintf(stderr,
                 "[cache] hits=%llu misses=%llu stores=%llu corrupt=%llu "
                 "store-failures=%llu orphans-reaped=%llu evicted=%llu "
                 "lock-contention=%llu\n",
                 static_cast<unsigned long long>(Cache->hits()),
                 static_cast<unsigned long long>(Cache->misses()),
                 static_cast<unsigned long long>(Cache->stores()),
                 static_cast<unsigned long long>(Cache->corruptDeletes()),
                 static_cast<unsigned long long>(Cache->failedStores()),
                 static_cast<unsigned long long>(Cache->orphansReaped()),
                 static_cast<unsigned long long>(Cache->evictions()),
                 static_cast<unsigned long long>(Cache->lockContention()));
  return guard::interrupted() ? exitcode::Interrupted : exitcode::Ok;
}
