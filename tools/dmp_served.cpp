//===- tools/dmp_served.cpp - The campaign-service daemon -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Long-lived campaign service: owns the content-addressed artifact cache
// and a pool of forked worker processes, and accepts campaign submissions
// from `dmpc --remote` over a Unix socket (see DESIGN.md "Service
// architecture" and serve/Protocol.h for the wire format).
//
// Usage:
//   dmp_served --socket=PATH [options]
//
// Options:
//   --socket=PATH        Unix socket to listen on (required)
//   --workers=N          worker processes (default 2; 0 = in-process)
//   --cache-dir=DIR      artifact cache shared by all workers (default
//                        $DMP_CACHE_DIR or .dmp-cache)
//   --no-cache           run every cell uncached
//   --max-jobs=N         admission bound on concurrently active jobs
//                        (default 64); over-limit SUBMITs are rejected
//                        with ResourceExhausted
//   --max-cells=N        admission bound on cells per job (default 256)
//   --cell-attempts=N    dispatch attempts per cell across worker crashes
//                        (default 3)
//   --cell-wall-ms=N     hung-worker watchdog: a busy worker silent (no
//                        CELL_PROGRESS heartbeat) for N ms is SIGKILLed
//                        and its cell retried (default 0 = off)
//   --max-conns=N        accept cap; at the limit new connects shed the
//                        oldest idle connection or are refused (default 64)
//   --no-durable         do not checkpoint jobs to the cache; a restart
//                        forgets all in-flight work (pre-recovery behavior)
//   --quiet              suppress the per-event log lines
//
// Shutdown: SIGINT and SIGTERM both drain gracefully — stop accepting,
// shed pending cells, let in-flight cells finish, flush replies — and then
// exit 130 (SIGINT) or 143 (SIGTERM), so process supervisors can tell an
// operator interrupt from a managed stop.  A SHUTDOWN frame drains the
// same way and exits 0.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "serve/Server.h"
#include "serve/WorkerPool.h"
#include "support/ExitCodes.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dmp;

namespace {

struct DaemonOptions {
  std::string Socket;
  unsigned Workers = 2;
  std::string CacheDir = harness::EngineOptions::defaultCacheDir();
  bool UseCache = true;
  unsigned MaxJobs = 64;
  unsigned MaxCells = 256;
  unsigned CellAttempts = 3;
  unsigned CellWallMs = 0;
  unsigned MaxConns = 64;
  bool Durable = true;
  bool Quiet = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: dmp_served --socket=PATH [--workers=N] "
               "[--cache-dir=DIR] [--no-cache] [--max-jobs=N] "
               "[--max-cells=N] [--cell-attempts=N] [--cell-wall-ms=N] "
               "[--max-conns=N] [--no-durable] [--quiet]\n");
}

bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, DaemonOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.Socket = Arg.substr(9);
    } else if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 10, U) || U > 64) {
        std::fprintf(stderr, "error: invalid --workers value '%s'\n",
                     Arg.c_str() + 10);
        return false;
      }
      Opts.Workers = static_cast<unsigned>(U);
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = Arg.substr(12);
      if (Opts.CacheDir.empty()) {
        std::fprintf(stderr, "error: empty --cache-dir value\n");
        return false;
      }
    } else if (Arg == "--no-cache") {
      Opts.UseCache = false;
    } else if (Arg.rfind("--max-jobs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 11, U) || U == 0 || U > 100'000) {
        std::fprintf(stderr, "error: invalid --max-jobs value '%s'\n",
                     Arg.c_str() + 11);
        return false;
      }
      Opts.MaxJobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--max-cells=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, U) || U == 0 ||
          U > serve::kMaxCellsPerSubmit) {
        std::fprintf(stderr, "error: invalid --max-cells value '%s'\n",
                     Arg.c_str() + 12);
        return false;
      }
      Opts.MaxCells = static_cast<unsigned>(U);
    } else if (Arg.rfind("--cell-attempts=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 16, U) || U == 0 || U > 100) {
        std::fprintf(stderr, "error: invalid --cell-attempts value '%s'\n",
                     Arg.c_str() + 16);
        return false;
      }
      Opts.CellAttempts = static_cast<unsigned>(U);
    } else if (Arg.rfind("--cell-wall-ms=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 15, U) || U > 86'400'000) {
        std::fprintf(stderr, "error: invalid --cell-wall-ms value '%s'\n",
                     Arg.c_str() + 15);
        return false;
      }
      Opts.CellWallMs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--max-conns=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 12, U) || U == 0 || U > 100'000) {
        std::fprintf(stderr, "error: invalid --max-conns value '%s'\n",
                     Arg.c_str() + 12);
        return false;
      }
      Opts.MaxConns = static_cast<unsigned>(U);
    } else if (Arg == "--no-durable") {
      Opts.Durable = false;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.Socket.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return exitcode::Usage;
  }

  // Fork the workers BEFORE arming signal handlers: a worker must not
  // inherit the supervisor's drain semantics (it ignores SIGINT itself and
  // is drained by its socketpair closing).
  serve::WorkerPoolOptions PoolOpts;
  PoolOpts.Workers = Opts.Workers;
  PoolOpts.CacheDir = Opts.CacheDir;
  PoolOpts.UseCache = Opts.UseCache;
  serve::WorkerPool Pool(PoolOpts);

  guard::installSignalHandlers();

  serve::ServerOptions ServerOpts;
  ServerOpts.SocketPath = Opts.Socket;
  ServerOpts.MaxActiveJobs = Opts.MaxJobs;
  ServerOpts.MaxCellsPerJob = Opts.MaxCells;
  ServerOpts.CellAttempts = Opts.CellAttempts;
  ServerOpts.CellWallMs = Opts.CellWallMs;
  ServerOpts.MaxConns = Opts.MaxConns;
  ServerOpts.DurableJobs = Opts.Durable;
  ServerOpts.Quiet = Opts.Quiet;
  serve::Server Server(std::move(ServerOpts), Pool);

  if (Status S = Server.listen(); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.toString().c_str());
    return exitcode::Failure;
  }
  // The readiness line scripts wait for before connecting.
  std::printf("dmp_served: listening on %s (%u workers, cache %s)\n",
              Opts.Socket.c_str(), Pool.size(),
              Opts.UseCache ? Opts.CacheDir.c_str() : "off");
  std::fflush(stdout);

  const Status Run = Server.run();

  const serve::Server::Counters C = Server.counters();
  std::fprintf(stderr,
               "[serve] conns=%llu jobs=%llu rejected=%llu deduped=%llu "
               "recovered=%llu dispatched=%llu completed=%llu failed=%llu "
               "retried=%llu resumed=%llu crashes=%llu protocol-errors=%llu "
               "checkpoints=%llu hung=%llu heartbeats=%llu "
               "read-timeouts=%llu idle-drops=%llu slow-drops=%llu "
               "shed=%llu refused=%llu accept-errors=%llu\n",
               static_cast<unsigned long long>(C.ConnectionsAccepted),
               static_cast<unsigned long long>(C.JobsAccepted),
               static_cast<unsigned long long>(C.JobsRejected),
               static_cast<unsigned long long>(C.JobsDeduped),
               static_cast<unsigned long long>(C.JobsRecovered),
               static_cast<unsigned long long>(C.CellsDispatched),
               static_cast<unsigned long long>(C.CellsCompleted),
               static_cast<unsigned long long>(C.CellsFailed),
               static_cast<unsigned long long>(C.CellsRetried),
               static_cast<unsigned long long>(C.CellsResumed),
               static_cast<unsigned long long>(C.WorkerCrashes),
               static_cast<unsigned long long>(C.ProtocolErrors),
               static_cast<unsigned long long>(C.Checkpoints),
               static_cast<unsigned long long>(C.WorkersHung),
               static_cast<unsigned long long>(C.Heartbeats),
               static_cast<unsigned long long>(C.ReadTimeouts),
               static_cast<unsigned long long>(C.IdleDrops),
               static_cast<unsigned long long>(C.SlowConsumerDrops),
               static_cast<unsigned long long>(C.ConnsShed),
               static_cast<unsigned long long>(C.ConnsRefused),
               static_cast<unsigned long long>(C.AcceptErrors));

  if (!Run.ok()) {
    std::fprintf(stderr, "error: %s\n", Run.toString().c_str());
    return exitcode::Failure;
  }
  // A signal-initiated drain reports which signal: 130 for SIGINT, 143 for
  // SIGTERM (exitcode::Terminated), per the supervisor convention.
  if (guard::interrupted())
    return guard::lastSignal() == SIGTERM ? exitcode::Terminated
                                          : exitcode::Interrupted;
  return exitcode::Ok;
}
