//===- tools/fuzz_dmp.cpp - Differential-oracle fuzzer driver ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Runs the dmp::check differential oracle over a range of generator seeds,
// fanned out on the exec thread pool.  Each seed expands to a random
// program (check/ProgramGen.h), which is run through the reference
// emulator and the cycle simulator in baseline, profile-selected-DMP, and
// adversarial-DMP configurations; any retired-state divergence or broken
// simulator invariant fails the seed.
//
// Usage:
//   fuzz_dmp [options]
//
// Options:
//   --seeds=N            number of seeds to run (default 200)
//   --start-seed=N       first seed (default 0)
//   --jobs=N             worker threads (default: hardware)
//   --max-instrs=N       per-run dynamic instruction budget (default 300000)
//   --fault=<0|1|2>      inject a canary fault into the dmp-selected leg's
//                        extracted state (1 = drop first retired store,
//                        2 = flip a bit of r1); the oracle must then flag
//                        every seed
//   --expect-divergence  invert the exit status: succeed only when every
//                        seed fails (canary / known-bug mode)
//   --keep-going         collect every divergence instead of reporting only
//                        the first: prints a per-seed failure table and a
//                        failure digest that is independent of --jobs (the
//                        batch always runs every seed; this only changes
//                        reporting)
//   --reduce             on failure, greedily minimize the first failing
//                        seed and print the repro snippet + DOT CFG
//   --dump-dir=DIR       write repro_seed<N>.h/.dot for the reduced case
//   --digest             print the SHA-256 digest of all results; the
//                        digest is independent of --jobs
//   --selfcheck-determinism
//                        run the batch twice (1 thread vs all threads) and
//                        fail unless the result digests match
//   --time-budget=SEC    stop *launching* new seeds once SEC wall-clock
//                        seconds have elapsed; in-flight seeds finish and
//                        the digest covers completed seeds only, with the
//                        covered seed count reported (never a silent
//                        truncation)
//
// Exit status (support/ExitCodes.h): 0 when every completed seed passed
// (or, under --expect-divergence, when every completed seed failed);
// 1 otherwise; 2 on usage errors; 130 when interrupted by SIGINT/SIGTERM
// (the report above it covers the seeds that completed).
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "check/Oracle.h"
#include "check/ProgramGen.h"
#include "check/Reduce.h"
#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "serialize/Hash.h"
#include "serialize/ProfileIO.h"
#include "support/ExitCodes.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace dmp;

namespace {

struct CliOptions {
  uint64_t Seeds = 200;
  uint64_t StartSeed = 0;
  unsigned Jobs = exec::ThreadPool::defaultThreadCount();
  uint64_t MaxInstrs = 300'000;
  unsigned Fault = 0;
  bool ExpectDivergence = false;
  bool KeepGoing = false;
  bool Reduce = false;
  std::string DumpDir;
  bool PrintDigest = false;
  bool SelfcheckDeterminism = false;
  double TimeBudgetSeconds = 0; ///< 0 = unbounded.
};

void usage() {
  std::fprintf(stderr,
               "usage: fuzz_dmp [--seeds=N] [--start-seed=N] [--jobs=N] "
               "[--max-instrs=N] [--fault=0|1|2] [--expect-divergence] "
               "[--keep-going] [--reduce] [--dump-dir=DIR] [--digest] "
               "[--selfcheck-determinism] [--time-budget=SEC]\n");
}

bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 8, U) || U == 0)
        return false;
      Opts.Seeds = U;
    } else if (Arg.rfind("--start-seed=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, U))
        return false;
      Opts.StartSeed = U;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 7, U) || U == 0 || U > 1024)
        return false;
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--max-instrs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, U) || U == 0)
        return false;
      Opts.MaxInstrs = U;
    } else if (Arg.rfind("--fault=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 8, U) || U > 2)
        return false;
      Opts.Fault = static_cast<unsigned>(U);
    } else if (Arg == "--expect-divergence") {
      Opts.ExpectDivergence = true;
    } else if (Arg == "--keep-going") {
      Opts.KeepGoing = true;
    } else if (Arg == "--reduce") {
      Opts.Reduce = true;
    } else if (Arg.rfind("--dump-dir=", 0) == 0) {
      Opts.DumpDir = Arg.substr(11);
    } else if (Arg == "--digest") {
      Opts.PrintDigest = true;
    } else if (Arg == "--selfcheck-determinism") {
      Opts.SelfcheckDeterminism = true;
    } else if (Arg.rfind("--time-budget=", 0) == 0) {
      char *End = nullptr;
      const double Sec = std::strtod(Arg.c_str() + 14, &End);
      if (End == Arg.c_str() + 14 || *End != '\0' || Sec <= 0)
        return false;
      Opts.TimeBudgetSeconds = Sec;
    } else {
      std::fprintf(stderr, "fuzz_dmp: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

/// One seed's outcome — everything needed for reporting and for the
/// jobs-independent result digest.
struct SeedResult {
  uint64_t Seed = 0;
  /// False when the seed was never run — drained by the time budget or a
  /// shutdown signal.  Skipped seeds are excluded from the digests and
  /// failure counts, and reported explicitly in the coverage line.
  bool Ran = true;
  bool Ok = false;
  std::string Summary; ///< Error lines; empty when Ok.
  /// Per-leg serialized SimStats, so the digest also pins the timing
  /// model's counters, not just architectural correctness.
  std::vector<std::vector<uint8_t>> LegStats;
};

check::OracleOptions oracleOptions(const CliOptions &Opts) {
  check::OracleOptions OOpts;
  OOpts.MaxInstrs = Opts.MaxInstrs;
  OOpts.InjectFault = Opts.Fault;
  return OOpts;
}

SeedResult runSeed(uint64_t Seed, const CliOptions &Opts) {
  SeedResult R;
  R.Seed = Seed;
  const check::GenRecipe Recipe = check::randomRecipe(Seed);
  const check::GenProgram G = check::materialize(Recipe);
  if (!G.VerifyErrors.empty()) {
    R.Ok = false;
    for (const std::string &E : G.VerifyErrors)
      R.Summary += "generator: " + E + "\n";
    return R;
  }
  const cfg::ProgramAnalysis PA(*G.Prog);
  const check::OracleReport Report =
      check::runOracle(*G.Prog, PA, G.Image, oracleOptions(Opts));
  R.Ok = Report.ok();
  R.Summary = Report.summary();
  for (const check::LegResult &Leg : Report.Legs)
    R.LegStats.push_back(serialize::encodeSimStats(Leg.Stats));
  return R;
}

/// Digest over all completed results, in seed order — independent of
/// scheduling.  Skipped (never-run) seeds contribute nothing, so a
/// time-budgeted sweep's digest is exactly the digest of the seeds it
/// covered — and identical to an unbudgeted run's when nothing is skipped.
serialize::Digest resultsDigest(const std::vector<SeedResult> &Results) {
  serialize::Hasher H;
  H.update(std::string("fuzz-dmp-results"));
  for (const SeedResult &R : Results) {
    if (!R.Ran)
      continue;
    H.updateU64(R.Seed);
    H.updateU64(R.Ok ? 1 : 0);
    H.update(R.Summary);
    for (const std::vector<uint8_t> &Blob : R.LegStats)
      H.update(Blob.data(), Blob.size());
  }
  return H.finish();
}

std::vector<SeedResult> runBatch(const CliOptions &Opts, unsigned Jobs,
                                 const guard::CancelToken *Budget) {
  std::vector<SeedResult> Results(Opts.Seeds);
  exec::ThreadPool Pool(Jobs);
  exec::TaskGraph Graph;
  for (uint64_t I = 0; I < Opts.Seeds; ++I)
    Graph.add([I, &Opts, &Results] {
      Results[I] = runSeed(Opts.StartSeed + I, Opts);
    });
  // Graceful drain only: the check gates seed *launches*; a seed already
  // inside the oracle runs to completion (its legs are never aborted, so
  // every completed result is the same bytes a full run would produce).
  const std::vector<Status> Statuses =
      Graph.runAll(Pool, [Budget]() -> Status {
        if (Status S = guard::processToken().status(); !S.ok())
          return S;
        return Budget ? Budget->status() : Status();
      });
  // Run-to-completion: a seed whose harness itself blows up becomes a
  // failed seed with the Status text, instead of aborting the batch.
  // Guard-origin statuses are drains, not failures: the seed never ran.
  for (uint64_t I = 0; I < Opts.Seeds; ++I)
    if (!Statuses[I].ok()) {
      Results[I].Seed = Opts.StartSeed + I;
      Results[I].Ok = false;
      Results[I].LegStats.clear();
      if (Statuses[I].origin() == "guard") {
        Results[I].Ran = false;
        Results[I].Summary.clear();
      } else {
        Results[I].Summary = "harness: " + Statuses[I].toString() + "\n";
      }
    }
  return Results;
}

/// The first line of \p Text (without the newline), for compact tables.
std::string firstLine(const std::string &Text) {
  const size_t Pos = Text.find('\n');
  return Pos == std::string::npos ? Text : Text.substr(0, Pos);
}

/// Digest over the failing seeds only, in seed order — independent of
/// --jobs, so two --keep-going sweeps are comparable by one line.
serialize::Digest failureDigest(const std::vector<SeedResult> &Results) {
  serialize::Hasher H;
  H.update(std::string("fuzz-dmp-failures"));
  for (const SeedResult &R : Results) {
    if (!R.Ran || R.Ok)
      continue;
    H.updateU64(R.Seed);
    H.update(R.Summary);
  }
  return H.finish();
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Contents.data(), 1, Contents.size(), F);
  std::fclose(F);
  return true;
}

void reduceAndReport(uint64_t Seed, const CliOptions &Opts) {
  const check::OracleOptions OOpts = oracleOptions(Opts);
  // When the original failure is an oracle divergence, candidates that
  // fail the IR lint are rejected outright: shrinking into a structurally
  // invalid program would "minimize" to a different bug.  Only when the
  // original failure *is* a lint failure do lint-failing candidates count
  // as reproducing it.
  const bool OriginalLintFailed =
      !check::materialize(check::randomRecipe(Seed)).VerifyErrors.empty();
  const auto StillFails = [&](const check::GenRecipe &Candidate) {
    const check::GenProgram G = check::materialize(Candidate);
    if (!G.VerifyErrors.empty())
      return OriginalLintFailed;
    if (OriginalLintFailed)
      return false;
    const cfg::ProgramAnalysis PA(*G.Prog);
    return !check::runOracle(*G.Prog, PA, G.Image, OOpts).ok();
  };
  const check::GenRecipe Minimized =
      check::reduceRecipe(check::randomRecipe(Seed), StillFails);
  const std::string Name = "Seed" + std::to_string(Seed);
  const std::string Snippet = check::emitReproSnippet(Minimized, Name);
  const std::string Dot = check::emitReproDot(Minimized);
  std::printf("minimized repro for seed %llu: %s\n%s",
              static_cast<unsigned long long>(Seed),
              check::describeRecipe(Minimized).c_str(), Snippet.c_str());
  if (!Opts.DumpDir.empty()) {
    const std::string Base =
        Opts.DumpDir + "/repro_seed" + std::to_string(Seed);
    if (!writeFile(Base + ".h", Snippet) || !writeFile(Base + ".dot", Dot))
      std::fprintf(stderr, "fuzz_dmp: cannot write repro files under %s\n",
                   Opts.DumpDir.c_str());
    else
      std::printf("repro written to %s.{h,dot}\n", Base.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  guard::installSignalHandlers();
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return exitcode::Usage;
  }

  // The time budget spans the whole invocation (both selfcheck batches
  // included): once it expires, no batch launches further seeds.
  guard::CancelToken BudgetToken;
  std::unique_ptr<guard::DeadlineWatchdog> Watchdog;
  const guard::CancelToken *Budget = nullptr;
  if (Opts.TimeBudgetSeconds > 0) {
    Watchdog = std::make_unique<guard::DeadlineWatchdog>(
        guard::Deadline(Opts.TimeBudgetSeconds), BudgetToken,
        ErrorCode::ResourceExhausted, "time budget exhausted");
    Budget = &BudgetToken;
  }

  if (Opts.SelfcheckDeterminism) {
    const std::vector<SeedResult> Serial = runBatch(Opts, 1, Budget);
    const std::vector<SeedResult> Parallel = runBatch(Opts, Opts.Jobs, Budget);
    const serialize::Digest A = resultsDigest(Serial);
    const serialize::Digest B = resultsDigest(Parallel);
    std::printf("determinism selfcheck: jobs=1 %s, jobs=%u %s\n",
                A.hex().c_str(), Opts.Jobs, B.hex().c_str());
    if (A != B) {
      std::fprintf(stderr,
                   "fuzz_dmp: result digest depends on thread count\n");
      return exitcode::Failure;
    }
  }

  const std::vector<SeedResult> Results = runBatch(Opts, Opts.Jobs, Budget);

  uint64_t Completed = 0;
  uint64_t Failures = 0;
  const SeedResult *FirstFailure = nullptr;
  for (const SeedResult &R : Results) {
    if (!R.Ran)
      continue;
    ++Completed;
    if (!R.Ok) {
      ++Failures;
      if (!FirstFailure)
        FirstFailure = &R;
    }
  }
  const uint64_t Skipped = Opts.Seeds - Completed;

  std::printf("fuzz_dmp: %llu seeds starting at %llu, %llu failed "
              "(fault=%u, jobs=%u)\n",
              static_cast<unsigned long long>(Opts.Seeds),
              static_cast<unsigned long long>(Opts.StartSeed),
              static_cast<unsigned long long>(Failures), Opts.Fault,
              Opts.Jobs);
  // Coverage is always reported when a budget was set (and whenever seeds
  // were skipped), so a truncated sweep can never pass as a full one.
  if (Opts.TimeBudgetSeconds > 0 || Skipped > 0) {
    uint64_t Lo = 0, Hi = 0;
    bool Any = false;
    for (const SeedResult &R : Results)
      if (R.Ran) {
        if (!Any)
          Lo = R.Seed;
        Hi = R.Seed;
        Any = true;
      }
    if (Any)
      std::printf("coverage: %llu of %llu seeds completed, %llu skipped; "
                  "covered seeds %llu..%llu\n",
                  static_cast<unsigned long long>(Completed),
                  static_cast<unsigned long long>(Opts.Seeds),
                  static_cast<unsigned long long>(Skipped),
                  static_cast<unsigned long long>(Lo),
                  static_cast<unsigned long long>(Hi));
    else
      std::printf("coverage: 0 of %llu seeds completed, %llu skipped\n",
                  static_cast<unsigned long long>(Opts.Seeds),
                  static_cast<unsigned long long>(Skipped));
  }
  if (Opts.PrintDigest)
    std::printf("digest: %s\n", resultsDigest(Results).hex().c_str());
  if (Opts.KeepGoing && Failures > 0) {
    std::printf("failing seeds:\n");
    for (const SeedResult &R : Results)
      if (!R.Ok)
        std::printf("  seed %-8llu %s\n",
                    static_cast<unsigned long long>(R.Seed),
                    firstLine(R.Summary).c_str());
    std::printf("failure digest: %s\n", failureDigest(Results).hex().c_str());
  }
  if (FirstFailure) {
    std::printf("first failing seed %llu (%s):\n%s",
                static_cast<unsigned long long>(FirstFailure->Seed),
                check::describeRecipe(check::randomRecipe(FirstFailure->Seed))
                    .c_str(),
                FirstFailure->Summary.c_str());
    if (Opts.Reduce)
      reduceAndReport(FirstFailure->Seed, Opts);
  }

  if (guard::interrupted()) {
    std::fprintf(stderr,
                 "[guard] interrupted: results above cover completed seeds "
                 "only\n");
    return exitcode::Interrupted;
  }
  if (Opts.ExpectDivergence) {
    if (Completed > 0 && Failures == Completed)
      return exitcode::Ok;
    std::fprintf(stderr,
                 "fuzz_dmp: expected every seed to diverge, but %llu of "
                 "%llu completed seeds passed\n",
                 static_cast<unsigned long long>(Completed - Failures),
                 static_cast<unsigned long long>(Completed));
    return exitcode::Failure;
  }
  return Failures == 0 ? exitcode::Ok : exitcode::Failure;
}
