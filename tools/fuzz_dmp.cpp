//===- tools/fuzz_dmp.cpp - Differential-oracle fuzzer driver ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Runs the dmp::check differential oracle over a range of generator seeds,
// fanned out on the exec thread pool.  Each seed expands to a random
// program (check/ProgramGen.h), which is run through the reference
// emulator and the cycle simulator in baseline, profile-selected-DMP, and
// adversarial-DMP configurations; any retired-state divergence or broken
// simulator invariant fails the seed.
//
// Usage:
//   fuzz_dmp [options]
//
// Options:
//   --seeds=N            number of seeds to run (default 200)
//   --start-seed=N       first seed (default 0)
//   --jobs=N             worker threads (default: hardware)
//   --max-instrs=N       per-run dynamic instruction budget (default 300000)
//   --fault=<0|1|2>      inject a canary fault into the dmp-selected leg's
//                        extracted state (1 = drop first retired store,
//                        2 = flip a bit of r1); the oracle must then flag
//                        every seed
//   --expect-divergence  invert the exit status: succeed only when every
//                        seed fails (canary / known-bug mode)
//   --keep-going         collect every divergence instead of reporting only
//                        the first: prints a per-seed failure table and a
//                        failure digest that is independent of --jobs (the
//                        batch always runs every seed; this only changes
//                        reporting)
//   --reduce             on failure, greedily minimize the first failing
//                        seed and print the repro snippet + DOT CFG
//   --dump-dir=DIR       write repro_seed<N>.h/.dot for the reduced case
//   --digest             print the SHA-256 digest of all results; the
//                        digest is independent of --jobs
//   --selfcheck-determinism
//                        run the batch twice (1 thread vs all threads) and
//                        fail unless the result digests match
//
// Exit status: 0 when every seed passed (or, under --expect-divergence,
// when every seed failed); 1 otherwise; 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "check/Oracle.h"
#include "check/ProgramGen.h"
#include "check/Reduce.h"
#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"
#include "serialize/Hash.h"
#include "serialize/ProfileIO.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dmp;

namespace {

struct CliOptions {
  uint64_t Seeds = 200;
  uint64_t StartSeed = 0;
  unsigned Jobs = exec::ThreadPool::defaultThreadCount();
  uint64_t MaxInstrs = 300'000;
  unsigned Fault = 0;
  bool ExpectDivergence = false;
  bool KeepGoing = false;
  bool Reduce = false;
  std::string DumpDir;
  bool PrintDigest = false;
  bool SelfcheckDeterminism = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: fuzz_dmp [--seeds=N] [--start-seed=N] [--jobs=N] "
               "[--max-instrs=N] [--fault=0|1|2] [--expect-divergence] "
               "[--keep-going] [--reduce] [--dump-dir=DIR] [--digest] "
               "[--selfcheck-determinism]\n");
}

bool parseU64(const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  return End != V && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 8, U) || U == 0)
        return false;
      Opts.Seeds = U;
    } else if (Arg.rfind("--start-seed=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, U))
        return false;
      Opts.StartSeed = U;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 7, U) || U == 0 || U > 1024)
        return false;
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--max-instrs=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 13, U) || U == 0)
        return false;
      Opts.MaxInstrs = U;
    } else if (Arg.rfind("--fault=", 0) == 0) {
      if (!parseU64(Arg.c_str() + 8, U) || U > 2)
        return false;
      Opts.Fault = static_cast<unsigned>(U);
    } else if (Arg == "--expect-divergence") {
      Opts.ExpectDivergence = true;
    } else if (Arg == "--keep-going") {
      Opts.KeepGoing = true;
    } else if (Arg == "--reduce") {
      Opts.Reduce = true;
    } else if (Arg.rfind("--dump-dir=", 0) == 0) {
      Opts.DumpDir = Arg.substr(11);
    } else if (Arg == "--digest") {
      Opts.PrintDigest = true;
    } else if (Arg == "--selfcheck-determinism") {
      Opts.SelfcheckDeterminism = true;
    } else {
      std::fprintf(stderr, "fuzz_dmp: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

/// One seed's outcome — everything needed for reporting and for the
/// jobs-independent result digest.
struct SeedResult {
  uint64_t Seed = 0;
  bool Ok = false;
  std::string Summary; ///< Error lines; empty when Ok.
  /// Per-leg serialized SimStats, so the digest also pins the timing
  /// model's counters, not just architectural correctness.
  std::vector<std::vector<uint8_t>> LegStats;
};

check::OracleOptions oracleOptions(const CliOptions &Opts) {
  check::OracleOptions OOpts;
  OOpts.MaxInstrs = Opts.MaxInstrs;
  OOpts.InjectFault = Opts.Fault;
  return OOpts;
}

SeedResult runSeed(uint64_t Seed, const CliOptions &Opts) {
  SeedResult R;
  R.Seed = Seed;
  const check::GenRecipe Recipe = check::randomRecipe(Seed);
  const check::GenProgram G = check::materialize(Recipe);
  if (!G.VerifyErrors.empty()) {
    R.Ok = false;
    for (const std::string &E : G.VerifyErrors)
      R.Summary += "generator: " + E + "\n";
    return R;
  }
  const cfg::ProgramAnalysis PA(*G.Prog);
  const check::OracleReport Report =
      check::runOracle(*G.Prog, PA, G.Image, oracleOptions(Opts));
  R.Ok = Report.ok();
  R.Summary = Report.summary();
  for (const check::LegResult &Leg : Report.Legs)
    R.LegStats.push_back(serialize::encodeSimStats(Leg.Stats));
  return R;
}

/// Digest over all results, in seed order — independent of scheduling.
serialize::Digest resultsDigest(const std::vector<SeedResult> &Results) {
  serialize::Hasher H;
  H.update(std::string("fuzz-dmp-results"));
  for (const SeedResult &R : Results) {
    H.updateU64(R.Seed);
    H.updateU64(R.Ok ? 1 : 0);
    H.update(R.Summary);
    for (const std::vector<uint8_t> &Blob : R.LegStats)
      H.update(Blob.data(), Blob.size());
  }
  return H.finish();
}

std::vector<SeedResult> runBatch(const CliOptions &Opts, unsigned Jobs) {
  std::vector<SeedResult> Results(Opts.Seeds);
  exec::ThreadPool Pool(Jobs);
  exec::TaskGraph Graph;
  for (uint64_t I = 0; I < Opts.Seeds; ++I)
    Graph.add([I, &Opts, &Results] {
      Results[I] = runSeed(Opts.StartSeed + I, Opts);
    });
  // Run-to-completion: a seed whose harness itself blows up becomes a
  // failed seed with the Status text, instead of aborting the batch.
  const std::vector<Status> Statuses = Graph.runAll(Pool);
  for (uint64_t I = 0; I < Opts.Seeds; ++I)
    if (!Statuses[I].ok()) {
      Results[I].Seed = Opts.StartSeed + I;
      Results[I].Ok = false;
      Results[I].Summary = "harness: " + Statuses[I].toString() + "\n";
      Results[I].LegStats.clear();
    }
  return Results;
}

/// The first line of \p Text (without the newline), for compact tables.
std::string firstLine(const std::string &Text) {
  const size_t Pos = Text.find('\n');
  return Pos == std::string::npos ? Text : Text.substr(0, Pos);
}

/// Digest over the failing seeds only, in seed order — independent of
/// --jobs, so two --keep-going sweeps are comparable by one line.
serialize::Digest failureDigest(const std::vector<SeedResult> &Results) {
  serialize::Hasher H;
  H.update(std::string("fuzz-dmp-failures"));
  for (const SeedResult &R : Results) {
    if (R.Ok)
      continue;
    H.updateU64(R.Seed);
    H.update(R.Summary);
  }
  return H.finish();
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Contents.data(), 1, Contents.size(), F);
  std::fclose(F);
  return true;
}

void reduceAndReport(uint64_t Seed, const CliOptions &Opts) {
  const check::OracleOptions OOpts = oracleOptions(Opts);
  const auto StillFails = [&](const check::GenRecipe &Candidate) {
    const check::GenProgram G = check::materialize(Candidate);
    if (!G.VerifyErrors.empty())
      return true;
    const cfg::ProgramAnalysis PA(*G.Prog);
    return !check::runOracle(*G.Prog, PA, G.Image, OOpts).ok();
  };
  const check::GenRecipe Minimized =
      check::reduceRecipe(check::randomRecipe(Seed), StillFails);
  const std::string Name = "Seed" + std::to_string(Seed);
  const std::string Snippet = check::emitReproSnippet(Minimized, Name);
  const std::string Dot = check::emitReproDot(Minimized);
  std::printf("minimized repro for seed %llu: %s\n%s",
              static_cast<unsigned long long>(Seed),
              check::describeRecipe(Minimized).c_str(), Snippet.c_str());
  if (!Opts.DumpDir.empty()) {
    const std::string Base =
        Opts.DumpDir + "/repro_seed" + std::to_string(Seed);
    if (!writeFile(Base + ".h", Snippet) || !writeFile(Base + ".dot", Dot))
      std::fprintf(stderr, "fuzz_dmp: cannot write repro files under %s\n",
                   Opts.DumpDir.c_str());
    else
      std::printf("repro written to %s.{h,dot}\n", Base.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return 2;
  }

  if (Opts.SelfcheckDeterminism) {
    const std::vector<SeedResult> Serial = runBatch(Opts, 1);
    const std::vector<SeedResult> Parallel = runBatch(Opts, Opts.Jobs);
    const serialize::Digest A = resultsDigest(Serial);
    const serialize::Digest B = resultsDigest(Parallel);
    std::printf("determinism selfcheck: jobs=1 %s, jobs=%u %s\n",
                A.hex().c_str(), Opts.Jobs, B.hex().c_str());
    if (A != B) {
      std::fprintf(stderr,
                   "fuzz_dmp: result digest depends on thread count\n");
      return 1;
    }
  }

  const std::vector<SeedResult> Results = runBatch(Opts, Opts.Jobs);

  uint64_t Failures = 0;
  const SeedResult *FirstFailure = nullptr;
  for (const SeedResult &R : Results)
    if (!R.Ok) {
      ++Failures;
      if (!FirstFailure)
        FirstFailure = &R;
    }

  std::printf("fuzz_dmp: %llu seeds starting at %llu, %llu failed "
              "(fault=%u, jobs=%u)\n",
              static_cast<unsigned long long>(Opts.Seeds),
              static_cast<unsigned long long>(Opts.StartSeed),
              static_cast<unsigned long long>(Failures), Opts.Fault,
              Opts.Jobs);
  if (Opts.PrintDigest)
    std::printf("digest: %s\n", resultsDigest(Results).hex().c_str());
  if (Opts.KeepGoing && Failures > 0) {
    std::printf("failing seeds:\n");
    for (const SeedResult &R : Results)
      if (!R.Ok)
        std::printf("  seed %-8llu %s\n",
                    static_cast<unsigned long long>(R.Seed),
                    firstLine(R.Summary).c_str());
    std::printf("failure digest: %s\n", failureDigest(Results).hex().c_str());
  }
  if (FirstFailure) {
    std::printf("first failing seed %llu (%s):\n%s",
                static_cast<unsigned long long>(FirstFailure->Seed),
                check::describeRecipe(check::randomRecipe(FirstFailure->Seed))
                    .c_str(),
                FirstFailure->Summary.c_str());
    if (Opts.Reduce)
      reduceAndReport(FirstFailure->Seed, Opts);
  }

  if (Opts.ExpectDivergence) {
    if (Failures == Opts.Seeds)
      return 0;
    std::fprintf(stderr,
                 "fuzz_dmp: expected every seed to diverge, but %llu of "
                 "%llu passed\n",
                 static_cast<unsigned long long>(Opts.Seeds - Failures),
                 static_cast<unsigned long long>(Opts.Seeds));
    return 1;
  }
  return Failures == 0 ? 0 : 1;
}
