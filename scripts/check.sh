#!/usr/bin/env bash
# One-command verification gate: configure the warnings-as-errors preset,
# build everything, and run the test suite.  By default only the tier1
# label runs (fast unit/integration tests — the pre-commit gate); pass
# --all to also run the slow redundancy checks and the fuzz campaign,
# --crash to run only the fork-based crash-consistency matrix,
# --serve to run the campaign-service suite (serve label) plus the
# multi-client soak hammer (DMP_SERVE_SOAK=1),
# --chaos to run the socket-chaos, daemon-crash-restart, and
# hostile-client liveness matrix (the chaos label: ChaosProxy transport
# hostility, SIGKILL-and-restart digest-parity tests, and the
# HostileClient attacks — half-open floods, slowloris drips, never-read
# floods, submit storms, hung-worker watchdog),
# --bench to run the perf-regression gate (a bench_throughput smoke
# re-measurement against the committed BENCH_throughput.json, 3x
# tolerance; the perf ctest label),
# --analysis to run the dataflow/meldability tier (the analysis label:
# solver property tests, emulator-ground-truth soundness over the
# 17-workload suite and fuzz recipes, and the meld-report golden gate),
# --sanitize to build and test under ASan+UBSan (the sanitize preset),
# --tsan to build and run the threaded-subsystem tests under TSan, and
# --tidy to run clang-tidy over src/ and tools/ (skipped with a notice
# when clang-tidy is not installed).
# Exits non-zero on the first failure, so CI and pre-commit hooks can call
# it directly.  See TESTING.md for the tier definitions.
set -euo pipefail

cd "$(dirname "$0")/.."

ALL=0
CRASH=0
SERVE=0
CHAOS=0
BENCH=0
ANALYSIS=0
TIDY=0
PRESET=ci
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    --crash) CRASH=1 ;;
    --serve) SERVE=1 ;;
    --chaos) CHAOS=1 ;;
    --bench) BENCH=1 ;;
    --analysis) ANALYSIS=1 ;;
    --sanitize) PRESET=sanitize ;;
    --tsan) PRESET=tsan ;;
    --tidy) TIDY=1 ;;
    -h|--help) echo "usage: $0 [--all] [--crash] [--serve] [--chaos] [--bench] [--analysis] [--sanitize] [--tsan] [--tidy]"; exit 0 ;;
    *) echo "usage: $0 [--all] [--crash] [--serve] [--chaos] [--bench] [--analysis] [--sanitize] [--tsan] [--tidy]" >&2; exit 2 ;;
  esac
done

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh: clang-tidy not installed, skipping tidy step"
    return 0
  fi
  # The compile database comes from the ci preset configure.
  cmake --preset ci >/dev/null
  find src tools -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build-ci --quiet
}

if [[ "$TIDY" -eq 1 ]]; then
  run_tidy
  exit 0
fi

cmake --preset "$PRESET" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build --preset "$PRESET" -j "$(nproc)"

if [[ "$PRESET" == tsan ]]; then
  # Only the threaded subsystems are interesting under TSan; the preset's
  # name filter selects them.
  ctest --preset tsan
elif [[ "$CRASH" -eq 1 ]]; then
  ctest --preset "$PRESET" -L crash
elif [[ "$SERVE" -eq 1 ]]; then
  # The serve label covers the whole-suite run and the CLI contract; the
  # soak hammer (multi-client junk-injecting load test) only runs when its
  # env gate is armed, which the serve_soak ctest entry does.
  ctest --preset "$PRESET" -L serve
elif [[ "$CHAOS" -eq 1 ]]; then
  # Torn transport (ChaosProxy), SIGKILL-restart recovery, and the
  # HostileClient liveness matrix — all pinned to digest parity with
  # local execution and to every defensive drop being counted.
  ctest --preset "$PRESET" -L chaos
elif [[ "$BENCH" -eq 1 ]]; then
  # Throughput must stay within 3x of the committed snapshot and the
  # campaign digest must match it bit for bit.
  ctest --preset perf
elif [[ "$ANALYSIS" -eq 1 ]]; then
  # The dataflow tier: solver vs brute-force property tests, the dynamic
  # soundness differential (no retired instruction may contradict a
  # definite-assignment or liveness claim), and the meld-report golden.
  ctest --preset analysis
elif [[ "$ALL" -eq 1 ]]; then
  ctest --preset "$PRESET"
else
  ctest --preset "$PRESET" -L tier1
fi

# CI path extras (the default tier1 gate): the static checker must report
# zero error-severity diagnostics over every workload's selected
# annotations, and tidy runs when available.
if [[ "$PRESET" == ci && "$CRASH" -eq 0 && "$SERVE" -eq 0 && "$CHAOS" -eq 0 && "$BENCH" -eq 0 && "$ANALYSIS" -eq 0 ]]; then
  ./build-ci/tools/dmp_lint --all --profile-instrs=800000
  run_tidy
fi
