#!/usr/bin/env bash
# One-command verification gate: configure the warnings-as-errors preset,
# build everything, and run the test suite.  By default only the tier1
# label runs (fast unit/integration tests — the pre-commit gate); pass
# --all to also run the slow redundancy checks and the fuzz campaign,
# --crash to run only the fork-based crash-consistency matrix, and
# --sanitize to build and test under ASan+UBSan (the sanitize preset).
# Exits non-zero on the first failure, so CI and pre-commit hooks can call
# it directly.  See TESTING.md for the tier definitions.
set -euo pipefail

cd "$(dirname "$0")/.."

ALL=0
CRASH=0
PRESET=ci
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    --crash) CRASH=1 ;;
    --sanitize) PRESET=sanitize ;;
    -h|--help) echo "usage: $0 [--all] [--crash] [--sanitize]"; exit 0 ;;
    *) echo "usage: $0 [--all] [--crash] [--sanitize]" >&2; exit 2 ;;
  esac
done

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "$(nproc)"

if [[ "$CRASH" -eq 1 ]]; then
  ctest --preset "$PRESET" -L crash
elif [[ "$ALL" -eq 1 ]]; then
  ctest --preset "$PRESET"
else
  ctest --preset "$PRESET" -L tier1
fi
