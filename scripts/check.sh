#!/usr/bin/env bash
# One-command verification gate: configure the warnings-as-errors preset,
# build everything, and run the full test suite.  Exits non-zero on the
# first failure, so CI and pre-commit hooks can call it directly.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset ci
cmake --build --preset ci -j "$(nproc)"
ctest --preset ci
