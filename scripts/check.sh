#!/usr/bin/env bash
# One-command verification gate: configure the warnings-as-errors preset,
# build everything, and run the test suite.  By default only the tier1
# label runs (fast unit/integration tests — the pre-commit gate); pass
# --all to also run the slow redundancy checks and the fuzz campaign.
# Exits non-zero on the first failure, so CI and pre-commit hooks can call
# it directly.  See TESTING.md for the tier definitions.
set -euo pipefail

cd "$(dirname "$0")/.."

ALL=0
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    -h|--help) echo "usage: $0 [--all]"; exit 0 ;;
    *) echo "usage: $0 [--all]" >&2; exit 2 ;;
  esac
done

cmake --preset ci
cmake --build --preset ci -j "$(nproc)"

if [[ "$ALL" -eq 1 ]]; then
  ctest --preset ci
else
  ctest --preset ci -L tier1
fi
