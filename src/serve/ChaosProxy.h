//===- serve/ChaosProxy.h - Deterministic socket-chaos relay ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Unix-socket relay that sits between a serve client and the
/// daemon and injects transport hostility: chopped forwards (the peer sees
/// partial reads of every frame), delays, and mid-chunk connection cuts
/// (the peer sees a truncated frame then EOF).  In the spirit of
/// fault::Plan, every injection decision is a pure function of
/// (seed, site, op-index) — the same plan replays the same schedule, so a
/// chaos test that fails is a chaos test you can rerun.
///
/// Sites: each proxied connection contributes two sites (client->server
/// and server->client), numbered 2*conn and 2*conn+1 in accept order; the
/// op index counts forwarded chunks per site.  The proxy never rewrites
/// bytes — protocol corruption is the frame-fuzz tests' job; this is the
/// torn-transport instrument.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_CHAOSPROXY_H
#define DMP_SERVE_CHAOSPROXY_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace dmp::serve {

/// The deterministic chaos schedule.  Rates are probabilities in [0, 1]
/// evaluated per forwarded chunk from the (Seed, site, op) hash.
struct ChaosPlan {
  uint64_t Seed = 1;
  /// Chance a chunk is forwarded in tiny pieces instead of one write.
  double ChopRate = 0.0;
  /// Piece size bound when chopping (>= 1).
  unsigned ChopBytesMax = 3;
  /// Chance a chunk is delayed before forwarding.
  double DelayRate = 0.0;
  unsigned DelayMs = 1;
  /// Chance the connection is cut after forwarding only half the chunk —
  /// a mid-frame disconnect for both peers.
  double DropRate = 0.0;
  /// Total cuts across the proxy's lifetime; once spent, traffic flows
  /// (chopped/delayed but uncut), so a retrying client can finish.
  unsigned MaxDrops = 0;
};

/// Relay between ListenPath (where the client connects) and TargetPath
/// (the real daemon socket).  One background thread, any number of
/// concurrent proxied connections.
class ChaosProxy {
public:
  ChaosProxy(std::string ListenPath, std::string TargetPath, ChaosPlan Plan);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy &) = delete;
  ChaosProxy &operator=(const ChaosProxy &) = delete;

  /// Binds ListenPath and spawns the relay thread.
  Status start();
  /// Stops the relay, closes every proxied connection, joins the thread.
  /// Idempotent.
  void stop();

  /// The injection decision for op \p Op at \p Site under \p Plan against
  /// \p Rate: pure, exposed so tests can predict (and replay) schedules.
  static bool decide(const ChaosPlan &Plan, uint64_t Site, uint64_t Op,
                     double Rate);

  uint64_t drops() const { return Drops.load(std::memory_order_relaxed); }
  uint64_t chunksForwarded() const {
    return Chunks.load(std::memory_order_relaxed);
  }

private:
  void run();
  /// Forwards \p N bytes to \p Dst with the plan's injections applied.
  /// Returns false when the link must be cut (drop fired or write failed).
  bool forward(int Dst, const uint8_t *Data, size_t N, uint64_t Site,
               uint64_t &Op);

  std::string ListenPath;
  std::string TargetPath;
  ChaosPlan Plan;

  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  std::thread Relay;
  bool Running = false;

  std::atomic<uint64_t> Drops{0};
  std::atomic<uint64_t> Chunks{0};
};

} // namespace dmp::serve

#endif // DMP_SERVE_CHAOSPROXY_H
