//===- serve/Server.cpp - Campaign-service event loop ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serialize/ArtifactCache.h"
#include "serve/JobStore.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

void setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

void setCloexec(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFD, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

} // namespace

bool Server::Job::hasPending() const {
  for (const CellState &C : Cells)
    if (C.Phase == CellPhase::Pending)
      return true;
  return false;
}

bool Server::Job::finished() const {
  for (const CellState &C : Cells)
    if (C.Phase != CellPhase::Done)
      return false;
  return true;
}

JobState Server::Job::state() const {
  if (finished())
    return Cancelled ? JobState::Cancelled : JobState::Done;
  for (const CellState &C : Cells)
    if (C.Phase != CellPhase::Pending)
      return JobState::Running;
  return JobState::Queued;
}

Server::Server(ServerOptions Options, WorkerPool &Pool,
               const guard::CancelToken *Drain)
    : Opts(std::move(Options)), Pool(Pool),
      Drain(Drain ? Drain : &guard::processToken()) {
  WorkerIn.resize(Pool.size());
  WorkerBeat.resize(Pool.size());
  // The per-boot epoch: any nonzero value that never repeats across
  // restarts (or across two Servers in one test process) does the job —
  // clients only ever compare epochs for equality.
  serialize::Hasher H;
  H.updateU64(static_cast<uint64_t>(::getpid()));
  H.updateU64(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  H.updateU64(static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  H.updateU64(reinterpret_cast<uintptr_t>(this));
  const serialize::Digest D = H.finish();
  for (int I = 0; I < 8; ++I)
    Epoch |= uint64_t(D.Bytes[I]) << (8 * I);
  if (Epoch == 0)
    Epoch = 1;
}

Server::~Server() {
  for (auto &[Fd, C] : Conns)
    ::close(Fd);
  Conns.clear();
  if (ListenFd != -1) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
  if (StopPipe[0] != -1)
    ::close(StopPipe[0]);
  if (StopPipe[1] != -1)
    ::close(StopPipe[1]);
}

void Server::closeInheritedFdsInChild() const {
  // Runs in a freshly forked worker: drop every server-side fd the child
  // inherited so a client connection is never held open by a worker that
  // outlives the daemon.
  if (ListenFd != -1)
    ::close(ListenFd);
  if (StopPipe[0] != -1)
    ::close(StopPipe[0]);
  if (StopPipe[1] != -1)
    ::close(StopPipe[1]);
  for (const auto &[Fd, C] : Conns)
    ::close(Fd);
}

Status Server::listen() {
  if (Opts.SocketPath.empty())
    return Status::invariant("server socket path is empty", "serve::Server");
  ::signal(SIGPIPE, SIG_IGN);

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::invariant(
        "socket path too long: " + std::to_string(Opts.SocketPath.size()) +
            " bytes exceeds the AF_UNIX sun_path limit of " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " (" +
            Opts.SocketPath + ")",
        "serve::Server");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::transient(std::string("socket(): ") + std::strerror(errno),
                             "serve::Server");
  setCloexec(Fd);
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    const Status S = Status::transient(std::string("bind(") + Opts.SocketPath +
                                           "): " + std::strerror(errno),
                                       "serve::Server");
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, 64) != 0) {
    const Status S = Status::transient(
        std::string("listen(): ") + std::strerror(errno), "serve::Server");
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return S;
  }
  setNonBlocking(Fd);
  ListenFd = Fd;

  if (::pipe(StopPipe) != 0) {
    StopPipe[0] = StopPipe[1] = -1;
  } else {
    setNonBlocking(StopPipe[0]);
    setNonBlocking(StopPipe[1]);
    setCloexec(StopPipe[0]);
    setCloexec(StopPipe[1]);
  }

  Pool.setInChild([this] { closeInheritedFdsInChild(); });

  // Durability rides on the pool's cache dir; uncached pools run exactly
  // as before (in-memory jobs only).
  const WorkerPoolOptions &PO = Pool.options();
  if (Opts.DurableJobs && PO.UseCache && !PO.CacheDir.empty()) {
    StoreCache = std::make_shared<serialize::ArtifactCache>(PO.CacheDir);
    Store = std::make_unique<JobStore>(StoreCache);
    recoverJobs();
  }
  return Status();
}

void Server::requestStop() {
  if (StopPipe[1] != -1) {
    const uint8_t Byte = 1;
    [[maybe_unused]] ssize_t N = ::write(StopPipe[1], &Byte, 1);
  }
}

Server::Counters Server::counters() const {
  Counters C;
  C.ConnectionsAccepted = CtrConns.load(std::memory_order_relaxed);
  C.JobsAccepted = CtrJobsAccepted.load(std::memory_order_relaxed);
  C.JobsRejected = CtrJobsRejected.load(std::memory_order_relaxed);
  C.JobsDeduped = CtrDeduped.load(std::memory_order_relaxed);
  C.JobsRecovered = CtrRecovered.load(std::memory_order_relaxed);
  C.CellsDispatched = CtrDispatched.load(std::memory_order_relaxed);
  C.CellsCompleted = CtrCompleted.load(std::memory_order_relaxed);
  C.CellsFailed = CtrFailed.load(std::memory_order_relaxed);
  C.CellsRetried = CtrRetried.load(std::memory_order_relaxed);
  C.CellsResumed = CtrResumed.load(std::memory_order_relaxed);
  C.WorkerCrashes = CtrCrashes.load(std::memory_order_relaxed);
  C.ProtocolErrors = CtrProtocolErrors.load(std::memory_order_relaxed);
  C.Checkpoints = CtrCheckpoints.load(std::memory_order_relaxed);
  C.WorkersHung = CtrWorkersHung.load(std::memory_order_relaxed);
  C.Heartbeats = CtrHeartbeats.load(std::memory_order_relaxed);
  C.ReadTimeouts = CtrReadTimeouts.load(std::memory_order_relaxed);
  C.IdleDrops = CtrIdleDrops.load(std::memory_order_relaxed);
  C.SlowConsumerDrops = CtrSlowConsumerDrops.load(std::memory_order_relaxed);
  C.ConnsShed = CtrConnsShed.load(std::memory_order_relaxed);
  C.ConnsRefused = CtrConnsRefused.load(std::memory_order_relaxed);
  C.AcceptErrors = CtrAcceptErrors.load(std::memory_order_relaxed);
  return C;
}

void Server::log(const std::string &Line) const {
  if (!Opts.Quiet)
    std::fprintf(stderr, "dmp_served: %s\n", Line.c_str());
}

// --- Drain --------------------------------------------------------------

void Server::beginDrain(const char *Why) {
  if (Draining)
    return;
  Draining = true;
  log(std::string("draining (") + Why + ")");
  // Stop accepting: close and unlink the listen socket now so new clients
  // get ECONNREFUSED instead of a hang.
  if (ListenFd != -1) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
    ListenFd = -1;
  }
  // Shed every still-pending cell; in-flight cells finish.
  const Status Shed = Status::cancelled("server draining", "serve::Server");
  for (auto &[Id, J] : Jobs)
    cancelPendingCells(J, Shed);
  RR.clear();
  for (auto &[Id, J] : Jobs)
    J.InQueue = false;
}

bool Server::drainComplete() const {
  if (!Draining)
    return false;
  if (!Tickets.empty())
    return false;
  for (const auto &[Fd, C] : Conns)
    if (C.OutPos < C.Out.size())
      return false;
  return true;
}

// --- Jobs ---------------------------------------------------------------

Server::Job *Server::findJob(uint64_t Id) {
  auto It = Jobs.find(Id);
  return It == Jobs.end() ? nullptr : &It->second;
}

void Server::forgetJob(uint64_t Id) {
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return;
  auto Key = ActiveByKey.find(It->second.ReqKey.hex());
  if (Key != ActiveByKey.end() && Key->second == Id)
    ActiveByKey.erase(Key);
  Jobs.erase(It);
}

void Server::checkpointJob(Job &J) {
  if (!Store || !J.Durable)
    return;
  JobRecord Record;
  Record.Request.DeadlineSeconds = J.ReqDeadlineSeconds;
  Record.Request.Cells.reserve(J.Cells.size());
  Record.Outcomes.reserve(J.Cells.size());
  for (const CellState &C : J.Cells) {
    Record.Request.Cells.push_back(C.Spec);
    // Persist only deterministic-permanent outcomes: a successful result,
    // or a failure no retry can change (Invariant/NotFound/Corrupt).
    // Cancelled / Transient / ResourceExhausted cells restart from scratch
    // on resume — a drain-shed cell must run again after the restart, not
    // replay its shed status.
    const ErrorCode Code = C.Result.status().code();
    const bool Permanent =
        C.Phase == CellPhase::Done &&
        (C.Result.ok() || Code == ErrorCode::Invariant ||
         Code == ErrorCode::NotFound || Code == ErrorCode::Corrupt);
    if (Permanent)
      Record.Outcomes.emplace_back(C.Result);
    else
      Record.Outcomes.emplace_back();
  }
  if (Status S = Store->checkpoint(J.ReqKey, Record); !S.ok())
    log("checkpoint of job " + std::to_string(J.Id) + " failed: " +
        S.toString());
  else
    CtrCheckpoints.fetch_add(1, std::memory_order_relaxed);
}

void Server::recoverJobs() {
  if (!Store)
    return;
  for (const serialize::Digest &Key : Store->indexed()) {
    StatusOr<JobRecord> Record = Store->load(Key);
    if (!Record.ok() || Record->Acked) {
      // Gone or already consumed: nothing is owed under this key.  A
      // corrupt record is dropped the same way — resubmission heals it.
      if (Status S = Store->removeFromIndex(Key); !S.ok())
        log("index cleanup failed: " + S.toString());
      continue;
    }
    const uint64_t Id = NextJob++;
    Job &J = Jobs[Id];
    J.Id = Id;
    J.Seq = NextSeq++;
    J.ReqKey = Key;
    J.ReqDeadlineSeconds = Record->Request.DeadlineSeconds;
    J.Durable = true;
    J.Cells.resize(Record->Request.Cells.size());
    uint64_t Resumed = 0;
    for (size_t I = 0; I < J.Cells.size(); ++I) {
      J.Cells[I].Spec = std::move(Record->Request.Cells[I]);
      if (I < Record->Outcomes.size() && Record->Outcomes[I]) {
        J.Cells[I].Phase = CellPhase::Done;
        J.Cells[I].Result = std::move(*Record->Outcomes[I]);
        ++Resumed;
      }
    }
    if (J.ReqDeadlineSeconds > 0) {
      // The deadline budget restarts at recovery: wall-clock spent under a
      // dead daemon should not forfeit the job.
      J.HasDeadline = true;
      J.Deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(J.ReqDeadlineSeconds));
    }
    ActiveByKey[Key.hex()] = Id;
    CtrRecovered.fetch_add(1, std::memory_order_relaxed);
    CtrResumed.fetch_add(Resumed, std::memory_order_relaxed);
    enqueueRR(J);
    log("job " + std::to_string(Id) + " recovered from checkpoint (" +
        std::to_string(Resumed) + " of " + std::to_string(J.Cells.size()) +
        " cells already done)");
  }
}

uint64_t Server::activeJobs() const {
  uint64_t N = 0;
  for (const auto &[Id, J] : Jobs)
    if (!J.finished())
      ++N;
  return N;
}

uint64_t Server::pendingCells() const {
  uint64_t N = 0;
  for (const auto &[Id, J] : Jobs)
    for (const CellState &C : J.Cells)
      if (C.Phase != CellPhase::Done)
        ++N;
  return N;
}

uint32_t Server::retryAfterHintMs() const {
  if (Opts.RetryAfterMs == 0)
    return 0;
  // Scale the base hint with saturation depth so a client's backoff grows
  // as the backlog does; deterministic given the load, capped at 8x base.
  const uint64_t Limit = Opts.MaxActiveJobs ? Opts.MaxActiveJobs : 1;
  uint64_t Scale = 1 + (2 * activeJobs()) / Limit;
  if (Scale > 8)
    Scale = 8;
  return static_cast<uint32_t>(Opts.RetryAfterMs * Scale);
}

uint64_t Server::connsShedTotal() const {
  return CtrReadTimeouts.load(std::memory_order_relaxed) +
         CtrIdleDrops.load(std::memory_order_relaxed) +
         CtrSlowConsumerDrops.load(std::memory_order_relaxed) +
         CtrConnsShed.load(std::memory_order_relaxed) +
         CtrConnsRefused.load(std::memory_order_relaxed);
}

void Server::enqueueRR(Job &J, bool Front) {
  if (J.InQueue || Draining || !J.hasPending())
    return;
  if (Front)
    RR.push_front(J.Id);
  else
    RR.push_back(J.Id);
  J.InQueue = true;
}

Server::Job *Server::nextRRJob() {
  while (!RR.empty()) {
    const uint64_t Id = RR.front();
    RR.pop_front();
    Job *J = findJob(Id);
    if (!J) // acked-and-erased or GC'd while queued
      continue;
    J->InQueue = false;
    if (J->hasPending())
      return J;
  }
  return nullptr;
}

void Server::cancelPendingCells(Job &J, const Status &Shed) {
  for (CellState &C : J.Cells) {
    if (C.Phase != CellPhase::Pending)
      continue;
    C.Phase = CellPhase::Done;
    C.Result = Shed;
    CtrFailed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::expireDeadlines() {
  const auto Now = std::chrono::steady_clock::now();
  for (auto &[Id, J] : Jobs) {
    if (!J.HasDeadline || J.finished() || Now < J.Deadline)
      continue;
    J.HasDeadline = false;
    cancelPendingCells(
        J, Status::resourceExhausted("job deadline exceeded", "serve::Server"));
    log("job " + std::to_string(Id) + " deadline expired");
  }
}

void Server::gcFinishedJobs() {
  // Finished jobs wait for FETCH + ACK (which erases them); cap the
  // backlog of never-acked jobs so an absent client cannot grow the daemon
  // forever.  Fetched-but-unacked jobs are the cheapest victims (the
  // client already has the results); among equals, oldest first.
  const size_t Cap = static_cast<size_t>(Opts.MaxActiveJobs) * 4;
  while (Jobs.size() > Cap) {
    uint64_t VictimId = 0, VictimSeq = ~0ull;
    bool VictimFetched = false;
    for (const auto &[Id, J] : Jobs) {
      if (!J.finished())
        continue;
      const bool Better = (J.Fetched && !VictimFetched) ||
                          (J.Fetched == VictimFetched && J.Seq < VictimSeq);
      if (VictimSeq == ~0ull || Better) {
        VictimSeq = J.Seq;
        VictimId = Id;
        VictimFetched = J.Fetched;
      }
    }
    if (VictimSeq == ~0ull)
      return;
    // Eviction gives up on this client: the key leaves the recovery index
    // (a restart won't resurrect the job), but the record blob stays so an
    // identical resubmit still starts from the completed cells.
    if (Job *J = findJob(VictimId); J && J->Durable && Store)
      if (Status S = Store->removeFromIndex(J->ReqKey); !S.ok())
        log("index cleanup failed: " + S.toString());
    forgetJob(VictimId);
    log("job " + std::to_string(VictimId) + " evicted unacked");
  }
}

int Server::pollTimeoutMs() const {
  if (Draining)
    return 100; // re-check drain completion promptly
  if (Pool.inProcess() && !RR.empty())
    return 0; // pending inline work: service fds, then run the next cell
  long Best = -1;
  const auto Now = std::chrono::steady_clock::now();
  const auto Consider = [&](std::chrono::steady_clock::time_point Deadline) {
    const long Ms = static_cast<long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
    const long Clamped = Ms < 0 ? 0 : Ms + 1;
    if (Best < 0 || Clamped < Best)
      Best = Clamped;
  };
  for (const auto &[Id, J] : Jobs) {
    if (!J.HasDeadline || J.finished())
      continue;
    Consider(J.Deadline);
  }
  // The liveness budgets are deadlines too: wake in time to trip them even
  // when no fd ever becomes readable (the definition of a hang).
  if (Opts.CellWallMs && !Pool.inProcess())
    for (unsigned W = 0; W < Pool.size(); ++W)
      if (Pool.fd(W) != -1 && Pool.busy(W))
        Consider(WorkerBeat[W] + std::chrono::milliseconds(Opts.CellWallMs));
  for (const auto &[Fd, C] : Conns) {
    if (Opts.ReadDeadlineMs && C.MidRead)
      Consider(C.ReadStart + std::chrono::milliseconds(Opts.ReadDeadlineMs));
    if (Opts.IdleTimeoutMs)
      Consider(C.LastActivity +
               std::chrono::milliseconds(Opts.IdleTimeoutMs));
  }
  if (Best > 60'000)
    Best = 60'000; // bound the sleep so external token trips are noticed
  if (Best < 0)
    Best = 1000;
  return static_cast<int>(Best);
}

// --- Outcome recording and dispatch -------------------------------------

void Server::recordOutcome(Job &J, size_t CellIdx,
                           StatusOr<harness::CellResult> Outcome) {
  CellState &C = J.Cells[CellIdx];
  C.Phase = CellPhase::Done;
  if (Outcome.ok())
    CtrCompleted.fetch_add(1, std::memory_order_relaxed);
  else
    CtrFailed.fetch_add(1, std::memory_order_relaxed);
  C.Result = std::move(Outcome);
  // Every completed cell advances the durable checkpoint, so a SIGKILL at
  // any instant loses at most the cell in flight.
  checkpointJob(J);
}

void Server::dispatch() {
  if (Draining)
    return;

  if (Pool.inProcess()) {
    // Workers=0: run exactly ONE cell inline per dispatch() call, so the
    // event loop regains control between cells — cancellation, deadlines,
    // new connections, and drain are all serviced at cell granularity
    // (pollTimeoutMs() returns 0 while the rotation queue is non-empty).
    // The mode exists for correctness coverage (TSan) and tiny
    // deployments, not throughput.
    if (!InProcCacheReady) {
      InProcCacheReady = true;
      if (StoreCache) {
        // Share the job store's cache handle: one advisory-lock holder,
        // one recovery sweep, same directory either way.
        InProcCache = StoreCache;
      } else {
        const WorkerPoolOptions &PO = Pool.options();
        if (PO.UseCache && !PO.CacheDir.empty())
          InProcCache =
              std::make_shared<serialize::ArtifactCache>(PO.CacheDir);
      }
    }
    if (Job *J = nextRRJob()) {
      size_t Idx = 0;
      while (Idx < J->Cells.size() &&
             J->Cells[Idx].Phase != CellPhase::Pending)
        ++Idx;
      CellState &C = J->Cells[Idx];
      C.Phase = CellPhase::Running;
      ++C.Attempts;
      CtrDispatched.fetch_add(1, std::memory_order_relaxed);
      recordOutcome(*J, Idx, harness::runCellSpec(C.Spec, InProcCache));
      enqueueRR(*J);
    }
    return;
  }

  while (true) {
    const int W = Pool.idleWorker();
    if (W < 0)
      return;
    Job *J = nextRRJob();
    if (!J)
      return;
    size_t Idx = 0;
    while (Idx < J->Cells.size() && J->Cells[Idx].Phase != CellPhase::Pending)
      ++Idx;
    CellState &C = J->Cells[Idx];
    const uint64_t Ticket = NextTicket++;
    C.Phase = CellPhase::Running;
    ++C.Attempts;
    Tickets[Ticket] = {J->Id, Idx};
    const Status S = Pool.dispatch(static_cast<unsigned>(W), Ticket,
                                   encodeRunCell(Ticket, C.Spec));
    if (!S.ok()) {
      // The worker died under the write: the RunCell never reached it, so
      // the pool holds no ticket for this cell and handleWorkerCrash()
      // cannot undo the bookkeeping above — do it here, or the cell is
      // stuck Running forever and drain never completes.
      Tickets.erase(Ticket);
      if (C.Attempts < Opts.CellAttempts) {
        C.Phase = CellPhase::Pending;
        CtrRetried.fetch_add(1, std::memory_order_relaxed);
      } else {
        recordOutcome(*J, Idx,
                      Status::transient("worker crashed on every attempt (" +
                                            std::to_string(C.Attempts) +
                                            " of " +
                                            std::to_string(Opts.CellAttempts) +
                                            ")",
                                        "serve::Server"));
      }
      handleWorkerCrash(static_cast<unsigned>(W));
      enqueueRR(*J, /*Front=*/true);
      continue;
    }
    CtrDispatched.fetch_add(1, std::memory_order_relaxed);
    // The silence clock starts at dispatch; the worker's receipt beat and
    // every simulation-loop beat refresh it.
    WorkerBeat[static_cast<unsigned>(W)] = std::chrono::steady_clock::now();
    enqueueRR(*J);
  }
}

// --- Worker plane -------------------------------------------------------

void Server::readWorker(unsigned W) {
  const int Fd = Pool.fd(W);
  if (Fd == -1)
    return;
  uint8_t Buf[16384];
  bool Died = false;
  while (true) {
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      WorkerIn[W].feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      Died = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    Died = true;
    break;
  }

  Frame F;
  Status Err;
  while (true) {
    const FrameDecoder::Outcome O = WorkerIn[W].next(F, Err);
    if (O == FrameDecoder::Outcome::NeedMore)
      break;
    if (O == FrameDecoder::Outcome::Got &&
        F.Type == MsgType::CellProgress) {
      uint64_t Ticket = 0;
      if (!decodeCellProgress(F.Payload, Ticket).ok()) {
        handleWorkerCrash(W);
        return;
      }
      // A heartbeat resets the watchdog's silence clock for this worker.
      // Beats for a retired ticket (job cancelled while the cell ran) are
      // harmless: the worker is demonstrably alive either way.
      CtrHeartbeats.fetch_add(1, std::memory_order_relaxed);
      WorkerBeat[W] = std::chrono::steady_clock::now();
      continue;
    }
    if (O != FrameDecoder::Outcome::Got || !onCellDone(W, F)) {
      // A worker speaking garbage is as dead as a crashed one.
      handleWorkerCrash(W);
      return;
    }
  }
  // Reap the corpse only after draining its buffered frames: a CellDone the
  // worker flushed just before dying is a finished result, and recomputing
  // it would burn one of the cell's bounded attempts for nothing.
  if (Died)
    handleWorkerCrash(W);
}

bool Server::onCellDone(unsigned W, const Frame &F) {
  uint64_t Ticket = 0;
  StatusOr<harness::CellResult> Outcome;
  if (F.Type != MsgType::CellDone ||
      !decodeCellDone(F.Payload, Ticket, Outcome).ok())
    return false;
  Pool.complete(W);
  auto It = Tickets.find(Ticket);
  if (It == Tickets.end())
    return true; // job was cancelled+fetched or GC'd while the cell ran
  const auto [JobId, CellIdx] = It->second;
  Tickets.erase(It);
  if (Job *J = findJob(JobId))
    if (J->Cells[CellIdx].Phase == CellPhase::Running)
      recordOutcome(*J, CellIdx, std::move(Outcome));
  return true;
}

void Server::handleWorkerCrash(unsigned W) {
  const WorkerPool::CrashReport R = Pool.onWorkerDeath(W, !Draining);
  WorkerIn[W] = FrameDecoder();
  CtrCrashes.fetch_add(1, std::memory_order_relaxed);
  log("worker " + std::to_string(W) + " died" +
      (R.HadTicket ? " holding ticket " + std::to_string(R.Ticket) : ""));
  if (!R.HadTicket)
    return;
  auto It = Tickets.find(R.Ticket);
  if (It == Tickets.end())
    return;
  const auto [JobId, CellIdx] = It->second;
  Tickets.erase(It);
  Job *J = findJob(JobId);
  if (!J || J->Cells[CellIdx].Phase != CellPhase::Running)
    return;
  CellState &C = J->Cells[CellIdx];
  if (Draining) {
    recordOutcome(*J, CellIdx,
                  Status::cancelled("server draining", "serve::Server"));
    return;
  }
  if (C.Attempts < Opts.CellAttempts) {
    // Deterministic cells make the retried result bit-identical, so a
    // crash is invisible in the job's outcome.
    C.Phase = CellPhase::Pending;
    CtrRetried.fetch_add(1, std::memory_order_relaxed);
    enqueueRR(*J, /*Front=*/true);
    return;
  }
  recordOutcome(*J, CellIdx,
                Status::transient("worker crashed on every attempt (" +
                                      std::to_string(C.Attempts) + " of " +
                                      std::to_string(Opts.CellAttempts) + ")",
                                  "serve::Server"));
}

void Server::checkWorkerLiveness() {
  if (Opts.CellWallMs == 0 || Pool.inProcess())
    return;
  const auto Now = std::chrono::steady_clock::now();
  const auto Budget = std::chrono::milliseconds(Opts.CellWallMs);
  for (unsigned W = 0; W < Pool.size(); ++W) {
    if (Pool.fd(W) == -1 || !Pool.busy(W))
      continue;
    if (Now - WorkerBeat[W] <= Budget)
      continue;
    // Silent past the wall budget: only SIGKILL can reclaim a livelocked
    // worker.  The crash path reaps, respawns, and re-runs the ticket —
    // cells are deterministic, so the recovered job is digest-identical.
    CtrWorkersHung.fetch_add(1, std::memory_order_relaxed);
    log("worker " + std::to_string(W) + " hung: no heartbeat in " +
        std::to_string(Opts.CellWallMs) + " ms, killing it");
    Pool.killWorker(W);
    handleWorkerCrash(W);
  }
}

// --- Client plane -------------------------------------------------------

void Server::acceptClients() {
  while (ListenFd != -1) {
    const int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return; // backlog drained: back to poll
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion is persistent, not transient: returning
        // silently would spin the loop on a forever-readable listen fd.
        // Count it, shed an idle connection to free a descriptor, and
        // retry; with nothing sheddable, back off to poll.
        CtrAcceptErrors.fetch_add(1, std::memory_order_relaxed);
        log(std::string("accept(): ") + std::strerror(errno));
        if (!shedIdleConn("fd pressure"))
          return;
        continue;
      }
      CtrAcceptErrors.fetch_add(1, std::memory_order_relaxed);
      log(std::string("accept(): ") + std::strerror(errno));
      return;
    }
    if (Opts.MaxConns && Conns.size() >= Opts.MaxConns &&
        !shedIdleConn("accept cap")) {
      // Over the cap with every connection mid-service: refuse the
      // newcomer rather than evict a peer we owe replies to.
      CtrConnsRefused.fetch_add(1, std::memory_order_relaxed);
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    setCloexec(Fd);
    Conn C;
    C.Fd = Fd;
    C.LastActivity = std::chrono::steady_clock::now();
    Conns.emplace(Fd, std::move(C));
    CtrConns.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::shedIdleConn(const char *Why) {
  // Victim choice: any connection with no queued output (nothing is owed
  // to it), oldest inbound activity first.  A mid-frame (slowloris) peer
  // is deliberately a candidate — sending one byte must not buy
  // protection from shedding.
  int Victim = -1;
  std::chrono::steady_clock::time_point Oldest;
  for (const auto &[Fd, C] : Conns) {
    if (C.OutPos < C.Out.size())
      continue;
    if (Victim == -1 || C.LastActivity < Oldest) {
      Victim = Fd;
      Oldest = C.LastActivity;
    }
  }
  if (Victim == -1)
    return false;
  CtrConnsShed.fetch_add(1, std::memory_order_relaxed);
  log(std::string("shedding oldest idle connection (") + Why + ")");
  dropConn(Victim);
  return true;
}

void Server::queueFrame(Conn &C, MsgType Type,
                        const std::vector<uint8_t> &Payload) {
  if (C.CloseAfterFlush)
    return; // already condemned: don't grow the corpse
  const std::vector<uint8_t> Bytes = encodeFrame(Type, Payload);
  if (Opts.MaxConnOutBytes &&
      (C.Out.size() - C.OutPos) + Bytes.size() > Opts.MaxConnOutBytes) {
    // Slow consumer: it keeps sending requests but never reads replies.
    // Disconnect instead of buffering unboundedly — the results it was
    // owed stay fetchable on a fresh connection.
    CtrSlowConsumerDrops.fetch_add(1, std::memory_order_relaxed);
    log("disconnecting slow consumer (outbound budget exceeded)");
    C.Out.clear();
    C.OutPos = 0;
    C.CloseAfterFlush = true;
    return;
  }
  C.Out.insert(C.Out.end(), Bytes.begin(), Bytes.end());
}

void Server::sendError(Conn &C, const Status &S, uint32_t RetryAfterMs) {
  queueFrame(C, MsgType::Error, encodeStatusPayload(S, RetryAfterMs));
}

void Server::flushConn(Conn &C) {
  while (C.OutPos < C.Out.size()) {
    const ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos,
                             C.Out.size() - C.OutPos,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      // Outbound progress proves the peer is consuming: count it as
      // activity so a slowly-draining bulk reply isn't idle-dropped.
      C.LastActivity = std::chrono::steady_clock::now();
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    if (N < 0 && errno == EINTR)
      continue;
    // Peer is gone; drop everything buffered and let the poll loop reap the
    // connection on its next readable/error event.
    C.Out.clear();
    C.OutPos = 0;
    C.CloseAfterFlush = true;
    return;
  }
  C.Out.clear();
  C.OutPos = 0;
}

void Server::dropConn(int Fd) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  ::close(Fd);
  Conns.erase(It);
}

void Server::expireConns() {
  if (Conns.empty())
    return;
  const auto Now = std::chrono::steady_clock::now();
  std::vector<int> Doomed;
  for (auto &[Fd, C] : Conns) {
    if (C.CloseAfterFlush && C.OutPos >= C.Out.size()) {
      // A condemned connection with nothing left to flush may never see
      // another poll event; reap it here.
      Doomed.push_back(Fd);
      continue;
    }
    if (Opts.ReadDeadlineMs && C.MidRead &&
        Now - C.ReadStart > std::chrono::milliseconds(Opts.ReadDeadlineMs)) {
      // Anti-slowloris: a frame must finish arriving within the read
      // deadline of its first byte.
      CtrReadTimeouts.fetch_add(1, std::memory_order_relaxed);
      log("dropping connection: partial frame exceeded the read deadline");
      Doomed.push_back(Fd);
      continue;
    }
    if (Opts.IdleTimeoutMs && !C.MidRead &&
        Now - C.LastActivity >
            std::chrono::milliseconds(Opts.IdleTimeoutMs)) {
      CtrIdleDrops.fetch_add(1, std::memory_order_relaxed);
      log("dropping idle connection");
      Doomed.push_back(Fd);
    }
  }
  for (const int Fd : Doomed)
    dropConn(Fd);
}

void Server::readConn(int Fd) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  Conn &C = It->second;

  uint8_t Buf[16384];
  bool PeerClosed = false;
  bool ReadAny = false;
  while (true) {
    const ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      C.In.feed(Buf, static_cast<size_t>(N));
      ReadAny = true;
      continue;
    }
    if (N == 0) {
      PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    PeerClosed = true;
    break;
  }
  if (ReadAny)
    C.LastActivity = std::chrono::steady_clock::now();

  Frame F;
  Status Err;
  bool Closing = false;
  while (!Closing) {
    switch (C.In.next(F, Err)) {
    case FrameDecoder::Outcome::NeedMore:
      Closing = true;
      break;
    case FrameDecoder::Outcome::Got:
      handleFrame(C, F);
      // handleFrame may set CloseAfterFlush (fatal protocol error raced in
      // behind a valid frame can't, but SHUTDOWN keeps the conn usable).
      break;
    case FrameDecoder::Outcome::Skew:
      // Well-framed, wrong version or unknown type: report and keep going —
      // the stream is still in sync.
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, Err);
      break;
    case FrameDecoder::Outcome::Fatal:
      // Desynchronized stream: last words, then close this connection.
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, Err);
      C.CloseAfterFlush = true;
      Closing = true;
      break;
    }
  }

  // The anti-slowloris clock: starts when a partial frame begins
  // buffering, clears the moment the stream is back at a frame boundary.
  if (C.In.midFrame()) {
    if (!C.MidRead) {
      C.MidRead = true;
      C.ReadStart = std::chrono::steady_clock::now();
    }
  } else {
    C.MidRead = false;
  }

  flushConn(C);
  if (C.CloseAfterFlush && C.OutPos >= C.Out.size()) {
    dropConn(Fd);
    return;
  }
  if (PeerClosed) {
    // EOF mid-frame is a truncated frame; either way the peer is gone and
    // nothing more can be delivered.
    dropConn(Fd);
  }
}

void Server::handleFrame(Conn &C, const Frame &F) {
  switch (F.Type) {
  case MsgType::Ping: {
    // The health reply: the epoch lets a reconnecting client distinguish
    // a connection blip (same epoch, its job ids are still live) from a
    // daemon restart (new epoch, resubmit through the idempotency key).
    // The load snapshot behind it is the minimal saturation probe — how
    // busy, and how much the liveness budgets have had to shed.
    PongLoad Load;
    Load.JobsActive = activeJobs();
    Load.CellsRunning = Tickets.size();
    Load.JobsShed = CtrJobsRejected.load(std::memory_order_relaxed);
    Load.ConnsShed = connsShedTotal();
    queueFrame(C, MsgType::Pong, encodePong(Epoch, Load));
    return;
  }

  case MsgType::Submit: {
    if (Draining) {
      sendError(C, Status::cancelled("server is draining", "serve::Server"));
      return;
    }
    SubmitRequest Req;
    if (Status S = decodeSubmit(F.Payload, Req); !S.ok()) {
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, S);
      return;
    }
    // Idempotent resubmit: a byte-identical request dedups onto the live
    // job — same id, no second execution — before any admission check, so
    // a client retrying through a restart can never be turned away from
    // work the server already owns.
    const serialize::Digest Key = requestKey(Req);
    if (auto Dup = ActiveByKey.find(Key.hex()); Dup != ActiveByKey.end()) {
      if (Job *Existing = findJob(Dup->second)) {
        CtrDeduped.fetch_add(1, std::memory_order_relaxed);
        queueFrame(C, MsgType::SubmitOk,
                   encodeSubmitOk(Existing->Id,
                                  static_cast<uint32_t>(
                                      Existing->Cells.size())));
        log("job " + std::to_string(Existing->Id) +
            " deduped an identical submit");
        return;
      }
      ActiveByKey.erase(Dup); // stale entry; fall through to a fresh job
    }
    if (Req.Cells.size() > Opts.MaxCellsPerJob) {
      CtrJobsRejected.fetch_add(1, std::memory_order_relaxed);
      sendError(C, Status::resourceExhausted(
                       "job has " + std::to_string(Req.Cells.size()) +
                           " cells; per-job limit is " +
                           std::to_string(Opts.MaxCellsPerJob),
                       "serve::Server"));
      return;
    }
    // Transient saturation sheds carry the brownout retry-after hint: the
    // condition clears by itself as cells finish, so a patient client
    // should come back rather than give up (the per-job cell limit above
    // is a misconfiguration and deliberately carries no hint).
    if (activeJobs() >= Opts.MaxActiveJobs) {
      CtrJobsRejected.fetch_add(1, std::memory_order_relaxed);
      sendError(C,
                Status::resourceExhausted(
                    "admission queue full: " +
                        std::to_string(Opts.MaxActiveJobs) +
                        " jobs already active",
                    "serve::Server"),
                retryAfterHintMs());
      return;
    }
    if (Opts.MaxQueuedCells &&
        pendingCells() + Req.Cells.size() > Opts.MaxQueuedCells) {
      CtrJobsRejected.fetch_add(1, std::memory_order_relaxed);
      sendError(C,
                Status::resourceExhausted(
                    "server cell queue full: " +
                        std::to_string(pendingCells()) + " cells pending, " +
                        "budget is " + std::to_string(Opts.MaxQueuedCells),
                    "serve::Server"),
                retryAfterHintMs());
      return;
    }
    const uint64_t Id = NextJob++;
    Job &J = Jobs[Id];
    J.Id = Id;
    J.Seq = NextSeq++;
    J.ReqKey = Key;
    J.ReqDeadlineSeconds = Req.DeadlineSeconds;
    J.Durable = Store != nullptr;
    J.Cells.resize(Req.Cells.size());
    for (size_t I = 0; I < Req.Cells.size(); ++I)
      J.Cells[I].Spec = std::move(Req.Cells[I]);
    uint64_t Resumed = 0;
    if (J.Durable) {
      // A record under this key from a previous life (the job was evicted
      // unacked, or the daemon died after finishing it) seeds the new job
      // with its completed cells instead of re-executing them.
      if (StatusOr<JobRecord> Old = Store->load(Key);
          Old.ok() && !Old->Acked &&
          Old->Outcomes.size() == J.Cells.size()) {
        for (size_t I = 0; I < J.Cells.size(); ++I) {
          if (!Old->Outcomes[I])
            continue;
          J.Cells[I].Phase = CellPhase::Done;
          J.Cells[I].Result = std::move(*Old->Outcomes[I]);
          ++Resumed;
        }
      }
    }
    if (Req.DeadlineSeconds > 0) {
      J.HasDeadline = true;
      J.Deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(Req.DeadlineSeconds));
    }
    ActiveByKey[Key.hex()] = Id;
    if (J.Durable && Store) {
      if (Status S = Store->addToIndex(Key); !S.ok())
        log("index update failed: " + S.toString());
      checkpointJob(J);
    }
    CtrJobsAccepted.fetch_add(1, std::memory_order_relaxed);
    CtrResumed.fetch_add(Resumed, std::memory_order_relaxed);
    enqueueRR(J);
    queueFrame(C, MsgType::SubmitOk,
               encodeSubmitOk(Id, static_cast<uint32_t>(J.Cells.size())));
    log("job " + std::to_string(Id) + " accepted (" +
        std::to_string(J.Cells.size()) + " cells" +
        (Resumed ? ", " + std::to_string(Resumed) + " resumed" : "") + ")");
    return;
  }

  case MsgType::StatusReq: {
    uint64_t Id = 0;
    if (Status S = decodeJobId(F.Payload, Id); !S.ok()) {
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, S);
      return;
    }
    Job *J = findJob(Id);
    if (!J) {
      sendError(C, Status::notFound("no such job: " + std::to_string(Id),
                                    "serve::Server"));
      return;
    }
    JobStatusReply Reply;
    Reply.Job = Id;
    Reply.State = J->state();
    Reply.Total = static_cast<uint32_t>(J->Cells.size());
    for (const CellState &Cell : J->Cells)
      if (Cell.Phase == CellPhase::Done) {
        if (Cell.Result.ok())
          ++Reply.Done;
        else
          ++Reply.Failed;
      }
    queueFrame(C, MsgType::StatusReply, encodeStatusReply(Reply));
    return;
  }

  case MsgType::FetchReq: {
    uint64_t Id = 0;
    if (Status S = decodeJobId(F.Payload, Id); !S.ok()) {
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, S);
      return;
    }
    Job *J = findJob(Id);
    if (!J) {
      sendError(C, Status::notFound("no such job: " + std::to_string(Id),
                                    "serve::Server"));
      return;
    }
    if (!J->finished()) {
      sendError(C, Status::transient("job " + std::to_string(Id) +
                                         " is still " +
                                         jobStateName(J->state()),
                                     "serve::Server"));
      return;
    }
    // Idempotent fetch: the reply is built from a *copy* of the results
    // and the job stays until an ACK (or GC), so a client that dies
    // between fetching and reading can simply fetch again.
    FetchReplyData Reply;
    Reply.Job = Id;
    Reply.Cells.reserve(J->Cells.size());
    for (const CellState &Cell : J->Cells)
      Reply.Cells.push_back(Cell.Result);
    J->Fetched = true;
    queueFrame(C, MsgType::FetchReply, encodeFetchReply(Reply));
    return;
  }

  case MsgType::AckReq: {
    uint64_t Id = 0;
    if (Status S = decodeJobId(F.Payload, Id); !S.ok()) {
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, S);
      return;
    }
    if (Job *J = findJob(Id)) {
      if (!J->finished()) {
        sendError(C, Status::invariant("job " + std::to_string(Id) +
                                           " is still " +
                                           jobStateName(J->state()) +
                                           "; ack after fetch",
                                       "serve::Server"));
        return;
      }
      if (J->Durable && Store)
        if (Status S = Store->markAcked(J->ReqKey); !S.ok())
          log("ack persist failed: " + S.toString());
      forgetJob(Id);
      log("job " + std::to_string(Id) + " acked");
    }
    // An unknown id still gets AckOk: acks are idempotent, and the job may
    // simply predate a restart the client is cleaning up after.
    queueFrame(C, MsgType::AckOk, encodeJobId(Id));
    return;
  }

  case MsgType::CancelReq: {
    uint64_t Id = 0;
    if (Status S = decodeJobId(F.Payload, Id); !S.ok()) {
      CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      sendError(C, S);
      return;
    }
    Job *J = findJob(Id);
    if (!J) {
      sendError(C, Status::notFound("no such job: " + std::to_string(Id),
                                    "serve::Server"));
      return;
    }
    if (!J->finished()) {
      J->Cancelled = true;
      cancelPendingCells(
          *J, Status::cancelled("job cancelled by client", "serve::Server"));
      log("job " + std::to_string(Id) + " cancelled");
    }
    queueFrame(C, MsgType::CancelOk, encodeJobId(Id));
    return;
  }

  case MsgType::Shutdown:
    queueFrame(C, MsgType::ShutdownOk, {});
    beginDrain("shutdown frame");
    return;

  default:
    // A well-framed message whose type makes no sense from a client
    // (server-plane replies, worker-plane traffic): reject, keep the
    // connection — the stream is in sync.
    CtrProtocolErrors.fetch_add(1, std::memory_order_relaxed);
    sendError(C, Status::corrupt("unexpected message type " +
                                     std::to_string(static_cast<unsigned>(
                                         F.Type)) +
                                     " on client connection",
                                 "serve::Server"));
    return;
  }
}

// --- Event loop ---------------------------------------------------------

Status Server::run() {
  if (ListenFd == -1 && !Draining)
    return Status::invariant("run() before listen()", "serve::Server");
  log("serving on " + Opts.SocketPath + " with " +
      std::to_string(Pool.size()) + " workers");

  // Parallel arrays: Polls[I] watches the fd described by Kinds[I]/Ids[I].
  enum class FdKind : uint8_t { Listen, Stop, Wakeup, Worker, Client };
  std::vector<pollfd> Polls;
  std::vector<FdKind> Kinds;
  std::vector<int> Ids; // worker index or conn fd

  while (true) {
    if (Drain->cancelled())
      beginDrain("cancel token");
    if (drainComplete())
      break;

    Polls.clear();
    Kinds.clear();
    Ids.clear();
    if (ListenFd != -1) {
      Polls.push_back({ListenFd, POLLIN, 0});
      Kinds.push_back(FdKind::Listen);
      Ids.push_back(-1);
    }
    if (StopPipe[0] != -1) {
      Polls.push_back({StopPipe[0], POLLIN, 0});
      Kinds.push_back(FdKind::Stop);
      Ids.push_back(-1);
    }
    if (const int WFd = guard::wakeupFd(); WFd != -1) {
      Polls.push_back({WFd, POLLIN, 0});
      Kinds.push_back(FdKind::Wakeup);
      Ids.push_back(-1);
    }
    for (unsigned W = 0; W < Pool.size(); ++W) {
      if (Pool.fd(W) == -1)
        continue;
      Polls.push_back({Pool.fd(W), POLLIN, 0});
      Kinds.push_back(FdKind::Worker);
      Ids.push_back(static_cast<int>(W));
    }
    for (auto &[Fd, C] : Conns) {
      short Events = POLLIN;
      if (C.OutPos < C.Out.size())
        Events |= POLLOUT;
      Polls.push_back({Fd, Events, 0});
      Kinds.push_back(FdKind::Client);
      Ids.push_back(Fd);
    }

    const int N = ::poll(Polls.data(), Polls.size(), pollTimeoutMs());
    if (N < 0 && errno != EINTR)
      return Status::transient(std::string("poll(): ") + std::strerror(errno),
                               "serve::Server");

    for (size_t I = 0; I < Polls.size() && N > 0; ++I) {
      const short Re = Polls[I].revents;
      if (Re == 0)
        continue;
      switch (Kinds[I]) {
      case FdKind::Listen:
        if (Re & POLLIN)
          acceptClients();
        break;
      case FdKind::Stop: {
        uint8_t Scratch[64];
        while (::read(StopPipe[0], Scratch, sizeof(Scratch)) > 0) {
        }
        beginDrain("requestStop");
        break;
      }
      case FdKind::Wakeup:
        // The signal handler wrote to the self-pipe; the cancel-token check
        // at the top of the loop does the actual drain.  Don't drain the
        // pipe: guard owns it.
        break;
      case FdKind::Worker:
        if (Re & (POLLIN | POLLHUP | POLLERR))
          readWorker(static_cast<unsigned>(Ids[I]));
        break;
      case FdKind::Client: {
        const int Fd = Ids[I];
        if (Re & (POLLERR | POLLNVAL)) {
          dropConn(Fd);
          break;
        }
        if (Re & POLLOUT)
          if (auto It = Conns.find(Fd); It != Conns.end()) {
            flushConn(It->second);
            if (It->second.CloseAfterFlush &&
                It->second.OutPos >= It->second.Out.size()) {
              dropConn(Fd);
              break;
            }
          }
        if (Re & (POLLIN | POLLHUP))
          readConn(Fd);
        break;
      }
      }
    }

    expireDeadlines();
    expireConns();
    checkWorkerLiveness();
    dispatch();
    gcFinishedJobs();
  }

  // Drained: close every connection (all out-buffers are empty by the
  // drainComplete() condition).
  for (auto &[Fd, C] : Conns)
    ::close(Fd);
  Conns.clear();
  log("drain complete");
  return Status();
}
