//===- serve/Client.h - Campaign-service client library ---------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of serve::Protocol: a blocking, one-request-at-a-time
/// connection to a dmp_served daemon.  `dmpc --remote` is a thin wrapper
/// around this class; the protocol tests use it directly (and use fd() to
/// inject raw malformed bytes around the typed API).
///
/// Every RPC is a roundTrip(): write one frame, read one frame, and decode
/// a server Error frame back into the dmp::Status it carries — so a
/// rejected SUBMIT surfaces as the same ResourceExhausted/Corrupt taxonomy
/// the rest of the stack speaks.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_CLIENT_H
#define DMP_SERVE_CLIENT_H

#include "serve/Protocol.h"

namespace dmp::serve {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;

  /// Connects to the daemon's Unix socket.  Transient on refusal (daemon
  /// not up, socket stale).
  Status connect(const std::string &SocketPath);
  void close();
  bool connected() const { return Fd != -1; }

  /// Raw socket fd, for tests that write malformed bytes directly.
  int fd() const { return Fd; }

  /// One request/reply exchange.  A server Error frame is decoded into its
  /// carried Status; an unexpected reply type is Corrupt.
  StatusOr<Frame> roundTrip(MsgType Type,
                            const std::vector<uint8_t> &Payload);

  Status ping();
  /// Returns the accepted job id.
  StatusOr<uint64_t> submit(const SubmitRequest &Req);
  StatusOr<JobStatusReply> status(uint64_t Job);
  /// Fetches a finished job's per-cell outcomes; the server forgets the
  /// job on success (fetch-once).  Transient while the job still runs.
  StatusOr<FetchReplyData> fetch(uint64_t Job);
  Status cancel(uint64_t Job);
  /// Asks the daemon to drain and exit.
  Status shutdownServer();

  /// Convenience: submit, poll status until the job finishes, fetch.
  /// This is the whole of `dmpc --remote`.
  StatusOr<FetchReplyData> runCampaign(const SubmitRequest &Req,
                                       unsigned PollIntervalMs = 20);

private:
  int Fd = -1;
};

} // namespace dmp::serve

#endif // DMP_SERVE_CLIENT_H
