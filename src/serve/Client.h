//===- serve/Client.h - Campaign-service client library ---------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of serve::Protocol: a blocking, one-request-at-a-time
/// connection to a dmp_served daemon.  `dmpc --remote` is a thin wrapper
/// around this class; the protocol tests use it directly (and use fd() to
/// inject raw malformed bytes around the typed API).
///
/// Every RPC is a roundTrip(): write one frame, read one frame, and decode
/// a server Error frame back into the dmp::Status it carries — so a
/// rejected SUBMIT surfaces as the same ResourceExhausted/Corrupt taxonomy
/// the rest of the stack speaks.  A *transport* failure (the write or the
/// read died, the stream desynchronized) closes the socket, so
/// connected() afterwards distinguishes "the server answered an error"
/// (still connected) from "the connection is gone" (reconnect and retry).
///
/// runCampaign() is crash-resilient (DESIGN.md "Recovery & idempotency"):
/// when the daemon blips or restarts mid-campaign it reconnects under a
/// bounded deterministic backoff (seeded jitter, Transient-only), compares
/// the server's per-boot epoch from the PONG health reply, and resubmits
/// idempotently — the request digest dedups onto surviving work, so the
/// final results are bit-identical to an uninterrupted run.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_CLIENT_H
#define DMP_SERVE_CLIENT_H

#include "serve/Protocol.h"

namespace dmp::serve {

/// Reconnect/resubmit policy for runCampaign() and connectWithRetry().
/// Deterministic: the delay before attempt N is a pure function of
/// (Seed, N), in the spirit of fault::Plan.
struct RetryPolicy {
  /// Connection attempts per re-establishment (including the first).
  unsigned ConnectAttempts = 10;
  /// Exponential backoff base; the pre-jitter delay before retry N is
  /// BaseDelayMs << N, capped at MaxDelayMs.
  unsigned BaseDelayMs = 10;
  unsigned MaxDelayMs = 2000;
  /// How many times runCampaign() may (re)submit the request before
  /// giving up.  Idempotent dedup makes every resubmit safe.
  unsigned MaxResubmits = 8;
  /// Jitter seed; same seed, same schedule.
  uint64_t Seed = 0;
};

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;

  /// Connects to the daemon's Unix socket.  Transient on refusal (daemon
  /// not up, socket stale); Invariant when the path exceeds the AF_UNIX
  /// sun_path limit.
  Status connect(const std::string &SocketPath);

  /// connect() under \p Retry: bounded attempts with deterministic seeded
  /// backoff, retrying Transient refusals only (an Invariant — e.g. an
  /// overlong path — fails immediately).
  Status connectWithRetry(const std::string &SocketPath,
                          const RetryPolicy &Retry);

  /// The delay before retry \p Attempt (0-based): exponential, capped,
  /// with seeded jitter in [cap/2, cap].  Pure function, exposed for
  /// tests.  \p RetryAfterHintMs, when nonzero, is a server brownout hint
  /// (the retry-after carried on a ResourceExhausted shed): it replaces
  /// the policy's base delay — the backoff becomes hint-scaled
  /// exponential, still jittered deterministically from the seed, with
  /// the delay ceiling never clamped below the hint.
  static unsigned backoffDelayMs(const RetryPolicy &Retry, unsigned Attempt,
                                 uint32_t RetryAfterHintMs = 0);

  void close();
  bool connected() const { return Fd != -1; }

  /// Raw socket fd, for tests that write malformed bytes directly.
  int fd() const { return Fd; }

  /// One request/reply exchange.  A server Error frame is decoded into its
  /// carried Status; an unexpected reply type is Corrupt.  On a transport
  /// failure the socket is closed (connected() turns false).
  StatusOr<Frame> roundTrip(MsgType Type,
                            const std::vector<uint8_t> &Payload);

  Status ping();
  /// PING decoded as a health check: returns the server's per-boot epoch
  /// (0 from a pre-epoch server).  A changed epoch means the daemon
  /// restarted and in-memory job ids from before are dead.
  StatusOr<uint64_t> health();
  /// PING decoded as a load probe: the daemon's jobs/cells in flight and
  /// shed counters (PongLoad), plus the epoch via \p EpochOut.  NotFound
  /// from a pre-load daemon whose PONG carries only the epoch.
  StatusOr<PongLoad> serverLoad(uint64_t *EpochOut = nullptr);
  /// The retry-after-ms hint carried by the most recent server Error reply
  /// (0 when the last error had none, or the last reply succeeded).  The
  /// brownout contract: nonzero marks a shed as transient saturation worth
  /// riding out; zero marks it permanent.
  uint32_t lastRetryAfterMs() const { return LastRetryAfterMs; }
  /// Returns the accepted job id.
  StatusOr<uint64_t> submit(const SubmitRequest &Req);
  StatusOr<JobStatusReply> status(uint64_t Job);
  /// Fetches a finished job's per-cell outcomes.  Idempotent: the server
  /// keeps the job (and its durable record) until ack().  Transient while
  /// the job still runs.
  StatusOr<FetchReplyData> fetch(uint64_t Job);
  /// Tells the server the results were consumed; the job and its durable
  /// record are released.  Idempotent — acking an unknown id is Ok.
  Status ack(uint64_t Job);
  Status cancel(uint64_t Job);
  /// Asks the daemon to drain and exit.
  Status shutdownServer();

  /// Convenience: submit, poll status until the job finishes, fetch.
  /// This is the whole of `dmpc --remote`.  Rides through daemon blips
  /// and restarts under \p Retry (reconnect, epoch check, idempotent
  /// resubmit); does NOT ack — the caller does, once it has consumed the
  /// results.
  StatusOr<FetchReplyData> runCampaign(const SubmitRequest &Req,
                                       unsigned PollIntervalMs = 20,
                                       const RetryPolicy &Retry = {});

private:
  int Fd = -1;
  /// Remembered by connect() so runCampaign() can re-establish.
  std::string Path;
  /// Brownout hint from the most recent Error reply (see lastRetryAfterMs).
  uint32_t LastRetryAfterMs = 0;
};

} // namespace dmp::serve

#endif // DMP_SERVE_CLIENT_H
