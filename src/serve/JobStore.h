//===- serve/JobStore.h - Durable job records for dmp_served ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-durable job state for the campaign service (DESIGN.md "Recovery &
/// idempotency").  Every accepted SubmitRequest is filed in the artifact
/// cache under its deterministic request key (serve::requestKey), following
/// the same whole-blob atomic-rewrite protocol as harness::CampaignJournal:
/// each checkpoint rewrites the complete record — the request plus every
/// completed cell outcome — so a blob read after any crash is either the
/// previous checkpoint or the next one, never a torn mixture.
///
/// A small index blob under a fixed well-known key lists the request keys
/// of jobs that have been accepted but not yet acknowledged; the cache has
/// no enumeration API, so this is how a restarted daemon finds the jobs it
/// owes.  When a client acknowledges a fetched job, the record is replaced
/// by an "acked" tombstone (submitting the same request again later starts
/// fresh instead of replaying stale results) and the key leaves the index.
///
/// Durability here is an accelerator-grade promise, matching the cache it
/// rides on: every store failure is logged-and-survivable (the job still
/// runs, it just won't outlive a crash), and a corrupt blob on recovery is
/// dropped, never trusted.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_JOBSTORE_H
#define DMP_SERVE_JOBSTORE_H

#include "serialize/ArtifactCache.h"
#include "serve/Protocol.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dmp::serve {

/// Durable record of one accepted job: the request that created it plus
/// the outcome of every cell that has finished (std::nullopt = still
/// pending).  Outcomes.size() == Request.Cells.size() except in an acked
/// tombstone, which carries neither.
struct JobRecord {
  bool Acked = false;
  SubmitRequest Request;
  std::vector<std::optional<StatusOr<harness::CellResult>>> Outcomes;
};

/// Files JobRecords in an ArtifactCache keyed by request digest, plus the
/// active-jobs index.  Single-writer by design (one daemon owns a socket
/// and its cache dir); all methods are cheap and synchronous.
class JobStore {
public:
  explicit JobStore(std::shared_ptr<serialize::ArtifactCache> Cache);

  /// Loads the record filed under \p Key.  NotFound when no record exists;
  /// Corrupt when the blob fails validation (the caller should drop the
  /// key and start fresh).
  StatusOr<JobRecord> load(const serialize::Digest &Key);

  /// Atomically rewrites the record under \p Key.  A failure is returned
  /// (for logging / counters) but must be treated as survivable: the job
  /// keeps running in memory, it just loses crash durability.
  Status checkpoint(const serialize::Digest &Key, const JobRecord &Record);

  /// Replaces the record with an acked tombstone and drops \p Key from the
  /// active index.  Idempotent.
  Status markAcked(const serialize::Digest &Key);

  /// The request keys of accepted-but-unacked jobs, in deterministic
  /// (hex-sorted) order — what a restarted daemon must recover.
  std::vector<serialize::Digest> indexed() const;

  Status addToIndex(const serialize::Digest &Key);
  Status removeFromIndex(const serialize::Digest &Key);

  serialize::ArtifactCache &cache() { return *Cache; }

private:
  Status persistIndex();

  std::shared_ptr<serialize::ArtifactCache> Cache;
  /// hex(key) -> key; the map keeps the index deterministic and sorted.
  std::map<std::string, serialize::Digest> Index;
};

} // namespace dmp::serve

#endif // DMP_SERVE_JOBSTORE_H
