//===- serve/HostileClient.h - Deterministic adversarial client -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic hostile-client generator for the serve liveness tests
/// (DESIGN.md "Liveness & overload").  Where ChaosProxy perturbs a
/// *cooperating* byte stream, HostileClient IS the misbehaving peer: it
/// opens real connections to the daemon and runs one of four classic
/// denial patterns against it —
///
///   HalfOpen     connect, send at most one byte, then hold the socket
///                open and silent (an accept-slot squatter).  Exercises
///                the --max-conns accept cap and the idle-shed path.
///   DripHeader   send a valid frame one byte at a time with long pauses
///                (slowloris).  Exercises the partial-frame read
///                deadline.
///   NeverRead    pump PING frames forever without ever reading a reply,
///                so PONGs pile up in the server's outbound queue.
///                Exercises the per-connection write-buffer budget.
///   SubmitStorm  well-formed SUBMITs varied per-op so the idempotency
///                key cannot dedup them, as fast as the pacing allows.
///                Exercises admission control and the brownout sheds.
///
/// Determinism contract (the ChaosProxy / fault::Plan model): every
/// behavioral choice is a pure function of (Seed, Site, Op) where Site is
/// the connection's serial number and Op a per-connection counter — no
/// wall-clock or PRNG state.  Two runs with the same plan produce the
/// same byte schedule, so a liveness failure reproduces under the same
/// seed.  The daemon's *responses* are not deterministic (sheds depend on
/// timing); the tests assert liveness properties, not exact counts.
///
/// The attack loop runs on one background thread, like ChaosProxy:
/// start() spawns it, stop() is idempotent and joins it.  Connection
/// failures are expected mid-attack (the daemon shedding us is the point)
/// and are recycled, not reported; connects() and ops() expose progress
/// for the harness.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_HOSTILECLIENT_H
#define DMP_SERVE_HOSTILECLIENT_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace dmp::serve {

enum class HostileAttack : uint8_t {
  HalfOpen,
  DripHeader,
  NeverRead,
  SubmitStorm,
};

/// Stable lowercase name ("half-open", "drip-header", "never-read",
/// "submit-storm") for logs and bench output.
const char *hostileAttackName(HostileAttack Kind);

struct HostilePlan {
  uint64_t Seed = 1;
  HostileAttack Kind = HostileAttack::HalfOpen;
  /// Concurrent connections the attacker tries to keep alive.  When the
  /// daemon sheds one (or refuses the connect), the slot recycles.
  unsigned Connections = 8;
  /// Ops per connection before it is voluntarily recycled: bytes dripped
  /// (DripHeader), frames pumped (NeverRead), submits sent (SubmitStorm).
  /// Ignored by HalfOpen, whose whole point is to do nothing.
  unsigned OpsPerConn = 32;
  /// Pause between attack ticks, the attacker's pacing knob.  Small for
  /// floods (NeverRead/SubmitStorm), larger for the slowloris drip.
  unsigned PaceUs = 1000;
};

class HostileClient {
public:
  /// \p TargetPath is the daemon's Unix socket.
  HostileClient(std::string TargetPath, HostilePlan Plan);
  ~HostileClient();

  HostileClient(const HostileClient &) = delete;
  HostileClient &operator=(const HostileClient &) = delete;

  /// Pure (Seed, Site, Op) mix in [0, 2^64): the single source of every
  /// per-op variation (storm spec parameters, half-open first-byte
  /// choice).  Exposed for the determinism test.
  static uint64_t mix(const HostilePlan &Plan, uint64_t Site, uint64_t Op);

  /// Spawns the attack thread.  Invariant if already started.
  Status start();
  /// Stops and joins the attack thread; closes every socket.  Idempotent.
  void stop();

  /// Connections successfully established so far.
  uint64_t connects() const {
    return Connects.load(std::memory_order_relaxed);
  }
  /// Attack ops completed (bytes dripped / frames sent / submits sent).
  uint64_t ops() const { return Ops.load(std::memory_order_relaxed); }

private:
  void run();

  std::string TargetPath;
  HostilePlan Plan;
  int StopPipe[2] = {-1, -1};
  std::thread Attacker;
  bool Running = false;
  std::atomic<uint64_t> Connects{0};
  std::atomic<uint64_t> Ops{0};
};

} // namespace dmp::serve

#endif // DMP_SERVE_HOSTILECLIENT_H
