//===- serve/WorkerPool.h - Forked cell-worker processes --------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker tier of the dmp::serve supervision tree (DESIGN.md "Service
/// architecture").  The pool forks N worker processes at construction —
/// while the daemon is still single-threaded, which is what keeps fork()
/// safe — each connected to the supervisor by a SOCK_STREAM socketpair
/// speaking the RunCell/CellDone plane of serve::Protocol.
///
/// A worker is a loop: read RunCell, execute harness::runCellSpec against
/// the shared content-addressed artifact cache (ArtifactCache is
/// multi-process safe, so every worker warms the same store), write
/// CellDone.  Workers hold no service state: one worker crashing loses at
/// most the single cell it was computing, which the supervisor detects as
/// an EOF on that worker's fd, retries on a respawned worker, and — because
/// cells are deterministic — the retried result is bit-identical.
///
/// Workers=0 selects in-process mode: no forks, the server executes cells
/// inline in its own loop.  This degrades throughput, not correctness, and
/// is what the TSan server-loop tests run (forking a multithreaded
/// sanitizer process is undefined ground).
///
/// Test hooks (each keyed on a dispatch-ticket number in an env var, all
/// deterministic): $DMP_SERVE_CRASH_TICKET makes the worker that receives
/// that ticket _exit(137) instead of computing — "worker killed mid-cell";
/// $DMP_SERVE_EXIT_AFTER_TICKET makes it _exit(137) right after flushing
/// that ticket's CellDone — "worker died with its result on the wire";
/// $DMP_SERVE_KILL_ON_DISPATCH_TICKET makes the supervisor kill and reap
/// the worker immediately before writing that ticket's RunCell — "worker
/// died under the dispatch write" (the write fails with EPIPE and the
/// pool never records the ticket); $DMP_SERVE_HANG_ON_TICKET makes the
/// worker that receives that ticket block forever without heartbeats or a
/// CellDone — "worker livelocked mid-cell", the case only the hung-worker
/// watchdog (ServerOptions::CellWallMs) can recover from.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_WORKERPOOL_H
#define DMP_SERVE_WORKERPOOL_H

#include "support/Status.h"

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace dmp::serve {

struct WorkerPoolOptions {
  /// Worker process count; 0 = in-process execution (no forks).
  unsigned Workers = 2;
  /// Artifact-cache root shared by every worker ("" or UseCache=false
  /// disables caching).
  std::string CacheDir;
  bool UseCache = true;
  /// Runs in each freshly forked child before the worker loop starts; the
  /// server registers a closure here that closes its listen/client fds so
  /// a worker never holds a connection open past the server's death.
  std::function<void()> InChild;
};

class WorkerPool {
public:
  explicit WorkerPool(WorkerPoolOptions Options);
  /// Closes every supervisor-side fd (workers see EOF and exit cleanly)
  /// and reaps the children.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Slots.size()); }
  bool inProcess() const { return Slots.empty(); }
  const WorkerPoolOptions &options() const { return Options; }

  /// Installs the child-side fd hygiene hook used by later respawns (the
  /// server registers its close-everything closure once it exists; the
  /// initial workers predate the server, so they have nothing to close).
  void setInChild(std::function<void()> Fn) {
    Options.InChild = std::move(Fn);
  }

  /// Live worker pids, for tests that kill one.
  std::vector<pid_t> pids() const;

  /// Supervisor-side fd of worker \p W (for the server's poll set), or -1
  /// if that slot is dead.
  int fd(unsigned W) const { return Slots[W].Fd; }
  bool busy(unsigned W) const { return Slots[W].Busy; }
  bool hasTicket(unsigned W) const { return Slots[W].HasTicket; }
  uint64_t ticket(unsigned W) const { return Slots[W].Ticket; }

  /// Sends RunCell(\p Ticket, \p SpecPayload frame bytes pre-encoded by the
  /// caller) to worker \p W and marks it busy.
  Status dispatch(unsigned W, uint64_t Ticket,
                  const std::vector<uint8_t> &RunCellPayload);

  /// Marks worker \p W idle after its CellDone arrived.
  void complete(unsigned W);

  /// Handles a dead worker: closes the fd, reaps the child, forks a
  /// replacement (running Options.InChild in it), and returns the ticket
  /// the worker was holding, if any, so the supervisor can retry that
  /// cell.  \p Respawn=false (drain path) only reaps.
  struct CrashReport {
    bool HadTicket = false;
    uint64_t Ticket = 0;
  };
  CrashReport onWorkerDeath(unsigned W, bool Respawn);

  /// SIGKILLs worker \p W without reaping it (the hung-worker watchdog's
  /// hammer).  The caller follows up with onWorkerDeath(), whose waitpid
  /// completes promptly because the kill already landed.  No-op on a dead
  /// or in-process slot.
  void killWorker(unsigned W);

  /// First idle live worker, or -1 when all are busy/dead.
  int idleWorker() const;

  /// The worker-process main loop (never returns; _exit()s on EOF).  Only
  /// called in forked children; public so tests can run a worker directly
  /// over a socketpair they own.
  [[noreturn]] static void workerMain(int Fd, const std::string &CacheDir,
                                      bool UseCache);

private:
  struct Slot {
    pid_t Pid = -1;
    int Fd = -1;
    bool Busy = false;
    bool HasTicket = false;
    uint64_t Ticket = 0;
  };

  /// Forks one worker into \p S (fresh socketpair, InChild hook, worker
  /// loop).  On fork failure the slot is left dead (Fd=-1).
  void spawn(Slot &S);

  WorkerPoolOptions Options;
  std::vector<Slot> Slots;
  /// $DMP_SERVE_KILL_ON_DISPATCH_TICKET crash-injection hook; ~0ull when
  /// unarmed, reset to ~0ull after firing once.
  uint64_t KillOnDispatchTicket = ~0ull;
};

} // namespace dmp::serve

#endif // DMP_SERVE_WORKERPOOL_H
