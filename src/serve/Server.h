//===- serve/Server.h - Campaign-service event loop -------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dmp::serve daemon core (DESIGN.md "Service architecture"): a
/// single-threaded poll() loop that owns the Unix listen socket, every
/// client connection, and the supervisor side of the WorkerPool, and
/// multiplexes them all without ever blocking on one peer.
///
/// Scheduling is fair round-robin at cell granularity: jobs with pending
/// cells sit in a rotation queue, and each dispatch takes *one* cell from
/// the front job before rotating it to the back — a client that submits
/// 100 cells cannot starve a client that submits 2.  Admission control
/// bounds concurrently active jobs (ResourceExhausted on overflow) and
/// cells per job; per-job deadlines shed still-pending cells as
/// ResourceExhausted at expiry while in-flight cells finish.
///
/// Supervision: a worker's death (EOF on its socketpair) loses only the
/// cell it was computing.  The supervisor reaps and respawns the worker
/// and retries the cell — bounded, attempt-indexed, mirroring the
/// engine's deterministic retry policy — so a crash changes neither the
/// campaign's results nor its digests.
///
/// Shutdown is a drain, in the guard:: sense: on SIGINT/SIGTERM (the
/// process CancelToken), a SHUTDOWN frame, or requestStop(), the server
/// stops accepting and dispatching, sheds pending cells as Cancelled,
/// lets in-flight cells finish, flushes every reply, and returns from
/// run().  Malformed client input is answered with Error(Corrupt) and
/// never takes the service down (see serve/Protocol.h for the exact
/// framing contract).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_SERVER_H
#define DMP_SERVE_SERVER_H

#include "guard/Guard.h"
#include "serialize/Hash.h"
#include "serve/Protocol.h"
#include "serve/WorkerPool.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>

namespace dmp::serialize {
class ArtifactCache;
}

namespace dmp::serve {

class JobStore;

struct ServerOptions {
  std::string SocketPath;
  /// Admission bound: SUBMITs beyond this many concurrently active
  /// (queued or running) jobs are rejected with ResourceExhausted.
  unsigned MaxActiveJobs = 64;
  /// Admission bound on cells per job (the protocol has its own, higher,
  /// hard cap).
  unsigned MaxCellsPerJob = 256;
  /// Total dispatch attempts per cell across worker crashes.
  unsigned CellAttempts = 3;
  /// Checkpoint accepted jobs and per-cell progress to the worker pool's
  /// cache dir (serve::JobStore) so a restarted daemon resumes them.  A
  /// no-op when the pool runs uncached: durability needs a disk.
  bool DurableJobs = true;
  /// When false, one-line operational logs go to stderr.
  bool Quiet = true;

  // --- Liveness & overload budgets (DESIGN.md "Liveness & overload") ---

  /// Hung-worker watchdog: a busy worker silent (no CELL_PROGRESS
  /// heartbeat, no CellDone) for longer than this is SIGKILLed and its
  /// cell retried on a respawned worker.  This is a *silence* budget, not
  /// a total-runtime cap — a slow cell that keeps beating never trips it.
  /// Must exceed the longest uninstrumented stage (profiling/selection run
  /// between the receipt beat and the first simulation beat).  0 disables;
  /// meaningless in in-process mode (Workers=0).
  unsigned CellWallMs = 0;
  /// Accept cap: at this many live connections a new accept sheds the
  /// oldest idle connection (no queued output) to make room, or is refused
  /// when every connection is mid-service.
  unsigned MaxConns = 64;
  /// Anti-slowloris: a connection holding an incomplete frame for longer
  /// than this is dropped.  0 disables.
  unsigned ReadDeadlineMs = 5000;
  /// A connection with no inbound traffic for longer than this is
  /// dropped (it can always reconnect).  0 disables.
  unsigned IdleTimeoutMs = 120'000;
  /// Outbound buffering bound per connection: a consumer that lets more
  /// than this many bytes queue is disconnected instead of buffered
  /// unboundedly.  0 disables.
  size_t MaxConnOutBytes = 4u << 20;
  /// Server-wide pending-cell budget: a SUBMIT that would push the total
  /// count of not-yet-finished cells past this is shed with
  /// ResourceExhausted + a retry-after hint.  0 disables.
  unsigned MaxQueuedCells = 4096;
  /// Base of the brownout retry-after-ms hint attached to transient
  /// admission sheds (queue-full / cell-budget): the actual hint scales
  /// with load.  0 sends no hint (clients then treat the shed as final).
  unsigned RetryAfterMs = 100;
};

class Server {
public:
  /// \p Drain is polled every loop iteration; null means
  /// guard::processToken() (the SIGINT/SIGTERM token).
  Server(ServerOptions Options, WorkerPool &Pool,
         const guard::CancelToken *Drain = nullptr);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on Options.SocketPath (unlinking a stale socket)
  /// and registers the child-fd hygiene hook with the pool.
  Status listen();

  /// Runs the event loop until a drain completes.  Returns Ok after a
  /// clean drain (signal, SHUTDOWN frame, or requestStop), or the error
  /// that stopped the loop.
  Status run();

  /// Trips the internal stop pipe from any thread (in-process tests).
  void requestStop();

  const ServerOptions &options() const { return Opts; }

  /// The per-boot epoch PONG carries (nonzero, unique per Server
  /// instance): a client that sees it change knows the daemon restarted.
  uint64_t epoch() const { return Epoch; }

  /// Loop accounting, readable from other threads while run() spins.
  struct Counters {
    uint64_t ConnectionsAccepted = 0;
    uint64_t JobsAccepted = 0;
    uint64_t JobsRejected = 0;
    uint64_t JobsDeduped = 0;
    uint64_t JobsRecovered = 0;
    uint64_t CellsDispatched = 0;
    uint64_t CellsCompleted = 0;
    uint64_t CellsFailed = 0;
    uint64_t CellsRetried = 0;
    uint64_t CellsResumed = 0;
    uint64_t WorkerCrashes = 0;
    uint64_t ProtocolErrors = 0;
    uint64_t Checkpoints = 0;
    // Liveness & overload accounting: every shed and every kill the
    // budgets above cause is visible here (and in the drain log footer).
    uint64_t WorkersHung = 0;       ///< watchdog SIGKILLs
    uint64_t Heartbeats = 0;        ///< CELL_PROGRESS frames received
    uint64_t ReadTimeouts = 0;      ///< conns dropped mid-frame (slowloris)
    uint64_t IdleDrops = 0;         ///< conns dropped by the idle timeout
    uint64_t SlowConsumerDrops = 0; ///< conns dropped over the out budget
    uint64_t ConnsShed = 0;         ///< idle conns shed for accept room
    uint64_t ConnsRefused = 0;      ///< accepts refused (no shed victim)
    uint64_t AcceptErrors = 0;      ///< persistent accept() failures
  };
  Counters counters() const;

private:
  enum class CellPhase : uint8_t { Pending, Running, Done };

  struct CellState {
    harness::CellSpec Spec;
    CellPhase Phase = CellPhase::Pending;
    StatusOr<harness::CellResult> Result;
    unsigned Attempts = 0;
  };

  struct Job {
    uint64_t Id = 0;
    uint64_t Seq = 0; ///< GC order for finished-but-unfetched jobs.
    std::vector<CellState> Cells;
    /// Idempotency key (serve::requestKey of the creating SUBMIT): the
    /// dedup-map entry and, for durable jobs, the record's cache address.
    serialize::Digest ReqKey;
    /// The submit's deadline budget, kept to rebuild the durable record.
    double ReqDeadlineSeconds = 0.0;
    bool Durable = false;
    bool Fetched = false;
    bool Cancelled = false;
    bool InQueue = false;
    bool HasDeadline = false;
    std::chrono::steady_clock::time_point Deadline;

    bool hasPending() const;
    bool finished() const;
    JobState state() const;
  };

  struct Conn {
    int Fd = -1;
    FrameDecoder In;
    std::vector<uint8_t> Out;
    size_t OutPos = 0;
    bool CloseAfterFlush = false;
    /// Last time bytes arrived from this peer (the idle-timeout clock and
    /// the shed-victim ordering key).
    std::chrono::steady_clock::time_point LastActivity;
    /// Set while In holds an incomplete frame; ReadStart is when the
    /// partial frame started (the anti-slowloris clock).
    bool MidRead = false;
    std::chrono::steady_clock::time_point ReadStart;
  };

  void beginDrain(const char *Why);
  bool drainComplete() const;
  int pollTimeoutMs() const;

  void acceptClients();
  void readConn(int Fd);
  void handleFrame(Conn &C, const Frame &F);
  void queueFrame(Conn &C, MsgType Type,
                  const std::vector<uint8_t> &Payload);
  /// \p RetryAfterMs attaches the brownout hint to the Error payload
  /// (0 = no hint; see ServerOptions::RetryAfterMs).
  void sendError(Conn &C, const Status &S, uint32_t RetryAfterMs = 0);
  void flushConn(Conn &C);
  void dropConn(int Fd);
  /// Sweeps connection budgets: read deadline on partial frames, idle
  /// timeout, and fully-flushed CloseAfterFlush corpses.
  void expireConns();
  /// Drops the oldest connection with no queued output to make accept
  /// room; false when every connection is mid-service.  \p Why labels the
  /// log line.
  bool shedIdleConn(const char *Why);
  /// Every hygiene-initiated disconnect, for the PONG load snapshot.
  uint64_t connsShedTotal() const;
  /// The load-scaled brownout hint for a transient admission shed.
  uint32_t retryAfterHintMs() const;
  /// Not-yet-finished cells across all jobs (the MaxQueuedCells ruler).
  uint64_t pendingCells() const;

  void readWorker(unsigned W);
  /// Records a worker's CellDone; false means the frame was not a valid
  /// CellDone or CellProgress (the caller treats the worker as crashed).
  bool onCellDone(unsigned W, const Frame &F);
  void handleWorkerCrash(unsigned W);
  /// The hung-worker watchdog: SIGKILLs any busy worker whose heartbeat
  /// silence exceeds Opts.CellWallMs, then routes it through the crash
  /// path (reap, respawn, digest-identical retry).
  void checkWorkerLiveness();
  void recordOutcome(Job &J, size_t CellIdx,
                     StatusOr<harness::CellResult> Outcome);

  void dispatch();
  Job *nextRRJob();
  void enqueueRR(Job &J, bool Front = false);
  void expireDeadlines();
  void gcFinishedJobs();
  uint64_t activeJobs() const;
  Job *findJob(uint64_t Id);
  void cancelPendingCells(Job &J, const Status &Shed);
  void closeInheritedFdsInChild() const;
  void log(const std::string &Line) const;

  /// Rewrites \p J's durable record (request + every completed cell
  /// outcome).  Survivable on failure: the job keeps running in memory.
  void checkpointJob(Job &J);
  /// Rebuilds in-memory jobs from every indexed (accepted-but-unacked)
  /// record the previous boot left in the job store.
  void recoverJobs();
  /// Erases \p Id from Jobs and the dedup map (not from the job store).
  void forgetJob(uint64_t Id);

  ServerOptions Opts;
  WorkerPool &Pool;
  const guard::CancelToken *Drain;

  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  bool Draining = false;

  std::map<int, Conn> Conns;
  std::map<uint64_t, Job> Jobs;
  std::deque<uint64_t> RR;
  /// Dispatch ticket -> (job, cell index).
  std::map<uint64_t, std::pair<uint64_t, size_t>> Tickets;
  std::vector<FrameDecoder> WorkerIn;
  /// Per-worker last-heartbeat time: set at dispatch, refreshed by every
  /// CELL_PROGRESS, read by checkWorkerLiveness().
  std::vector<std::chrono::steady_clock::time_point> WorkerBeat;
  uint64_t NextJob = 1;
  uint64_t NextSeq = 0;
  uint64_t NextTicket = 0;
  uint64_t Epoch = 0;

  /// Idempotency map: hex(request key) -> live job id.  Every job is in
  /// here (dedup works even uncached); durable jobs also have a record in
  /// the store.
  std::map<std::string, uint64_t> ActiveByKey;
  /// Durable job records + the cache they live in (null when the pool
  /// runs uncached or DurableJobs is off).
  std::shared_ptr<serialize::ArtifactCache> StoreCache;
  std::unique_ptr<JobStore> Store;

  /// In-process execution cache (Workers=0 mode only).
  std::shared_ptr<serialize::ArtifactCache> InProcCache;
  bool InProcCacheReady = false;

  // Counters are atomics so tests can read them from another thread while
  // the loop runs.
  std::atomic<uint64_t> CtrConns{0}, CtrJobsAccepted{0}, CtrJobsRejected{0},
      CtrDeduped{0}, CtrRecovered{0}, CtrDispatched{0}, CtrCompleted{0},
      CtrFailed{0}, CtrRetried{0}, CtrResumed{0}, CtrCrashes{0},
      CtrProtocolErrors{0}, CtrCheckpoints{0}, CtrWorkersHung{0},
      CtrHeartbeats{0}, CtrReadTimeouts{0}, CtrIdleDrops{0},
      CtrSlowConsumerDrops{0}, CtrConnsShed{0}, CtrConnsRefused{0},
      CtrAcceptErrors{0};
};

} // namespace dmp::serve

#endif // DMP_SERVE_SERVER_H
