//===- serve/ChaosProxy.cpp - Deterministic socket-chaos relay ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/ChaosProxy.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace dmp;
using namespace dmp::serve;

namespace {

uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  return X;
}

Status transient(std::string Msg) {
  return Status::transient(std::move(Msg), "serve::ChaosProxy");
}

bool sendAll(int Fd, const uint8_t *Data, size_t N) {
  size_t Sent = 0;
  while (Sent < N) {
    const ssize_t W = ::send(Fd, Data + Sent, N - Sent, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

ChaosProxy::ChaosProxy(std::string ListenPath, std::string TargetPath,
                       ChaosPlan Plan)
    : ListenPath(std::move(ListenPath)), TargetPath(std::move(TargetPath)),
      Plan(Plan) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::decide(const ChaosPlan &Plan, uint64_t Site, uint64_t Op,
                        double Rate) {
  if (Rate <= 0.0)
    return false;
  if (Rate >= 1.0)
    return true;
  // Pure (Seed, Site, Op) hash against the rate threshold — the
  // fault::Plan determinism model at the transport layer.
  const uint64_t H = mix64(Plan.Seed * 0x9E3779B97F4A7C15ull +
                           mix64(Site + 0x100) + mix64(Op + 0x10000));
  return double(H >> 11) / double(1ull << 53) < Rate;
}

Status ChaosProxy::start() {
  if (Running)
    return Status::invariant("chaos proxy already started",
                             "serve::ChaosProxy");
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (ListenPath.size() >= sizeof(Addr.sun_path))
    return Status::invariant(
        "socket path too long: " + std::to_string(ListenPath.size()) +
            " bytes exceeds the AF_UNIX sun_path limit of " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " (" + ListenPath +
            ")",
        "serve::ChaosProxy");
  std::memcpy(Addr.sun_path, ListenPath.c_str(), ListenPath.size() + 1);

  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return transient(std::string("socket(): ") + std::strerror(errno));
  ::unlink(ListenPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    const Status S = transient(std::string("bind(") + ListenPath +
                               "): " + std::strerror(errno));
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, 16) != 0) {
    const Status S =
        transient(std::string("listen(): ") + std::strerror(errno));
    ::close(Fd);
    ::unlink(ListenPath.c_str());
    return S;
  }
  if (::pipe(StopPipe) != 0) {
    ::close(Fd);
    ::unlink(ListenPath.c_str());
    return transient(std::string("pipe(): ") + std::strerror(errno));
  }
  ListenFd = Fd;
  Running = true;
  Relay = std::thread([this] { run(); });
  return Status();
}

void ChaosProxy::stop() {
  if (!Running)
    return;
  const uint8_t Byte = 1;
  [[maybe_unused]] ssize_t N = ::write(StopPipe[1], &Byte, 1);
  Relay.join();
  Running = false;
  if (ListenFd != -1) {
    ::close(ListenFd);
    ::unlink(ListenPath.c_str());
    ListenFd = -1;
  }
  ::close(StopPipe[0]);
  ::close(StopPipe[1]);
  StopPipe[0] = StopPipe[1] = -1;
}

bool ChaosProxy::forward(int Dst, const uint8_t *Data, size_t N,
                         uint64_t Site, uint64_t &Op) {
  const uint64_t ThisOp = Op++;
  Chunks.fetch_add(1, std::memory_order_relaxed);

  if (decide(Plan, Site, ThisOp, Plan.DelayRate))
    ::usleep(Plan.DelayMs * 1000u);

  if (Plan.MaxDrops > 0 &&
      Drops.load(std::memory_order_relaxed) < Plan.MaxDrops &&
      decide(Plan, Site, ThisOp, Plan.DropRate)) {
    // Mid-frame disconnect: deliver only half the chunk, then cut the
    // link.  The receiver sees a truncated frame, the sender a reset.
    Drops.fetch_add(1, std::memory_order_relaxed);
    sendAll(Dst, Data, N / 2);
    return false;
  }

  if (decide(Plan, Site, ThisOp, Plan.ChopRate)) {
    // Short writes: forward in 1..ChopBytesMax-byte pieces so the peer's
    // decoder exercises every partial-read path.
    const size_t MaxPiece = std::max(1u, Plan.ChopBytesMax);
    size_t Off = 0;
    while (Off < N) {
      const size_t Piece =
          1 + mix64(Plan.Seed + Site * 31 + ThisOp * 131 + Off) %
                  MaxPiece;
      const size_t Len = std::min(Piece, N - Off);
      if (!sendAll(Dst, Data + Off, Len))
        return false;
      Off += Len;
    }
    return true;
  }

  return sendAll(Dst, Data, N);
}

void ChaosProxy::run() {
  struct Link {
    int Client = -1;   // accepted side
    int Upstream = -1; // connection to the real daemon
    uint64_t Site = 0; // client->upstream site; +1 is the reverse
    uint64_t OpFwd = 0;
    uint64_t OpRev = 0;
  };
  std::vector<Link> Links;
  uint64_t NextConn = 0;

  auto CloseLink = [](Link &L) {
    if (L.Client != -1)
      ::close(L.Client);
    if (L.Upstream != -1)
      ::close(L.Upstream);
    L.Client = L.Upstream = -1;
  };

  while (true) {
    std::vector<pollfd> Polls;
    Polls.push_back({StopPipe[0], POLLIN, 0});
    Polls.push_back({ListenFd, POLLIN, 0});
    for (const Link &L : Links) {
      Polls.push_back({L.Client, POLLIN, 0});
      Polls.push_back({L.Upstream, POLLIN, 0});
    }
    if (::poll(Polls.data(), Polls.size(), 1000) < 0 && errno != EINTR)
      break;

    if (Polls[0].revents & POLLIN)
      break; // stop requested

    if (Polls[1].revents & POLLIN) {
      const int Client = ::accept(ListenFd, nullptr, nullptr);
      if (Client >= 0) {
        sockaddr_un Addr;
        std::memset(&Addr, 0, sizeof(Addr));
        Addr.sun_family = AF_UNIX;
        std::memcpy(Addr.sun_path, TargetPath.c_str(),
                    std::min(TargetPath.size() + 1, sizeof(Addr.sun_path)));
        const int Up = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (Up >= 0 && ::connect(Up, reinterpret_cast<sockaddr *>(&Addr),
                                 sizeof(Addr)) == 0) {
          Link L;
          L.Client = Client;
          L.Upstream = Up;
          L.Site = 2 * NextConn++;
          Links.push_back(L);
        } else {
          // Daemon not reachable: refuse by closing, like a dead socket.
          if (Up >= 0)
            ::close(Up);
          ::close(Client);
        }
      }
    }

    uint8_t Buf[4096];
    size_t P = 2;
    for (Link &L : Links) {
      bool Cut = false;
      for (int Dir = 0; Dir < 2 && !Cut; ++Dir, ++P) {
        if (!(Polls[P].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        const int From = Dir == 0 ? L.Client : L.Upstream;
        const int To = Dir == 0 ? L.Upstream : L.Client;
        const ssize_t N = ::recv(From, Buf, sizeof(Buf), MSG_DONTWAIT);
        if (N > 0) {
          uint64_t &Op = Dir == 0 ? L.OpFwd : L.OpRev;
          if (!forward(To, Buf, static_cast<size_t>(N), L.Site + Dir, Op))
            Cut = true;
        } else if (N == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                              errno != EINTR)) {
          Cut = true;
        }
      }
      // Skip the second poll slot if Dir loop exited early via Cut.
      while ((P - 2) % 2 != 0)
        ++P;
      if (Cut)
        CloseLink(L);
    }
    Links.erase(std::remove_if(Links.begin(), Links.end(),
                               [](const Link &L) { return L.Client == -1; }),
                Links.end());
  }

  for (Link &L : Links)
    CloseLink(L);
}
