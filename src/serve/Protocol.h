//===- serve/Protocol.h - Length-prefixed campaign-service protocol -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the dmp::serve campaign service (DESIGN.md
/// "Service architecture").  Every message is one frame:
///
///   +--------+---------+------+-------------+-----------------+
///   | magic  | version | type | payload len | payload bytes   |
///   | u32 LE | u32 LE  | u8   | u64 LE      | (len bytes)     |
///   +--------+---------+------+-------------+-----------------+
///
/// The same framing carries both planes: client <-> server (SUBMIT /
/// STATUS / FETCH-RESULTS / CANCEL / SHUTDOWN / PING over the Unix
/// socket) and supervisor <-> worker (RUN-CELL / CELL-DONE over each
/// worker's socketpair).
///
/// Robustness contract (pinned by the frame-fuzz tests): malformed input
/// is *data*, never a crash.  The incremental FrameDecoder classifies
/// every defect:
///
///  - a well-framed message with a wrong version (Skew), an unknown type,
///    or an undecodable payload is answered with an Error(Corrupt) frame
///    and the connection stays usable — the stream is still in sync;
///  - a bad magic or an oversized length desynchronizes the byte stream
///    (Fatal): the server answers Error(Corrupt) and closes that
///    connection, and only that connection;
///  - a stream that ends mid-frame is a truncated frame (Corrupt on the
///    blocking readFrame path; the poll loop simply drops the peer).
///
/// Payload codecs build on serialize::ByteStream and reject trailing
/// bytes, so every decoder is exact-match strict.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERVE_PROTOCOL_H
#define DMP_SERVE_PROTOCOL_H

#include "harness/CellRun.h"
#include "serialize/ByteStream.h"
#include "serialize/Hash.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmp::serve {

/// "DMPS" in little-endian byte order on the wire.
constexpr uint32_t kFrameMagic = 0x53504D44;
/// Bump on any incompatible frame or payload change; decoders reject other
/// versions with a clean Corrupt (the version-skew path), never a misparse.
constexpr uint32_t kProtocolVersion = 1;
/// Hard payload bound: anything larger is a desynchronized or hostile
/// stream, not a plausible campaign message.
constexpr uint64_t kMaxFramePayload = 16ull << 20;
/// magic u32 + version u32 + type u8 + payload-length u64.
constexpr size_t kFrameHeaderBytes = 17;
/// Protocol-level bound on cells per SUBMIT (the server's admission
/// control applies its own, configurable, lower bound).
constexpr uint32_t kMaxCellsPerSubmit = 4096;

/// Frame types.  Client-plane types are < 32; worker-plane types >= 32.
enum class MsgType : uint8_t {
  Submit = 1,      ///< client -> server: SubmitRequest
  SubmitOk = 2,    ///< server -> client: u64 job id, u32 cell count
  StatusReq = 3,   ///< client -> server: u64 job id
  StatusReply = 4, ///< server -> client: JobStatusReply
  FetchReq = 5,    ///< client -> server: u64 job id
  FetchReply = 6,  ///< server -> client: FetchReplyData
  CancelReq = 7,   ///< client -> server: u64 job id
  CancelOk = 8,    ///< server -> client: u64 job id
  Shutdown = 9,    ///< client -> server: empty (graceful drain request)
  ShutdownOk = 10, ///< server -> client: empty
  Error = 11,      ///< server -> client: an encoded Status
  Ping = 12,       ///< client -> server: empty
  Pong = 13,       ///< server -> client: u64 per-boot server epoch
  AckReq = 14,     ///< client -> server: u64 job id (results consumed)
  AckOk = 15,      ///< server -> client: u64 job id (always, idempotent)

  RunCell = 32,      ///< supervisor -> worker: u64 ticket + CellSpec
  CellDone = 33,     ///< worker -> supervisor: u64 ticket + Status/CellResult
  CellProgress = 34, ///< worker -> supervisor: u64 ticket (liveness beat)
};

struct Frame {
  MsgType Type = MsgType::Error;
  std::vector<uint8_t> Payload;
};

/// One frame, ready to write.
std::vector<uint8_t> encodeFrame(MsgType Type,
                                 const std::vector<uint8_t> &Payload);

/// Incremental frame parser for the non-blocking server loop.  feed()
/// appends raw bytes; next() pulls at most one classified frame.
class FrameDecoder {
public:
  enum class Outcome {
    NeedMore, ///< no complete frame buffered yet
    Got,      ///< a valid frame was produced
    Skew,     ///< well-framed, wrong protocol version; frame was skipped
              ///< and the stream is still in sync
    Fatal,    ///< bad magic or oversized length: stream unrecoverable
  };

  void feed(const void *Data, size_t Size);

  /// Pulls the next frame.  After Fatal, every later call returns Fatal.
  /// \p Err carries the Corrupt diagnostic for Skew and Fatal.
  Outcome next(Frame &Out, Status &Err);

  bool fatal() const { return Broken; }
  /// True when bytes of an incomplete frame are buffered (an EOF here is a
  /// truncated frame, not a clean close).
  bool midFrame() const { return !Broken && !Buffer.empty(); }

private:
  std::vector<uint8_t> Buffer;
  bool Broken = false;
};

// --- Blocking I/O helpers (client library and worker loop) --------------

/// Writes one frame, handling EINTR and partial writes; uses MSG_NOSIGNAL
/// so a dead peer is a Transient Status, not a SIGPIPE.
Status writeFrame(int Fd, MsgType Type, const std::vector<uint8_t> &Payload);

/// Blocks until one full frame arrives.  NotFound on a clean EOF at a
/// frame boundary, Corrupt on a truncated/garbled stream, Transient on
/// read errors.
StatusOr<Frame> readFrame(int Fd);

// --- Payload codecs -----------------------------------------------------
// Every decoder is exact-match strict: trailing bytes are Corrupt.

struct SubmitRequest {
  std::vector<harness::CellSpec> Cells;
  /// Per-job wall-clock budget in seconds; 0 = none.  At expiry the
  /// server sheds the job's still-pending cells as ResourceExhausted.
  double DeadlineSeconds = 0.0;
};

enum class JobState : uint8_t { Queued = 0, Running = 1, Done = 2,
                                Cancelled = 3 };

/// Stable lowercase name ("queued", "running", "done", "cancelled").
const char *jobStateName(JobState State);

struct JobStatusReply {
  uint64_t Job = 0;
  JobState State = JobState::Queued;
  uint32_t Total = 0;
  uint32_t Done = 0;
  uint32_t Failed = 0;
};

struct FetchReplyData {
  uint64_t Job = 0;
  /// Per-cell outcome in submit order: a CellResult, or the Status the
  /// cell failed/was shed with.
  std::vector<StatusOr<harness::CellResult>> Cells;
};

std::vector<uint8_t> encodeSubmit(const SubmitRequest &Req);
Status decodeSubmit(const std::vector<uint8_t> &Payload, SubmitRequest &Req);

/// Deterministic idempotency key of a SubmitRequest: SHA-256 over a domain
/// prefix plus the canonical encodeSubmit bytes.  Two byte-identical
/// requests always map to the same key, across processes and restarts; the
/// server dedups resubmits onto the live job and the durable job store
/// files its record blob under this digest.
serialize::Digest requestKey(const SubmitRequest &Req);

std::vector<uint8_t> encodeSubmitOk(uint64_t Job, uint32_t Cells);
Status decodeSubmitOk(const std::vector<uint8_t> &Payload, uint64_t &Job,
                      uint32_t &Cells);

std::vector<uint8_t> encodeJobId(uint64_t Job);
Status decodeJobId(const std::vector<uint8_t> &Payload, uint64_t &Job);

std::vector<uint8_t> encodeStatusReply(const JobStatusReply &Reply);
Status decodeStatusReply(const std::vector<uint8_t> &Payload,
                         JobStatusReply &Reply);

std::vector<uint8_t> encodeFetchReply(const FetchReplyData &Reply);
Status decodeFetchReply(const std::vector<uint8_t> &Payload,
                        FetchReplyData &Reply);

/// Status travels as code + message + origin, optionally followed by a
/// trailing retry-after-ms u32 (the overload brownout hint; see DESIGN.md
/// "Liveness & overload").  The hint is appended only when nonzero, and a
/// decoder reading a hint-free payload reports 0 — both directions stay
/// compatible with pre-hint peers.
std::vector<uint8_t> encodeStatusPayload(const Status &S,
                                         uint32_t RetryAfterMs = 0);
Status decodeStatusPayload(const std::vector<uint8_t> &Payload, Status &S,
                           uint32_t *RetryAfterMs = nullptr);

/// Daemon load snapshot carried behind the PONG epoch: the minimal health
/// probe a client (or the liveness tests) needs to see saturation without
/// a privileged interface.
struct PongLoad {
  uint64_t JobsActive = 0;   ///< queued or running jobs
  uint64_t CellsRunning = 0; ///< cells dispatched and in flight
  uint64_t JobsShed = 0;     ///< submits rejected by admission control
  uint64_t ConnsShed = 0;    ///< connections dropped by hygiene limits
};

/// PONG carries the server's per-boot epoch so a reconnecting client can
/// tell a connection blip (same epoch: in-memory job ids still valid) from
/// a daemon restart (new epoch: resubmit through the idempotency key).  An
/// empty payload decodes as epoch 0 for pre-epoch peers; the load snapshot
/// rides behind the epoch, and an epoch-only payload decodes with
/// \p HasLoad false so pre-load peers stay compatible.
std::vector<uint8_t> encodePong(uint64_t Epoch);
std::vector<uint8_t> encodePong(uint64_t Epoch, const PongLoad &Load);
Status decodePong(const std::vector<uint8_t> &Payload, uint64_t &Epoch,
                  PongLoad *Load = nullptr, bool *HasLoad = nullptr);

/// One cell outcome (ok flag, then a length-prefixed CellResult or an
/// inline Status).  Shared by CellDone, FetchReply and the durable job
/// store's record blobs.
void encodeCellOutcome(serialize::ByteWriter &W,
                       const StatusOr<harness::CellResult> &Outcome);
Status decodeCellOutcome(serialize::ByteReader &R,
                         StatusOr<harness::CellResult> &Outcome);

std::vector<uint8_t> encodeRunCell(uint64_t Ticket,
                                   const harness::CellSpec &Spec);
Status decodeRunCell(const std::vector<uint8_t> &Payload, uint64_t &Ticket,
                     harness::CellSpec &Spec);

std::vector<uint8_t>
encodeCellDone(uint64_t Ticket,
               const StatusOr<harness::CellResult> &Outcome);
Status decodeCellDone(const std::vector<uint8_t> &Payload, uint64_t &Ticket,
                      StatusOr<harness::CellResult> &Outcome);

/// CELL_PROGRESS: a worker's liveness beat while a RUN_CELL computes,
/// emitted from the DmpCore cancel-poll cadence.  The supervisor's
/// hung-worker watchdog (`--cell-wall-ms`) measures silence between beats.
std::vector<uint8_t> encodeCellProgress(uint64_t Ticket);
Status decodeCellProgress(const std::vector<uint8_t> &Payload,
                          uint64_t &Ticket);

} // namespace dmp::serve

#endif // DMP_SERVE_PROTOCOL_H
