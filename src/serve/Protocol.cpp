//===- serve/Protocol.cpp - Length-prefixed campaign-service protocol -----===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

Status corrupt(std::string Msg) {
  return Status::corrupt(std::move(Msg), "serve::Protocol");
}

bool validType(uint8_t T) {
  return (T >= static_cast<uint8_t>(MsgType::Submit) &&
          T <= static_cast<uint8_t>(MsgType::AckOk)) ||
         T == static_cast<uint8_t>(MsgType::RunCell) ||
         T == static_cast<uint8_t>(MsgType::CellDone) ||
         T == static_cast<uint8_t>(MsgType::CellProgress);
}

uint32_t readU32At(const std::vector<uint8_t> &B, size_t At) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= uint32_t(B[At + I]) << (8 * I);
  return V;
}

uint64_t readU64At(const std::vector<uint8_t> &B, size_t At) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= uint64_t(B[At + I]) << (8 * I);
  return V;
}

/// Exact-match guard shared by every payload decoder.
Status finishDecode(const serialize::ByteReader &R, const char *What) {
  if (!R.ok())
    return corrupt(std::string("truncated ") + What + " payload");
  if (!R.atEnd())
    return corrupt(std::string(What) + " payload has trailing bytes");
  return Status();
}

} // namespace

std::vector<uint8_t> serve::encodeFrame(MsgType Type,
                                        const std::vector<uint8_t> &Payload) {
  serialize::ByteWriter W;
  W.writeU32(kFrameMagic);
  W.writeU32(kProtocolVersion);
  W.writeU8(static_cast<uint8_t>(Type));
  W.writeU64(Payload.size());
  W.writeBytes(Payload.data(), Payload.size());
  return W.take();
}

void FrameDecoder::feed(const void *Data, size_t Size) {
  if (Broken)
    return;
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
}

FrameDecoder::Outcome FrameDecoder::next(Frame &Out, Status &Err) {
  if (Broken) {
    Err = corrupt("frame stream is desynchronized");
    return Outcome::Fatal;
  }
  if (Buffer.size() < kFrameHeaderBytes)
    return Outcome::NeedMore;

  const uint32_t Magic = readU32At(Buffer, 0);
  if (Magic != kFrameMagic) {
    Broken = true;
    Err = corrupt("bad frame magic");
    return Outcome::Fatal;
  }
  const uint64_t Length = readU64At(Buffer, 9);
  if (Length > kMaxFramePayload) {
    Broken = true;
    Err = corrupt("frame payload length exceeds the protocol bound");
    return Outcome::Fatal;
  }
  if (Buffer.size() < kFrameHeaderBytes + Length)
    return Outcome::NeedMore;

  const uint32_t Version = readU32At(Buffer, 4);
  const uint8_t RawType = Buffer[8];
  Frame F;
  F.Type = static_cast<MsgType>(RawType);
  F.Payload.assign(Buffer.begin() + kFrameHeaderBytes,
                   Buffer.begin() + kFrameHeaderBytes + Length);
  Buffer.erase(Buffer.begin(),
               Buffer.begin() + kFrameHeaderBytes + Length);

  if (Version != kProtocolVersion) {
    // The frame was framed correctly, so the stream stays in sync; the
    // message itself is unusable.
    Err = corrupt("unsupported protocol version " + std::to_string(Version) +
                  " (this server speaks " +
                  std::to_string(kProtocolVersion) + ")");
    return Outcome::Skew;
  }
  if (!validType(RawType)) {
    Err = corrupt("unknown frame type " + std::to_string(RawType));
    return Outcome::Skew;
  }
  Out = std::move(F);
  return Outcome::Got;
}

Status serve::writeFrame(int Fd, MsgType Type,
                         const std::vector<uint8_t> &Payload) {
  const std::vector<uint8_t> Bytes = encodeFrame(Type, Payload);
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    const ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                             MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::transient(std::string("frame write failed: ") +
                                   std::strerror(errno),
                               "serve::Protocol");
    }
    Sent += static_cast<size_t>(N);
  }
  return Status();
}

StatusOr<Frame> serve::readFrame(int Fd) {
  FrameDecoder Decoder;
  uint8_t Chunk[4096];
  while (true) {
    Frame F;
    Status Err;
    switch (Decoder.next(F, Err)) {
    case FrameDecoder::Outcome::Got:
      return F;
    case FrameDecoder::Outcome::Skew:
    case FrameDecoder::Outcome::Fatal:
      return Err;
    case FrameDecoder::Outcome::NeedMore:
      break;
    }
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::transient(std::string("frame read failed: ") +
                                   std::strerror(errno),
                               "serve::Protocol");
    }
    if (N == 0) {
      if (Decoder.midFrame())
        return corrupt("connection closed mid-frame (truncated frame)");
      return Status::notFound("connection closed", "serve::Protocol");
    }
    Decoder.feed(Chunk, static_cast<size_t>(N));
  }
}

const char *serve::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

std::vector<uint8_t> serve::encodeSubmit(const SubmitRequest &Req) {
  serialize::ByteWriter W;
  W.writeU32(static_cast<uint32_t>(Req.Cells.size()));
  for (const harness::CellSpec &Spec : Req.Cells)
    harness::encodeCellSpec(W, Spec);
  W.writeDouble(Req.DeadlineSeconds);
  return W.take();
}

serialize::Digest serve::requestKey(const SubmitRequest &Req) {
  // The domain prefix keeps submit keys disjoint from every other SHA-256
  // use in the artifact cache; the canonical encodeSubmit bytes make the
  // key a pure function of the request contents.
  serialize::Hasher H;
  const char Domain[] = "dmp-serve-submit-v1\n";
  H.update(Domain, sizeof(Domain) - 1);
  const std::vector<uint8_t> Bytes = encodeSubmit(Req);
  H.update(Bytes.data(), Bytes.size());
  return H.finish();
}

Status serve::decodeSubmit(const std::vector<uint8_t> &Payload,
                           SubmitRequest &Req) {
  serialize::ByteReader R(Payload);
  const uint32_t Count = R.readU32();
  if (!R.ok())
    return corrupt("truncated submit payload");
  if (Count == 0)
    return corrupt("submit carries zero cells");
  if (Count > kMaxCellsPerSubmit)
    return corrupt("submit cell count exceeds the protocol bound");
  SubmitRequest Out;
  Out.Cells.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    harness::CellSpec Spec;
    if (Status S = harness::decodeCellSpec(R, Spec); !S.ok())
      return S;
    Out.Cells.push_back(std::move(Spec));
  }
  Out.DeadlineSeconds = R.readDouble();
  if (Status S = finishDecode(R, "submit"); !S.ok())
    return S;
  if (!(Out.DeadlineSeconds >= 0.0) || Out.DeadlineSeconds > 1e9)
    return corrupt("submit deadline out of range");
  Req = std::move(Out);
  return Status();
}

std::vector<uint8_t> serve::encodeSubmitOk(uint64_t Job, uint32_t Cells) {
  serialize::ByteWriter W;
  W.writeU64(Job);
  W.writeU32(Cells);
  return W.take();
}

Status serve::decodeSubmitOk(const std::vector<uint8_t> &Payload,
                             uint64_t &Job, uint32_t &Cells) {
  serialize::ByteReader R(Payload);
  Job = R.readU64();
  Cells = R.readU32();
  return finishDecode(R, "submit-ok");
}

std::vector<uint8_t> serve::encodeJobId(uint64_t Job) {
  serialize::ByteWriter W;
  W.writeU64(Job);
  return W.take();
}

Status serve::decodeJobId(const std::vector<uint8_t> &Payload,
                          uint64_t &Job) {
  serialize::ByteReader R(Payload);
  Job = R.readU64();
  return finishDecode(R, "job-id");
}

std::vector<uint8_t> serve::encodeStatusReply(const JobStatusReply &Reply) {
  serialize::ByteWriter W;
  W.writeU64(Reply.Job);
  W.writeU8(static_cast<uint8_t>(Reply.State));
  W.writeU32(Reply.Total);
  W.writeU32(Reply.Done);
  W.writeU32(Reply.Failed);
  return W.take();
}

Status serve::decodeStatusReply(const std::vector<uint8_t> &Payload,
                                JobStatusReply &Reply) {
  serialize::ByteReader R(Payload);
  JobStatusReply Out;
  Out.Job = R.readU64();
  const uint8_t State = R.readU8();
  Out.Total = R.readU32();
  Out.Done = R.readU32();
  Out.Failed = R.readU32();
  if (Status S = finishDecode(R, "status-reply"); !S.ok())
    return S;
  if (State > static_cast<uint8_t>(JobState::Cancelled))
    return corrupt("status-reply has an invalid job state");
  Out.State = static_cast<JobState>(State);
  Reply = Out;
  return Status();
}

std::vector<uint8_t> serve::encodeStatusPayload(const Status &S,
                                                uint32_t RetryAfterMs) {
  serialize::ByteWriter W;
  W.writeU8(static_cast<uint8_t>(S.code()));
  W.writeString(S.message());
  W.writeString(S.origin());
  // The brownout hint trails the base encoding and is omitted when zero,
  // so hint-free payloads are byte-identical to the pre-hint protocol.
  if (RetryAfterMs != 0)
    W.writeU32(RetryAfterMs);
  return W.take();
}

Status serve::decodeStatusPayload(const std::vector<uint8_t> &Payload,
                                  Status &S, uint32_t *RetryAfterMs) {
  serialize::ByteReader R(Payload);
  const uint8_t Code = R.readU8();
  std::string Message = R.readString();
  std::string Origin = R.readString();
  uint32_t Hint = 0;
  if (R.ok() && !R.atEnd())
    Hint = R.readU32();
  if (Status E = finishDecode(R, "status"); !E.ok())
    return E;
  if (Code == 0 ||
      Code > static_cast<uint8_t>(ErrorCode::ResourceExhausted))
    return corrupt("status payload has an invalid error code");
  S = Status::make(static_cast<ErrorCode>(Code), std::move(Message),
                   std::move(Origin));
  if (RetryAfterMs)
    *RetryAfterMs = Hint;
  return Status();
}

std::vector<uint8_t> serve::encodePong(uint64_t Epoch) {
  serialize::ByteWriter W;
  W.writeU64(Epoch);
  return W.take();
}

std::vector<uint8_t> serve::encodePong(uint64_t Epoch,
                                       const PongLoad &Load) {
  serialize::ByteWriter W;
  W.writeU64(Epoch);
  W.writeU64(Load.JobsActive);
  W.writeU64(Load.CellsRunning);
  W.writeU64(Load.JobsShed);
  W.writeU64(Load.ConnsShed);
  return W.take();
}

Status serve::decodePong(const std::vector<uint8_t> &Payload,
                         uint64_t &Epoch, PongLoad *Load, bool *HasLoad) {
  if (Load)
    *Load = PongLoad();
  if (HasLoad)
    *HasLoad = false;
  if (Payload.empty()) {
    // A pre-epoch server answers PING with an empty PONG; treat that as
    // epoch 0 ("unknown") instead of a decode failure.
    Epoch = 0;
    return Status();
  }
  serialize::ByteReader R(Payload);
  Epoch = R.readU64();
  if (R.ok() && !R.atEnd()) {
    // The load snapshot rides behind the epoch; an epoch-only payload from
    // a pre-load server decodes with HasLoad false.
    PongLoad L;
    L.JobsActive = R.readU64();
    L.CellsRunning = R.readU64();
    L.JobsShed = R.readU64();
    L.ConnsShed = R.readU64();
    if (Status S = finishDecode(R, "pong"); !S.ok())
      return S;
    if (Load)
      *Load = L;
    if (HasLoad)
      *HasLoad = true;
    return Status();
  }
  return finishDecode(R, "pong");
}

void serve::encodeCellOutcome(serialize::ByteWriter &W,
                              const StatusOr<harness::CellResult> &Outcome) {
  W.writeU8(Outcome.ok() ? 1 : 0);
  if (Outcome.ok()) {
    const std::vector<uint8_t> Blob = harness::encodeCellResult(*Outcome);
    W.writeU64(Blob.size());
    W.writeBytes(Blob.data(), Blob.size());
  } else {
    W.writeU8(static_cast<uint8_t>(Outcome.status().code()));
    W.writeString(Outcome.status().message());
    W.writeString(Outcome.status().origin());
  }
}

Status serve::decodeCellOutcome(serialize::ByteReader &R,
                                StatusOr<harness::CellResult> &Outcome) {
  const uint8_t Ok = R.readU8();
  if (!R.ok())
    return corrupt("truncated cell outcome");
  if (Ok > 1)
    return corrupt("cell outcome has an invalid ok flag");
  if (Ok) {
    const uint64_t Size = R.readU64();
    if (!R.ok() || Size > R.remaining())
      return corrupt("cell outcome result blob is truncated");
    std::vector<uint8_t> Blob(Size);
    for (uint64_t I = 0; I < Size; ++I)
      Blob[I] = R.readU8();
    harness::CellResult Result;
    if (Status S = harness::decodeCellResult(Blob, Result); !S.ok())
      return S;
    Outcome = std::move(Result);
    return Status();
  }
  const uint8_t Code = R.readU8();
  std::string Message = R.readString();
  std::string Origin = R.readString();
  if (!R.ok())
    return corrupt("truncated cell outcome status");
  if (Code == 0 ||
      Code > static_cast<uint8_t>(ErrorCode::ResourceExhausted))
    return corrupt("cell outcome has an invalid error code");
  Outcome = Status::make(static_cast<ErrorCode>(Code), std::move(Message),
                         std::move(Origin));
  return Status();
}

std::vector<uint8_t> serve::encodeFetchReply(const FetchReplyData &Reply) {
  serialize::ByteWriter W;
  W.writeU64(Reply.Job);
  W.writeU32(static_cast<uint32_t>(Reply.Cells.size()));
  for (const StatusOr<harness::CellResult> &Cell : Reply.Cells)
    encodeCellOutcome(W, Cell);
  return W.take();
}

Status serve::decodeFetchReply(const std::vector<uint8_t> &Payload,
                               FetchReplyData &Reply) {
  serialize::ByteReader R(Payload);
  FetchReplyData Out;
  Out.Job = R.readU64();
  const uint32_t Count = R.readU32();
  if (!R.ok())
    return corrupt("truncated fetch-reply payload");
  if (Count > kMaxCellsPerSubmit)
    return corrupt("fetch-reply cell count exceeds the protocol bound");
  Out.Cells.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    StatusOr<harness::CellResult> Cell;
    if (Status S = decodeCellOutcome(R, Cell); !S.ok())
      return S;
    Out.Cells.push_back(std::move(Cell));
  }
  if (Status S = finishDecode(R, "fetch-reply"); !S.ok())
    return S;
  Reply = std::move(Out);
  return Status();
}

std::vector<uint8_t> serve::encodeRunCell(uint64_t Ticket,
                                          const harness::CellSpec &Spec) {
  serialize::ByteWriter W;
  W.writeU64(Ticket);
  harness::encodeCellSpec(W, Spec);
  return W.take();
}

Status serve::decodeRunCell(const std::vector<uint8_t> &Payload,
                            uint64_t &Ticket, harness::CellSpec &Spec) {
  serialize::ByteReader R(Payload);
  Ticket = R.readU64();
  if (Status S = harness::decodeCellSpec(R, Spec); !S.ok())
    return S;
  return finishDecode(R, "run-cell");
}

std::vector<uint8_t>
serve::encodeCellDone(uint64_t Ticket,
                      const StatusOr<harness::CellResult> &Outcome) {
  serialize::ByteWriter W;
  W.writeU64(Ticket);
  encodeCellOutcome(W, Outcome);
  return W.take();
}

Status serve::decodeCellDone(const std::vector<uint8_t> &Payload,
                             uint64_t &Ticket,
                             StatusOr<harness::CellResult> &Outcome) {
  serialize::ByteReader R(Payload);
  Ticket = R.readU64();
  if (Status S = decodeCellOutcome(R, Outcome); !S.ok())
    return S;
  return finishDecode(R, "cell-done");
}

std::vector<uint8_t> serve::encodeCellProgress(uint64_t Ticket) {
  serialize::ByteWriter W;
  W.writeU64(Ticket);
  return W.take();
}

Status serve::decodeCellProgress(const std::vector<uint8_t> &Payload,
                                 uint64_t &Ticket) {
  serialize::ByteReader R(Payload);
  Ticket = R.readU64();
  return finishDecode(R, "cell-progress");
}
