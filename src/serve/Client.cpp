//===- serve/Client.cpp - Campaign-service client library -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), Path(std::move(Other.Path)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Path = std::move(Other.Path);
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd != -1)
    ::close(Fd);
  Fd = -1;
}

Status Client::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::invariant(
        "socket path too long: " + std::to_string(SocketPath.size()) +
            " bytes exceeds the AF_UNIX sun_path limit of " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " (" + SocketPath +
            ")",
        "serve::Client");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  const int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::transient(std::string("socket(): ") + std::strerror(errno),
                             "serve::Client");
  while (::connect(S, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) != 0) {
    if (errno == EINTR) {
      // A signal landed mid-handshake.  The connection may still complete
      // in the background; retrying yields EISCONN when it did.
      continue;
    }
    if (errno == EISCONN)
      break;
    const Status St = Status::transient(std::string("connect(") + SocketPath +
                                            "): " + std::strerror(errno),
                                        "serve::Client");
    ::close(S);
    return St;
  }
  Fd = S;
  Path = SocketPath;
  return Status();
}

unsigned Client::backoffDelayMs(const RetryPolicy &Retry, unsigned Attempt,
                                uint32_t RetryAfterHintMs) {
  const uint64_t Shift = std::min<unsigned>(Attempt, 20);
  const uint64_t Base =
      RetryAfterHintMs ? RetryAfterHintMs : Retry.BaseDelayMs;
  // A brownout hint overrides the policy base (the server knows its own
  // backlog better than our default does) and also raises the cap floor:
  // the ceiling is never allowed below the hint, even when the policy's
  // MaxDelayMs is tighter.
  const uint64_t Ceiling =
      std::max<uint64_t>(Retry.MaxDelayMs, RetryAfterHintMs);
  uint64_t Cap = std::min<uint64_t>(Base << Shift, Ceiling);
  if (Cap == 0)
    return 0;
  // splitmix64 over (Seed, Attempt): same seed, same schedule — the
  // fault::Plan determinism model applied to backoff jitter.
  uint64_t X = Retry.Seed + 0x9E3779B97F4A7C15ull * (uint64_t(Attempt) + 1);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  const uint64_t Half = Cap / 2;
  return static_cast<unsigned>(Half + X % (Cap - Half + 1));
}

Status Client::connectWithRetry(const std::string &SocketPath,
                                const RetryPolicy &Retry) {
  Status Last = Status::transient("no connection attempts allowed",
                                  "serve::Client");
  const unsigned Attempts = std::max(1u, Retry.ConnectAttempts);
  for (unsigned A = 0; A < Attempts; ++A) {
    if (A > 0)
      ::usleep(backoffDelayMs(Retry, A - 1) * 1000u);
    Last = connect(SocketPath);
    if (Last.ok())
      return Last;
    if (Last.code() != ErrorCode::Transient)
      return Last; // an Invariant (bad path) never heals by retrying
  }
  return Status::transient("connect(" + SocketPath + ") failed after " +
                               std::to_string(Attempts) +
                               " attempts: " + Last.message(),
                           "serve::Client");
}

StatusOr<Frame> Client::roundTrip(MsgType Type,
                                  const std::vector<uint8_t> &Payload) {
  if (Fd == -1)
    return Status::invariant("client is not connected", "serve::Client");
  LastRetryAfterMs = 0;
  if (Status S = writeFrame(Fd, Type, Payload); !S.ok()) {
    close(); // transport failure: the stream is unusable
    return S;
  }
  StatusOr<Frame> Reply = readFrame(Fd);
  if (!Reply.ok()) {
    close(); // EOF, read error, or desynchronized stream
    return Reply.status();
  }
  if (Reply->Type == MsgType::Error) {
    Status Carried;
    uint32_t Hint = 0;
    if (Status S = decodeStatusPayload(Reply->Payload, Carried, &Hint);
        !S.ok()) {
      close();
      return S;
    }
    LastRetryAfterMs = Hint;
    return Carried;
  }
  return Reply;
}

Status Client::ping() {
  StatusOr<Frame> R = roundTrip(MsgType::Ping, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::Pong)
    return Status::corrupt("expected PONG, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

StatusOr<uint64_t> Client::health() {
  StatusOr<Frame> R = roundTrip(MsgType::Ping, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::Pong)
    return Status::corrupt("expected PONG, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  uint64_t Epoch = 0;
  if (Status S = decodePong(R->Payload, Epoch); !S.ok())
    return S;
  return Epoch;
}

StatusOr<PongLoad> Client::serverLoad(uint64_t *EpochOut) {
  StatusOr<Frame> R = roundTrip(MsgType::Ping, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::Pong)
    return Status::corrupt("expected PONG, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  uint64_t Epoch = 0;
  PongLoad Load;
  bool HasLoad = false;
  if (Status S = decodePong(R->Payload, Epoch, &Load, &HasLoad); !S.ok())
    return S;
  if (EpochOut)
    *EpochOut = Epoch;
  if (!HasLoad)
    return Status::notFound("server PONG carries no load snapshot "
                            "(pre-load daemon)",
                            "serve::Client");
  return Load;
}

StatusOr<uint64_t> Client::submit(const SubmitRequest &Req) {
  StatusOr<Frame> R = roundTrip(MsgType::Submit, encodeSubmit(Req));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::SubmitOk)
    return Status::corrupt("expected SUBMIT-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  uint64_t Job = 0;
  uint32_t Cells = 0;
  if (Status S = decodeSubmitOk(R->Payload, Job, Cells); !S.ok())
    return S;
  return Job;
}

StatusOr<JobStatusReply> Client::status(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::StatusReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::StatusReply)
    return Status::corrupt("expected STATUS-REPLY, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  JobStatusReply Reply;
  if (Status S = decodeStatusReply(R->Payload, Reply); !S.ok())
    return S;
  return Reply;
}

StatusOr<FetchReplyData> Client::fetch(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::FetchReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::FetchReply)
    return Status::corrupt("expected FETCH-REPLY, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  FetchReplyData Reply;
  if (Status S = decodeFetchReply(R->Payload, Reply); !S.ok())
    return S;
  return Reply;
}

Status Client::ack(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::AckReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::AckOk)
    return Status::corrupt("expected ACK-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

Status Client::cancel(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::CancelReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::CancelOk)
    return Status::corrupt("expected CANCEL-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

Status Client::shutdownServer() {
  StatusOr<Frame> R = roundTrip(MsgType::Shutdown, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::ShutdownOk)
    return Status::corrupt("expected SHUTDOWN-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

StatusOr<FetchReplyData> Client::runCampaign(const SubmitRequest &Req,
                                             unsigned PollIntervalMs,
                                             const RetryPolicy &Retry) {
  if (Fd == -1)
    return Status::invariant("client is not connected", "serve::Client");

  // The resilience invariant throughout: resubmitting is ALWAYS safe,
  // because the server dedups on the request digest — at worst it answers
  // with the id of work it already owns.  The epoch only optimizes the
  // same-daemon blip (keep the job id, skip the resubmit).
  uint64_t Epoch = 0; // 0 = unknown
  if (StatusOr<uint64_t> H = health(); H.ok())
    Epoch = *H;

  uint64_t Job = 0;
  bool HaveJob = false;
  unsigned Resubmits = 0;

  while (true) {
    if (!connected()) {
      if (Status S = connectWithRetry(Path, Retry); !S.ok())
        return S;
      StatusOr<uint64_t> H = health();
      if (!H.ok()) {
        if (connected())
          return H.status();
        continue; // the daemon died again under the ping; reconnect
      }
      if (Epoch == 0 || *H == 0 || *H != Epoch)
        HaveJob = false; // restarted (or unknowable): resubmit idempotently
      Epoch = *H;
    }

    if (!HaveJob) {
      if (Resubmits++ >= std::max(1u, Retry.MaxResubmits))
        return Status::transient("campaign did not survive the daemon: " +
                                     std::to_string(Resubmits - 1) +
                                     " (re)submits exhausted",
                                 "serve::Client");
      StatusOr<uint64_t> JobOr = submit(Req);
      if (!JobOr.ok()) {
        if (!connected())
          continue; // transport died mid-submit; reconnect and retry
        if (JobOr.status().code() == ErrorCode::ResourceExhausted &&
            lastRetryAfterMs() != 0) {
          // Overload brownout: the shed carried a retry-after hint, so the
          // saturation is transient — back off (hint-based, deterministic
          // from the seed) and resubmit instead of giving up.  Bounded by
          // MaxResubmits like every other resubmit.
          ::usleep(backoffDelayMs(Retry, Resubmits, lastRetryAfterMs()) *
                   1000u);
          continue;
        }
        return JobOr.status(); // the server answered: a real rejection
      }
      Job = *JobOr;
      HaveJob = true;
    }

    StatusOr<JobStatusReply> S = status(Job);
    if (!S.ok()) {
      if (!connected())
        continue;
      if (S.status().code() == ErrorCode::NotFound) {
        HaveJob = false; // job evaporated (restart without durability, GC)
        continue;
      }
      return S.status();
    }
    if (S->State == JobState::Done || S->State == JobState::Cancelled) {
      StatusOr<FetchReplyData> R = fetch(Job);
      if (R.ok())
        return R;
      if (!connected())
        continue;
      if (R.status().code() == ErrorCode::NotFound) {
        HaveJob = false;
        continue;
      }
      if (R.status().code() == ErrorCode::Transient) {
        // A deduped resubmit can briefly disagree about doneness.
        ::usleep(PollIntervalMs * 1000);
        continue;
      }
      return R.status();
    }
    ::usleep(PollIntervalMs * 1000);
  }
}
