//===- serve/Client.cpp - Campaign-service client library -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd != -1)
    ::close(Fd);
  Fd = -1;
}

Status Client::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::invariant("socket path too long: " + SocketPath,
                             "serve::Client");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  const int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::transient(std::string("socket(): ") + std::strerror(errno),
                             "serve::Client");
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    const Status St = Status::transient(std::string("connect(") + SocketPath +
                                            "): " + std::strerror(errno),
                                        "serve::Client");
    ::close(S);
    return St;
  }
  Fd = S;
  return Status();
}

StatusOr<Frame> Client::roundTrip(MsgType Type,
                                  const std::vector<uint8_t> &Payload) {
  if (Fd == -1)
    return Status::invariant("client is not connected", "serve::Client");
  if (Status S = writeFrame(Fd, Type, Payload); !S.ok())
    return S;
  StatusOr<Frame> Reply = readFrame(Fd);
  if (!Reply.ok())
    return Reply.status();
  if (Reply->Type == MsgType::Error) {
    Status Carried;
    if (Status S = decodeStatusPayload(Reply->Payload, Carried); !S.ok())
      return S;
    return Carried;
  }
  return Reply;
}

Status Client::ping() {
  StatusOr<Frame> R = roundTrip(MsgType::Ping, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::Pong)
    return Status::corrupt("expected PONG, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

StatusOr<uint64_t> Client::submit(const SubmitRequest &Req) {
  StatusOr<Frame> R = roundTrip(MsgType::Submit, encodeSubmit(Req));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::SubmitOk)
    return Status::corrupt("expected SUBMIT-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  uint64_t Job = 0;
  uint32_t Cells = 0;
  if (Status S = decodeSubmitOk(R->Payload, Job, Cells); !S.ok())
    return S;
  return Job;
}

StatusOr<JobStatusReply> Client::status(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::StatusReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::StatusReply)
    return Status::corrupt("expected STATUS-REPLY, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  JobStatusReply Reply;
  if (Status S = decodeStatusReply(R->Payload, Reply); !S.ok())
    return S;
  return Reply;
}

StatusOr<FetchReplyData> Client::fetch(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::FetchReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::FetchReply)
    return Status::corrupt("expected FETCH-REPLY, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  FetchReplyData Reply;
  if (Status S = decodeFetchReply(R->Payload, Reply); !S.ok())
    return S;
  return Reply;
}

Status Client::cancel(uint64_t Job) {
  StatusOr<Frame> R = roundTrip(MsgType::CancelReq, encodeJobId(Job));
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::CancelOk)
    return Status::corrupt("expected CANCEL-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

Status Client::shutdownServer() {
  StatusOr<Frame> R = roundTrip(MsgType::Shutdown, {});
  if (!R.ok())
    return R.status();
  if (R->Type != MsgType::ShutdownOk)
    return Status::corrupt("expected SHUTDOWN-OK, got message type " +
                               std::to_string(static_cast<unsigned>(R->Type)),
                           "serve::Client");
  return Status();
}

StatusOr<FetchReplyData> Client::runCampaign(const SubmitRequest &Req,
                                             unsigned PollIntervalMs) {
  StatusOr<uint64_t> Job = submit(Req);
  if (!Job.ok())
    return Job.status();
  while (true) {
    StatusOr<JobStatusReply> S = status(*Job);
    if (!S.ok())
      return S.status();
    if (S->State == JobState::Done || S->State == JobState::Cancelled)
      break;
    ::usleep(PollIntervalMs * 1000);
  }
  return fetch(*Job);
}
