//===- serve/HostileClient.cpp - Deterministic adversarial client ---------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/HostileClient.h"

#include "serve/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace dmp;
using namespace dmp::serve;

namespace {

uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  return X;
}

/// A well-formed, accept-able SUBMIT payload varied by \p Salt so the
/// request digest differs per op — the storm must defeat idempotent dedup
/// to actually pressure admission control.
std::vector<uint8_t> stormSubmit(uint64_t Salt) {
  harness::CellSpec Spec;
  Spec.Benchmark = "mcf";
  Spec.Algo = "all";
  // Tiny but valid budgets: the point is the submit rate, not the work.
  Spec.SimInstrs = 1'000 + (Salt % 251);
  Spec.ProfileInstrs = 4'000 + (Salt / 251 % 251);
  SubmitRequest Req;
  Req.Cells.push_back(Spec);
  return encodeSubmit(Req);
}

} // namespace

const char *dmp::serve::hostileAttackName(HostileAttack Kind) {
  switch (Kind) {
  case HostileAttack::HalfOpen:
    return "half-open";
  case HostileAttack::DripHeader:
    return "drip-header";
  case HostileAttack::NeverRead:
    return "never-read";
  case HostileAttack::SubmitStorm:
    return "submit-storm";
  }
  return "unknown";
}

HostileClient::HostileClient(std::string TargetPath, HostilePlan Plan)
    : TargetPath(std::move(TargetPath)), Plan(Plan) {}

HostileClient::~HostileClient() { stop(); }

uint64_t HostileClient::mix(const HostilePlan &Plan, uint64_t Site,
                            uint64_t Op) {
  return mix64(Plan.Seed * 0x9E3779B97F4A7C15ull + mix64(Site + 0x100) +
               mix64(Op + 0x10000));
}

Status HostileClient::start() {
  if (Running)
    return Status::invariant("hostile client already started",
                             "serve::HostileClient");
  if (::pipe(StopPipe) != 0)
    return Status::transient(std::string("pipe(): ") + std::strerror(errno),
                             "serve::HostileClient");
  Running = true;
  Attacker = std::thread([this] { run(); });
  return Status();
}

void HostileClient::stop() {
  if (!Running)
    return;
  const uint8_t Byte = 1;
  [[maybe_unused]] ssize_t N = ::write(StopPipe[1], &Byte, 1);
  Attacker.join();
  Running = false;
  ::close(StopPipe[0]);
  ::close(StopPipe[1]);
  StopPipe[0] = StopPipe[1] = -1;
}

void HostileClient::run() {
  struct Slot {
    int Fd = -1;
    uint64_t Site = 0; ///< connection serial: the determinism site
    uint64_t Op = 0;   ///< per-connection op counter
    std::vector<uint8_t> Drip; ///< DripHeader: the frame being dribbled
    size_t DripAt = 0;
  };
  std::vector<Slot> Slots(std::max(1u, Plan.Connections));
  uint64_t NextSite = 0;

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, TargetPath.c_str(),
              std::min(TargetPath.size() + 1, sizeof(Addr.sun_path)));

  const std::vector<uint8_t> PingFrame = encodeFrame(MsgType::Ping, {});

  auto Recycle = [](Slot &S) {
    if (S.Fd != -1)
      ::close(S.Fd);
    S.Fd = -1;
    S.Op = 0;
    S.Drip.clear();
    S.DripAt = 0;
  };

  // Best-effort nonblocking send of one whole buffer.  Partial sends and
  // EAGAIN are fine for an attacker (the bytes that made it still poke the
  // server); a hard error means the daemon dropped us — the caller
  // recycles the slot and that is the defense working.
  auto TrySend = [](int Fd, const uint8_t *Data, size_t N) -> bool {
    size_t Sent = 0;
    while (Sent < N) {
      const ssize_t W =
          ::send(Fd, Data + Sent, N - Sent, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      Sent += static_cast<size_t>(W);
    }
    return true;
  };

  while (true) {
    // One pacing tick, interruptible by stop().
    pollfd StopP = {StopPipe[0], POLLIN, 0};
    const int TickMs = std::max(1u, Plan.PaceUs / 1000u);
    if (::poll(&StopP, 1, TickMs) < 0 && errno != EINTR)
      break;
    if (StopP.revents & POLLIN)
      break;

    for (Slot &S : Slots) {
      // (Re)connect a free slot.  Refusals are routine under attack — the
      // accept cap or a full backlog is the daemon defending itself.
      if (S.Fd == -1) {
        const int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (Fd < 0)
          continue;
        if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)) != 0) {
          ::close(Fd);
          continue;
        }
        S.Fd = Fd;
        S.Site = NextSite++;
        S.Op = 0;
        Connects.fetch_add(1, std::memory_order_relaxed);
        if (Plan.Kind == HostileAttack::DripHeader) {
          S.Drip = encodeFrame(MsgType::Submit,
                               stormSubmit(mix(Plan, S.Site, 0)));
          S.DripAt = 0;
        }
        if (Plan.Kind == HostileAttack::HalfOpen &&
            (mix(Plan, S.Site, 0) & 1)) {
          // Half the sites send the first magic byte, parking the server
          // mid-frame; the others squat in the pre-frame idle state.
          const uint8_t First = static_cast<uint8_t>(kFrameMagic & 0xFF);
          (void)TrySend(S.Fd, &First, 1);
        }
        continue; // first attack op on the next tick
      }

      // Detect the daemon having dropped us (shed, deadline, hygiene):
      // attackers never read, so closure shows up as readable-EOF/RST.
      uint8_t Peek;
      const ssize_t P = ::recv(S.Fd, &Peek, 1, MSG_PEEK | MSG_DONTWAIT);
      if (P == 0 || (P < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        Recycle(S);
        continue;
      }

      switch (Plan.Kind) {
      case HostileAttack::HalfOpen:
        // Hold in silence.  The slot only recycles when the daemon sheds
        // it (detected above), which keeps the connect pressure on.
        break;

      case HostileAttack::DripHeader: {
        // Slowloris: one byte per tick, so the frame takes
        // Drip.size() * PaceUs to complete — far beyond any sane read
        // deadline.
        if (S.DripAt < S.Drip.size()) {
          if (!TrySend(S.Fd, &S.Drip[S.DripAt], 1)) {
            Recycle(S);
            break;
          }
          ++S.DripAt;
          Ops.fetch_add(1, std::memory_order_relaxed);
        }
        if (++S.Op >= Plan.OpsPerConn || S.DripAt >= S.Drip.size())
          Recycle(S);
        break;
      }

      case HostileAttack::NeverRead: {
        // Flood PINGs and never read a PONG: replies pile up in the
        // kernel buffer first, then in the server's outbound queue until
        // its write budget drops us.  A burst per tick keeps the flood
        // ahead of the tick granularity.
        bool Dead = false;
        for (unsigned B = 0; B < 16 && !Dead; ++B) {
          if (!TrySend(S.Fd, PingFrame.data(), PingFrame.size())) {
            Dead = true;
            break;
          }
          Ops.fetch_add(1, std::memory_order_relaxed);
        }
        if (Dead || ++S.Op >= Plan.OpsPerConn)
          Recycle(S);
        break;
      }

      case HostileAttack::SubmitStorm: {
        // Well-formed, dedup-proof submits.  Replies are drained and
        // discarded so the storm pressures admission control, not the
        // write budget.
        const std::vector<uint8_t> F = encodeFrame(
            MsgType::Submit, stormSubmit(mix(Plan, S.Site, S.Op)));
        if (!TrySend(S.Fd, F.data(), F.size())) {
          Recycle(S);
          break;
        }
        Ops.fetch_add(1, std::memory_order_relaxed);
        uint8_t Sink[4096];
        while (::recv(S.Fd, Sink, sizeof(Sink), MSG_DONTWAIT) > 0)
          ;
        if (++S.Op >= Plan.OpsPerConn)
          Recycle(S);
        break;
      }
      }
    }
  }

  for (Slot &S : Slots)
    Recycle(S);
}
