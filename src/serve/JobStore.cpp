//===- serve/JobStore.cpp - Durable job records for dmp_served ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/JobStore.h"

using namespace dmp;
using namespace dmp::serve;

namespace {

constexpr uint8_t kRecordVersion = 1;
constexpr uint8_t kIndexVersion = 1;

Status corrupt(std::string Msg) {
  return Status::corrupt(std::move(Msg), "serve::JobStore");
}

/// The one well-known address in the cache: the active-jobs index.
serialize::Digest indexKey() {
  const char Domain[] = "dmp-serve-active-index-v1";
  return serialize::Hasher::hash(Domain, sizeof(Domain) - 1);
}

std::vector<uint8_t> encodeRecord(const JobRecord &Record) {
  serialize::ByteWriter W;
  W.writeU8(kRecordVersion);
  W.writeU8(Record.Acked ? 1 : 0);
  if (Record.Acked) {
    // Tombstone: the request and outcomes are gone for good, so a later
    // identical submit starts a fresh run instead of replaying results.
    W.writeU64(0);
    W.writeU32(0);
    return W.take();
  }
  const std::vector<uint8_t> Req = encodeSubmit(Record.Request);
  W.writeU64(Req.size());
  W.writeBytes(Req.data(), Req.size());
  W.writeU32(static_cast<uint32_t>(Record.Outcomes.size()));
  for (const std::optional<StatusOr<harness::CellResult>> &O :
       Record.Outcomes) {
    W.writeU8(O.has_value() ? 1 : 0);
    if (O)
      encodeCellOutcome(W, *O);
  }
  return W.take();
}

Status decodeRecord(const std::vector<uint8_t> &Blob, JobRecord &Record) {
  serialize::ByteReader R(Blob);
  const uint8_t Version = R.readU8();
  const uint8_t Acked = R.readU8();
  if (!R.ok())
    return corrupt("truncated job record");
  if (Version != kRecordVersion)
    return corrupt("job record version " + std::to_string(Version) +
                   " is not supported");
  if (Acked > 1)
    return corrupt("job record has an invalid acked flag");
  JobRecord Out;
  Out.Acked = Acked == 1;
  const uint64_t ReqLen = R.readU64();
  if (!R.ok() || ReqLen > R.remaining())
    return corrupt("job record request blob is truncated");
  std::vector<uint8_t> Req(ReqLen);
  for (uint64_t I = 0; I < ReqLen; ++I)
    Req[I] = R.readU8();
  if (ReqLen > 0) {
    if (Status S = decodeSubmit(Req, Out.Request); !S.ok())
      return S;
  }
  const uint32_t Count = R.readU32();
  if (!R.ok())
    return corrupt("truncated job record");
  if (Count > kMaxCellsPerSubmit)
    return corrupt("job record cell count exceeds the protocol bound");
  Out.Outcomes.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    const uint8_t Present = R.readU8();
    if (!R.ok())
      return corrupt("truncated job record");
    if (Present > 1)
      return corrupt("job record has an invalid outcome-present flag");
    if (Present) {
      StatusOr<harness::CellResult> Outcome;
      if (Status S = decodeCellOutcome(R, Outcome); !S.ok())
        return S;
      Out.Outcomes.push_back(std::move(Outcome));
    } else {
      Out.Outcomes.emplace_back();
    }
  }
  if (!R.ok())
    return corrupt("truncated job record");
  if (!R.atEnd())
    return corrupt("job record has trailing bytes");
  if (!Out.Acked && Out.Outcomes.size() != Out.Request.Cells.size())
    return corrupt("job record outcome count does not match its request");
  Record = std::move(Out);
  return Status();
}

} // namespace

JobStore::JobStore(std::shared_ptr<serialize::ArtifactCache> Cache)
    : Cache(std::move(Cache)) {
  // Load the active index once; a missing or corrupt index blob means "no
  // jobs owed" (the records themselves are still healed by resubmission).
  StatusOr<std::vector<uint8_t>> Blob = this->Cache->load(indexKey());
  if (!Blob.ok())
    return;
  serialize::ByteReader R(*Blob);
  const uint8_t Version = R.readU8();
  const uint32_t Count = R.readU32();
  if (!R.ok() || Version != kIndexVersion)
    return;
  for (uint32_t I = 0; I < Count && R.ok(); ++I) {
    serialize::Digest Key;
    for (uint8_t &B : Key.Bytes)
      B = R.readU8();
    if (R.ok())
      Index.emplace(Key.hex(), Key);
  }
  if (!R.ok() || !R.atEnd())
    Index.clear();
}

Status JobStore::persistIndex() {
  serialize::ByteWriter W;
  W.writeU8(kIndexVersion);
  W.writeU32(static_cast<uint32_t>(Index.size()));
  for (const auto &[Hex, Key] : Index)
    W.writeBytes(Key.Bytes.data(), Key.Bytes.size());
  return Cache->store(indexKey(), W.bytes());
}

StatusOr<JobRecord> JobStore::load(const serialize::Digest &Key) {
  StatusOr<std::vector<uint8_t>> Blob = Cache->load(Key);
  if (!Blob.ok())
    return Blob.status();
  JobRecord Record;
  if (Status S = decodeRecord(*Blob, Record); !S.ok())
    return S;
  return Record;
}

Status JobStore::checkpoint(const serialize::Digest &Key,
                            const JobRecord &Record) {
  return Cache->store(Key, encodeRecord(Record));
}

Status JobStore::markAcked(const serialize::Digest &Key) {
  JobRecord Tombstone;
  Tombstone.Acked = true;
  Status S = checkpoint(Key, Tombstone);
  Status I = removeFromIndex(Key);
  return S.ok() ? I : S;
}

std::vector<serialize::Digest> JobStore::indexed() const {
  std::vector<serialize::Digest> Keys;
  Keys.reserve(Index.size());
  for (const auto &[Hex, Key] : Index)
    Keys.push_back(Key);
  return Keys;
}

Status JobStore::addToIndex(const serialize::Digest &Key) {
  if (!Index.emplace(Key.hex(), Key).second)
    return Status();
  return persistIndex();
}

Status JobStore::removeFromIndex(const serialize::Digest &Key) {
  if (Index.erase(Key.hex()) == 0)
    return Status();
  return persistIndex();
}
