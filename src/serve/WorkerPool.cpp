//===- serve/WorkerPool.cpp - Forked cell-worker processes ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/WorkerPool.h"

#include "serialize/ArtifactCache.h"
#include "serve/Protocol.h"
#include "support/ExitCodes.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

/// Minimum wall time between two CELL_PROGRESS heartbeats.  The sim-plane
/// Progress hook fires every sim::kCancelPollInstrs retired instructions —
/// far more often than the supervisor needs — so the worker thins the beat
/// stream down to this cadence to keep the socketpair traffic negligible.
constexpr auto kHeartbeatInterval = std::chrono::milliseconds(50);

/// Parses a crash-injection ticket from \p EnvVar; ~0ull means unarmed.
uint64_t ticketFromEnv(const char *EnvVar) {
  const char *Env = std::getenv(EnvVar);
  if (!Env)
    return ~0ull;
  char *End = nullptr;
  const uint64_t V = std::strtoull(Env, &End, 10);
  return (End != Env && *End == '\0') ? V : ~0ull;
}

} // namespace

WorkerPool::WorkerPool(WorkerPoolOptions Opts) : Options(std::move(Opts)) {
  KillOnDispatchTicket = ticketFromEnv("DMP_SERVE_KILL_ON_DISPATCH_TICKET");
  Slots.resize(Options.Workers);
  for (Slot &S : Slots)
    spawn(S);
}

WorkerPool::~WorkerPool() {
  for (Slot &S : Slots) {
    if (S.Fd != -1)
      ::close(S.Fd);
    S.Fd = -1;
  }
  for (Slot &S : Slots) {
    if (S.Pid > 0)
      ::waitpid(S.Pid, nullptr, 0);
    S.Pid = -1;
  }
}

std::vector<pid_t> WorkerPool::pids() const {
  std::vector<pid_t> Out;
  for (const Slot &S : Slots)
    if (S.Pid > 0)
      Out.push_back(S.Pid);
  return Out;
}

void WorkerPool::spawn(Slot &S) {
  int Pair[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair) != 0) {
    S = Slot();
    return;
  }
  const pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pair[0]);
    ::close(Pair[1]);
    S = Slot();
    return;
  }
  if (Pid == 0) {
    // Child: drop the supervisor end, any server fds, and the other
    // workers' supervisor ends, then loop until EOF.
    ::close(Pair[0]);
    for (const Slot &Other : Slots)
      if (Other.Fd != -1)
        ::close(Other.Fd);
    if (Options.InChild)
      Options.InChild();
    workerMain(Pair[1], Options.UseCache ? Options.CacheDir : std::string(),
               Options.UseCache);
  }
  ::close(Pair[1]);
  S = Slot();
  S.Pid = Pid;
  S.Fd = Pair[0];
}

Status WorkerPool::dispatch(unsigned W, uint64_t Ticket,
                            const std::vector<uint8_t> &RunCellPayload) {
  Slot &S = Slots[W];
  if (S.Fd == -1)
    return Status::transient("worker slot is dead", "serve::WorkerPool");
  if (Ticket == KillOnDispatchTicket) {
    // Test hook: the worker dies under this very dispatch — kill and reap
    // it before the write so writeFrame() fails with EPIPE, the exact
    // interleaving where the supervisor must undo its own bookkeeping
    // (the pool never learns of the ticket).
    KillOnDispatchTicket = ~0ull;
    if (S.Pid > 0) {
      ::kill(S.Pid, SIGKILL);
      ::waitpid(S.Pid, nullptr, 0);
      S.Pid = -1;
    }
  }
  if (Status St = writeFrame(S.Fd, MsgType::RunCell, RunCellPayload);
      !St.ok())
    return St;
  S.Busy = true;
  S.HasTicket = true;
  S.Ticket = Ticket;
  return Status();
}

void WorkerPool::complete(unsigned W) {
  Slots[W].Busy = false;
  Slots[W].HasTicket = false;
}

void WorkerPool::killWorker(unsigned W) {
  Slot &S = Slots[W];
  if (S.Pid > 0)
    ::kill(S.Pid, SIGKILL);
}

WorkerPool::CrashReport WorkerPool::onWorkerDeath(unsigned W, bool Respawn) {
  Slot &S = Slots[W];
  CrashReport Report;
  Report.HadTicket = S.HasTicket;
  Report.Ticket = S.Ticket;
  if (S.Fd != -1)
    ::close(S.Fd);
  if (S.Pid > 0)
    ::waitpid(S.Pid, nullptr, 0);
  S = Slot();
  if (Respawn)
    spawn(S);
  return Report;
}

int WorkerPool::idleWorker() const {
  for (unsigned W = 0; W < Slots.size(); ++W)
    if (Slots[W].Fd != -1 && !Slots[W].Busy)
      return static_cast<int>(W);
  return -1;
}

void WorkerPool::workerMain(int Fd, const std::string &CacheDir,
                            bool UseCache) {
  // A worker must never die of SIGPIPE (the supervisor vanishing shows up
  // as EOF/EPIPE Status instead) and must not react to the terminal's
  // SIGINT: the supervisor drains it by closing the socketpair.
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGINT, SIG_IGN);

  // Crash-injection hooks for the isolation tests: CRASH_TICKET dies the
  // moment the named dispatch ticket arrives (the result is lost and must
  // be recomputed); EXIT_AFTER_TICKET dies right after flushing that
  // ticket's CellDone (the result is on the wire and must NOT be
  // recomputed).
  const uint64_t CrashTicket = ticketFromEnv("DMP_SERVE_CRASH_TICKET");
  const uint64_t ExitAfterTicket = ticketFromEnv("DMP_SERVE_EXIT_AFTER_TICKET");
  // Liveness-injection hook for the watchdog tests: the worker that
  // receives this ticket wedges forever — no heartbeats, no CellDone, no
  // exit — exactly the failure mode EOF supervision cannot see.
  const uint64_t HangTicket = ticketFromEnv("DMP_SERVE_HANG_ON_TICKET");

  // One cache handle for the worker's lifetime: the shared
  // content-addressed store is what makes the service's cache warm across
  // jobs, clients, and worker generations.
  std::shared_ptr<serialize::ArtifactCache> Cache;
  if (UseCache && !CacheDir.empty())
    Cache = std::make_shared<serialize::ArtifactCache>(CacheDir);

  while (true) {
    StatusOr<Frame> F = readFrame(Fd);
    if (!F.ok())
      ::_exit(F.status().code() == ErrorCode::NotFound ? 0 : 1);
    if (F->Type != MsgType::RunCell)
      ::_exit(1);

    uint64_t Ticket = 0;
    harness::CellSpec Spec;
    StatusOr<harness::CellResult> Outcome =
        Status::invariant("cell never ran", "serve::WorkerPool");
    if (Status S = decodeRunCell(F->Payload, Ticket, Spec); !S.ok()) {
      Outcome = S;
    } else {
      if (Ticket == CrashTicket)
        ::_exit(exitcode::CrashChild);
      if (Ticket == HangTicket)
        while (true)
          ::pause();
      // First beat at receipt: it starts the supervisor's silence clock at
      // "the cell is in the worker's hands" and covers the profile/select
      // stages that run before the instrumented simulation loop starts.
      (void)writeFrame(Fd, MsgType::CellProgress, encodeCellProgress(Ticket));
      auto LastBeat = std::chrono::steady_clock::now();
      Outcome = harness::runCellSpec(Spec, Cache, [&] {
        const auto Now = std::chrono::steady_clock::now();
        if (Now - LastBeat < kHeartbeatInterval)
          return;
        LastBeat = Now;
        // A dead supervisor makes this write fail; the loop's next read
        // sees the EOF and exits, so the failure is deliberately ignored.
        (void)writeFrame(Fd, MsgType::CellProgress,
                         encodeCellProgress(Ticket));
      });
    }
    if (Status S =
            writeFrame(Fd, MsgType::CellDone, encodeCellDone(Ticket, Outcome));
        !S.ok())
      ::_exit(1);
    if (Ticket == ExitAfterTicket)
      ::_exit(exitcode::CrashChild);
  }
}
