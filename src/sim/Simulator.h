//===- sim/Simulator.h - Simulation entry points ---------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points for running the baseline and DMP machines on a
/// program + input image.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_SIMULATOR_H
#define DMP_SIM_SIMULATOR_H

#include "core/DivergeInfo.h"
#include "ir/Program.h"
#include "sim/FinalState.h"
#include "sim/SimConfig.h"
#include "sim/SimStats.h"

#include <vector>

namespace dmp::sim {

/// Runs the baseline (no dynamic predication) machine.  \p FinalStateOut
/// (optional) receives the retired architectural state.
SimStats simulateBaseline(const ir::Program &P,
                          const std::vector<int64_t> &MemoryImage,
                          const SimConfig &Config = SimConfig(),
                          FinalState *FinalStateOut = nullptr);

/// Runs the DMP machine with the given diverge-branch annotations.
/// \p FinalStateOut (optional) receives the retired architectural state.
SimStats simulateDmp(const ir::Program &P, const core::DivergeMap &Diverge,
                     const std::vector<int64_t> &MemoryImage,
                     const SimConfig &Config = SimConfig(),
                     FinalState *FinalStateOut = nullptr);

} // namespace dmp::sim

#endif // DMP_SIM_SIMULATOR_H
