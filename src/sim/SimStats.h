//===- sim/SimStats.h - Simulation statistics ------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything one simulation run measures.  The benches derive the paper's
/// metrics from these: IPC (Table 2, Figures 5/7/8/9), pipeline flushes per
/// kilo-instruction (Figure 6), MPKI (Table 2), dpred-mode behavior, and
/// confidence-estimator accuracy (Acc_Conf).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_SIMSTATS_H
#define DMP_SIM_SIMSTATS_H

#include <cstdint>
#include <string>

namespace dmp::sim {

/// Counters of one simulation run.
struct SimStats {
  // Progress.
  uint64_t RetiredInstrs = 0; ///< Program (correct-path) instructions.
  uint64_t Cycles = 0;

  // Branches.
  uint64_t CondBranches = 0;
  uint64_t Mispredictions = 0; ///< Direction mispredictions (all).
  uint64_t Flushes = 0;        ///< Pipeline flushes actually taken.
  uint64_t BtbMissBubbles = 0;
  uint64_t RasMispredicts = 0;

  // Confidence estimator.
  uint64_t LowConfBranches = 0;
  uint64_t LowConfMispredicted = 0;

  // dpred-mode.
  uint64_t DpredEntries = 0;
  uint64_t DpredEntriesLoop = 0;
  uint64_t DpredEntriesAlways = 0; ///< Short hammocks (confidence bypassed).
  uint64_t DpredMerged = 0;        ///< Both paths reached a CFM point.
  uint64_t DpredNoMerge = 0;       ///< Episode ended at branch resolution.
  uint64_t DpredSavedFlushes = 0;  ///< Mispredicted diverge branches whose
                                   ///< flush dynamic predication avoided.
  uint64_t DpredWastedEntries = 0; ///< Entered for correctly predicted br.
  uint64_t DpredAborted = 0;       ///< Inner misprediction aborted episode.
  uint64_t DpredActiveAtEnd = 0;   ///< 1 when the run halted mid-episode.
                                   ///< Closes the episode-accounting books:
                                   ///< DpredEntries == merged + no-merge +
                                   ///< aborted + loop outcomes + this.
  uint64_t UsefulDpredInstrs = 0;  ///< Correct-path instrs fetched in dpred.
  uint64_t UselessDpredInstrs = 0; ///< Wrong-path instrs fetched in dpred.
  uint64_t SelectUops = 0;

  // Loop dpred outcomes (Section 5.1 taxonomy).
  uint64_t LoopCorrect = 0;
  uint64_t LoopEarlyExit = 0;
  uint64_t LoopLateExit = 0;
  uint64_t LoopNoExit = 0;
  uint64_t LoopExtraIterInstrs = 0;

  // Memory.
  uint64_t IL1Misses = 0;
  uint64_t DL1Misses = 0;
  uint64_t L2Misses = 0;

  double ipc() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(RetiredInstrs) /
                             static_cast<double>(Cycles);
  }

  /// Branch mispredictions per kilo-instruction (Table 2's MPKI).
  double mpki() const {
    return RetiredInstrs == 0 ? 0.0
                              : 1000.0 * static_cast<double>(Mispredictions) /
                                    static_cast<double>(RetiredInstrs);
  }

  /// Pipeline flushes per kilo-instruction (Figure 6's metric).
  double flushesPerKiloInstr() const {
    return RetiredInstrs == 0 ? 0.0
                              : 1000.0 * static_cast<double>(Flushes) /
                                    static_cast<double>(RetiredInstrs);
  }

  /// Measured Acc_Conf (PVN) of the confidence estimator.
  double accConf() const {
    return LowConfBranches == 0
               ? 0.0
               : static_cast<double>(LowConfMispredicted) /
                     static_cast<double>(LowConfBranches);
  }

  /// Average select-µops per dpred entry (paper Section 4.4 reports the
  /// overhead as < 0.5 fetch cycles per entry).
  double selectUopsPerEntry() const {
    return DpredEntries == 0 ? 0.0
                             : static_cast<double>(SelectUops) /
                                   static_cast<double>(DpredEntries);
  }

  std::string toString() const;
};

} // namespace dmp::sim

#endif // DMP_SIM_SIMSTATS_H
