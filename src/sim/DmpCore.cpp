//===- sim/DmpCore.cpp - Cycle-level DMP out-of-order core --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/DmpCore.h"

#include "sim/WrongPathWalker.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::sim;

DmpCore::DmpCore(const Program &P, const core::DivergeMap *Diverge,
                 const SimConfig &Config)
    : P(P), Diverge(Diverge), Config(Config),
      DmpEnabled(Config.EnableDmp && Diverge != nullptr),
      FetchWidth(Config.FetchWidth), RetireWidth(Config.RetireWidth),
      MaxNtBranches(Config.MaxNotTakenBranchesPerFetch),
      FrontEndDepth(Config.FrontEndDepth), RobSize(Config.RobSize),
      FetchLineShift(log2Floor(Config.Memory.LineBytes)),
      IL1Latency(Config.Memory.IL1Latency),
      Predictor(uarch::createPredictor(Config.Predictor)),
      Confidence(Config.ConfIndexBits, Config.ConfHistoryBits,
                 Config.ConfThreshold),
      Btb(Config.BtbEntries), Ras(Config.RasEntries), Memory(Config.Memory),
      IssuePorts(Config.IssueWidth), RobRetireRing(Config.RobSize, 0) {
  for (unsigned OpVal = 0; OpVal < NumOpcodeValues; ++OpVal)
    OpLatency[OpVal] = static_cast<uint8_t>(
        Config.latencyFor(static_cast<Opcode>(OpVal)));
}

//===----------------------------------------------------------------------===//
// Fetch engine
//===----------------------------------------------------------------------===//

void DmpCore::redirectFetch(uint64_t Cycle) {
  if (Cycle > FetchCycle) {
    FetchCycle = Cycle;
    SlotsUsed = 0;
    NtBranchesThisCycle = 0;
  } else {
    // Redirect into the past cannot happen; same-cycle redirect restarts
    // the fetch group.
    SlotsUsed = 0;
    NtBranchesThisCycle = 0;
  }
}

void DmpCore::consumeFetchSlots(unsigned Count) {
  for (unsigned I = 0; I < Count; ++I) {
    if (SlotsUsed >= FetchWidth) {
      ++FetchCycle;
      SlotsUsed = 0;
      NtBranchesThisCycle = 0;
    }
    ++SlotsUsed;
  }
}

uint64_t DmpCore::fetchInstr(const profile::DynInstr &D, bool PredictedTaken) {
  // ROB back-pressure: instruction i cannot fetch before instruction
  // i - RobSize retires.
  const uint64_t RobGate = RobRetireRing[RobCursor];
  if (RobGate > FetchCycle)
    redirectFetch(RobGate);

  // I-cache: charge the miss latency when crossing into a new line.
  const uint64_t Line = (static_cast<uint64_t>(D.Addr) * 4) >> FetchLineShift;
  if (Line != CurrentFetchLine) {
    CurrentFetchLine = Line;
    const unsigned Lat = Memory.fetchLatency(static_cast<uint64_t>(D.Addr) * 4);
    if (Lat > IL1Latency) {
      FetchCycle += Lat - IL1Latency;
      SlotsUsed = 0;
      NtBranchesThisCycle = 0;
    }
  }

  if (SlotsUsed >= FetchWidth) {
    ++FetchCycle;
    SlotsUsed = 0;
    NtBranchesThisCycle = 0;
  }

  const Opcode Op = D.I->Op;
  const bool IsCondBr = Op == Opcode::CondBr;
  if (IsCondBr && !PredictedTaken) {
    if (NtBranchesThisCycle >= MaxNtBranches) {
      ++FetchCycle;
      SlotsUsed = 0;
      NtBranchesThisCycle = 0;
    }
    ++NtBranchesThisCycle;
  }

  const uint64_t Assigned = FetchCycle;
  ++SlotsUsed;

  // In dpred-mode the front end alternates between the two paths: each
  // correct-path instruction costs one extra slot while the wrong path is
  // still being fetched.
  if (Ep.Active && !Ep.IsLoop && Ep.WrongRemaining > 0) {
    consumeFetchSlots(1);
    --Ep.WrongRemaining;
  }

  // Taken control transfers end the fetch group; taken-predicted branches
  // additionally need the BTB for their target.
  const bool TakenTransfer = (IsCondBr && PredictedTaken) ||
                             Op == Opcode::Jmp || Op == Opcode::Call ||
                             Op == Opcode::Ret;
  if (TakenTransfer) {
    SlotsUsed = FetchWidth; // group break
    if (Op != Opcode::Ret) {
      uint32_t Target = 0;
      if (!Btb.lookup(D.Addr, Target)) {
        ++Stats.BtbMissBubbles;
        ++FetchCycle;
      }
      Btb.update(D.Addr, D.NextAddr);
    }
  }
  return Assigned;
}

//===----------------------------------------------------------------------===//
// Dataflow schedule
//===----------------------------------------------------------------------===//

uint64_t DmpCore::scheduleInstr(const profile::DynInstr &D,
                                uint64_t FetchedAt) {
  const Instruction &I = *D.I;
  const Opcode Op = I.Op;
  uint64_t Ready = FetchedAt + FrontEndDepth;
  if (readsSrc1(Op) && I.Src1 != RegZero)
    Ready = std::max(Ready, RegReady[I.Src1]);
  if (readsSrc2(Op) && I.Src2 != RegZero)
    Ready = std::max(Ready, RegReady[I.Src2]);

  const uint64_t ExecStart = IssuePorts.reserve(Ready);

  unsigned Latency;
  switch (Op) {
  case Opcode::Load:
    Latency = Memory.loadLatency(D.MemAddr * 8);
    break;
  case Opcode::Store:
    Memory.storeAccess(D.MemAddr * 8);
    Latency = 1;
    break;
  default:
    Latency = OpLatency[static_cast<unsigned>(Op)];
    break;
  }
  const uint64_t Done = ExecStart + Latency;
  if (writesRegister(Op))
    RegReady[I.Dst] = Done;
  return Done;
}

void DmpCore::chargeWrongPathIssue(unsigned Ops, uint64_t FetchedAt) {
  const uint64_t Base = FetchedAt + FrontEndDepth;
  for (unsigned K = 0; K < Ops; ++K)
    IssuePorts.reserve(Base + K / FetchWidth);
}

void DmpCore::occupyRobPhantoms(unsigned Count, uint64_t RetireCycle) {
  for (unsigned K = 0; K < Count; ++K) {
    RobRetireRing[RobCursor] = RetireCycle;
    advanceRobCursor();
  }
}

uint64_t DmpCore::retireInstr(uint64_t DoneCycle) {
  // In-order retirement books cycles monotonically, so the full
  // CycleResource ring reduces to the last retire cycle plus the number of
  // retires already booked in it: a new cycle starts with one retire, and a
  // full cycle pushes the retire to the next one.
  uint64_t Retire = std::max(DoneCycle + 1, LastRetireCycle);
  if (Retire != LastRetireCycle)
    RetiresThisCycle = 0;
  else if (RetiresThisCycle >= RetireWidth) {
    ++Retire;
    RetiresThisCycle = 0;
  }
  ++RetiresThisCycle;
  LastRetireCycle = Retire;
  RobRetireRing[RobCursor] = Retire;
  advanceRobCursor();
  return Retire;
}

//===----------------------------------------------------------------------===//
// dpred-mode
//===----------------------------------------------------------------------===//

bool DmpCore::isCfmAddr(uint32_t Addr) const {
  for (const core::CfmPoint &Cfm : Ep.Ann->Cfms)
    if (Cfm.PointKind == core::CfmPoint::Kind::Address && Cfm.Addr == Addr)
      return true;
  return false;
}

bool DmpCore::hasReturnCfm() const {
  for (const core::CfmPoint &Cfm : Ep.Ann->Cfms)
    if (Cfm.PointKind == core::CfmPoint::Kind::Return)
      return true;
  return false;
}

void DmpCore::insertSelectUops(unsigned Count, uint64_t AtCycle) {
  if (Count == 0)
    return;
  consumeFetchSlots(Count);
  Stats.SelectUops += Count;
  // Select-µops serialize the merged registers for one cycle.
  const uint64_t Avail = AtCycle + FrontEndDepth + 1;
  for (uint8_t R : Ep.WrittenRegs)
    RegReady[R] = std::max(RegReady[R], Avail);
}

void DmpCore::enterHammockDpred(const core::DivergeAnnotation &Ann,
                                const profile::DynInstr &D,
                                uint64_t FetchedAt, uint64_t DoneCycle,
                                bool Mispredicted) {
  Ep = DpredEpisode();
  Ep.Active = true;
  Ep.Ann = &Ann;
  Ep.ResolveCycle = DoneCycle;
  Ep.BranchMispredicted = Mispredicted;
  Ep.AlwaysPredicated = Ann.AlwaysPredicate;
  Ep.EntryCallDepth = CallDepth;

  ++Stats.DpredEntries;
  if (Ann.AlwaysPredicate)
    ++Stats.DpredEntriesAlways;
  if (!Mispredicted)
    ++Stats.DpredWastedEntries;

  // The wrong path starts at the direction the program did not take.  It
  // can only fetch until the diverge branch resolves, at roughly half the
  // front-end bandwidth (the two paths alternate), so the walk is bounded
  // by both the window budget and the resolution-time fetch budget.
  const uint32_t WrongStart =
      D.Taken ? D.Addr + 1 : D.I->Target->getStartAddr();
  const uint64_t CyclesToResolve =
      DoneCycle > FetchedAt ? DoneCycle - FetchedAt : 1;
  const unsigned FetchBudget = static_cast<unsigned>(std::min<uint64_t>(
      Config.MaxDpredInstrs,
      CyclesToResolve * Config.FetchWidth / 2 + Config.FetchWidth));
  const WrongPathResult WP =
      walkWrongPath(P, *Predictor, Ann, WrongStart, FetchBudget);
  Ep.WrongRemaining = WP.InstrsFetched;
  Ep.WrongReachedCfm = WP.ReachedCfm;
  Ep.WrongCfmAddr = WP.ReachedCfmAddr;
  Ep.WrittenRegs = WP.WrittenRegs;
  Stats.UselessDpredInstrs += WP.InstrsFetched;
  chargeWrongPathIssue(WP.IssueOps, FetchedAt);
  occupyRobPhantoms(WP.InstrsFetched, DoneCycle + 1);
}

void DmpCore::enterLoopDpred(const core::DivergeAnnotation &Ann,
                             const profile::DynInstr &D, uint64_t FetchedAt,
                             uint64_t DoneCycle, bool Mispredicted) {
  Ep = DpredEpisode();
  Ep.Active = true;
  Ep.IsLoop = true;
  Ep.Ann = &Ann;
  Ep.ResolveCycle = DoneCycle;
  Ep.BranchMispredicted = Mispredicted;
  Ep.LoopBranchAddr = D.Addr;
  ++Stats.DpredEntries;
  ++Stats.DpredEntriesLoop;
  if (!Mispredicted)
    ++Stats.DpredWastedEntries;
  (void)FetchedAt;
}

void DmpCore::checkDpredProgress(uint32_t Addr) {
  assert(Ep.Active && !Ep.IsLoop && "hammock progress without episode");

  const bool CorrectAtCfm = Ep.MergePendingAfterRet || isCfmAddr(Addr);
  if (CorrectAtCfm) {
    // Both paths must arrive at the *same* CFM point to merge (Section
    // 2.2); a return CFM matches any top-level return on both sides.
    const bool SameCfm =
        Ep.MergePendingAfterRet || Ep.WrongCfmAddr == Addr;
    if (Ep.WrongReachedCfm && SameCfm) {
      // The slower path finishes fetching alone, then the paths merge.
      if (Ep.WrongRemaining > 0) {
        consumeFetchSlots(Ep.WrongRemaining);
        Ep.WrongRemaining = 0;
      }
      mergeDpred();
    } else {
      // The wrong path never reaches a CFM: fetch stalls until the diverge
      // branch resolves, then the wrong path is squashed into NOPs.
      redirectFetch(std::max(FetchCycle, Ep.ResolveCycle + 1));
      endDpredAtResolve();
    }
    return;
  }

  // Window full, or the diverge branch resolved before the paths merged.
  if (Ep.CorrectFetched >= Config.MaxDpredInstrs ||
      FetchCycle > Ep.ResolveCycle)
    endDpredAtResolve();
}

void DmpCore::mergeDpred() {
  ++Stats.DpredMerged;
  insertSelectUops(static_cast<unsigned>(Ep.WrittenRegs.size()), FetchCycle);
  if (Ep.BranchMispredicted)
    ++Stats.DpredSavedFlushes;
  Ep.Active = false;
}

void DmpCore::endDpredAtResolve() {
  ++Stats.DpredNoMerge;
  if (Ep.BranchMispredicted)
    ++Stats.DpredSavedFlushes; // Dual-path execution avoided the flush.
  Ep.Active = false;
}

bool DmpCore::handleLoopIteration(const profile::DynInstr &D,
                                  uint64_t FetchedAt, uint64_t DoneCycle,
                                  bool PredictedTaken) {
  assert(Ep.Active && Ep.IsLoop && "loop iteration without loop episode");

  ++Stats.CondBranches;
  const bool Mispredicted = PredictedTaken != D.Taken;
  if (Mispredicted)
    ++Stats.Mispredictions;
  const bool LowConf = Confidence.isLowConfidence(D.Addr);
  if (LowConf) {
    ++Stats.LowConfBranches;
    if (Mispredicted)
      ++Stats.LowConfMispredicted;
  }

  Predictor->update(D.Addr, D.Taken);
  Confidence.update(D.Addr, !Mispredicted, D.Taken);

  classifyLoopInstance(D, FetchedAt, DoneCycle, PredictedTaken);
  return true;
}

void DmpCore::classifyLoopInstance(const profile::DynInstr &D,
                                   uint64_t FetchedAt, uint64_t DoneCycle,
                                   bool PredictedTaken) {
  const core::DivergeAnnotation &Ann = *Ep.Ann;
  ++Ep.IterCount;
  // Select-µops after each predicated iteration (Section 5.1).
  consumeFetchSlots(Ann.LoopSelectUops);
  Stats.SelectUops += Ann.LoopSelectUops;

  const bool StayActual = (D.Taken == Ann.LoopStayTaken);
  const bool StayPred = (PredictedTaken == Ann.LoopStayTaken);

  if (StayActual && StayPred) {
    // Keep iterating under predication; bound the episode by the window.
    if (Ep.IterCount >= Config.MaxLoopDpredIters) {
      ++Stats.LoopCorrect;
      Ep.Active = false;
    }
    return;
  }

  if (StayActual && !StayPred) {
    // Early exit: the predicated stream left the loop too soon; the loop
    // must run again, so the pipeline flushes (Section 5.1, case 1).
    ++Stats.LoopEarlyExit;
    ++Stats.Flushes;
    redirectFetch(DoneCycle + 1);
    Ep.Active = false;
    return;
  }

  if (!StayActual && StayPred) {
    // The program exits here but the predictor keeps iterating: fetch the
    // extra predicated iterations; they become NOPs (late exit) unless the
    // predictor never exits (no exit -> flush).
    const uint32_t StayTarget = Ann.LoopStayTaken
                                    ? D.I->Target->getStartAddr()
                                    : D.Addr + 1;
    const unsigned ItersLeft =
        Config.MaxLoopDpredIters > Ep.IterCount
            ? Config.MaxLoopDpredIters - Ep.IterCount
            : 1;
    // Extra iterations are fetched only until this (exiting) instance
    // resolves and the predicate squashes the loop path.
    const uint64_t CyclesToResolve =
        DoneCycle > FetchedAt ? DoneCycle - FetchedAt : 1;
    const unsigned FetchBudget = static_cast<unsigned>(std::min<uint64_t>(
        Config.MaxDpredInstrs, CyclesToResolve * Config.FetchWidth));
    const ExtraIterResult Extra = walkExtraIterations(
        P, *Predictor, StayTarget, D.Addr, Ann.LoopStayTaken, ItersLeft,
        FetchBudget);
    if (Extra.PredictedExit) {
      ++Stats.LoopLateExit;
      Stats.LoopExtraIterInstrs += Extra.InstrsFetched;
      Stats.UselessDpredInstrs += Extra.InstrsFetched;
      consumeFetchSlots(Extra.InstrsFetched);
      chargeWrongPathIssue(Extra.InstrsFetched, FetchedAt);
      occupyRobPhantoms(Extra.InstrsFetched, DoneCycle + 1);
      const unsigned Selects = Ann.LoopSelectUops * Extra.Iterations;
      consumeFetchSlots(Selects);
      Stats.SelectUops += Selects;
      // Predicted stay vs actual exit is by definition a misprediction
      // whose flush the late exit avoided.
      ++Stats.DpredSavedFlushes;
    } else {
      ++Stats.LoopNoExit;
      ++Stats.Flushes;
      redirectFetch(DoneCycle + 1);
    }
    Ep.Active = false;
    return;
  }

  // Correctly predicted exit: the episode ends with only select-µop cost.
  ++Stats.LoopCorrect;
  Ep.Active = false;
}

//===----------------------------------------------------------------------===//
// Branch handling
//===----------------------------------------------------------------------===//

void DmpCore::handleCondBranch(const profile::DynInstr &D, uint64_t FetchedAt,
                               uint64_t DoneCycle, bool PredictedTaken) {
  ++Stats.CondBranches;
  const bool Mispredicted = PredictedTaken != D.Taken;
  if (Mispredicted)
    ++Stats.Mispredictions;

  const bool LowConf = Confidence.isLowConfidence(D.Addr);
  if (LowConf) {
    ++Stats.LowConfBranches;
    if (Mispredicted)
      ++Stats.LowConfMispredicted;
  }

  const core::DivergeAnnotation *Ann =
      (DmpEnabled && !Ep.Active) ? Diverge->find(D.Addr) : nullptr;

  if (Ann && (LowConf || Ann->AlwaysPredicate)) {
    // Enter dpred-mode instead of risking (or suffering) a flush.
    if (Ann->Kind == core::DivergeKind::Loop) {
      enterLoopDpred(*Ann, D, FetchedAt, DoneCycle, Mispredicted);
      // The entry instance may itself exit the loop: classify it so a
      // mispredicted entry pays the correct early/late/no-exit outcome.
      classifyLoopInstance(D, FetchedAt, DoneCycle, PredictedTaken);
    } else {
      enterHammockDpred(*Ann, D, FetchedAt, DoneCycle, Mispredicted);
    }
  } else if (Mispredicted) {
    ++Stats.Flushes;
    redirectFetch(DoneCycle + 1);
    if (Ep.Active) {
      // A mispredicted branch inside the predicated region aborts the
      // episode (the fetched stream beyond it is wrong on both paths).
      ++Stats.DpredAborted;
      Ep.Active = false;
    }
  }

  Predictor->update(D.Addr, D.Taken);
  Confidence.update(D.Addr, !Mispredicted, D.Taken);
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

SimStats DmpCore::run(const std::vector<int64_t> &MemoryImage,
                      FinalState *FinalStateOut, EmuMode Mode) {
  profile::Emulator Emu(P, MemoryImage);
  profile::DynInstr D;
  const bool UseReference = Mode == EmuMode::Reference;
  const uint64_t MaxInstrs = Config.MaxInstrs;
  const uint64_t Watchdog = Config.WatchdogInstrBudget;
  const guard::CancelToken *const Cancel = Config.Cancel;
  const std::function<void()> &Progress = Config.Progress;
  const bool HaveProgress = static_cast<bool>(Progress);

  while (Emu.executedCount() < MaxInstrs &&
         (UseReference ? Emu.stepReference(D) : Emu.step(D))) {
    // Guard checks first, so a runaway or cancelled cell aborts at a point
    // that depends only on the retired-instruction count — deterministic
    // for the watchdog across any --jobs value, and never a hang for
    // either.  The abort is a StatusError; TaskGraph::runAll turns it into
    // the cell's Status and reports render the cell as a "--" gap.
    if (Watchdog && Emu.executedCount() > Watchdog)
      throw StatusError(Status::resourceExhausted(
          "simulation exceeded watchdog budget of " +
              std::to_string(Watchdog) + " instructions",
          "sim::DmpCore"));
    if ((Cancel || HaveProgress) &&
        (Emu.executedCount() % kCancelPollInstrs) == 0) {
      if (Progress)
        Progress();
      if (Cancel) {
        const Status S = Cancel->check("sim::DmpCore");
        if (!S.ok())
          throw StatusError(S);
      }
    }
    // Retired-store probe: the store has executed, so the value written is
    // exactly what memory now holds at the effective address.  Only
    // correct-path (retired) instructions pass through this loop — the
    // wrong path of a dpred episode is walked statically and never touches
    // Emu — so the sequence recorded here is the architectural store order.
    const Opcode Op = D.I->Op;
    if (FinalStateOut && Op == Opcode::Store)
      FinalStateOut->Stores.push_back(
          {D.Addr, D.MemAddr, Emu.memWord(D.MemAddr)});

    if (Ep.Active && !Ep.IsLoop)
      checkDpredProgress(D.Addr);

    bool PredictedTaken = false;
    if (Op == Opcode::CondBr)
      PredictedTaken = Predictor->predict(D.Addr);

    const uint64_t FetchedAt = fetchInstr(D, PredictedTaken);
    const uint64_t Done = scheduleInstr(D, FetchedAt);

    if (Ep.Active) {
      ++Ep.CorrectFetched;
      ++Stats.UsefulDpredInstrs;
      if (!Ep.IsLoop && writesRegister(Op))
        Ep.WrittenRegs.insert(D.I->Dst);
    }

    switch (Op) {
    case Opcode::CondBr:
      if (Ep.Active && Ep.IsLoop && D.Addr == Ep.LoopBranchAddr)
        handleLoopIteration(D, FetchedAt, Done, PredictedTaken);
      else
        handleCondBranch(D, FetchedAt, Done, PredictedTaken);
      break;
    case Opcode::Call:
      Ras.push(D.Addr + 1);
      ++CallDepth;
      break;
    case Opcode::Ret: {
      if (CallDepth > 0) {
        const size_t DepthBefore = CallDepth;
        --CallDepth;
        const uint32_t Predicted = Ras.pop();
        if (Predicted != D.NextAddr) {
          ++Stats.RasMispredicts;
          ++Stats.Flushes;
          redirectFetch(Done + 1);
          if (Ep.Active) {
            ++Stats.DpredAborted;
            Ep.Active = false;
          }
        }
        if (Ep.Active && !Ep.IsLoop && hasReturnCfm() &&
            DepthBefore == Ep.EntryCallDepth)
          Ep.MergePendingAfterRet = true;
      }
      break;
    }
    default:
      break;
    }

    retireInstr(Done);
    ++Stats.RetiredInstrs;
  }

  Stats.Cycles = std::max(LastRetireCycle, FetchCycle) + 1;
  Stats.IL1Misses = Memory.il1().missCount();
  Stats.DL1Misses = Memory.dl1().missCount();
  Stats.L2Misses = Memory.l2().missCount();
  Stats.DpredActiveAtEnd = Ep.Active ? 1 : 0;

  if (FinalStateOut) {
    captureArchState(Emu, *FinalStateOut);
    // Canary fault injection (oracle self-tests only): corrupt the
    // *extracted* state so dmp::check can prove it detects retired-state
    // divergence without planting a real bug in the model.
    if (Config.InjectFault == 1 && !FinalStateOut->Stores.empty())
      FinalStateOut->Stores.erase(FinalStateOut->Stores.begin());
    else if (Config.InjectFault == 2)
      FinalStateOut->Regs[1] ^= 1;
  }
  return Stats;
}
