//===- sim/DmpCore.h - Cycle-level DMP out-of-order core ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle-level processor model: an 8-wide out-of-order core with the
/// Table 1 configuration, plus the DMP dynamic-predication machinery
/// (dpred-mode for hammocks, return CFMs, dual-path fallback, and loop
/// predication with the early/late/no-exit taxonomy of Section 5.1).
///
/// Modeling approach (DESIGN.md Section 5): trace-driven timing with
/// execution-driven outcomes.  The correct-path instruction stream comes
/// from the functional emulator; timing is computed with a dataflow
/// scheduling model (in-order fetch and retire, dataflow-limited issue
/// bounded by issue width); the wrong path of a dynamically predicated
/// branch is fetched explicitly by walking the program with the live branch
/// predictor, because its fetch/execute bandwidth cost is precisely the
/// dpred overhead the paper's cost model reasons about.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_DMPCORE_H
#define DMP_SIM_DMPCORE_H

#include "core/DivergeInfo.h"
#include "ir/Opcode.h"
#include "profile/Emulator.h"
#include "sim/CycleResource.h"
#include "sim/FinalState.h"
#include "sim/RegSet.h"
#include "sim/SimConfig.h"
#include "sim/SimStats.h"
#include "support/Compiler.h"
#include "uarch/BTB.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/ConfidenceEstimator.h"
#include "uarch/ReturnAddressStack.h"

#include <memory>
#include <vector>

namespace dmp::sim {

/// One simulated core.  Construct per run.
class DmpCore {
public:
  /// \p Diverge may be nullptr (pure baseline, DMP disabled regardless of
  /// Config.EnableDmp).
  DmpCore(const ir::Program &P, const core::DivergeMap *Diverge,
          const SimConfig &Config);

  /// Which functional stepping path feeds the timing model.  Timing and
  /// statistics are identical either way (the digest-identity contract,
  /// DESIGN.md); Reference exists so differential tests can drive the whole
  /// simulator from the independent interpreter and compare digests.
  enum class EmuMode { Fast, Reference };

  /// Runs the program on \p MemoryImage until Halt or Config.MaxInstrs and
  /// returns the statistics.  When \p FinalStateOut is non-null it receives
  /// the retired architectural state (registers, memory fingerprint, and
  /// the in-order retired-store sequence) — the observable the dmp::check
  /// differential oracle compares against the reference emulator.
  SimStats run(const std::vector<int64_t> &MemoryImage,
               FinalState *FinalStateOut = nullptr,
               EmuMode Mode = EmuMode::Fast);

private:
  // -- Fetch engine -------------------------------------------------------
  /// Assigns a fetch cycle to the next correct-path instruction at \p Addr.
  /// Handles fetch width, taken-branch group breaks, the not-taken-branch
  /// limit, I-cache misses, and BTB bubbles.
  DMP_ALWAYS_INLINE uint64_t fetchInstr(const profile::DynInstr &D,
                                        bool PredictedTaken);

  /// Moves the fetch cursor to \p Cycle (redirect); resets group state.
  void redirectFetch(uint64_t Cycle);

  /// Consumes \p Count raw fetch slots (wrong-path / select-µop slots).
  void consumeFetchSlots(unsigned Count);

  // -- Dataflow schedule ---------------------------------------------------
  /// Schedules execution of \p D fetched at \p FetchCycle; returns the
  /// completion (resolution) cycle.
  DMP_ALWAYS_INLINE uint64_t scheduleInstr(const profile::DynInstr &D,
                                           uint64_t FetchCycle);

  /// Charges issue bandwidth for \p Ops speculative wrong-path operations
  /// fetched around \p FetchCycle.
  void chargeWrongPathIssue(unsigned Ops, uint64_t FetchCycle);

  /// Books \p Count wrong-path (phantom) instructions into the reorder
  /// buffer: they hold entries until \p RetireCycle (the diverge branch's
  /// resolution, when they become NOPs and drain).  This is what makes
  /// dynamic predication of oversized hammocks genuinely expensive — the
  /// window fills and fetch stalls (paper Section 3.2 / Figure 7).
  void occupyRobPhantoms(unsigned Count, uint64_t RetireCycle);

  /// In-order retirement accounting; returns the retire cycle.
  DMP_ALWAYS_INLINE uint64_t retireInstr(uint64_t DoneCycle);

  // -- Branch handling -----------------------------------------------------
  void handleCondBranch(const profile::DynInstr &D, uint64_t FetchCycle,
                        uint64_t DoneCycle, bool PredictedTaken);

  // -- dpred-mode ----------------------------------------------------------
  struct DpredEpisode {
    bool Active = false;
    bool IsLoop = false;
    const core::DivergeAnnotation *Ann = nullptr;
    uint64_t ResolveCycle = 0;
    bool BranchMispredicted = false;
    bool AlwaysPredicated = false;
    // Hammock state.
    unsigned WrongRemaining = 0;
    bool WrongReachedCfm = false;
    uint32_t WrongCfmAddr = ~0u;
    unsigned CorrectFetched = 0;
    RegSet WrittenRegs;
    bool MergePendingAfterRet = false;
    size_t EntryCallDepth = 0;
    // Loop state.
    uint32_t LoopBranchAddr = 0;
    unsigned IterCount = 0;
  };

  void enterHammockDpred(const core::DivergeAnnotation &Ann,
                         const profile::DynInstr &D, uint64_t FetchCycle,
                         uint64_t DoneCycle, bool Mispredicted);
  void enterLoopDpred(const core::DivergeAnnotation &Ann,
                      const profile::DynInstr &D, uint64_t FetchCycle,
                      uint64_t DoneCycle, bool Mispredicted);
  /// Handles a re-fetch of the loop diverge branch during loop dpred-mode.
  /// Returns true when the generic branch handling must be skipped.
  bool handleLoopIteration(const profile::DynInstr &D, uint64_t FetchCycle,
                           uint64_t DoneCycle, bool PredictedTaken);
  /// Classifies one predicated loop-branch instance (Section 5.1 taxonomy:
  /// continue / correct / early-exit / late-exit / no-exit) and ends the
  /// episode when terminal.  Called for the entry instance and for every
  /// subsequent instance.
  void classifyLoopInstance(const profile::DynInstr &D, uint64_t FetchCycle,
                            uint64_t DoneCycle, bool PredictedTaken);
  /// Checks hammock-mode merge/termination before fetching the instruction
  /// at \p Addr.
  void checkDpredProgress(uint32_t Addr);
  void mergeDpred();
  void endDpredAtResolve();
  void insertSelectUops(unsigned Count, uint64_t AtCycle);

  bool isCfmAddr(uint32_t Addr) const;
  bool hasReturnCfm() const;

  // -- Members -------------------------------------------------------------
  const ir::Program &P;
  const core::DivergeMap *Diverge;
  SimConfig Config;
  bool DmpEnabled;

  // Invariant configuration, copied out of Config at construction so the
  // per-instruction paths read it from the same cache lines as the fetch
  // cursor state instead of reaching into the big SimConfig struct.
  const unsigned FetchWidth;
  const unsigned RetireWidth;
  const unsigned MaxNtBranches;
  const unsigned FrontEndDepth;
  const uint32_t RobSize;
  /// log2 of the I-cache line size (power of two, enforced by uarch::Cache),
  /// so the per-fetch line computation is a shift instead of a divide.
  const unsigned FetchLineShift;
  const unsigned IL1Latency;
  /// SimConfig::latencyFor tabulated per opcode: the scheduling hot path
  /// pays an indexed byte load instead of an out-of-line call.
  static constexpr unsigned NumOpcodeValues =
      static_cast<unsigned>(ir::Opcode::Halt) + 1;
  uint8_t OpLatency[NumOpcodeValues];

  std::unique_ptr<uarch::BranchPredictor> Predictor;
  uarch::ConfidenceEstimator Confidence;
  uarch::BTB Btb;
  uarch::ReturnAddressStack Ras;
  uarch::MemoryHierarchy Memory;

  CycleResource IssuePorts;

  SimStats Stats;
  DpredEpisode Ep;

  // Fetch cursor state.
  uint64_t FetchCycle = 0;
  unsigned SlotsUsed = 0;
  unsigned NtBranchesThisCycle = 0;
  uint64_t CurrentFetchLine = ~0ull;

  // Dataflow state.
  uint64_t RegReady[ir::NumRegs] = {};
  uint64_t LastRetireCycle = 0;
  /// Retires booked in LastRetireCycle (in-order retirement probes cycles
  /// monotonically, so these two scalars model the retire-port resource
  /// exactly; see retireInstr).
  unsigned RetiresThisCycle = 0;
  std::vector<uint64_t> RobRetireRing;
  /// Ring slot the next fetched instruction occupies.  Both real and
  /// phantom (wrong-path) entries advance it, so phantoms displace real
  /// slots; keeping it as an incrementally wrapped cursor removes the two
  /// per-instruction `% RobSize` divides the old index arithmetic paid.
  uint32_t RobCursor = 0;
  size_t CallDepth = 0;

  void advanceRobCursor() {
    if (++RobCursor == RobSize)
      RobCursor = 0;
  }
};

} // namespace dmp::sim

#endif // DMP_SIM_DMPCORE_H
