//===- sim/RegSet.h - Architectural register set as a bitmask ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RegSet: a set of architectural register indices backed by a single
/// 32-bit mask (the ISA has 32 registers).  Replaces unordered_set<uint8_t>
/// in the dpred episode state and the wrong-path walker results, where the
/// per-instruction insert on the simulator's hot path made a hash table the
/// most expensive way imaginable to store five bits of information.
///
/// The interface mirrors the subset of std::unordered_set the simulator
/// used — insert / count / size / empty / range-for — with iteration in
/// ascending register order (all consumers are order-independent).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_REGSET_H
#define DMP_SIM_REGSET_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>

namespace dmp::sim {

class RegSet {
public:
  void insert(ir::Reg R) {
    assert(R < ir::NumRegs && "register index out of range");
    Bits |= uint32_t{1} << R;
  }

  bool count(ir::Reg R) const {
    assert(R < ir::NumRegs && "register index out of range");
    return (Bits >> R) & 1u;
  }

  unsigned size() const {
    unsigned N = 0;
    for (uint32_t B = Bits; B != 0; B &= B - 1)
      ++N;
    return N;
  }

  bool empty() const { return Bits == 0; }
  void clear() { Bits = 0; }

  /// Forward iterator over members in ascending register order.
  class const_iterator {
  public:
    explicit const_iterator(uint32_t Rest) : Rest(Rest) {}
    ir::Reg operator*() const { return lowestMember(Rest); }
    const_iterator &operator++() {
      Rest &= Rest - 1;
      return *this;
    }
    bool operator==(const const_iterator &O) const { return Rest == O.Rest; }
    bool operator!=(const const_iterator &O) const { return Rest != O.Rest; }

  private:
    uint32_t Rest;
  };

  const_iterator begin() const { return const_iterator(Bits); }
  const_iterator end() const { return const_iterator(0); }

private:
  static ir::Reg lowestMember(uint32_t B) {
    assert(B != 0 && "dereferencing end()");
#if defined(__GNUC__)
    return static_cast<ir::Reg>(__builtin_ctz(B));
#else
    ir::Reg R = 0;
    while ((B & 1u) == 0) {
      B >>= 1;
      ++R;
    }
    return R;
#endif
  }

  uint32_t Bits = 0;
};

} // namespace dmp::sim

#endif // DMP_SIM_REGSET_H
