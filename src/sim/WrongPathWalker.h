//===- sim/WrongPathWalker.h - Speculative wrong-path fetch ---------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the instruction stream the front end fetches down the *other*
/// side of a dynamically predicated branch: a static walk of the program
/// following the live branch predictor's outputs, exactly what the DMP
/// hardware does on each path during dpred-mode ("On each path, the
/// processor follows the branch predictor outcomes until it reaches a CFM
/// point", Section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_WRONGPATHWALKER_H
#define DMP_SIM_WRONGPATHWALKER_H

#include "core/DivergeInfo.h"
#include "ir/Program.h"
#include "sim/RegSet.h"
#include "uarch/BranchPredictor.h"

#include <cstdint>
#include <vector>

namespace dmp::sim {

/// Result of walking one speculative path.
struct WrongPathResult {
  /// Instructions fetched before reaching a CFM point (or the budget).
  unsigned InstrsFetched = 0;
  /// True when the walk reached one of the CFM points.
  bool ReachedCfm = false;
  /// The address CFM it stopped at (~0u for a return CFM or none): dpred
  /// mode only merges when both paths arrive at the *same* CFM point.
  uint32_t ReachedCfmAddr = ~0u;
  /// Destination registers written along the walked path (for select-µop
  /// counting at the merge point).
  RegSet WrittenRegs;
  /// Instruction latencies encountered (excluding loads, charged as DL1
  /// hits) — used to charge issue bandwidth for wrong-path execution.
  unsigned IssueOps = 0;
};

/// Walks speculatively from \p StartAddr following \p Predictor until one of
/// \p Annotation's CFM points, a top-level return (for return CFMs), the end
/// of the program, or \p MaxInstrs.
///
/// The walk maintains a shadow call stack so Call/Ret sequences inside the
/// predicated region are followed like the hardware's RAS would.
WrongPathResult walkWrongPath(const ir::Program &P,
                              const uarch::BranchPredictor &Predictor,
                              const core::DivergeAnnotation &Annotation,
                              uint32_t StartAddr, unsigned MaxInstrs);

/// Walks speculative extra loop iterations for late-exit modeling: starting
/// at \p StayTargetAddr, follows the predictor until it predicts the loop
/// branch at \p LoopBranchAddr exits (direction != stay) or \p MaxIters
/// iterations pass.  Returns fetched instruction count and iterations.
struct ExtraIterResult {
  unsigned InstrsFetched = 0;
  unsigned Iterations = 0;
  bool PredictedExit = false;
  RegSet WrittenRegs;
};

ExtraIterResult walkExtraIterations(const ir::Program &P,
                                    const uarch::BranchPredictor &Predictor,
                                    uint32_t StayTargetAddr,
                                    uint32_t LoopBranchAddr, bool StayTaken,
                                    unsigned MaxIters, unsigned MaxInstrs);

} // namespace dmp::sim

#endif // DMP_SIM_WRONGPATHWALKER_H
