//===- sim/Simulator.cpp - Simulation entry points -----------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "sim/DmpCore.h"

using namespace dmp;
using namespace dmp::sim;

SimStats sim::simulateBaseline(const ir::Program &P,
                               const std::vector<int64_t> &MemoryImage,
                               const SimConfig &Config,
                               FinalState *FinalStateOut) {
  SimConfig BaselineConfig = Config;
  BaselineConfig.EnableDmp = false;
  DmpCore Core(P, nullptr, BaselineConfig);
  return Core.run(MemoryImage, FinalStateOut);
}

SimStats sim::simulateDmp(const ir::Program &P, const core::DivergeMap &Diverge,
                          const std::vector<int64_t> &MemoryImage,
                          const SimConfig &Config,
                          FinalState *FinalStateOut) {
  SimConfig DmpConfig = Config;
  DmpConfig.EnableDmp = true;
  DmpCore Core(P, &Diverge, DmpConfig);
  return Core.run(MemoryImage, FinalStateOut);
}
