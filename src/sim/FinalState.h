//===- sim/FinalState.h - Retired architectural state ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural state a simulation run retires: final register file,
/// a fingerprint of the final memory image, and the ordered sequence of
/// retired stores.  Dynamic predication must be architecturally invisible
/// (paper Section 2), so a DMP run, a baseline run, and the functional
/// emulator must all produce bit-identical FinalStates — the property the
/// dmp::check differential oracle asserts.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_FINALSTATE_H
#define DMP_SIM_FINALSTATE_H

#include "ir/Opcode.h"
#include "profile/Emulator.h"

#include <array>
#include <cstdint>
#include <vector>

namespace dmp::sim {

/// One architecturally retired store, in retirement order.
struct RetiredStore {
  uint32_t InstrAddr = 0; ///< Static address of the store instruction.
  uint64_t WordAddr = 0;  ///< Effective word address written.
  int64_t Value = 0;      ///< Value written.

  bool operator==(const RetiredStore &O) const {
    return InstrAddr == O.InstrAddr && WordAddr == O.WordAddr &&
           Value == O.Value;
  }
};

/// Everything one run retires architecturally.
struct FinalState {
  std::array<int64_t, ir::NumRegs> Regs{};
  uint64_t MemoryWords = 0;
  /// FNV-1a fingerprint over the final memory image, word by word.
  uint64_t MemoryFingerprint = 0;
  std::vector<RetiredStore> Stores;
  uint64_t RetiredInstrs = 0;
  bool Halted = false;
};

/// FNV-1a over the full memory image of \p Emu.
inline uint64_t fingerprintMemory(const profile::Emulator &Emu) {
  uint64_t H = 0xCBF29CE484222325ull;
  const uint64_t Words = Emu.memoryWords();
  for (uint64_t A = 0; A < Words; ++A) {
    uint64_t W = static_cast<uint64_t>(Emu.memWord(A));
    for (int B = 0; B < 8; ++B) {
      H ^= (W >> (B * 8)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  }
  return H;
}

/// Fills registers, memory fingerprint, instruction count, and halt flag of
/// \p Out from \p Emu (the retired-store list is accumulated separately by
/// whoever steps the emulator).
inline void captureArchState(const profile::Emulator &Emu, FinalState &Out) {
  for (unsigned R = 0; R < ir::NumRegs; ++R)
    Out.Regs[R] = Emu.reg(static_cast<ir::Reg>(R));
  Out.MemoryWords = Emu.memoryWords();
  Out.MemoryFingerprint = fingerprintMemory(Emu);
  Out.RetiredInstrs = Emu.executedCount();
  Out.Halted = Emu.isHalted();
}

} // namespace dmp::sim

#endif // DMP_SIM_FINALSTATE_H
