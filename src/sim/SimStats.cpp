//===- sim/SimStats.cpp - Simulation statistics --------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SimStats.h"

#include "support/StringUtils.h"

using namespace dmp;
using namespace dmp::sim;

std::string SimStats::toString() const {
  std::string Out;
  auto line = [&Out](const char *Name, uint64_t Value) {
    Out += formatString("%-28s %12llu\n", Name,
                        static_cast<unsigned long long>(Value));
  };
  line("retired instrs", RetiredInstrs);
  line("cycles", Cycles);
  Out += formatString("%-28s %12.3f\n", "IPC", ipc());
  Out += formatString("%-28s %12.2f\n", "MPKI", mpki());
  Out += formatString("%-28s %12.2f\n", "flushes/kinstr",
                      flushesPerKiloInstr());
  line("cond branches", CondBranches);
  line("mispredictions", Mispredictions);
  line("flushes", Flushes);
  line("dpred entries", DpredEntries);
  line("dpred entries (loop)", DpredEntriesLoop);
  line("dpred entries (always)", DpredEntriesAlways);
  line("dpred merged", DpredMerged);
  line("dpred no-merge", DpredNoMerge);
  line("dpred saved flushes", DpredSavedFlushes);
  line("dpred wasted entries", DpredWastedEntries);
  line("dpred aborted", DpredAborted);
  line("useful dpred instrs", UsefulDpredInstrs);
  line("useless dpred instrs", UselessDpredInstrs);
  line("select uops", SelectUops);
  line("loop correct", LoopCorrect);
  line("loop early-exit", LoopEarlyExit);
  line("loop late-exit", LoopLateExit);
  line("loop no-exit", LoopNoExit);
  Out += formatString("%-28s %12.3f\n", "Acc_Conf (PVN)", accConf());
  return Out;
}
