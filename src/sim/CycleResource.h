//===- sim/CycleResource.h - Per-cycle bandwidth tracking -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CycleResource: a ring-buffer tracker for resources with a fixed per-cycle
/// capacity (issue ports, retire slots).  reserve(Earliest) returns the
/// first cycle at or after Earliest with a free slot and consumes it.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_CYCLERESOURCE_H
#define DMP_SIM_CYCLERESOURCE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace dmp::sim {

/// Tracks per-cycle slot usage over a sliding window of cycles.
///
/// The ring must be large enough to cover the maximum spread between
/// concurrently live reservations (bounded by ROB size times the longest
/// latency); the default 2^18 cycles is far beyond anything the model
/// produces.  A resource whose reserve() arguments are nondecreasing (e.g.
/// retire slots, which always book at or after the previous retire cycle)
/// only ever probes forward, so its live window is the forward-scan length
/// and a much smaller ring is safe — and stays resident in L1.
///
/// Each slot packs an epoch tag (the cycle divided by the ring size, i.e.
/// which lap of the ring last wrote the slot) and the booked count into one
/// 32-bit word, so a probe is a single aligned load and staleness is one
/// compare.  Two live cycles never share a slot (the ring covers the live
/// window), so a tag mismatch always means the slot is stale; the 28-bit
/// tag itself aliases only after 2^(RingBits+28) cycles — beyond any run
/// the model's instruction budgets allow.  A zeroed slot reads as "epoch 0,
/// count 0", which is exactly right for first-lap cycles and stale for
/// every later lap, so construction is a plain zero-fill.
class CycleResource {
public:
  explicit CycleResource(unsigned Capacity, unsigned RingBits = 18)
      : Capacity(Capacity), RingBits(RingBits), Mask((1ull << RingBits) - 1),
        Slots(1ull << RingBits) {
    assert(Capacity > 0 && "zero-capacity resource");
    assert(Capacity < (1u << kCountBits) && "capacity exceeds count field");
  }

  /// Returns the first cycle >= \p Earliest with spare capacity and books
  /// one slot in it.
  uint64_t reserve(uint64_t Earliest) {
    uint64_t Cycle = Earliest;
    while (true) {
      uint32_t &S = Slots[Cycle & Mask];
      const uint32_t Tag =
          static_cast<uint32_t>(Cycle >> RingBits) & kTagMask;
      uint32_t Packed = S;
      if ((Packed >> kCountBits) != Tag)
        Packed = Tag << kCountBits; // Stale slot: reset to count 0.
      if ((Packed & kCountMask) < Capacity) {
        S = Packed + 1;
        return Cycle;
      }
      ++Cycle;
    }
  }

private:
  static constexpr unsigned kCountBits = 4;
  static constexpr uint32_t kCountMask = (1u << kCountBits) - 1;
  static constexpr uint32_t kTagMask = (1u << (32 - kCountBits)) - 1;

  unsigned Capacity;
  unsigned RingBits;
  uint64_t Mask;
  std::vector<uint32_t> Slots;
};

} // namespace dmp::sim

#endif // DMP_SIM_CYCLERESOURCE_H
