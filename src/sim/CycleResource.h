//===- sim/CycleResource.h - Per-cycle bandwidth tracking -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CycleResource: a ring-buffer tracker for resources with a fixed per-cycle
/// capacity (issue ports, retire slots).  reserve(Earliest) returns the
/// first cycle at or after Earliest with a free slot and consumes it.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_CYCLERESOURCE_H
#define DMP_SIM_CYCLERESOURCE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace dmp::sim {

/// Tracks per-cycle slot usage over a sliding window of cycles.
///
/// The ring must be large enough to cover the maximum spread between
/// concurrently live reservations (bounded by ROB size times the longest
/// latency); 2^18 cycles is far beyond anything the model produces.
class CycleResource {
public:
  explicit CycleResource(unsigned Capacity, unsigned RingBits = 18)
      : Capacity(Capacity), Mask((1ull << RingBits) - 1),
        Slots(1ull << RingBits) {
    assert(Capacity > 0 && "zero-capacity resource");
  }

  /// Returns the first cycle >= \p Earliest with spare capacity and books
  /// one slot in it.
  uint64_t reserve(uint64_t Earliest) {
    uint64_t Cycle = Earliest;
    while (true) {
      Slot &S = Slots[Cycle & Mask];
      if (S.Cycle != Cycle) {
        S.Cycle = Cycle;
        S.Count = 0;
      }
      if (S.Count < Capacity) {
        ++S.Count;
        return Cycle;
      }
      ++Cycle;
    }
  }

private:
  struct Slot {
    uint64_t Cycle = ~0ull;
    unsigned Count = 0;
  };

  unsigned Capacity;
  uint64_t Mask;
  std::vector<Slot> Slots;
};

} // namespace dmp::sim

#endif // DMP_SIM_CYCLERESOURCE_H
