//===- sim/WrongPathWalker.cpp - Speculative wrong-path fetch -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/WrongPathWalker.h"

using namespace dmp;
using namespace dmp::sim;
using namespace dmp::ir;

/// Whether \p Addr matches one of the annotation's address CFM points.
static bool isCfmAddr(const core::DivergeAnnotation &Annotation,
                      uint32_t Addr) {
  for (const core::CfmPoint &Cfm : Annotation.Cfms)
    if (Cfm.PointKind == core::CfmPoint::Kind::Address && Cfm.Addr == Addr)
      return true;
  return false;
}

static bool hasReturnCfm(const core::DivergeAnnotation &Annotation) {
  for (const core::CfmPoint &Cfm : Annotation.Cfms)
    if (Cfm.PointKind == core::CfmPoint::Kind::Return)
      return true;
  return false;
}

WrongPathResult sim::walkWrongPath(const Program &P,
                                   const uarch::BranchPredictor &Predictor,
                                   const core::DivergeAnnotation &Annotation,
                                   uint32_t StartAddr, unsigned MaxInstrs) {
  WrongPathResult Result;
  const bool StopAtReturn = hasReturnCfm(Annotation);
  std::vector<uint32_t> ShadowStack;
  uint32_t Addr = StartAddr;
  uint64_t SpecHist = Predictor.history();

  while (Result.InstrsFetched < MaxInstrs) {
    if (Addr >= P.instrCount())
      break;
    if (isCfmAddr(Annotation, Addr)) {
      Result.ReachedCfm = true;
      Result.ReachedCfmAddr = Addr;
      break;
    }

    const Instruction &I = P.instrAt(Addr);
    ++Result.InstrsFetched;
    ++Result.IssueOps;
    if (I.writesReg())
      Result.WrittenRegs.insert(I.Dst);

    switch (I.Op) {
    case Opcode::CondBr: {
      const bool Pred = Predictor.predictWithHistory(Addr, SpecHist);
      SpecHist = (SpecHist << 1) | (Pred ? 1 : 0);
      Addr = Pred ? I.Target->getStartAddr() : Addr + 1;
      break;
    }
    case Opcode::Jmp:
      Addr = I.Target->getStartAddr();
      break;
    case Opcode::Call:
      ShadowStack.push_back(Addr + 1);
      Addr = I.Callee->getEntryAddr();
      break;
    case Opcode::Ret:
      if (ShadowStack.empty()) {
        // Returning from the diverge branch's own function.
        if (StopAtReturn)
          Result.ReachedCfm = true;
        return Result;
      }
      Addr = ShadowStack.back();
      ShadowStack.pop_back();
      break;
    case Opcode::Halt:
      return Result;
    default:
      ++Addr;
      break;
    }
  }
  return Result;
}

ExtraIterResult sim::walkExtraIterations(const Program &P,
                                         const uarch::BranchPredictor &Predictor,
                                         uint32_t StayTargetAddr,
                                         uint32_t LoopBranchAddr,
                                         bool StayTaken, unsigned MaxIters,
                                         unsigned MaxInstrs) {
  ExtraIterResult Result;
  std::vector<uint32_t> ShadowStack;
  uint32_t Addr = StayTargetAddr;
  uint64_t SpecHist = Predictor.history();

  while (Result.InstrsFetched < MaxInstrs && Result.Iterations < MaxIters) {
    if (Addr >= P.instrCount())
      break;
    const Instruction &I = P.instrAt(Addr);
    ++Result.InstrsFetched;
    if (I.writesReg())
      Result.WrittenRegs.insert(I.Dst);

    if (Addr == LoopBranchAddr) {
      ++Result.Iterations;
      const bool PredTaken = Predictor.predictWithHistory(Addr, SpecHist);
      SpecHist = (SpecHist << 1) | (PredTaken ? 1 : 0);
      const bool Stays = (PredTaken == StayTaken);
      if (!Stays) {
        Result.PredictedExit = true;
        return Result;
      }
      Addr = PredTaken ? I.Target->getStartAddr() : Addr + 1;
      continue;
    }

    switch (I.Op) {
    case Opcode::CondBr: {
      const bool Pred = Predictor.predictWithHistory(Addr, SpecHist);
      SpecHist = (SpecHist << 1) | (Pred ? 1 : 0);
      Addr = Pred ? I.Target->getStartAddr() : Addr + 1;
      break;
    }
    case Opcode::Jmp:
      Addr = I.Target->getStartAddr();
      break;
    case Opcode::Call:
      ShadowStack.push_back(Addr + 1);
      Addr = I.Callee->getEntryAddr();
      break;
    case Opcode::Ret:
      if (ShadowStack.empty())
        return Result;
      Addr = ShadowStack.back();
      ShadowStack.pop_back();
      break;
    case Opcode::Halt:
      return Result;
    default:
      ++Addr;
      break;
    }
  }
  return Result;
}
