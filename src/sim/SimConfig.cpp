//===- sim/SimConfig.cpp - Machine configuration -------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SimConfig.h"

#include "support/StringUtils.h"

using namespace dmp;
using namespace dmp::sim;

unsigned SimConfig::latencyFor(ir::Opcode Op) const {
  switch (Op) {
  case ir::Opcode::Mul:
  case ir::Opcode::MulI:
    return 3;
  case ir::Opcode::Div:
    return 12;
  case ir::Opcode::CondBr:
    return 4; // Resolution depth beyond dispatch.
  default:
    return 1;
  }
}

std::string SimConfig::toString() const {
  std::string Out;
  Out += formatString("Front end      : %u-wide fetch, up to %u not-taken "
                      "branches/cycle, %u-deep front end\n",
                      FetchWidth, MaxNotTakenBranchesPerFetch, FrontEndDepth);
  Out += formatString("Predictors     : %s, %u-entry BTB, %u-entry RAS\n",
                      Predictor == uarch::PredictorKind::Perceptron
                          ? "perceptron (64-bit history, 256 entries)"
                          : "gshare",
                      BtbEntries, RasEntries);
  Out += formatString("Execution core : %u-wide issue/retire, %u-entry ROB, "
                      "%u-entry LSQ\n",
                      IssueWidth, RobSize, LsqSize);
  Out += formatString("Memory         : IL1 %lluKB/%u-way/%uc, DL1 "
                      "%lluKB/%u-way/%uc, L2 %lluKB/%u-way/%uc, mem %uc\n",
                      static_cast<unsigned long long>(Memory.IL1Size / 1024),
                      Memory.IL1Assoc, Memory.IL1Latency,
                      static_cast<unsigned long long>(Memory.DL1Size / 1024),
                      Memory.DL1Assoc, Memory.DL1Latency,
                      static_cast<unsigned long long>(Memory.L2Size / 1024),
                      Memory.L2Assoc, Memory.L2Latency, Memory.MemoryLatency);
  Out += formatString("DMP support    : %s, JRS conf (%u-bit history, "
                      "threshold %u), %u predicate regs, %u CFM regs\n",
                      EnableDmp ? "enabled" : "disabled", ConfHistoryBits,
                      ConfThreshold, NumPredicateRegs, NumCfmRegisters);
  return Out;
}
