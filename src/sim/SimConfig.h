//===- sim/SimConfig.h - Machine configuration ----------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine configuration — paper Table 1:
///
///   Front end:    64KB 2-way 2-cycle I-cache; fetches up to 3 conditional
///                 not-taken branches per cycle; 8-wide.
///   Predictors:   16KB perceptron (64-bit history, 256 entries); 4K-entry
///                 BTB; 64-entry return address stack; minimum branch
///                 misprediction penalty 25 cycles.
///   Core:         8-wide fetch/issue/execute/retire; 512-entry ROB;
///                 128-entry LSQ; scheduling window 8x64.
///   Memory:       64KB 4-way 2-cycle DL1; 1MB 8-way 10-cycle L2; 300-cycle
///                 memory.
///   DMP support:  2KB enhanced JRS confidence estimator (12-bit history,
///                 threshold 14); 32 predicate registers; 3 CFM registers.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SIM_SIMCONFIG_H
#define DMP_SIM_SIMCONFIG_H

#include "guard/Guard.h"
#include "ir/Opcode.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"

#include <cstdint>
#include <functional>
#include <string>

namespace dmp::sim {

/// How often (in retired instructions) the inner loop polls
/// SimConfig::Cancel.  Coarse enough to be free, fine enough that a
/// cancelled cell dies within a few microseconds of work.
constexpr uint64_t kCancelPollInstrs = 4096;

/// Full machine configuration.
struct SimConfig {
  // Front end.
  unsigned FetchWidth = 8;
  unsigned MaxNotTakenBranchesPerFetch = 3;
  /// Fetch-to-execute depth; together with branch execution latency this
  /// yields the paper's 25-cycle minimum misprediction penalty.
  unsigned FrontEndDepth = 21;

  // Core.
  unsigned IssueWidth = 8;
  unsigned RetireWidth = 8;
  unsigned RobSize = 512;
  unsigned LsqSize = 128;

  // Predictors.
  uarch::PredictorKind Predictor = uarch::PredictorKind::Perceptron;
  unsigned BtbEntries = 4096;
  unsigned RasEntries = 64;

  // Confidence estimator (enhanced JRS).  The paper's Table 1 uses 12-bit
  // history; with our much shorter simulation runs a 12-bit-history index
  // spreads each branch over thousands of counters that never warm up, so
  // we fold in 4 history bits instead (a deliberate, documented scaling
  // deviation; see DESIGN.md).  Threshold 14 of 15 as in Table 1.
  unsigned ConfIndexBits = 12;
  unsigned ConfHistoryBits = 4;
  unsigned ConfThreshold = 14;

  // Memory hierarchy.
  uarch::MemoryConfig Memory;

  // DMP support.
  bool EnableDmp = false;
  unsigned NumPredicateRegs = 32;
  unsigned NumCfmRegisters = 3;
  /// dpred-mode instruction budget per episode; entering instructions
  /// beyond this fills the window and forces the episode to end.
  unsigned MaxDpredInstrs = 400;
  /// Maximum predicated loop iterations before declaring no-exit.
  unsigned MaxLoopDpredIters = 30;

  /// Dynamic instruction budget of one simulation run.
  uint64_t MaxInstrs = 2'000'000;

  /// Runaway-cell watchdog: when non-zero, a run that is still executing
  /// after this many retired instructions *aborts* with ResourceExhausted
  /// (StatusError) instead of stopping cleanly the way MaxInstrs does.
  /// MaxInstrs bounds how much of the workload a cell measures; the
  /// watchdog bounds how wrong a misconfigured cell can go.  Counted in
  /// retired instructions, so exhaustion is deterministic across thread
  /// counts and hosts.  0 disables.
  uint64_t WatchdogInstrBudget = 0;

  /// Cooperative cancellation for the inner loop: when set, the run polls
  /// the token every kCancelPollInstrs retired instructions and aborts
  /// with the token's Status (StatusError).  Not part of the simulated
  /// machine, so excluded from cache-key hashing (hashSimConfig).  The
  /// token must outlive the run.
  const guard::CancelToken *Cancel = nullptr;

  /// Liveness beat for the inner loop: when set, called every
  /// kCancelPollInstrs retired instructions (the same cadence as Cancel).
  /// The dmp::serve workers use it to emit CELL_PROGRESS heartbeats so the
  /// supervisor's hung-worker watchdog can tell "slow" from "wedged".
  /// Like Cancel, not part of the simulated machine and excluded from
  /// cache-key hashing (hashSimConfig); must be cheap and must not throw.
  std::function<void()> Progress;

  /// Deliberate retired-state corruption for differential-oracle canary
  /// tests (dmp::check): 0 = none, 1 = drop the first retired store from
  /// the extracted final state, 2 = flip a bit of r1 in the extracted
  /// final registers.  Never affects timing or the emulated program; only
  /// the FinalState the simulator reports.
  unsigned InjectFault = 0;

  /// Execution latency of \p Op (loads use the cache model instead).
  unsigned latencyFor(ir::Opcode Op) const;

  /// Human-readable Table 1-style description.
  std::string toString() const;
};

} // namespace dmp::sim

#endif // DMP_SIM_SIMCONFIG_H
