//===- analyze/AnnotationConsistency.cpp - Annotation/program cross-check -===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AnnotationConsistency (ANN01-ANN06): every DivergeMap entry must
/// reference this exact program — branch addresses inside the address
/// table and naming conditional branches, CFM/loop-header addresses naming
/// block starts, and no annotation pinned to a block the CFG says is dead.
/// (ANN07, duplicate serialized entries, lives in lintDivergeMapText: the
/// in-memory map is address-keyed and cannot hold duplicates.)
///
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "support/StringUtils.h"

namespace dmp::analyze {
namespace {

class AnnotationConsistencyPass : public Pass {
public:
  const char *name() const override { return "AnnotationConsistency"; }
  bool needsAnalysis() const override { return true; }

  void run(const AnalysisInput &Input, DiagnosticSink &Sink) override {
    if (Input.Annotations == nullptr)
      return;
    const ir::Program &P = *Input.P;
    const cfg::ProgramAnalysis &PA = *Input.PA;

    for (uint32_t BranchAddr : Input.Annotations->sortedAddrs()) {
      const core::DivergeAnnotation &Ann =
          *Input.Annotations->find(BranchAddr);

      if (BranchAddr >= P.instrCount()) {
        Sink.report(DiagCode::AnnBranchAddrOutOfRange, DiagLocation::program(),
                    formatString("annotated branch address %u is outside the "
                                 "program (%u instructions)",
                                 BranchAddr, P.instrCount()));
        continue; // Nothing else about this entry can be resolved.
      }

      const ir::BasicBlock *BranchBlock = P.blockAt(BranchAddr);
      const ir::Function *F = BranchBlock->getParent();
      const DiagLocation BranchLoc = DiagLocation::inBlock(
          F->getName(), BranchBlock->getName(), BranchAddr);

      if (!P.instrAt(BranchAddr).isCondBr())
        Sink.report(DiagCode::AnnNotCondBr, BranchLoc,
                    formatString("annotated address %u is a '%s', not a "
                                 "conditional branch",
                                 BranchAddr,
                                 ir::opcodeName(P.instrAt(BranchAddr).Op)));
      else if (!PA.forFunction(*F).View.isReachable(BranchBlock))
        Sink.report(DiagCode::AnnDeadBlock, BranchLoc,
                    "annotated diverge branch sits in an unreachable block");

      for (const core::CfmPoint &Cfm : Ann.Cfms) {
        if (Cfm.PointKind != core::CfmPoint::Kind::Address)
          continue;
        if (Cfm.Addr >= P.instrCount()) {
          Sink.report(DiagCode::AnnCfmAddrOutOfRange, BranchLoc,
                      formatString("cfm address %u is outside the program "
                                   "(%u instructions)",
                                   Cfm.Addr, P.instrCount()));
          continue;
        }
        const ir::BasicBlock *CfmBlock = P.blockAt(Cfm.Addr);
        if (CfmBlock->getStartAddr() != Cfm.Addr)
          Sink.report(DiagCode::AnnCfmNotBlockStart, BranchLoc,
                      formatString("cfm address %u is not a block start "
                                   "(block '%s' starts at %u)",
                                   Cfm.Addr, CfmBlock->getName().c_str(),
                                   CfmBlock->getStartAddr()));
        else if (!PA.forFunction(*CfmBlock->getParent())
                      .View.isReachable(CfmBlock))
          Sink.report(DiagCode::AnnDeadBlock, BranchLoc,
                      formatString("cfm point %u names unreachable block "
                                   "'%s'",
                                   Cfm.Addr, CfmBlock->getName().c_str()));
      }

      if (Ann.Kind == core::DivergeKind::Loop) {
        if (Ann.LoopHeaderAddr >= P.instrCount())
          Sink.report(DiagCode::AnnLoopHeaderBad, BranchLoc,
                      formatString("loop header address %u is outside the "
                                   "program (%u instructions)",
                                   Ann.LoopHeaderAddr, P.instrCount()));
        else if (P.blockAt(Ann.LoopHeaderAddr)->getStartAddr() !=
                 Ann.LoopHeaderAddr)
          Sink.report(DiagCode::AnnLoopHeaderBad, BranchLoc,
                      formatString("loop header address %u is not a block "
                                   "start",
                                   Ann.LoopHeaderAddr));
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> createAnnotationConsistencyPass() {
  return std::make_unique<AnnotationConsistencyPass>();
}

} // namespace dmp::analyze
