//===- analyze/IRLint.cpp - IR structure and semantics lint -------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRLint (IR01-IR20): the structural checks of the legacy ir::Verifier
/// rewritten onto the diagnostics framework, plus semantic extensions —
/// per-function reachability, a whole-program maybe-undefined-read check
/// (dataflow::ProgramDataflow's interprocedural definite assignment),
/// register-range validation, and call-graph sanity (dead functions,
/// recursion, calls to main).
///
/// CFG-based checks only run on structurally clean input: reachability
/// (IR14) per clean function, the definite-assignment sweep (IR15) only
/// when every function is clean — cfg::CFGView and the dataflow solver
/// assume well-formed blocks, and call boundaries cross functions.
///
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "cfg/CFG.h"
#include "dataflow/Dataflow.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dmp::analyze {
namespace {

using dataflow::RegSet;

class IRLintPass : public Pass {
public:
  const char *name() const override { return "IRLint"; }

  void run(const AnalysisInput &Input, DiagnosticSink &Sink) override {
    const ir::Program &P = *Input.P;

    if (!P.isFinalized()) {
      Sink.report(DiagCode::IrNotFinalized, DiagLocation::program(),
                  "program is not finalized; no addresses assigned");
      return; // Every other check needs addresses.
    }
    if (P.getMain() == nullptr) {
      Sink.report(DiagCode::IrNoMain, DiagLocation::program(),
                  "program has no functions (no entry point)");
      return;
    }

    // Structural sweep, in layout order.  NextAddr tracks the address the
    // finalize() tables must have assigned.
    uint32_t NextAddr = 0;
    std::vector<bool> FnStructurallyOk(P.functions().size(), true);
    for (const auto &F : P.functions()) {
      const size_t ErrorsBefore = Sink.errorCount();
      checkFunction(P, *F, NextAddr, Sink);
      FnStructurallyOk[F->getId()] = Sink.errorCount() == ErrorsBefore;
    }

    checkCallGraph(P, Sink);

    for (const auto &F : P.functions())
      if (FnStructurallyOk[F->getId()])
        checkReachability(*F, Sink);

    // The definite-assignment sweep solves call boundaries across the whole
    // program, so it needs every function well-formed, not just one.
    if (std::all_of(FnStructurallyOk.begin(), FnStructurallyOk.end(),
                    [](bool Ok) { return Ok; }))
      checkMaybeUndefReads(P, Sink);
  }

private:
  static DiagLocation locAt(const ir::Function &F, const ir::BasicBlock &B,
                            uint32_t Addr = ir::InvalidAddr) {
    return DiagLocation::inBlock(F.getName(), B.getName(), Addr);
  }

  void checkFunction(const ir::Program &P, const ir::Function &F,
                     uint32_t &NextAddr, DiagnosticSink &Sink) {
    if (F.blocks().empty()) {
      Sink.report(DiagCode::IrEmptyFunction,
                  DiagLocation::inFunction(F.getName()),
                  "function has no basic blocks");
      return;
    }

    for (const auto &B : F.blocks()) {
      if (B->empty()) {
        Sink.report(DiagCode::IrEmptyBlock, locAt(F, *B),
                    "basic block has no instructions");
        continue;
      }
      for (size_t I = 0; I < B->size(); ++I) {
        const ir::Instruction &Inst = B->instructions()[I];
        checkInstruction(P, F, *B, Inst, I + 1 == B->size(), Sink);
        if (Inst.Addr != NextAddr) {
          Sink.report(DiagCode::IrAddrTableSkew, locAt(F, *B, Inst.Addr),
                      formatString("instruction address %u breaks the dense "
                                   "layout (expected %u)",
                                   Inst.Addr, NextAddr));
          NextAddr = Inst.Addr; // Resync so one skew reports once.
        } else if (NextAddr < P.instrCount() &&
                 P.blockAt(NextAddr) != B.get())
          Sink.report(DiagCode::IrBlockTableSkew, locAt(F, *B, Inst.Addr),
                      formatString("block table maps address %u to block "
                                   "'%s', not its containing block",
                                   Inst.Addr,
                                   P.blockAt(NextAddr)->getName().c_str()));
        ++NextAddr;
      }
    }

    // The last block in layout must end in an explicit non-fall-through
    // terminator: anything else runs off the end of the function.
    const ir::BasicBlock &Last = *F.blocks().back();
    if (!Last.empty()) {
      const ir::Instruction *T = Last.getTerminator();
      if (T == nullptr || T->Op == ir::Opcode::CondBr)
        Sink.report(DiagCode::IrFallsOffEnd, locAt(F, Last),
                    "control can fall off the end of the function (last "
                    "block must end in jmp, ret, or halt)");
    }

    if (&F == P.getMain()) {
      bool HasHalt = false;
      for (const auto &B : F.blocks())
        for (const ir::Instruction &Inst : B->instructions())
          HasHalt |= Inst.Op == ir::Opcode::Halt;
      if (!HasHalt)
        Sink.report(DiagCode::IrNoHalt, DiagLocation::inFunction(F.getName()),
                    "entry function has no halt instruction");
    }
  }

  void checkInstruction(const ir::Program &P, const ir::Function &F,
                        const ir::BasicBlock &B, const ir::Instruction &Inst,
                        bool IsLastInBlock, DiagnosticSink &Sink) {
    const DiagLocation Loc = locAt(F, B, Inst.Addr);

    if (Inst.isTerminator() && !IsLastInBlock)
      Sink.report(DiagCode::IrTerminatorMidBlock, Loc,
                  formatString("terminator '%s' is not the last instruction "
                               "of its block",
                               ir::opcodeName(Inst.Op)));

    if (Inst.writesReg() && Inst.Dst == ir::RegZero)
      Sink.report(DiagCode::IrWriteToZeroReg, Loc,
                  "instruction writes the hardwired-zero register r0");

    if (Inst.writesReg() && Inst.Dst >= ir::NumRegs)
      Sink.report(DiagCode::IrRegOutOfRange, Loc,
                  formatString("destination register r%u out of range "
                               "(%u registers)",
                               Inst.Dst, ir::NumRegs));
    if (ir::readsSrc1(Inst.Op) && Inst.Src1 >= ir::NumRegs)
      Sink.report(DiagCode::IrRegOutOfRange, Loc,
                  formatString("source register r%u out of range "
                               "(%u registers)",
                               Inst.Src1, ir::NumRegs));
    if (ir::readsSrc2(Inst.Op) && Inst.Src2 >= ir::NumRegs)
      Sink.report(DiagCode::IrRegOutOfRange, Loc,
                  formatString("source register r%u out of range "
                               "(%u registers)",
                               Inst.Src2, ir::NumRegs));

    if (Inst.Op == ir::Opcode::CondBr || Inst.Op == ir::Opcode::Jmp) {
      if (Inst.Target == nullptr)
        Sink.report(DiagCode::IrBranchNoTarget, Loc,
                    formatString("'%s' has no target block",
                                 ir::opcodeName(Inst.Op)));
      else if (Inst.Target->getParent() != &F)
        Sink.report(DiagCode::IrCrossFunctionBranch, Loc,
                    formatString("branch target '%s' belongs to function "
                                 "'%s'",
                                 Inst.Target->getName().c_str(),
                                 Inst.Target->getParent()->getName().c_str()));
    }

    if (Inst.Op == ir::Opcode::Call) {
      if (Inst.Callee == nullptr) {
        Sink.report(DiagCode::IrCallNoCallee, Loc,
                    "call has no callee function");
      } else {
        const bool InProgram = std::any_of(
            P.functions().begin(), P.functions().end(),
            [&](const auto &Fn) { return Fn.get() == Inst.Callee; });
        if (!InProgram)
          Sink.report(DiagCode::IrCalleeNotInProgram, Loc,
                      formatString("callee '%s' is not a function of this "
                                   "program",
                                   Inst.Callee->getName().c_str()));
        else if (Inst.Callee == P.getMain())
          Sink.report(DiagCode::IrCallToMain, Loc,
                      "call targets the entry function");
      }
    }
  }

  void checkCallGraph(const ir::Program &P, DiagnosticSink &Sink) {
    const size_t N = P.functions().size();
    // Callee id lists per function, restricted to in-program callees.
    std::vector<std::vector<unsigned>> Callees(N);
    for (const auto &F : P.functions())
      for (const auto &B : F->blocks())
        for (const ir::Instruction &Inst : B->instructions())
          if (Inst.Op == ir::Opcode::Call && Inst.Callee != nullptr &&
              Inst.Callee->getParent() == &P)
            Callees[F->getId()].push_back(Inst.Callee->getId());

    // Reachability from main over the call graph.
    std::vector<bool> Reached(N, false);
    std::vector<unsigned> Work{P.getMain()->getId()};
    Reached[P.getMain()->getId()] = true;
    while (!Work.empty()) {
      const unsigned Id = Work.back();
      Work.pop_back();
      for (unsigned Callee : Callees[Id])
        if (!Reached[Callee]) {
          Reached[Callee] = true;
          Work.push_back(Callee);
        }
    }
    for (const auto &F : P.functions())
      if (!Reached[F->getId()])
        Sink.report(DiagCode::IrUnreachableFunction,
                    DiagLocation::inFunction(F->getName()),
                    "function is never called (unreachable from the entry "
                    "function)");

    // Cycle detection (recursion is legal but the stack model is finite,
    // so surface it).  Colors: 0 white, 1 on-stack, 2 done.
    std::vector<uint8_t> Color(N, 0);
    for (const auto &F : P.functions())
      if (Color[F->getId()] == 0)
        dfsCycle(P, F->getId(), Callees, Color, Sink);
  }

  void dfsCycle(const ir::Program &P, unsigned Id,
                const std::vector<std::vector<unsigned>> &Callees,
                std::vector<uint8_t> &Color, DiagnosticSink &Sink) {
    Color[Id] = 1;
    for (unsigned Callee : Callees[Id]) {
      if (Color[Callee] == 1)
        Sink.report(DiagCode::IrRecursion,
                    DiagLocation::inFunction(
                        P.functions()[Id]->getName()),
                    formatString("call to '%s' forms a recursive cycle",
                                 P.functions()[Callee]->getName().c_str()));
      else if (Color[Callee] == 0)
        dfsCycle(P, Callee, Callees, Color, Sink);
    }
    Color[Id] = 2;
  }

  void checkReachability(const ir::Function &F, DiagnosticSink &Sink) {
    const cfg::CFGView View(F);
    for (const auto &B : F.blocks())
      if (!View.isReachable(B.get()))
        Sink.report(DiagCode::IrUnreachableBlock, locAt(F, *B),
                    "basic block is unreachable from the function entry");
  }

  /// Maybe-undefined reads (IR15), whole program: registers are implicitly
  /// zero at program start, so this is style-level (warning).  Callees
  /// inherit the caller's register file (the ISA has no calling
  /// convention), which is exactly what ProgramDataflow's interprocedural
  /// definite assignment models — a callee's entry facts are the meet over
  /// its call sites, main's are {r0}.
  void checkMaybeUndefReads(const ir::Program &P, DiagnosticSink &Sink) {
    const dataflow::ProgramDataflow PD(P);
    for (const auto &F : P.functions()) {
      const cfg::CFGView View(*F);
      RegSet Warned = 0; // One warning per register keeps the noise bounded.
      for (const ir::BasicBlock *B : View.reversePostorder()) {
        for (const ir::Instruction &Inst : B->instructions()) {
          const RegSet Assigned = PD.assignedBefore(Inst.Addr);
          const auto CheckRead = [&](ir::Reg R) {
            const RegSet Bit = dataflow::regBit(R);
            if ((Assigned & Bit) == 0 && (Warned & Bit) == 0) {
              Warned |= Bit;
              Sink.report(DiagCode::IrMaybeUndefRead, locAt(*F, *B, Inst.Addr),
                          formatString("r%u may be read before any write "
                                       "(relies on implicit zero "
                                       "initialization)",
                                       R));
            }
          };
          if (ir::readsSrc1(Inst.Op))
            CheckRead(Inst.Src1);
          if (ir::readsSrc2(Inst.Op))
            CheckRead(Inst.Src2);
        }
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> createIRLintPass() {
  return std::make_unique<IRLintPass>();
}

} // namespace dmp::analyze
