//===- analyze/PredicationSafety.cpp - Predication-safety diagnostics ----===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PredicationSafety (DF02-DF06): surfaces the dataflow layer's facts as
/// diagnostics.  Two sweeps:
///
///   dead register writes (DF05)  a write whose value liveness proves can
///                                never be read — one warning per
///                                (function, register), like IR15.
///   meldability (DF02-DF04, DF06) per annotated diverge branch, what the
///                                hammock classifier found: calls in the
///                                region, side exits / escape blocks,
///                                loop-carried recurrences, and — for
///                                regions that are otherwise meldable —
///                                the predicated-store count a software
///                                melder would have to emit.
///
/// Everything here is a warning: the facts describe what dmp::transform
/// could or could not do, not whether the program/annotations are valid.
/// The one error-severity dataflow code, DF01, lives in CfmLegality where
/// the side-effect summary contradicts an exact-CFM claim.
///
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "dataflow/Meldability.h"
#include "support/StringUtils.h"

namespace dmp::analyze {
namespace {

class PredicationSafetyPass : public Pass {
public:
  const char *name() const override { return "PredicationSafety"; }
  bool needsAnalysis() const override { return true; }

  void run(const AnalysisInput &Input, DiagnosticSink &Sink) override {
    const ir::Program &P = *Input.P;
    const dataflow::ProgramDataflow PD(P);

    checkDeadWrites(P, PD, Sink);

    if (Input.Annotations == nullptr)
      return;
    const dataflow::MeldReport Report =
        dataflow::analyzeMeldability(P, *Input.PA, *Input.Annotations, PD);
    for (const dataflow::HammockReport &H : Report.Hammocks)
      reportHammock(P, H, Sink);
  }

private:
  void checkDeadWrites(const ir::Program &P,
                       const dataflow::ProgramDataflow &PD,
                       DiagnosticSink &Sink) {
    for (const auto &F : P.functions()) {
      const cfg::CFGView View(*F);
      dataflow::RegSet Warned = 0;
      for (const ir::BasicBlock *B : View.reversePostorder())
        for (const ir::Instruction &Inst : B->instructions()) {
          const dataflow::RegSet Defs = dataflow::instrDefs(Inst);
          if (Defs == 0 || (PD.liveAfter(Inst.Addr) & Defs) != 0 ||
              (Warned & Defs) != 0)
            continue;
          Warned |= Defs;
          Sink.report(
              DiagCode::DfDeadWrite,
              DiagLocation::inBlock(F->getName(), B->getName(), Inst.Addr),
              formatString("write to r%u is dead: the value can never be "
                           "read before the next write",
                           Inst.Dst));
        }
    }
  }

  void reportHammock(const ir::Program &P, const dataflow::HammockReport &H,
                     DiagnosticSink &Sink) {
    if (H.BranchAddr >= P.instrCount())
      return;
    const ir::BasicBlock *BranchBlock = P.blockAt(H.BranchAddr);
    const DiagLocation Loc =
        DiagLocation::inBlock(BranchBlock->getParent()->getName(),
                              BranchBlock->getName(), H.BranchAddr);

    if (H.UnsafeCalls > 0)
      Sink.report(DiagCode::DfHammockCall, Loc,
                  formatString("hammock region contains %u call%s: melding "
                               "would run irreversible side effects on the "
                               "wrong path",
                               H.UnsafeCalls, H.UnsafeCalls == 1 ? "" : "s"));
    if (H.UnsafeSideExits > 0 || H.EscapeBlocks > 0)
      Sink.report(DiagCode::DfHammockSideExit, Loc,
                  formatString("hammock region has %u side exit%s and %u "
                               "escape block%s: control can leave before "
                               "the merge point",
                               H.UnsafeSideExits,
                               H.UnsafeSideExits == 1 ? "" : "s",
                               H.EscapeBlocks,
                               H.EscapeBlocks == 1 ? "" : "s"));
    if (H.UnsafeLoopCarried > 0)
      Sink.report(DiagCode::DfLoopCarried, Loc,
                  formatString("loop region has %u loop-carried "
                               "recurrence%s: predication needs "
                               "per-iteration select-µops",
                               H.UnsafeLoopCarried,
                               H.UnsafeLoopCarried == 1 ? "" : "s"));
    if (H.Meldable && H.PredStoreCount > 0)
      Sink.report(DiagCode::DfPredStores, Loc,
                  formatString("meldable hammock needs %u predicated "
                               "store%s",
                               H.PredStoreCount,
                               H.PredStoreCount == 1 ? "" : "s"));
  }
};

} // namespace

std::unique_ptr<Pass> createPredicationSafetyPass() {
  return std::make_unique<PredicationSafetyPass>();
}

} // namespace dmp::analyze
