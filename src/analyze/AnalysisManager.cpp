//===- analyze/AnalysisManager.cpp - Pass pipeline driver ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace dmp::analyze {

AnalysisManager AnalysisManager::standardPipeline() {
  AnalysisManager AM;
  AM.addPass(createIRLintPass());
  AM.addPass(createAnnotationConsistencyPass());
  AM.addPass(createCfmLegalityPass());
  AM.addPass(createPredicationSafetyPass());
  AM.addPass(createProfileSanityPass());
  return AM;
}

static Status statusFromSink(const DiagnosticSink &Sink) {
  if (Sink.errorCount() == 0)
    return Status();
  std::string First;
  for (const Diagnostic &D : Sink.diagnostics()) {
    if (D.Sev == Severity::Error) {
      First = D.renderText();
      // A multi-line rendering (notes) would garble the one-line message.
      const size_t Newline = First.find('\n');
      if (Newline != std::string::npos)
        First.resize(Newline);
      break;
    }
  }
  return Status::invariant(
      formatString("lint found %zu error diagnostic%s (first: %s)",
                   Sink.errorCount(), Sink.errorCount() == 1 ? "" : "s",
                   First.c_str()),
      "analyze");
}

Status AnalysisManager::run(const AnalysisInput &Input,
                            DiagnosticSink &Sink) const {
  if (Input.P == nullptr)
    return Status::invariant("analysis input has no program", "analyze");

  // IRLint first: everything downstream (including cfg::ProgramAnalysis
  // construction) assumes a structurally valid program.
  const size_t ErrorsBefore = Sink.errorCount();
  bool RanIrLint = false;
  for (const auto &P : Passes) {
    if (std::string(P->name()) == "IRLint") {
      P->run(Input, Sink);
      RanIrLint = true;
      break;
    }
  }
  if (RanIrLint && Sink.errorCount() > ErrorsBefore)
    return statusFromSink(Sink);

  // Build a local ProgramAnalysis when a later pass needs one and the
  // caller didn't supply it.  Safe now: IRLint passed (or wasn't
  // registered, in which case the caller vouches for the program).
  AnalysisInput Local = Input;
  std::unique_ptr<cfg::ProgramAnalysis> OwnedPA;
  for (const auto &P : Passes) {
    if (std::string(P->name()) != "IRLint" && P->needsAnalysis() &&
        Local.PA == nullptr) {
      OwnedPA = std::make_unique<cfg::ProgramAnalysis>(*Input.P);
      Local.PA = OwnedPA.get();
      break;
    }
  }

  for (const auto &P : Passes) {
    if (std::string(P->name()) == "IRLint")
      continue;
    P->run(Local, Sink);
  }
  return statusFromSink(Sink);
}

Status lintProgram(const ir::Program &P, DiagnosticSink *Sink) {
  DiagnosticSink LocalSink;
  DiagnosticSink &S = Sink ? *Sink : LocalSink;
  AnalysisManager AM;
  AM.addPass(createIRLintPass());
  AnalysisInput Input;
  Input.P = &P;
  return AM.run(Input, S);
}

Status lintAll(const AnalysisInput &Input, DiagnosticSink *Sink) {
  DiagnosticSink LocalSink;
  DiagnosticSink &S = Sink ? *Sink : LocalSink;
  return AnalysisManager::standardPipeline().run(Input, S);
}

void lintDivergeMapText(const std::string &Text, DiagnosticSink &Sink) {
  std::istringstream In(Text);
  std::string Line;
  // branch-addr -> first line number it appeared on.
  std::unordered_map<uint32_t, unsigned> Seen;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.rfind("branch ", 0) != 0)
      continue;
    // Parse just the address token; full validation is parseDivergeMap's
    // job — a malformed line is its Corrupt, not our ANN07.
    char *End = nullptr;
    const unsigned long Addr = std::strtoul(Line.c_str() + 7, &End, 10);
    if (End == Line.c_str() + 7)
      continue;
    auto [It, Inserted] = Seen.emplace(static_cast<uint32_t>(Addr), LineNo);
    if (!Inserted)
      Sink.report(
          DiagCode::AnnDuplicateEntry, DiagLocation::program(),
          formatString("duplicate entry for branch %lu on line %u shadows "
                       "the entry on line %u",
                       Addr, LineNo, It->second));
  }
}

} // namespace dmp::analyze
