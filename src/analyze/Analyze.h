//===- analyze/Analyze.h - Pass-based static checker --------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-checker pass framework: an AnalysisInput bundling a Program
/// with the optional artifacts the passes can cross-check it against (CFG
/// analyses, an edge profile, a diverge-annotation map), a Pass interface,
/// and an AnalysisManager that runs a pipeline and converts error-severity
/// findings into a dmp::Status.
///
/// Shipped passes (see DESIGN.md "Static analysis" for the full code
/// registry):
///
///   IRLint                 structural and semantic IR validity; subsumes
///                          the legacy ir::Verifier checks and adds
///                          dataflow (maybe-undef reads), reachability,
///                          call-graph and register-range checks.
///   AnnotationConsistency  every annotation references a live conditional
///                          branch / block start of this exact program.
///   CfmLegality            CFM points post-dominate their diverge branch
///                          (for exact kinds), simple hammocks really are
///                          hammocks, loop annotations name real loops,
///                          and exact-CFM claims survive the side-effect
///                          summary cross-check (DF01).
///   PredicationSafety      dataflow facts as diagnostics (DF02-DF06):
///                          dead register writes, and per annotated
///                          hammock the meldability classification (calls,
///                          side exits, loop-carried recurrences,
///                          predicated-store counts).
///   ProfileSanity          edge counts conserve flow per block; branch
///                          totals match; annotated branches executed.
///
/// The manager always runs IRLint first and short-circuits the remaining
/// passes when it finds error-severity problems: the later passes (and the
/// cfg:: analyses they build) assume a structurally valid program.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_ANALYZE_ANALYZE_H
#define DMP_ANALYZE_ANALYZE_H

#include "analyze/Diagnostics.h"
#include "cfg/Analysis.h"
#include "cfg/EdgeProfile.h"
#include "core/DivergeInfo.h"
#include "ir/Program.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace dmp::analyze {

/// What a pipeline run checks.  Only the program is mandatory; passes that
/// need an absent artifact become no-ops (ProfileSanity without a profile,
/// CfmLegality without annotations, ...).
struct AnalysisInput {
  const ir::Program *P = nullptr;
  /// CFG analyses for \p P.  When null the manager builds its own (only if
  /// the program passed IRLint — the analyses assert on malformed IR).
  const cfg::ProgramAnalysis *PA = nullptr;
  const cfg::EdgeProfile *Profile = nullptr;
  const core::DivergeMap *Annotations = nullptr;
};

/// One checker pass.
class Pass {
public:
  virtual ~Pass() = default;

  virtual const char *name() const = 0;

  /// True when run() dereferences Input.PA (the manager then guarantees a
  /// ProgramAnalysis, building one on demand).
  virtual bool needsAnalysis() const { return false; }

  virtual void run(const AnalysisInput &Input, DiagnosticSink &Sink) = 0;
};

std::unique_ptr<Pass> createIRLintPass();
std::unique_ptr<Pass> createAnnotationConsistencyPass();
std::unique_ptr<Pass> createCfmLegalityPass();
std::unique_ptr<Pass> createPredicationSafetyPass();
std::unique_ptr<Pass> createProfileSanityPass();

/// Runs a pass pipeline and folds error findings into a Status.
class AnalysisManager {
public:
  AnalysisManager() = default;

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// The standard pipeline: IRLint, AnnotationConsistency, CfmLegality,
  /// PredicationSafety, ProfileSanity (in that order).
  static AnalysisManager standardPipeline();

  /// Runs every registered pass over \p Input, reporting into \p Sink.
  /// IRLint (when registered) runs first; if it reports error-severity
  /// findings the remaining passes are skipped, since they require a
  /// well-formed program.  Returns ok when no error-severity diagnostics
  /// were produced, otherwise Status::invariant (origin "analyze").
  Status run(const AnalysisInput &Input, DiagnosticSink &Sink) const;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Lints just the IR (the ir::Verifier replacement).  When \p Sink is null
/// a local sink is used and the first error lands in the Status message.
Status lintProgram(const ir::Program &P, DiagnosticSink *Sink = nullptr);

/// Runs the standard pipeline over \p Input.
Status lintAll(const AnalysisInput &Input, DiagnosticSink *Sink = nullptr);

/// Lints the *serialized text* of a diverge map for duplicate/shadowed
/// `branch` entries (ANN07).  DivergeMap itself is keyed by address, so
/// duplicates silently collapse at parse time; this catches them in the
/// file before that happens.
void lintDivergeMapText(const std::string &Text, DiagnosticSink &Sink);

} // namespace dmp::analyze

#endif // DMP_ANALYZE_ANALYZE_H
