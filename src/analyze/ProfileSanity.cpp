//===- analyze/ProfileSanity.cpp - Edge-profile consistency checks ------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProfileSanity (PROF01-PROF04): an edge profile is only trustworthy when
/// it is internally consistent with the program it claims to describe —
/// per-block inflow matches execution counts (flow conservation),
/// taken+not-taken matches the executions of the branch's block, and every
/// profiled address actually names a conditional branch / block start.
/// Small slack is allowed everywhere: the profiler may stop at its
/// instruction budget mid-path, leaving the final trace's blocks one count
/// short.
///
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dmp::analyze {
namespace {

/// Allowed absolute discrepancy for a block executed \p Exec times: a
/// truncated final trace plus ~0.1% relative slack.
uint64_t toleranceFor(uint64_t Exec) { return 2 + Exec / 1024; }

uint64_t absDiff(uint64_t A, uint64_t B) { return A > B ? A - B : B - A; }

class ProfileSanityPass : public Pass {
public:
  const char *name() const override { return "ProfileSanity"; }
  bool needsAnalysis() const override { return true; }

  void run(const AnalysisInput &Input, DiagnosticSink &Sink) override {
    if (Input.Profile == nullptr)
      return;
    const ir::Program &P = *Input.P;
    const cfg::EdgeProfile &Prof = *Input.Profile;

    checkAddresses(P, Prof, Sink);
    checkBranchTotals(P, Prof, Sink);
    checkFlowConservation(Input, Sink);

    if (Input.Annotations != nullptr)
      for (uint32_t BranchAddr : Input.Annotations->sortedAddrs()) {
        if (BranchAddr >= P.instrCount() ||
            !P.instrAt(BranchAddr).isCondBr())
          continue; // ANN01/ANN02's findings.
        if (!Prof.wasExecuted(BranchAddr)) {
          const ir::BasicBlock *B = P.blockAt(BranchAddr);
          Sink.report(DiagCode::ProfAnnotatedNeverExecuted,
                      DiagLocation::inBlock(B->getParent()->getName(),
                                            B->getName(), BranchAddr),
                      "annotated diverge branch never executed in this "
                      "profile: its merge probabilities are guesses");
        }
      }
  }

private:
  /// Every profiled address must exist in this program: branch counts on
  /// conditional branches, block counts on block starts.
  void checkAddresses(const ir::Program &P, const cfg::EdgeProfile &Prof,
                      DiagnosticSink &Sink) {
    std::vector<uint32_t> Addrs;
    for (const auto &[Addr, Counts] : Prof.branches())
      Addrs.push_back(Addr);
    std::sort(Addrs.begin(), Addrs.end());
    for (uint32_t Addr : Addrs) {
      if (Addr >= P.instrCount())
        Sink.report(DiagCode::ProfUnknownAddr, DiagLocation::program(),
                    formatString("profiled branch address %u is outside the "
                                 "program (%u instructions)",
                                 Addr, P.instrCount()));
      else if (!P.instrAt(Addr).isCondBr())
        Sink.report(DiagCode::ProfUnknownAddr, DiagLocation::program(),
                    formatString("profiled branch address %u is a '%s', not "
                                 "a conditional branch",
                                 Addr, ir::opcodeName(P.instrAt(Addr).Op)));
    }

    Addrs.clear();
    for (const auto &[Addr, Count] : Prof.blockExecCounts())
      Addrs.push_back(Addr);
    std::sort(Addrs.begin(), Addrs.end());
    for (uint32_t Addr : Addrs) {
      if (Addr >= P.instrCount())
        Sink.report(DiagCode::ProfUnknownAddr, DiagLocation::program(),
                    formatString("profiled block address %u is outside the "
                                 "program (%u instructions)",
                                 Addr, P.instrCount()));
      else if (P.blockAt(Addr)->getStartAddr() != Addr)
        Sink.report(DiagCode::ProfUnknownAddr, DiagLocation::program(),
                    formatString("profiled block address %u is not a block "
                                 "start",
                                 Addr));
    }
  }

  /// taken + not-taken of a branch must match the executions of its block:
  /// a terminator runs exactly once per block entry (modulo truncation).
  void checkBranchTotals(const ir::Program &P, const cfg::EdgeProfile &Prof,
                         DiagnosticSink &Sink) {
    std::vector<uint32_t> Addrs;
    for (const auto &[Addr, Counts] : Prof.branches())
      if (Addr < P.instrCount() && P.instrAt(Addr).isCondBr())
        Addrs.push_back(Addr);
    std::sort(Addrs.begin(), Addrs.end());
    for (uint32_t Addr : Addrs) {
      const ir::BasicBlock *B = P.blockAt(Addr);
      const uint64_t BlockExec = Prof.blockExecCount(B->getStartAddr());
      const uint64_t Total = Prof.branchCounts(Addr).total();
      if (absDiff(Total, BlockExec) > toleranceFor(BlockExec))
        Sink.report(DiagCode::ProfBranchTotalsMismatch,
                    DiagLocation::inBlock(B->getParent()->getName(),
                                          B->getName(), Addr),
                    formatString("branch executed %llu times but its block "
                                 "executed %llu times",
                                 static_cast<unsigned long long>(Total),
                                 static_cast<unsigned long long>(BlockExec)));
    }
  }

  /// Kirchhoff over the CFG: what flows into a block must match how often
  /// it ran.  Function entries are excluded (their inflow is calls, which
  /// edge profiles don't record).
  void checkFlowConservation(const AnalysisInput &Input,
                             DiagnosticSink &Sink) {
    const ir::Program &P = *Input.P;
    const cfg::EdgeProfile &Prof = *Input.Profile;

    for (const auto &F : P.functions()) {
      const cfg::CFGView &View = Input.PA->forFunction(*F).View;
      for (const auto &B : F->blocks()) {
        if (B.get() == F->getEntry() || !View.isReachable(B.get()))
          continue;
        uint64_t Inflow = 0;
        for (const ir::BasicBlock *Pred : View.predecessors(B->getId())) {
          const ir::Instruction *T = Pred->getTerminator();
          if (T != nullptr && T->isCondBr()) {
            const cfg::BranchCounts Counts = Prof.branchCounts(T->Addr);
            if (T->Target == B.get())
              Inflow += Counts.Taken;
            if (Pred->getFallthrough() == B.get())
              Inflow += Counts.NotTaken;
          } else {
            // Fall-through or jmp: the whole block flows in.
            Inflow += Prof.blockExecCount(Pred->getStartAddr());
          }
        }
        const uint64_t Exec = Prof.blockExecCount(B->getStartAddr());
        if (absDiff(Inflow, Exec) >
            toleranceFor(std::max(Inflow, Exec)))
          Sink.report(DiagCode::ProfFlowNotConserved,
                      DiagLocation::inBlock(F->getName(), B->getName(),
                                            B->getStartAddr()),
                      formatString("block executed %llu times but profiled "
                                   "inflow is %llu",
                                   static_cast<unsigned long long>(Exec),
                                   static_cast<unsigned long long>(Inflow)));
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> createProfileSanityPass() {
  return std::make_unique<ProfileSanityPass>();
}

} // namespace dmp::analyze
