//===- analyze/Diagnostics.cpp - Structured lint diagnostics ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "analyze/Diagnostics.h"

#include "support/StringUtils.h"

#include <algorithm>

namespace dmp::analyze {

const char *severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

const char *diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::IrNotFinalized:
    return "IR01";
  case DiagCode::IrNoMain:
    return "IR02";
  case DiagCode::IrEmptyFunction:
    return "IR03";
  case DiagCode::IrEmptyBlock:
    return "IR04";
  case DiagCode::IrTerminatorMidBlock:
    return "IR05";
  case DiagCode::IrWriteToZeroReg:
    return "IR06";
  case DiagCode::IrBranchNoTarget:
    return "IR07";
  case DiagCode::IrCrossFunctionBranch:
    return "IR08";
  case DiagCode::IrCallNoCallee:
    return "IR09";
  case DiagCode::IrFallsOffEnd:
    return "IR10";
  case DiagCode::IrAddrTableSkew:
    return "IR11";
  case DiagCode::IrBlockTableSkew:
    return "IR12";
  case DiagCode::IrNoHalt:
    return "IR13";
  case DiagCode::IrUnreachableBlock:
    return "IR14";
  case DiagCode::IrMaybeUndefRead:
    return "IR15";
  case DiagCode::IrRegOutOfRange:
    return "IR16";
  case DiagCode::IrCalleeNotInProgram:
    return "IR17";
  case DiagCode::IrCallToMain:
    return "IR18";
  case DiagCode::IrUnreachableFunction:
    return "IR19";
  case DiagCode::IrRecursion:
    return "IR20";
  case DiagCode::AnnBranchAddrOutOfRange:
    return "ANN01";
  case DiagCode::AnnNotCondBr:
    return "ANN02";
  case DiagCode::AnnCfmAddrOutOfRange:
    return "ANN03";
  case DiagCode::AnnCfmNotBlockStart:
    return "ANN04";
  case DiagCode::AnnLoopHeaderBad:
    return "ANN05";
  case DiagCode::AnnDeadBlock:
    return "ANN06";
  case DiagCode::AnnDuplicateEntry:
    return "ANN07";
  case DiagCode::CfmNotPostDominator:
    return "CFM01";
  case DiagCode::CfmUnreachable:
    return "CFM02";
  case DiagCode::CfmOneSidedMerge:
    return "CFM03";
  case DiagCode::CfmNotSimpleHammock:
    return "CFM04";
  case DiagCode::CfmLoopHeaderNotLoop:
    return "CFM05";
  case DiagCode::CfmLoopBranchNotExit:
    return "CFM06";
  case DiagCode::CfmDuplicatePoint:
    return "CFM07";
  case DiagCode::CfmMergeProbRange:
    return "CFM08";
  case DiagCode::CfmMergeProbSum:
    return "CFM09";
  case DiagCode::CfmNestedConflict:
    return "CFM10";
  case DiagCode::CfmCrossFunction:
    return "CFM11";
  case DiagCode::CfmReturnUnreachable:
    return "CFM12";
  case DiagCode::CfmImprobableMerge:
    return "CFM13";
  case DiagCode::ProfFlowNotConserved:
    return "PROF01";
  case DiagCode::ProfBranchTotalsMismatch:
    return "PROF02";
  case DiagCode::ProfUnknownAddr:
    return "PROF03";
  case DiagCode::ProfAnnotatedNeverExecuted:
    return "PROF04";
  case DiagCode::DfExactCfmImpure:
    return "DF01";
  case DiagCode::DfHammockCall:
    return "DF02";
  case DiagCode::DfHammockSideExit:
    return "DF03";
  case DiagCode::DfLoopCarried:
    return "DF04";
  case DiagCode::DfDeadWrite:
    return "DF05";
  case DiagCode::DfPredStores:
    return "DF06";
  }
  return "??";
}

Severity diagCodeSeverity(DiagCode Code) {
  switch (Code) {
  case DiagCode::IrUnreachableBlock:
  case DiagCode::IrMaybeUndefRead:
  case DiagCode::IrCallToMain:
  case DiagCode::IrUnreachableFunction:
  case DiagCode::IrRecursion:
  case DiagCode::AnnDuplicateEntry:
  case DiagCode::CfmOneSidedMerge:
  case DiagCode::CfmMergeProbSum:
  case DiagCode::CfmNestedConflict:
  case DiagCode::CfmImprobableMerge:
  case DiagCode::ProfAnnotatedNeverExecuted:
  case DiagCode::DfHammockCall:
  case DiagCode::DfHammockSideExit:
  case DiagCode::DfLoopCarried:
  case DiagCode::DfDeadWrite:
  case DiagCode::DfPredStores:
    return Severity::Warning;
  default:
    return Severity::Error;
  }
}

static std::string renderLocation(const DiagLocation &Loc) {
  if (Loc.Function.empty())
    return "-"; // Program scope.
  std::string Out = Loc.Function;
  if (!Loc.Block.empty()) {
    Out += ':';
    Out += Loc.Block;
  }
  if (Loc.Addr != ir::InvalidAddr) {
    Out += '@';
    Out += std::to_string(Loc.Addr);
  }
  return Out;
}

std::string Diagnostic::renderText() const {
  std::string Out = formatString("%s[%s] %s: ", severityName(Sev),
                                 diagCodeName(Code),
                                 renderLocation(Loc).c_str());
  Out += Message;
  for (const std::string &N : Notes) {
    Out += "\n  note: ";
    Out += N;
  }
  return Out;
}

std::string Diagnostic::renderMachine() const {
  std::string Out = diagCodeName(Code);
  Out += '\t';
  Out += severityName(Sev);
  Out += '\t';
  Out += Loc.Function.empty() ? "-" : Loc.Function;
  Out += '\t';
  Out += Loc.Block.empty() ? "-" : Loc.Block;
  Out += '\t';
  Out += Loc.Addr == ir::InvalidAddr ? "-" : std::to_string(Loc.Addr);
  Out += '\t';
  Out += Message;
  for (const std::string &N : Notes) {
    Out += '\t';
    Out += N;
  }
  return Out;
}

Diagnostic &DiagnosticSink::report(DiagCode Code, DiagLocation Loc,
                                   std::string Message) {
  Diagnostic D;
  D.Code = Code;
  D.Sev = diagCodeSeverity(Code);
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  if (D.Sev == Severity::Error)
    ++Errors;
  else if (D.Sev == Severity::Warning)
    ++Warnings;
  Diags.push_back(std::move(D));
  return Diags.back();
}

bool DiagnosticSink::has(DiagCode Code) const {
  return std::any_of(Diags.begin(), Diags.end(),
                     [Code](const Diagnostic &D) { return D.Code == Code; });
}

std::string DiagnosticSink::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.renderText();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticSink::renderMachine() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.renderMachine();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticSink::summaryLine() const {
  if (Errors == 0 && Warnings == 0)
    return "clean";
  std::string Out;
  if (Errors > 0)
    Out = formatString("%zu error%s", Errors, Errors == 1 ? "" : "s");
  if (Warnings > 0) {
    if (!Out.empty())
      Out += ", ";
    Out += formatString("%zu warning%s", Warnings, Warnings == 1 ? "" : "s");
  }
  return Out;
}

} // namespace dmp::analyze
