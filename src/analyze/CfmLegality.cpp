//===- analyze/CfmLegality.cpp - Structural legality of CFM points -------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CfmLegality (CFM01-CFM13): the legality contract every selection
/// algorithm must honor.  Exact-kind CFM points (simple/nested hammocks
/// claiming MergeProb ~ 1) must post-dominate their diverge branch — the
/// paper's definition of an exact CFM (Section 3.1); simple-hammock
/// annotations must name straight-line hammocks (Section 3.4's
/// always-predicate shape); loop annotations must name real LoopInfo loops
/// whose annotated branch is a loop exit with the stated stay direction
/// (Section 5).  Frequently-executed-path CFMs (Alg-freq) are approximate
/// by design, so for those only reachability and probability sanity apply.
///
/// Entries whose addresses AnnotationConsistency would reject are skipped
/// here (cheap inline re-checks) so one bad address yields one ANN code,
/// not a cascade.
///
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"

#include "cfg/PathEnumerator.h"
#include "dataflow/Dataflow.h"
#include "support/StringUtils.h"

#include <queue>
#include <unordered_set>

namespace dmp::analyze {
namespace {

/// A CFM point claiming at least this merge probability is "exact": both
/// paths always rejoin there, i.e. it must post-dominate the branch.
constexpr double ExactMergeProb = 0.999;

/// Claimed-vs-profiled disagreement thresholds for CFM13.
constexpr double ClaimedProbFloor = 0.01;
constexpr double ProfiledProbCeiling = 1e-9;

class CfmLegalityPass : public Pass {
public:
  const char *name() const override { return "CfmLegality"; }
  bool needsAnalysis() const override { return true; }

  void run(const AnalysisInput &Input, DiagnosticSink &Sink) override {
    if (Input.Annotations == nullptr)
      return;
    const ir::Program &P = *Input.P;

    for (uint32_t BranchAddr : Input.Annotations->sortedAddrs()) {
      // AnnotationConsistency territory; skip what it already faulted.
      if (BranchAddr >= P.instrCount() || !P.instrAt(BranchAddr).isCondBr())
        continue;
      checkAnnotation(Input, BranchAddr,
                      *Input.Annotations->find(BranchAddr), Sink);
    }
  }

private:
  void checkAnnotation(const AnalysisInput &Input, uint32_t BranchAddr,
                       const core::DivergeAnnotation &Ann,
                       DiagnosticSink &Sink) {
    const ir::Program &P = *Input.P;
    const ir::BasicBlock *BranchBlock = P.blockAt(BranchAddr);
    const ir::Function *F = BranchBlock->getParent();
    const cfg::FunctionAnalysis &FA = Input.PA->forFunction(*F);
    const ir::Instruction &Branch = P.instrAt(BranchAddr);
    const DiagLocation Loc = DiagLocation::inBlock(
        F->getName(), BranchBlock->getName(), BranchAddr);

    // Per-annotation CFM list sanity: duplicates, probability range/sum.
    std::unordered_set<uint32_t> SeenAddrs;
    bool SeenReturn = false;
    double ProbSum = 0.0;
    for (const core::CfmPoint &Cfm : Ann.Cfms) {
      if (Cfm.PointKind == core::CfmPoint::Kind::Address) {
        if (!SeenAddrs.insert(Cfm.Addr).second)
          Sink.report(DiagCode::CfmDuplicatePoint, Loc,
                      formatString("cfm point %u listed more than once",
                                   Cfm.Addr));
      } else {
        if (SeenReturn)
          Sink.report(DiagCode::CfmDuplicatePoint, Loc,
                      "return cfm point listed more than once");
        SeenReturn = true;
      }
      if (Cfm.MergeProb < 0.0 || Cfm.MergeProb > 1.0)
        Sink.report(DiagCode::CfmMergeProbRange, Loc,
                    formatString("cfm merge probability %g outside [0, 1]",
                                 Cfm.MergeProb));
      else
        ProbSum += Cfm.MergeProb;
    }
    if (ProbSum > 1.0 + 1e-6)
      Sink.report(DiagCode::CfmMergeProbSum, Loc,
                  formatString("cfm merge probabilities sum to %g (> 1): "
                               "first-merge probabilities must partition",
                               ProbSum));

    if (SeenReturn && !functionHasRet(*F))
      Sink.report(DiagCode::CfmReturnUnreachable, Loc,
                  "return cfm point in a function with no ret instruction");

    if (Ann.Kind == core::DivergeKind::Loop) {
      checkLoop(P, FA, BranchAddr, Ann, Loc, Sink);
      return; // Loop CFMs are exit targets, not post-dominators.
    }

    const ir::BasicBlock *Taken = Branch.Target;
    const ir::BasicBlock *Fall = BranchBlock->getFallthrough();
    if (Taken == nullptr || Fall == nullptr)
      return; // IRLint faulted the branch (IR07/IR10) already.

    // Blocks each side can reach within the function.
    const auto TakenReach = reachableFrom(Taken);
    const auto FallReach = reachableFrom(Fall);

    const ir::BasicBlock *FirstCfmBlock = nullptr;
    for (const core::CfmPoint &Cfm : Ann.Cfms) {
      if (Cfm.PointKind != core::CfmPoint::Kind::Address)
        continue;
      if (Cfm.Addr >= P.instrCount())
        continue; // ANN03's finding.
      const ir::BasicBlock *CfmBlock = P.blockAt(Cfm.Addr);
      if (CfmBlock->getStartAddr() != Cfm.Addr)
        continue; // ANN04's finding.
      if (FirstCfmBlock == nullptr)
        FirstCfmBlock = CfmBlock;

      if (CfmBlock->getParent() != F) {
        Sink.report(DiagCode::CfmCrossFunction, Loc,
                    formatString("cfm point %u is in function '%s', not the "
                                 "diverge branch's function",
                                 Cfm.Addr,
                                 CfmBlock->getParent()->getName().c_str()));
        continue; // Intra-function checks don't apply.
      }

      const bool FromTaken = TakenReach.count(CfmBlock) != 0;
      const bool FromFall = FallReach.count(CfmBlock) != 0;
      if (!FromTaken && !FromFall)
        Sink.report(DiagCode::CfmUnreachable, Loc,
                    formatString("cfm point %u ('%s') is reachable from "
                                 "neither side of the branch",
                                 Cfm.Addr, CfmBlock->getName().c_str()));
      else if (!FromTaken || !FromFall)
        Sink.report(DiagCode::CfmOneSidedMerge, Loc,
                    formatString("cfm point %u ('%s') is reachable only "
                                 "from the %s side: the paths cannot merge "
                                 "there",
                                 Cfm.Addr, CfmBlock->getName().c_str(),
                                 FromTaken ? "taken" : "fall-through"));

      // Exact CFMs must post-dominate the branch: dpred-mode must be
      // guaranteed to end at the merge point (Section 3.1).
      const bool ExactKind = Ann.Kind == core::DivergeKind::SimpleHammock ||
                             Ann.Kind == core::DivergeKind::NestedHammock;
      if (ExactKind && Cfm.MergeProb >= ExactMergeProb &&
          !FA.PDT.postDominates(CfmBlock, BranchBlock))
        Sink.report(DiagCode::CfmNotPostDominator, Loc,
                    formatString("%s cfm point %u ('%s') claims merge "
                                 "probability %g but does not post-dominate "
                                 "the diverge branch",
                                 core::divergeKindName(Ann.Kind), Cfm.Addr,
                                 CfmBlock->getName().c_str(), Cfm.MergeProb));

      // Side-effect cross-check (DF01): an exact-CFM claim says both paths
      // always rejoin at the merge point, so the region between branch and
      // CFM cannot terminate execution (halt) or leave the function (ret)
      // — the block-effect summaries prove it can't.
      if (ExactKind && Cfm.MergeProb >= ExactMergeProb)
        checkExactRegionEffects(FA, Taken, Fall, CfmBlock, Cfm.Addr, Loc,
                                Sink);

      // Profile cross-check: a claimed merge the profile says essentially
      // never happens suggests a stale or mismatched annotation.
      if (Input.Profile != nullptr && Cfm.MergeProb >= ClaimedProbFloor &&
          Input.Profile->wasExecuted(BranchAddr)) {
        cfg::PathLimits Generous;
        Generous.MaxInstr = 400;
        Generous.MaxCondBr = 20;
        Generous.MinExecProb = 0.0005;
        const double PT =
            cfg::enumeratePaths(Taken, CfmBlock, *Input.Profile, Generous)
                .reachProb(CfmBlock);
        const double PNT =
            cfg::enumeratePaths(Fall, CfmBlock, *Input.Profile, Generous)
                .reachProb(CfmBlock);
        if (PT * PNT < ProfiledProbCeiling)
          Sink.report(DiagCode::CfmImprobableMerge, Loc,
                      formatString("cfm point %u claims merge probability "
                                   "%g but the profile gives the paths "
                                   "essentially no chance of merging there",
                                   Cfm.Addr, Cfm.MergeProb));
      }
    }

    if (Ann.Kind == core::DivergeKind::SimpleHammock)
      checkSimpleHammock(Taken, Fall, FirstCfmBlock, Loc, Sink);

    if (FirstCfmBlock != nullptr && FirstCfmBlock->getParent() == F)
      checkNestedConflicts(Input, BranchAddr, Taken, Fall, FirstCfmBlock,
                           TakenReach, FallReach, Loc, Sink);
  }

  /// DF01: the dataflow layer's per-block side-effect summaries applied to
  /// the hammock region of one exact CFM point.  A halt or ret anywhere on
  /// a branch-to-merge path means that path can end without reaching the
  /// merge, contradicting the ~1.0 merge-probability claim.
  void checkExactRegionEffects(const cfg::FunctionAnalysis &FA,
                               const ir::BasicBlock *Taken,
                               const ir::BasicBlock *Fall,
                               const ir::BasicBlock *CfmBlock,
                               uint32_t CfmAddr, const DiagLocation &Loc,
                               DiagnosticSink &Sink) {
    const std::vector<dataflow::BlockEffects> Effects =
        dataflow::computeBlockEffects(FA.View);
    std::unordered_set<const ir::BasicBlock *> Region{CfmBlock};
    std::vector<const ir::BasicBlock *> Work;
    for (const ir::BasicBlock *Side : {Taken, Fall})
      if (Region.insert(Side).second)
        Work.push_back(Side);
    while (!Work.empty()) {
      const ir::BasicBlock *B = Work.back();
      Work.pop_back();
      const dataflow::BlockEffects &E = Effects[B->getId()];
      if (E.HasHalt || E.HasRet) {
        Sink.report(DiagCode::DfExactCfmImpure, Loc,
                    formatString("exact cfm point %u claims both paths "
                                 "always merge, but block '%s' in the "
                                 "hammock region ends execution with a %s",
                                 CfmAddr, B->getName().c_str(),
                                 E.HasHalt ? "halt" : "ret"));
        return; // One finding per CFM point.
      }
      for (const ir::BasicBlock *Succ : B->successors())
        if (Region.insert(Succ).second)
          Work.push_back(Succ);
    }
  }

  static bool functionHasRet(const ir::Function &F) {
    for (const auto &B : F.blocks())
      for (const ir::Instruction &Inst : B->instructions())
        if (Inst.Op == ir::Opcode::Ret)
          return true;
    return false;
  }

  /// Blocks reachable from \p Start by intra-function successor edges
  /// (including \p Start itself).
  static std::unordered_set<const ir::BasicBlock *>
  reachableFrom(const ir::BasicBlock *Start) {
    std::unordered_set<const ir::BasicBlock *> Seen{Start};
    std::vector<const ir::BasicBlock *> Work{Start};
    while (!Work.empty()) {
      const ir::BasicBlock *B = Work.back();
      Work.pop_back();
      for (const ir::BasicBlock *Succ : B->successors())
        if (Seen.insert(Succ).second)
          Work.push_back(Succ);
    }
    return Seen;
  }

  /// A simple hammock is straight-line on both sides: each side either is
  /// the CFM or runs single-successor blocks into it (paper Figure 3(a)).
  void checkSimpleHammock(const ir::BasicBlock *Taken,
                          const ir::BasicBlock *Fall,
                          const ir::BasicBlock *CfmBlock,
                          const DiagLocation &Loc, DiagnosticSink &Sink) {
    if (CfmBlock == nullptr) {
      Sink.report(DiagCode::CfmNotSimpleHammock, Loc,
                  "simple-hammock annotation has no address cfm point");
      return;
    }
    const auto SideIsStraightLine = [&](const ir::BasicBlock *Side) {
      const ir::BasicBlock *Cur = Side;
      for (unsigned Steps = 0; Steps < 256; ++Steps) {
        if (Cur == CfmBlock)
          return true;
        const std::vector<ir::BasicBlock *> Succs = Cur->successors();
        if (Succs.size() != 1)
          return false; // Inner branch or dead end: not a simple hammock.
        Cur = Succs.front();
      }
      return false;
    };
    if (!SideIsStraightLine(Taken) || !SideIsStraightLine(Fall))
      Sink.report(DiagCode::CfmNotSimpleHammock, Loc,
                  "simple-hammock annotation, but the region between branch "
                  "and cfm is not two straight-line sides");
  }

  void checkLoop(const ir::Program &P, const cfg::FunctionAnalysis &FA,
                 uint32_t BranchAddr, const core::DivergeAnnotation &Ann,
                 const DiagLocation &Loc, DiagnosticSink &Sink) {
    // Skip entries ANN05 already faulted.
    if (Ann.LoopHeaderAddr >= P.instrCount())
      return;
    const ir::BasicBlock *Header = P.blockAt(Ann.LoopHeaderAddr);
    if (Header->getStartAddr() != Ann.LoopHeaderAddr)
      return;

    const ir::BasicBlock *BranchBlock = P.blockAt(BranchAddr);
    if (Header->getParent() != BranchBlock->getParent()) {
      Sink.report(DiagCode::CfmLoopHeaderNotLoop, Loc,
                  formatString("loop header %u is in a different function",
                               Ann.LoopHeaderAddr));
      return;
    }

    const cfg::Loop *L = FA.LI.loopWithHeader(Header);
    if (L == nullptr) {
      Sink.report(DiagCode::CfmLoopHeaderNotLoop, Loc,
                  formatString("block '%s' (%u) heads no natural loop",
                               Header->getName().c_str(),
                               Ann.LoopHeaderAddr));
      return;
    }
    if (!L->contains(BranchBlock)) {
      Sink.report(DiagCode::CfmLoopHeaderNotLoop, Loc,
                  formatString("diverge branch is outside the loop headed "
                               "by '%s'",
                               Header->getName().c_str()));
      return;
    }

    // A loop diverge branch is an exit branch: one successor stays in the
    // loop, the other leaves it, and LoopStayTaken names the staying side.
    const ir::Instruction &Branch = P.instrAt(BranchAddr);
    const ir::BasicBlock *Taken = Branch.Target;
    const ir::BasicBlock *Fall = BranchBlock->getFallthrough();
    if (Taken == nullptr || Fall == nullptr)
      return; // IRLint faulted the branch already.
    const bool TakenIn = L->contains(Taken);
    const bool FallIn = L->contains(Fall);
    if (TakenIn == FallIn) {
      Sink.report(DiagCode::CfmLoopBranchNotExit, Loc,
                  TakenIn ? "annotated loop branch never exits the loop "
                            "(both successors stay inside)"
                          : "annotated loop branch is not an exit branch "
                            "(both successors leave the loop)");
      return;
    }
    if (Ann.LoopStayTaken != TakenIn)
      Sink.report(DiagCode::CfmLoopBranchNotExit, Loc,
                  formatString("annotation says the %s direction stays in "
                               "the loop, but the cfg says the %s direction "
                               "does",
                               Ann.LoopStayTaken ? "taken" : "fall-through",
                               TakenIn ? "taken" : "fall-through"));
  }

  /// Flags another annotated diverge branch inside this one's hammock
  /// region whose own merge point escapes the region: nested dpred-mode
  /// would overrun the outer CFM (the overlap restriction of Section 3.6).
  void checkNestedConflicts(
      const AnalysisInput &Input, uint32_t OuterAddr,
      const ir::BasicBlock *Taken, const ir::BasicBlock *Fall,
      const ir::BasicBlock *OuterCfm,
      const std::unordered_set<const ir::BasicBlock *> &TakenReach,
      const std::unordered_set<const ir::BasicBlock *> &FallReach,
      const DiagLocation &Loc, DiagnosticSink &Sink) {
    const ir::Program &P = *Input.P;

    // Region: blocks on paths from either side to the outer CFM, found by
    // BFS that refuses to step through the CFM.
    std::unordered_set<const ir::BasicBlock *> Region;
    std::vector<const ir::BasicBlock *> Work;
    for (const ir::BasicBlock *Side : {Taken, Fall})
      if (Side != OuterCfm && Region.insert(Side).second)
        Work.push_back(Side);
    while (!Work.empty()) {
      const ir::BasicBlock *B = Work.back();
      Work.pop_back();
      for (const ir::BasicBlock *Succ : B->successors())
        if (Succ != OuterCfm && Region.insert(Succ).second)
          Work.push_back(Succ);
    }

    for (uint32_t InnerAddr : Input.Annotations->sortedAddrs()) {
      if (InnerAddr == OuterAddr || InnerAddr >= P.instrCount() ||
          !P.instrAt(InnerAddr).isCondBr())
        continue;
      const ir::BasicBlock *InnerBlock = P.blockAt(InnerAddr);
      if (Region.count(InnerBlock) == 0)
        continue;
      const core::DivergeAnnotation &Inner =
          *Input.Annotations->find(InnerAddr);
      for (const core::CfmPoint &Cfm : Inner.Cfms) {
        if (Cfm.PointKind != core::CfmPoint::Kind::Address ||
            Cfm.Addr >= P.instrCount())
          continue;
        const ir::BasicBlock *InnerCfm = P.blockAt(Cfm.Addr);
        if (InnerCfm != OuterCfm && Region.count(InnerCfm) == 0 &&
            (TakenReach.count(InnerCfm) != 0 ||
             FallReach.count(InnerCfm) != 0)) {
          Sink.report(DiagCode::CfmNestedConflict, Loc,
                      formatString("nested diverge branch at %u merges at "
                                   "%u, outside this branch's hammock "
                                   "region",
                                   InnerAddr, Cfm.Addr));
          break;
        }
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> createCfmLegalityPass() {
  return std::make_unique<CfmLegalityPass>();
}

} // namespace dmp::analyze
