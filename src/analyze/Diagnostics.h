//===- analyze/Diagnostics.h - Structured lint diagnostics --------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostics engine of the static checker (src/analyze): a stable
/// registry of diagnostic codes, a Diagnostic value type carrying code,
/// severity, location and message, and a DiagnosticSink that collects
/// findings and renders them as human-readable text or a machine-readable
/// line format.
///
/// Codes are stable identifiers ("IR04", "CFM01", "PROF01", ...): tests,
/// scripts, and golden files key on them, so a code is never renumbered or
/// reused once shipped.  The full registry with meanings lives in DESIGN.md
/// ("Static analysis").
///
/// Severity policy: Error findings make AnalysisManager::run return a
/// non-ok Status (and gate simulation / fuzz oracles); Warning findings are
/// reported but never gate; Note is reserved for attachments to a primary
/// diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_ANALYZE_DIAGNOSTICS_H
#define DMP_ANALYZE_DIAGNOSTICS_H

#include "ir/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmp::analyze {

enum class Severity : uint8_t { Note, Warning, Error };

const char *severityName(Severity Sev);

/// Every diagnostic the checker can produce.  Grouped by pass; the printed
/// code (diagCodeName) is the stable external identifier.
enum class DiagCode : uint8_t {
  // IRLint (IR01-IR20): structure and semantics of the IR itself.
  IrNotFinalized,       // IR01
  IrNoMain,             // IR02
  IrEmptyFunction,      // IR03
  IrEmptyBlock,         // IR04
  IrTerminatorMidBlock, // IR05
  IrWriteToZeroReg,     // IR06
  IrBranchNoTarget,     // IR07
  IrCrossFunctionBranch,// IR08
  IrCallNoCallee,       // IR09
  IrFallsOffEnd,        // IR10
  IrAddrTableSkew,      // IR11
  IrBlockTableSkew,     // IR12
  IrNoHalt,             // IR13
  IrUnreachableBlock,   // IR14 (warning)
  IrMaybeUndefRead,     // IR15 (warning)
  IrRegOutOfRange,      // IR16
  IrCalleeNotInProgram, // IR17
  IrCallToMain,         // IR18 (warning)
  IrUnreachableFunction,// IR19 (warning)
  IrRecursion,          // IR20 (warning)

  // AnnotationConsistency (ANN01-ANN07): do annotations reference live
  // blocks/branches of this exact program?
  AnnBranchAddrOutOfRange, // ANN01
  AnnNotCondBr,            // ANN02
  AnnCfmAddrOutOfRange,    // ANN03
  AnnCfmNotBlockStart,     // ANN04
  AnnLoopHeaderBad,        // ANN05
  AnnDeadBlock,            // ANN06
  AnnDuplicateEntry,       // ANN07 (warning)

  // CfmLegality (CFM01-CFM13): structural legality of diverge/CFM
  // annotations.
  CfmNotPostDominator,  // CFM01
  CfmUnreachable,       // CFM02
  CfmOneSidedMerge,     // CFM03 (warning)
  CfmNotSimpleHammock,  // CFM04
  CfmLoopHeaderNotLoop, // CFM05
  CfmLoopBranchNotExit, // CFM06
  CfmDuplicatePoint,    // CFM07
  CfmMergeProbRange,    // CFM08
  CfmMergeProbSum,      // CFM09 (warning)
  CfmNestedConflict,    // CFM10 (warning)
  CfmCrossFunction,     // CFM11
  CfmReturnUnreachable, // CFM12
  CfmImprobableMerge,   // CFM13 (warning)

  // ProfileSanity (PROF01-PROF04): internal consistency of an edge profile
  // against the program and the annotations.
  ProfFlowNotConserved,       // PROF01
  ProfBranchTotalsMismatch,   // PROF02
  ProfUnknownAddr,            // PROF03
  ProfAnnotatedNeverExecuted, // PROF04 (warning)

  // Dataflow / predication safety (DF01-DF06): facts from dmp::dataflow
  // cross-checked against the annotations (PredicationSafety pass, plus
  // the CfmLegality side-effect cross-check for DF01).
  DfExactCfmImpure,   // DF01
  DfHammockCall,      // DF02 (warning)
  DfHammockSideExit,  // DF03 (warning)
  DfLoopCarried,      // DF04 (warning)
  DfDeadWrite,        // DF05 (warning)
  DfPredStores,       // DF06 (warning)
};

/// Stable printed code, e.g. "CFM01".
const char *diagCodeName(DiagCode Code);

/// The registry severity of \p Code (what DiagnosticSink::report assigns).
Severity diagCodeSeverity(DiagCode Code);

/// Where a diagnostic points.  Names are copied so a Diagnostic stays valid
/// after the program it was produced from is destroyed.
struct DiagLocation {
  std::string Function; ///< Empty for program scope.
  std::string Block;    ///< Empty for function scope.
  uint32_t Addr = ir::InvalidAddr; ///< Instruction address when known.

  static DiagLocation program() { return DiagLocation(); }
  static DiagLocation inFunction(std::string Fn) {
    DiagLocation L;
    L.Function = std::move(Fn);
    return L;
  }
  static DiagLocation inBlock(std::string Fn, std::string Block,
                              uint32_t Addr = ir::InvalidAddr) {
    DiagLocation L;
    L.Function = std::move(Fn);
    L.Block = std::move(Block);
    L.Addr = Addr;
    return L;
  }
};

/// One finding.
struct Diagnostic {
  DiagCode Code = DiagCode::IrNotFinalized;
  Severity Sev = Severity::Error;
  DiagLocation Loc;
  std::string Message;
  std::vector<std::string> Notes;

  /// "error[CFM01] main:merge@17: message" (missing trailing location
  /// parts are omitted; a program-scope location renders as "-"); notes
  /// follow on "  note: ..." lines.
  std::string renderText() const;

  /// One tab-separated line: code, severity, function, block, addr,
  /// message, then one field per note.  Missing parts render as "-".
  std::string renderMachine() const;
};

/// Collects diagnostics in emission order (passes iterate their subjects
/// deterministically, so the order is stable run-to-run).
class DiagnosticSink {
public:
  /// Reports a finding with the registry severity of \p Code.  Returns the
  /// stored diagnostic so the caller can attach notes.
  Diagnostic &report(DiagCode Code, DiagLocation Loc, std::string Message);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t errorCount() const { return Errors; }
  size_t warningCount() const { return Warnings; }

  /// True when \p Code was reported at least once.
  bool has(DiagCode Code) const;

  /// All diagnostics as text, one finding per entry (renderText lines).
  std::string renderText() const;

  /// All diagnostics in the machine format, one line each.
  std::string renderMachine() const;

  /// "2 errors, 1 warning" (or "clean").
  std::string summaryLine() const;

private:
  std::vector<Diagnostic> Diags;
  size_t Errors = 0;
  size_t Warnings = 0;
};

} // namespace dmp::analyze

#endif // DMP_ANALYZE_DIAGNOSTICS_H
