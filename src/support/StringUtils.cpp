//===- support/StringUtils.cpp - Formatting helpers ------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace dmp;

std::string dmp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  const int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}

std::string dmp::formatPercent(double Fraction) {
  return formatString("%+.1f%%", Fraction * 100.0);
}

std::string dmp::formatDouble(double Value, int Decimals) {
  return formatString("%.*f", Decimals, Value);
}

std::vector<std::string> dmp::splitString(const std::string &Text,
                                          char Separator) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    const size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}
