//===- support/Status.cpp - Error taxonomy for subsystem boundaries -----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

using namespace dmp;

const char *dmp::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::Transient:
    return "transient";
  case ErrorCode::NotFound:
    return "not-found";
  case ErrorCode::Corrupt:
    return "corrupt";
  case ErrorCode::Invariant:
    return "invariant";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  }
  return "unknown";
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  std::string Out;
  if (!Origin.empty())
    Out += Origin + ": ";
  Out += errorCodeName(Code);
  if (!Message.empty())
    Out += ": " + Message;
  return Out;
}
