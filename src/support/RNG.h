//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generation used by the
/// synthetic workload generators and the Random-50 branch selector.
///
/// Everything in the project that needs randomness goes through this class so
/// that workloads, profiles, and experiments are bit-reproducible across
/// runs and platforms.  The generator is xoshiro256** seeded via SplitMix64.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_RNG_H
#define DMP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace dmp {

/// Deterministic xoshiro256** PRNG with convenience distributions.
class RNG {
public:
  /// Creates a generator whose entire stream is a pure function of \p Seed.
  explicit RNG(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using SplitMix64 expansion.
  void reseed(uint64_t Seed) {
    uint64_t X = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(X);
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound).  \p Bound must be
  /// nonzero.  Uses Lemire's multiply-shift rejection-free approximation,
  /// which is unbiased enough for workload synthesis.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow bound must be nonzero");
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed integer in the inclusive range
  /// [\p Lo, \p Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Derives an independent child generator; useful for giving each
  /// workload component its own stream.
  RNG fork() { return RNG(next()); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  static uint64_t splitMix64(uint64_t &X) {
    X += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  uint64_t State[4];
};

} // namespace dmp

#endif // DMP_SUPPORT_RNG_H
