//===- support/StringUtils.h - Formatting helpers ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and small string helpers, so library
/// code never needs <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_STRINGUTILS_H
#define DMP_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace dmp {

/// printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a ratio as a signed percentage with one decimal, e.g. "+20.4%".
std::string formatPercent(double Fraction);

/// Formats a double with \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals = 2);

/// Splits \p Text on \p Separator (no empty-token suppression).
std::vector<std::string> splitString(const std::string &Text, char Separator);

} // namespace dmp

#endif // DMP_SUPPORT_STRINGUTILS_H
