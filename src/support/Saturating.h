//===- support/Saturating.h - Saturating counters ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width saturating up/down counters, the basic storage element of the
/// branch predictors and the JRS confidence estimator.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_SATURATING_H
#define DMP_SUPPORT_SATURATING_H

#include <cassert>
#include <cstdint>

namespace dmp {

/// An N-bit saturating counter.  Counts in [0, 2^Bits - 1].
template <unsigned Bits> class SaturatingCounter {
  static_assert(Bits >= 1 && Bits <= 16, "unsupported counter width");

public:
  static constexpr uint16_t Max = (1u << Bits) - 1;

  SaturatingCounter() = default;
  explicit SaturatingCounter(uint16_t Initial) : Value(Initial) {
    assert(Initial <= Max && "initial value out of range");
  }

  void increment() {
    if (Value < Max)
      ++Value;
  }

  void decrement() {
    if (Value > 0)
      --Value;
  }

  void reset(uint16_t NewValue = 0) {
    assert(NewValue <= Max && "reset value out of range");
    Value = NewValue;
  }

  uint16_t get() const { return Value; }

  /// Returns true when the counter is in its upper half; the usual
  /// taken/not-taken interpretation for 2-bit predictor counters.
  bool isWeaklySet() const { return Value > Max / 2; }

  /// Returns true when the counter is saturated at its maximum.
  bool isSaturated() const { return Value == Max; }

private:
  uint16_t Value = 0;
};

/// A signed saturating weight, used by the perceptron predictor.
template <int MinValue, int MaxValue> class SaturatingWeight {
  static_assert(MinValue < MaxValue, "degenerate weight range");

public:
  int get() const { return Value; }

  void add(int Delta) {
    int Next = Value + Delta;
    if (Next > MaxValue)
      Next = MaxValue;
    if (Next < MinValue)
      Next = MinValue;
    Value = Next;
  }

private:
  int Value = 0;
};

} // namespace dmp

#endif // DMP_SUPPORT_SATURATING_H
