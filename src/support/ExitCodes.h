//===- support/ExitCodes.h - Standard tool exit codes -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process exit codes every CLI tool in this repo uses (dmpc, fuzz_dmp,
/// and the bench drivers), so scripts and CI can distinguish "the run
/// failed" from "you typed the command wrong" from "the run was interrupted
/// but left a resumable checkpoint".  See DESIGN.md "Shutdown, deadlines,
/// and crash recovery".
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_EXITCODES_H
#define DMP_SUPPORT_EXITCODES_H

namespace dmp::exitcode {

/// Everything the tool was asked to do succeeded.
inline constexpr int Ok = 0;

/// The tool ran but the work failed (oracle divergence, failed cells the
/// caller asked to treat as fatal, unwritable output, ...).
inline constexpr int Failure = 1;

/// The command line was malformed: unknown flag, bad value, missing
/// operand.  Nothing was run.
inline constexpr int Usage = 2;

/// The run was interrupted by SIGINT/SIGTERM after draining in-flight work
/// and flushing a campaign-journal checkpoint; rerunning with --journal
/// resumes it.  128 + SIGINT, the conventional interrupted-by-signal code.
inline constexpr int Interrupted = 130;

/// The run was terminated by SIGTERM (128 + SIGTERM).  Only dmp_served
/// distinguishes SIGTERM from SIGINT — a service manager's stop is not an
/// operator's ^C — via guard::lastSignal(); the one-shot drivers keep
/// exiting Interrupted for both.
inline constexpr int Terminated = 143;

/// The exit code crashpoint-harness children die with (mimicking SIGKILL's
/// 128 + 9), so tests/test_crash.cpp can tell an injected crash from an
/// ordinary failure.
inline constexpr int CrashChild = 137;

} // namespace dmp::exitcode

#endif // DMP_SUPPORT_EXITCODES_H
