//===- support/Status.h - Error taxonomy for subsystem boundaries -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dmp::Status / dmp::StatusOr<T>: the project-wide error taxonomy used at
/// subsystem boundaries (artifact cache, profile/annotation codecs, task
/// graph, experiment engine).  A Status carries an ErrorCode, a one-line
/// message (lowercase, no trailing period, per the project's error-message
/// style) and the origin subsystem that produced it.
///
/// The codes partition failures by the correct *reaction*, not by cause:
///
///   Transient         retry (bounded, deterministic) or fall back to
///                     recomputation; the operation may succeed later.
///   NotFound          a lookup missed; compute and (optionally) store.
///   Corrupt           stored bytes failed validation; discard and recompute.
///   Invariant         a logic error / broken precondition; never retried.
///   Cancelled         the operation was skipped because something it
///                     depended on failed first.
///   ResourceExhausted a budget or capacity limit was hit.
///
/// StatusError wraps a Status as a throwable so failures can cross the
/// std::function boundary of exec::TaskGraph tasks; TaskGraph::runAll and
/// harness::ExperimentEngine convert it back into a per-slot Status instead
/// of letting it poison the whole campaign.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_STATUS_H
#define DMP_SUPPORT_STATUS_H

#include <cassert>
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace dmp {

/// Failure classes, partitioned by the correct reaction (see file comment).
enum class ErrorCode : uint8_t {
  Ok = 0,
  Transient,
  NotFound,
  Corrupt,
  Invariant,
  Cancelled,
  ResourceExhausted,
};

/// Stable lowercase name of \p Code ("ok", "transient", ...).
const char *errorCodeName(ErrorCode Code);

/// An error code plus message and origin subsystem.  Copyable, cheap when
/// ok (no strings allocated).
class Status {
public:
  /// Default-constructed Status is ok.
  Status() = default;

  static Status transient(std::string Msg, std::string Origin) {
    return Status(ErrorCode::Transient, std::move(Msg), std::move(Origin));
  }
  static Status notFound(std::string Msg, std::string Origin) {
    return Status(ErrorCode::NotFound, std::move(Msg), std::move(Origin));
  }
  static Status corrupt(std::string Msg, std::string Origin) {
    return Status(ErrorCode::Corrupt, std::move(Msg), std::move(Origin));
  }
  static Status invariant(std::string Msg, std::string Origin) {
    return Status(ErrorCode::Invariant, std::move(Msg), std::move(Origin));
  }
  static Status cancelled(std::string Msg, std::string Origin) {
    return Status(ErrorCode::Cancelled, std::move(Msg), std::move(Origin));
  }
  static Status resourceExhausted(std::string Msg, std::string Origin) {
    return Status(ErrorCode::ResourceExhausted, std::move(Msg),
                  std::move(Origin));
  }
  static Status make(ErrorCode Code, std::string Msg, std::string Origin) {
    return Status(Code, std::move(Msg), std::move(Origin));
  }

  bool ok() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return ok(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }
  const std::string &origin() const { return Origin; }

  /// "origin: code: message" (or "ok").
  std::string toString() const;

private:
  Status(ErrorCode Code, std::string Msg, std::string Origin)
      : Code(Code), Message(std::move(Msg)), Origin(std::move(Origin)) {}

  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
  std::string Origin;
};

/// A Status or a value of type T, with an optional-like accessor surface so
/// call sites read naturally: `if (auto V = cache.load(K)) use(*V);`.
template <typename T> class StatusOr {
public:
  /// Default: a Cancelled "slot never written" status, so pre-allocated
  /// result matrices read as not-run until a task fills them.
  StatusOr()
      : St(Status::cancelled("result slot never written", "support")) {}

  StatusOr(T Value) : Value(std::move(Value)) {}
  StatusOr(Status S) : St(std::move(S)) {
    assert(!St.ok() && "ok status requires a value");
  }

  bool ok() const { return St.ok(); }
  bool has_value() const { return St.ok(); }
  explicit operator bool() const { return St.ok(); }

  const Status &status() const { return St; }

  T &value() {
    assert(ok() && "value() on a failed StatusOr");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on a failed StatusOr");
    return *Value;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// The value, or \p Fallback when this holds an error.
  T valueOr(T Fallback) const { return ok() ? *Value : std::move(Fallback); }

private:
  Status St;
  std::optional<T> Value;
};

/// Throwable carrier for a Status, used to cross task boundaries.
class StatusError : public std::exception {
public:
  explicit StatusError(Status S)
      : St(std::move(S)), Text(St.toString()) {}

  const Status &status() const { return St; }
  const char *what() const noexcept override { return Text.c_str(); }

private:
  Status St;
  std::string Text;
};

} // namespace dmp

#endif // DMP_SUPPORT_STATUS_H
