//===- support/Statistic.h - Named counter registry -------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight named-counter facility, in the spirit of LLVM's Statistic
/// class but instance-based (no static constructors): a StatisticSet owns a
/// group of named uint64 counters that simulator components update and
/// reports can iterate deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_STATISTIC_H
#define DMP_SUPPORT_STATISTIC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dmp {

/// A deterministic, ordered collection of named counters.
///
/// Counters are created on first use and iterate in creation order, so
/// reports are stable across runs.
class StatisticSet {
public:
  /// Returns a reference to the counter named \p Name, creating it (at zero)
  /// if needed.  The reference stays valid for the lifetime of the set.
  uint64_t &counter(const std::string &Name);

  /// Returns the value of \p Name, or zero when it was never created.
  uint64_t get(const std::string &Name) const;

  /// Adds \p Delta to the counter \p Name.
  void add(const std::string &Name, uint64_t Delta) {
    counter(Name) += Delta;
  }

  /// Resets every counter to zero (the names stay registered).
  void clear();

  /// All counters in creation order.
  const std::vector<std::pair<std::string, uint64_t>> &entries() const {
    return Entries;
  }

  /// Renders "name = value" lines into a string, for debugging dumps.
  std::string toString() const;

private:
  // Deque-like stability is unnecessary because we hand out references into
  // a deque of values, not into the vector of names.
  std::vector<std::pair<std::string, uint64_t>> Entries;
};

} // namespace dmp

#endif // DMP_SUPPORT_STATISTIC_H
