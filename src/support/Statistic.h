//===- support/Statistic.h - Named counter registry -------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight named-counter facility, in the spirit of LLVM's Statistic
/// class but instance-based (no static constructors): a StatisticSet owns a
/// group of named uint64 counters that simulator components update and
/// reports can iterate deterministically.
///
/// The set is safe for concurrent use: registration takes a mutex, counter
/// values are atomics, and the reference returned by counter() stays valid
/// (and lock-free to increment) for the lifetime of the set, so parallel
/// experiment tasks can register and bump counters on a shared set.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_STATISTIC_H
#define DMP_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmp {

/// A deterministic, ordered collection of named counters.
///
/// Counters are created on first use and iterate in creation order, so
/// reports are stable across runs (creation order under concurrent first
/// use is scheduling-dependent; callers that need a fixed report order
/// should touch the counters once up front).
class StatisticSet {
public:
  /// Returns a reference to the counter named \p Name, creating it (at zero)
  /// if needed.  The reference stays valid for the lifetime of the set and
  /// may be incremented concurrently with any other operation.
  std::atomic<uint64_t> &counter(const std::string &Name);

  /// Returns the value of \p Name, or zero when it was never created.
  uint64_t get(const std::string &Name) const;

  /// Adds \p Delta to the counter \p Name.
  void add(const std::string &Name, uint64_t Delta) {
    counter(Name).fetch_add(Delta, std::memory_order_relaxed);
  }

  /// Resets every counter to zero (the names stay registered).
  void clear();

  /// Snapshot of all counters in creation order.
  std::vector<std::pair<std::string, uint64_t>> entries() const;

  /// Renders "name = value" lines into a string, for debugging dumps.
  std::string toString() const;

private:
  struct Entry {
    std::string Name;
    std::atomic<uint64_t> Value{0};
  };

  // Deque keeps entry addresses stable while new counters register, so
  // counter() can hand out long-lived references.
  mutable std::mutex Mutex;
  std::deque<Entry> Entries;
  std::unordered_map<std::string, size_t> Index;
};

} // namespace dmp

#endif // DMP_SUPPORT_STATISTIC_H
