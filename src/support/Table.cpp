//===- support/Table.cpp - ASCII table rendering ---------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cctype>
#include <cstdio>

using namespace dmp;

Table::Table(std::vector<std::string> HeaderCells)
    : Header(std::move(HeaderCells)) {
  assert(!Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void Table::addSeparator() { Rows.push_back({"\x01"}); }

bool Table::looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '+' && C != '%' && C != 'x' && C != 'e')
      return false;
  return true;
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows) {
    if (Row.size() == 1 && Row[0] == "\x01")
      continue;
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  auto renderCell = [&](const std::string &Cell, size_t Width) {
    std::string Out;
    const size_t Pad = Width > Cell.size() ? Width - Cell.size() : 0;
    if (looksNumeric(Cell)) {
      Out.append(Pad, ' ');
      Out += Cell;
    } else {
      Out += Cell;
      Out.append(Pad, ' ');
    }
    return Out;
  };

  auto renderSeparator = [&]() {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      if (I != 0)
        Line += "-+-";
      Line.append(Widths[I], '-');
    }
    Line += '\n';
    return Line;
  };

  std::string Out;
  for (size_t I = 0; I < Header.size(); ++I) {
    if (I != 0)
      Out += " | ";
    Out += renderCell(Header[I], Widths[I]);
  }
  Out += '\n';
  Out += renderSeparator();
  for (const auto &Row : Rows) {
    if (Row.size() == 1 && Row[0] == "\x01") {
      Out += renderSeparator();
      continue;
    }
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += " | ";
      Out += renderCell(Row[I], Widths[I]);
    }
    Out += '\n';
  }
  return Out;
}

void Table::print(std::FILE *Stream) const {
  if (!Stream)
    Stream = stdout;
  const std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), Stream);
}
