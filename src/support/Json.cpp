//===- support/Json.cpp - Minimal JSON parser ----------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dmp;
using namespace dmp::json;

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

const Value *Value::findNumber(std::string_view Key) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V : nullptr;
}

const Value *Value::findString(std::string_view Key) const {
  const Value *V = find(Key);
  return V && V->isString() ? V : nullptr;
}

const Value *Value::findObject(std::string_view Key) const {
  const Value *V = find(Key);
  return V && V->isObject() ? V : nullptr;
}

namespace dmp::json {

/// Recursive-descent parser over the input text.  Depth is capped so a
/// hostile deeply-nested input cannot blow the stack.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  StatusOr<Value> run() {
    Value Root;
    if (Status S = parseValue(Root, /*Depth=*/0); !S.ok())
      return S;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return Root;
  }

private:
  static constexpr unsigned kMaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;

  Status fail(const std::string &Msg) const {
    return Status::corrupt(
        formatString("%s (at byte %zu)", Msg.c_str(), Pos), "json");
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  Status parseValue(Value &Out, unsigned Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!consumeWord("true"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.Boolean = true;
      return Status();
    case 'f':
      if (!consumeWord("false"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.Boolean = false;
      return Status();
    case 'n':
      if (!consumeWord("null"))
        return fail("bad literal");
      Out.K = Value::Kind::Null;
      return Status();
    default:
      return parseNumber(Out);
    }
  }

  Status parseObject(Value &Out, unsigned Depth) {
    consume('{');
    Out.K = Value::Kind::Object;
    skipSpace();
    if (consume('}'))
      return Status();
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Value V;
      if (Status S = parseValue(V, Depth + 1); !S.ok())
        return S;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Status();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parseArray(Value &Out, unsigned Depth) {
    consume('[');
    Out.K = Value::Kind::Array;
    skipSpace();
    if (consume(']'))
      return Status();
    while (true) {
      Value V;
      if (Status S = parseValue(V, Depth + 1); !S.ok())
        return S;
      Out.Elems.push_back(std::move(V));
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Status();
      return fail("expected ',' or ']' in array");
    }
  }

  Status parseString(std::string &Out) {
    consume('"');
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Status();
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      const char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // Our own writers only escape ASCII; anything beyond is out of
        // scope for this reader.
        if (Code > 0x7F)
          return fail("non-ASCII \\u escape unsupported");
        Out.push_back(static_cast<char>(Code));
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
  }

  Status parseNumber(Value &Out) {
    const size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("malformed number");
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (consume('.')) {
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    // The grammar above admits exactly what strtod parses, so this never
    // consumes past Pos.
    const std::string Num(Text.substr(Start, Pos - Start));
    Out.K = Value::Kind::Number;
    Out.Number = std::strtod(Num.c_str(), nullptr);
    return Status();
  }
};

} // namespace dmp::json

StatusOr<Value> json::parse(std::string_view Text) {
  return Parser(Text).run();
}

StatusOr<Value> json::parseFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::notFound("cannot open " + Path, "json");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parse(Text);
}
