//===- support/Histogram.cpp - Integer histograms --------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <cassert>
#include <cstdio>

using namespace dmp;

void Histogram::addSample(uint64_t Value, uint64_t Count) {
  Buckets[Value] += Count;
  Samples += Count;
  Total += Value * Count;
}

double Histogram::average() const {
  if (Samples == 0)
    return 0.0;
  return static_cast<double>(Total) / static_cast<double>(Samples);
}

uint64_t Histogram::minValue() const {
  return Buckets.empty() ? 0 : Buckets.begin()->first;
}

uint64_t Histogram::maxValue() const {
  return Buckets.empty() ? 0 : Buckets.rbegin()->first;
}

uint64_t Histogram::percentile(double Fraction) const {
  assert(Fraction >= 0.0 && Fraction <= 1.0 && "fraction out of range");
  if (Samples == 0)
    return 0;
  const uint64_t Target =
      static_cast<uint64_t>(Fraction * static_cast<double>(Samples));
  uint64_t Seen = 0;
  for (const auto &Bucket : Buckets) {
    Seen += Bucket.second;
    if (Seen >= Target)
      return Bucket.first;
  }
  return Buckets.rbegin()->first;
}

double Histogram::fractionAbove(uint64_t Threshold) const {
  if (Samples == 0)
    return 0.0;
  uint64_t Above = 0;
  for (const auto &Bucket : Buckets)
    if (Bucket.first > Threshold)
      Above += Bucket.second;
  return static_cast<double>(Above) / static_cast<double>(Samples);
}

std::string Histogram::toString() const {
  std::string Result;
  char Line[96];
  for (const auto &Bucket : Buckets) {
    std::snprintf(Line, sizeof(Line), "%8llu : %llu\n",
                  static_cast<unsigned long long>(Bucket.first),
                  static_cast<unsigned long long>(Bucket.second));
    Result += Line;
  }
  return Result;
}
