//===- support/Json.h - Minimal JSON parser -------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the machine-readable artifacts
/// the project itself emits (the BENCH_*.json perf snapshots).  It exists so
/// the snapshot schema can be *tested* — tests/test_benchjson.cpp parses the
/// committed snapshots and validates keys, types, and digests — and so the
/// perf-regression gate (`bench_throughput --check`) can read the committed
/// snapshot without a third-party dependency.
///
/// Scope is deliberately narrow: UTF-8 text, objects/arrays/strings/numbers/
/// bools/null, \uXXXX escapes decoded only for the ASCII range (our writers
/// never emit anything else).  Parse failures come back as Status::corrupt
/// with a byte offset, never an exception.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_JSON_H
#define DMP_SUPPORT_JSON_H

#include "support/Status.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dmp::json {

/// One parsed JSON value.  Values form a tree owned by the root.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : K(Kind::Null) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Typed accessors; asserting the kind is the caller's job (check first).
  bool asBool() const { return Boolean; }
  double asNumber() const { return Number; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &asArray() const { return Elems; }

  /// Object members in document order (the writers emit ordered snapshots,
  /// and the schema test checks leading keys).
  const std::vector<std::pair<std::string, Value>> &asObject() const {
    return Members;
  }

  /// Object lookup; nullptr when absent or when this is not an object.
  const Value *find(std::string_view Key) const;

  /// Convenience: find(Key) if it holds the wanted kind, else nullptr.
  const Value *findNumber(std::string_view Key) const;
  const Value *findString(std::string_view Key) const;
  const Value *findObject(std::string_view Key) const;

private:
  friend class Parser;

  Kind K;
  bool Boolean = false;
  double Number = 0.0;
  std::string Str;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses \p Text into a value tree.  The whole input must be one JSON
/// value (trailing garbage is an error).
StatusOr<Value> parse(std::string_view Text);

/// Reads and parses a JSON file.  NotFound when the file cannot be read.
StatusOr<Value> parseFile(const std::string &Path);

} // namespace dmp::json

#endif // DMP_SUPPORT_JSON_H
