//===- support/Histogram.h - Integer histograms ------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple integer-valued histogram used by the loop profiler (iteration
/// counts) and the simulator (dpred-mode lengths).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_HISTOGRAM_H
#define DMP_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <map>
#include <string>

namespace dmp {

/// Sparse histogram over non-negative integer samples.
class Histogram {
public:
  void addSample(uint64_t Value, uint64_t Count = 1);

  uint64_t sampleCount() const { return Samples; }
  uint64_t totalValue() const { return Total; }
  double average() const;
  uint64_t minValue() const;
  uint64_t maxValue() const;

  /// Value at or below which \p Fraction of the samples fall.
  /// \p Fraction must be in [0, 1].
  uint64_t percentile(double Fraction) const;

  /// Fraction of samples strictly greater than \p Threshold.
  double fractionAbove(uint64_t Threshold) const;

  const std::map<uint64_t, uint64_t> &buckets() const { return Buckets; }

  std::string toString() const;

private:
  std::map<uint64_t, uint64_t> Buckets;
  uint64_t Samples = 0;
  uint64_t Total = 0;
};

} // namespace dmp

#endif // DMP_SUPPORT_HISTOGRAM_H
