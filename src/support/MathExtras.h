//===- support/MathExtras.h - Small math helpers ----------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit and statistics helpers shared by the microarchitecture models and the
/// experiment harness.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_MATHEXTRAS_H
#define DMP_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dmp {

/// Returns true if \p X is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

/// Returns floor(log2(X)).  \p X must be nonzero.
constexpr unsigned log2Floor(uint64_t X) {
  assert(X != 0 && "log2Floor of zero");
  unsigned Result = 0;
  while (X >>= 1)
    ++Result;
  return Result;
}

/// Returns ceil(log2(X)).  \p X must be nonzero.
constexpr unsigned log2Ceil(uint64_t X) {
  assert(X != 0 && "log2Ceil of zero");
  return X == 1 ? 0 : log2Floor(X - 1) + 1;
}

/// Divides, treating a zero denominator as a zero result.  Handy for rate
/// statistics over possibly-empty populations.
inline double safeDiv(double Num, double Den) {
  return Den == 0.0 ? 0.0 : Num / Den;
}

/// Geometric mean of a vector of positive ratios.  The paper reports average
/// speedups over SPEC benchmarks; we follow the architecture-community
/// convention of using the geometric mean for speedup ratios.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Arithmetic mean; zero for an empty vector.
inline double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

} // namespace dmp

#endif // DMP_SUPPORT_MATHEXTRAS_H
