//===- support/Statistic.cpp - Named counter registry ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <cstdio>

using namespace dmp;

uint64_t &StatisticSet::counter(const std::string &Name) {
  for (auto &Entry : Entries)
    if (Entry.first == Name)
      return Entry.second;
  Entries.emplace_back(Name, 0);
  return Entries.back().second;
}

uint64_t StatisticSet::get(const std::string &Name) const {
  for (const auto &Entry : Entries)
    if (Entry.first == Name)
      return Entry.second;
  return 0;
}

void StatisticSet::clear() {
  for (auto &Entry : Entries)
    Entry.second = 0;
}

std::string StatisticSet::toString() const {
  std::string Result;
  char Line[160];
  for (const auto &Entry : Entries) {
    std::snprintf(Line, sizeof(Line), "%-40s = %llu\n", Entry.first.c_str(),
                  static_cast<unsigned long long>(Entry.second));
    Result += Line;
  }
  return Result;
}
