//===- support/Statistic.cpp - Named counter registry ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <cstdio>

using namespace dmp;

std::atomic<uint64_t> &StatisticSet::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Name);
  if (It != Index.end())
    return Entries[It->second].Value;
  Entries.emplace_back();
  Entries.back().Name = Name;
  Index.emplace(Name, Entries.size() - 1);
  return Entries.back().Value;
}

uint64_t StatisticSet::get(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Name);
  return It == Index.end()
             ? 0
             : Entries[It->second].Value.load(std::memory_order_relaxed);
}

void StatisticSet::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (Entry &E : Entries)
    E.Value.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> StatisticSet::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::pair<std::string, uint64_t>> Result;
  Result.reserve(Entries.size());
  for (const Entry &E : Entries)
    Result.emplace_back(E.Name, E.Value.load(std::memory_order_relaxed));
  return Result;
}

std::string StatisticSet::toString() const {
  std::string Result;
  char Line[160];
  for (const auto &[Name, Value] : entries()) {
    std::snprintf(Line, sizeof(Line), "%-40s = %llu\n", Name.c_str(),
                  static_cast<unsigned long long>(Value));
    Result += Line;
  }
  return Result;
}
