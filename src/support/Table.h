//===- support/Table.h - ASCII table rendering -------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII table rendering used by the benchmark harness to
/// print paper-style tables and figure series.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_TABLE_H
#define DMP_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dmp {

/// Builds and renders a rectangular table of strings with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; it must have exactly as many cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator row.
  void addSeparator();

  size_t rowCount() const { return Rows.size(); }

  /// Renders with single-space-padded, right-aligned numeric-looking cells
  /// and left-aligned text cells.
  std::string render() const;

  /// Writes render() to \p Stream (stdout by default).
  void print(std::FILE *Stream = nullptr) const;

private:
  static bool looksNumeric(const std::string &Cell);

  std::vector<std::string> Header;
  // A row with the sentinel single cell "\x01" renders as a separator.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dmp

#endif // DMP_SUPPORT_TABLE_H
