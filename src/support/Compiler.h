//===- support/Compiler.h - Portability and diagnostics macros -*- C++ -*-===//
//
// Part of the dmp-dpred project: a reproduction of "Profile-assisted
// Compiler Support for Dynamic Predication in Diverge-Merge Processors"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small set of compiler portability macros used across the project.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_COMPILER_H
#define DMP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached.  In debug builds it
/// aborts with a message; in release builds it is an optimizer hint.
#define DMP_UNREACHABLE(Msg)                                                   \
  do {                                                                         \
    assert(false && Msg);                                                      \
    std::fprintf(stderr, "UNREACHABLE executed: %s (%s:%d)\n", Msg, __FILE__,  \
                 __LINE__);                                                    \
    std::abort();                                                              \
  } while (false)

#if defined(__GNUC__)
#define DMP_LIKELY(Expr) __builtin_expect(!!(Expr), 1)
#define DMP_UNLIKELY(Expr) __builtin_expect(!!(Expr), 0)
#else
#define DMP_LIKELY(Expr) (Expr)
#define DMP_UNLIKELY(Expr) (Expr)
#endif

/// No-alias pointer qualifier for hot interpreter loops.  Only apply it
/// where the pointees provably never overlap (e.g. the emulator's register
/// file vs. its data memory).
#if defined(__GNUC__) || defined(_MSC_VER)
#define DMP_RESTRICT __restrict
#else
#define DMP_RESTRICT
#endif

/// Forces inlining of per-instruction helpers on the simulator/emulator hot
/// paths, where the call-frame overhead is measurable.  Use sparingly.
#if defined(__GNUC__)
#define DMP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define DMP_ALWAYS_INLINE inline
#endif

#endif // DMP_SUPPORT_COMPILER_H
