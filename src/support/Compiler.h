//===- support/Compiler.h - Portability and diagnostics macros -*- C++ -*-===//
//
// Part of the dmp-dpred project: a reproduction of "Profile-assisted
// Compiler Support for Dynamic Predication in Diverge-Merge Processors"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small set of compiler portability macros used across the project.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SUPPORT_COMPILER_H
#define DMP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached.  In debug builds it
/// aborts with a message; in release builds it is an optimizer hint.
#define DMP_UNREACHABLE(Msg)                                                   \
  do {                                                                         \
    assert(false && Msg);                                                      \
    std::fprintf(stderr, "UNREACHABLE executed: %s (%s:%d)\n", Msg, __FILE__,  \
                 __LINE__);                                                    \
    std::abort();                                                              \
  } while (false)

#if defined(__GNUC__)
#define DMP_LIKELY(Expr) __builtin_expect(!!(Expr), 1)
#define DMP_UNLIKELY(Expr) __builtin_expect(!!(Expr), 0)
#else
#define DMP_LIKELY(Expr) (Expr)
#define DMP_UNLIKELY(Expr) (Expr)
#endif

#endif // DMP_SUPPORT_COMPILER_H
