//===- exec/TaskGraph.cpp - Dependency-aware task scheduler ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"

#include <cassert>

using namespace dmp;
using namespace dmp::exec;

TaskGraph::TaskId TaskGraph::add(std::function<void()> Fn,
                                 const std::vector<TaskId> &Deps) {
  assert(!Ran && "cannot add tasks to a graph that already ran");
  assert(Fn && "null task added");
  const TaskId Id = Nodes.size();
  auto N = std::make_unique<Node>();
  N->Fn = std::move(Fn);
  N->Deps = Deps;
  size_t LiveDeps = 0;
  for (TaskId Dep : Deps) {
    assert(Dep < Id && "dependency must be a previously added task");
    Nodes[Dep]->Dependents.push_back(Id);
    ++LiveDeps;
  }
  N->InitialDeps = LiveDeps;
  N->RemainingDeps.store(LiveDeps, std::memory_order_relaxed);
  Nodes.push_back(std::move(N));
  return Id;
}

void TaskGraph::schedule(ThreadPool &Pool, TaskId Id) {
  Pool.submit([this, &Pool, Id] {
    if (KeepGoing) {
      // Run-to-completion: a task is cancelled iff some dependency did not
      // succeed.  Dependencies have finished (their Statuses slots are
      // final) before this task is ever scheduled, so the scan is safe.
      const Node &N = *Nodes[Id];
      const Status *BadStatus = nullptr;
      TaskId BadDep = 0;
      for (TaskId Dep : N.Deps)
        if (!Statuses[Dep].ok()) {
          BadDep = Dep;
          BadStatus = &Statuses[Dep];
          break;
        }
      // The drain check outranks the dep scan: once the graph is
      // draining, every un-started task uniformly reports the cancel
      // Status (origin "guard" for token trips), instead of downstream
      // tasks blaming their (also drained) dependencies.
      if (Status Drain = CancelCheck ? CancelCheck() : Status();
          !Drain.ok()) {
        // Graceful drain: the task never starts and its outcome is the
        // cancel Status itself, so callers can tell a drained task from a
        // dep-failure cancellation (origin "exec::TaskGraph").
        Statuses[Id] = std::move(Drain);
      } else if (BadStatus) {
        Statuses[Id] = Status::cancelled(
            "dependency task " + std::to_string(BadDep) + " " +
                errorCodeName(BadStatus->code()),
            "exec::TaskGraph");
      } else {
        try {
          N.Fn();
        } catch (const StatusError &E) {
          Statuses[Id] = E.status();
        } catch (const std::exception &E) {
          Statuses[Id] = Status::invariant(E.what(), "exec::TaskGraph");
        } catch (...) {
          Statuses[Id] =
              Status::invariant("task threw a non-std exception",
                                "exec::TaskGraph");
        }
      }
    } else if (!Cancelled.load(std::memory_order_acquire)) {
      try {
        Nodes[Id]->Fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          if (!FirstException)
            FirstException = std::current_exception();
        }
        Cancelled.store(true, std::memory_order_release);
      }
    }
    finish(Pool, Id);
  });
}

void TaskGraph::finish(ThreadPool &Pool, TaskId Id) {
  // Unlock dependents first so they can overlap with other finishing tasks.
  for (TaskId Dep : Nodes[Id]->Dependents)
    if (Nodes[Dep]->RemainingDeps.fetch_sub(1, std::memory_order_acq_rel) == 1)
      schedule(Pool, Dep);
  // The increment and the notify stay under DoneMutex so the waiter cannot
  // see the graph as complete (and let the caller destroy it) until this —
  // the last finisher's final touch of graph state — has released the lock.
  std::lock_guard<std::mutex> Lock(DoneMutex);
  if (++Completed == Nodes.size())
    Done.notify_all();
}

void TaskGraph::start(ThreadPool &Pool) {
  assert(!Ran && "task graph can only run once");
  Ran = true;
  if (Nodes.empty())
    return;
  // Roots come from the build-time dependency count, NOT RemainingDeps:
  // workers already running earlier roots decrement RemainingDeps
  // concurrently with this loop, and a node whose count they drop to zero
  // mid-scan would otherwise be scheduled twice — once by finish(), once
  // here — over-counting Completed and releasing the waiter early.
  for (TaskId Id = 0; Id < Nodes.size(); ++Id)
    if (Nodes[Id]->InitialDeps == 0)
      schedule(Pool, Id);
  std::unique_lock<std::mutex> Lock(DoneMutex);
  Done.wait(Lock, [this] { return Completed == Nodes.size(); });
}

void TaskGraph::run(ThreadPool &Pool) {
  start(Pool);
  if (FirstException)
    std::rethrow_exception(FirstException);
}

std::vector<Status> TaskGraph::runAll(ThreadPool &Pool,
                                      std::function<Status()> Check) {
  KeepGoing = true;
  CancelCheck = std::move(Check);
  Statuses.assign(Nodes.size(), Status());
  start(Pool);
  return std::move(Statuses);
}

void dmp::exec::parallelFor(ThreadPool &Pool, size_t Count,
                            const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;
  TaskGraph Graph;
  for (size_t I = 0; I < Count; ++I)
    Graph.add([&Fn, I] { Fn(I); });
  Graph.run(Pool);
}
