//===- exec/TaskGraph.cpp - Dependency-aware task scheduler ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"

#include <cassert>

using namespace dmp::exec;

TaskGraph::TaskId TaskGraph::add(std::function<void()> Fn,
                                 const std::vector<TaskId> &Deps) {
  assert(!Ran && "cannot add tasks to a graph that already ran");
  assert(Fn && "null task added");
  const TaskId Id = Nodes.size();
  auto N = std::make_unique<Node>();
  N->Fn = std::move(Fn);
  size_t LiveDeps = 0;
  for (TaskId Dep : Deps) {
    assert(Dep < Id && "dependency must be a previously added task");
    Nodes[Dep]->Dependents.push_back(Id);
    ++LiveDeps;
  }
  N->InitialDeps = LiveDeps;
  N->RemainingDeps.store(LiveDeps, std::memory_order_relaxed);
  Nodes.push_back(std::move(N));
  return Id;
}

void TaskGraph::schedule(ThreadPool &Pool, TaskId Id) {
  Pool.submit([this, &Pool, Id] {
    if (!Cancelled.load(std::memory_order_acquire)) {
      try {
        Nodes[Id]->Fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          if (!FirstException)
            FirstException = std::current_exception();
        }
        Cancelled.store(true, std::memory_order_release);
      }
    }
    finish(Pool, Id);
  });
}

void TaskGraph::finish(ThreadPool &Pool, TaskId Id) {
  // Unlock dependents first so they can overlap with other finishing tasks.
  for (TaskId Dep : Nodes[Id]->Dependents)
    if (Nodes[Dep]->RemainingDeps.fetch_sub(1, std::memory_order_acq_rel) == 1)
      schedule(Pool, Dep);
  // The increment and the notify stay under DoneMutex so run() cannot see
  // the graph as complete (and let the caller destroy it) until this — the
  // last finisher's final touch of graph state — has released the lock.
  std::lock_guard<std::mutex> Lock(DoneMutex);
  if (++Completed == Nodes.size())
    Done.notify_all();
}

void TaskGraph::run(ThreadPool &Pool) {
  assert(!Ran && "task graph can only run once");
  Ran = true;
  if (Nodes.empty())
    return;
  // Roots come from the build-time dependency count, NOT RemainingDeps:
  // workers already running earlier roots decrement RemainingDeps
  // concurrently with this loop, and a node whose count they drop to zero
  // mid-scan would otherwise be scheduled twice — once by finish(), once
  // here — over-counting Completed and releasing run() early.
  for (TaskId Id = 0; Id < Nodes.size(); ++Id)
    if (Nodes[Id]->InitialDeps == 0)
      schedule(Pool, Id);
  std::unique_lock<std::mutex> Lock(DoneMutex);
  Done.wait(Lock, [this] { return Completed == Nodes.size(); });
  if (FirstException)
    std::rethrow_exception(FirstException);
}

void dmp::exec::parallelFor(ThreadPool &Pool, size_t Count,
                            const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;
  TaskGraph Graph;
  for (size_t I = 0; I < Count; ++I)
    Graph.add([&Fn, I] { Fn(I); });
  Graph.run(Pool);
}
