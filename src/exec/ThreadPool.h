//===- exec/ThreadPool.h - Work-stealing thread pool ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool: each worker owns a deque of tasks, pops its
/// own work LIFO (cache-friendly for task graphs that fan out), and steals
/// FIFO from other workers when its deque runs dry.  External submissions
/// are distributed round-robin; submissions from inside a worker go to that
/// worker's own deque, so dependency chains unlocked by a finishing task
/// tend to stay on the core that produced their inputs.
///
/// The pool itself imposes no ordering between tasks — determinism of
/// experiment results comes from tasks writing disjoint, pre-allocated
/// result slots (see exec::TaskGraph and harness::ExperimentEngine), never
/// from scheduling order.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_EXEC_THREADPOOL_H
#define DMP_EXEC_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dmp::exec {

/// Fixed-size work-stealing pool.  Threads spin up in the constructor and
/// join in the destructor after draining every submitted task.
class ThreadPool {
public:
  /// Creates a pool with \p Threads workers (clamped to >= 1).
  explicit ThreadPool(unsigned Threads = defaultThreadCount());

  /// Drains all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task.  Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished.  If any task
  /// threw, rethrows the first captured exception (subsequent waits do not
  /// rethrow it again).  Must not be called from inside a pool task.
  void wait();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Hardware concurrency, clamped to >= 1.
  static unsigned defaultThreadCount();

private:
  struct WorkerQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Index);
  bool tryRunOneTask(unsigned SelfIndex);
  void runTask(std::function<void()> Task);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  // Sleep/wake + completion accounting.
  std::mutex StateMutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Pending = 0; ///< Submitted but not yet finished.
  /// Tasks published (or about to be: submit() increments before pushing)
  /// but not yet popped.  Sleeping workers wake on Queued > 0.
  size_t Queued = 0;
  bool Stopping = false;
  std::exception_ptr FirstException;
  size_t NextQueue = 0; ///< Round-robin cursor for external submissions.
};

} // namespace dmp::exec

#endif // DMP_EXEC_THREADPOOL_H
