//===- exec/TaskGraph.h - Dependency-aware task scheduler -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-shot task graph scheduled onto an exec::ThreadPool: nodes are
/// callables, edges are happens-before dependencies.  Dependencies must be
/// task ids returned by earlier add() calls, which makes the graph a DAG by
/// construction (no cycle detection needed).
///
/// The experiment engine uses this to express the paper's pipeline per
/// (benchmark, config) cell:
///
///   build workload ──> profile(run) ──┬──> select+simulate cell 0
///                 ├──> profile(train) ┼──> select+simulate cell 1
///                 └──> baseline sim ──┴──> ...
///
/// Two failure policies are offered (see DESIGN.md "Failure semantics"):
///
///  - run(): fail-fast.  The first throwing task cancels the whole graph:
///    every task that has not yet *started* when the failure is observed —
///    dependents and independent tasks alike — is skipped, the graph still
///    drains to completion (every node is visited exactly once), and run()
///    rethrows the first exception.  Tasks already executing finish
///    normally.  Which independent tasks got skipped depends on
///    scheduling; only the rethrown first-in-time exception is
///    deterministic for a serial pool.
///
///  - runAll(): run-to-completion.  Every task whose dependencies all
///    succeeded runs; a throwing task records a per-task dmp::Status
///    (StatusError's payload, or Invariant for foreign exceptions) and only
///    its transitive dependents are cancelled (Status code Cancelled,
///    message naming the failed dependency).  Independent subgraphs are
///    unaffected, which is what lets a campaign record failed cells as gaps
///    instead of aborting.
///
/// Results are deterministic for any thread count as long as tasks write
/// disjoint slots.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_EXEC_TASKGRAPH_H
#define DMP_EXEC_TASKGRAPH_H

#include "exec/ThreadPool.h"
#include "support/Status.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace dmp::exec {

/// A DAG of tasks, built single-threaded, run once on a pool.
class TaskGraph {
public:
  using TaskId = size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph &) = delete;
  TaskGraph &operator=(const TaskGraph &) = delete;

  /// Adds a task that runs after every task in \p Deps has finished.
  /// Each dependency must be an id returned by a previous add() call.
  TaskId add(std::function<void()> Fn, const std::vector<TaskId> &Deps = {});

  /// Fail-fast policy: runs the whole graph on \p Pool and blocks until
  /// every task finished or was cancelled.  Rethrows the first exception
  /// thrown by a task; see the file comment for the exact cancellation
  /// semantics.  The graph is spent afterwards; build a new one for the
  /// next run.
  void run(ThreadPool &Pool);

  /// Run-to-completion policy: blocks until every runnable task finished,
  /// and returns one Status per task id.  A task that threw StatusError
  /// yields its payload; any other exception yields Invariant with the
  /// exception text; a task downstream of a failure yields Cancelled and
  /// never runs.  Never throws.  The graph is spent afterwards.
  ///
  /// \p CancelCheck, when non-null, is polled once before each task starts
  /// (after its dependencies finished): a non-ok Status skips the task and
  /// records that Status verbatim as the task's outcome.  This is the
  /// graceful-drain hook — in-flight tasks always finish, un-started ones
  /// are shed — used by guard::CancelToken consumers; keeping it a plain
  /// std::function keeps exec free of a guard dependency.  The check must
  /// be thread-safe and, once it returns non-ok, keep returning non-ok.
  std::vector<Status> runAll(ThreadPool &Pool,
                             std::function<Status()> CancelCheck = {});

  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    std::function<void()> Fn;
    std::vector<TaskId> Deps;       ///< As passed to add().
    std::vector<TaskId> Dependents;
    size_t InitialDeps = 0; ///< As built; run()/runAll() pick roots from this.
    std::atomic<size_t> RemainingDeps{0};
  };

  void start(ThreadPool &Pool);
  void schedule(ThreadPool &Pool, TaskId Id);
  void finish(ThreadPool &Pool, TaskId Id);

  std::vector<std::unique_ptr<Node>> Nodes;
  bool Ran = false;
  bool KeepGoing = false; ///< runAll() policy; set before start().
  std::function<Status()> CancelCheck; ///< runAll() drain hook; may be null.

  // Run-time state.  Completed is guarded by DoneMutex (not atomic) on
  // purpose: the final increment, the notify, and the wait predicate must
  // be a single critical section, or the waiter could observe completion
  // and let the caller destroy the graph while the last finisher still
  // holds it.
  std::atomic<bool> Cancelled{false};
  std::mutex DoneMutex;
  std::condition_variable Done;
  size_t Completed = 0;
  std::exception_ptr FirstException;
  /// Per-task outcomes under runAll().  Pre-sized before start(), written
  /// only by the task's own finisher (disjoint slots), read after the
  /// barrier — so no extra locking is needed.
  std::vector<Status> Statuses;
};

/// Runs Fn(0..Count-1) across the pool and waits; rethrows the first
/// exception.  Iteration-to-thread assignment is unspecified, so Fn must
/// only touch per-index state.
void parallelFor(ThreadPool &Pool, size_t Count,
                 const std::function<void(size_t)> &Fn);

/// parallelFor that collects return values: Result[i] = Fn(i), in index
/// order regardless of scheduling.
template <typename R>
std::vector<R> parallelMap(ThreadPool &Pool, size_t Count,
                           const std::function<R(size_t)> &Fn) {
  std::vector<R> Results(Count);
  parallelFor(Pool, Count, [&](size_t I) { Results[I] = Fn(I); });
  return Results;
}

} // namespace dmp::exec

#endif // DMP_EXEC_TASKGRAPH_H
