//===- exec/TaskGraph.h - Dependency-aware task scheduler -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-shot task graph scheduled onto an exec::ThreadPool: nodes are
/// callables, edges are happens-before dependencies.  Dependencies must be
/// task ids returned by earlier add() calls, which makes the graph a DAG by
/// construction (no cycle detection needed).
///
/// The experiment engine uses this to express the paper's pipeline per
/// (benchmark, config) cell:
///
///   build workload ──> profile(run) ──┬──> select+simulate cell 0
///                 ├──> profile(train) ┼──> select+simulate cell 1
///                 └──> baseline sim ──┴──> ...
///
/// If any task throws, the remaining tasks are skipped (cancelled) and
/// run() rethrows the first exception.  Results are deterministic for any
/// thread count as long as tasks write disjoint slots.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_EXEC_TASKGRAPH_H
#define DMP_EXEC_TASKGRAPH_H

#include "exec/ThreadPool.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace dmp::exec {

/// A DAG of tasks, built single-threaded, run once on a pool.
class TaskGraph {
public:
  using TaskId = size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph &) = delete;
  TaskGraph &operator=(const TaskGraph &) = delete;

  /// Adds a task that runs after every task in \p Deps has finished.
  /// Each dependency must be an id returned by a previous add() call.
  TaskId add(std::function<void()> Fn, const std::vector<TaskId> &Deps = {});

  /// Runs the whole graph on \p Pool and blocks until every task finished
  /// or was cancelled.  Rethrows the first exception thrown by a task.
  /// The graph is spent afterwards; build a new one for the next run.
  void run(ThreadPool &Pool);

  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    std::function<void()> Fn;
    std::vector<TaskId> Dependents;
    size_t InitialDeps = 0; ///< As built; run() picks roots from this.
    std::atomic<size_t> RemainingDeps{0};
  };

  void schedule(ThreadPool &Pool, TaskId Id);
  void finish(ThreadPool &Pool, TaskId Id);

  std::vector<std::unique_ptr<Node>> Nodes;
  bool Ran = false;

  // Run-time state.  Completed is guarded by DoneMutex (not atomic) on
  // purpose: the final increment, the notify, and run()'s predicate must be
  // a single critical section, or run() could observe completion and let
  // the caller destroy the graph while the last finisher still holds it.
  std::atomic<bool> Cancelled{false};
  std::mutex DoneMutex;
  std::condition_variable Done;
  size_t Completed = 0;
  std::exception_ptr FirstException;
};

/// Runs Fn(0..Count-1) across the pool and waits; rethrows the first
/// exception.  Iteration-to-thread assignment is unspecified, so Fn must
/// only touch per-index state.
void parallelFor(ThreadPool &Pool, size_t Count,
                 const std::function<void(size_t)> &Fn);

/// parallelFor that collects return values: Result[i] = Fn(i), in index
/// order regardless of scheduling.
template <typename R>
std::vector<R> parallelMap(ThreadPool &Pool, size_t Count,
                           const std::function<R(size_t)> &Fn) {
  std::vector<R> Results(Count);
  parallelFor(Pool, Count, [&](size_t I) { Results[I] = Fn(I); });
  return Results;
}

} // namespace dmp::exec

#endif // DMP_EXEC_TASKGRAPH_H
