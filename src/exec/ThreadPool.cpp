//===- exec/ThreadPool.cpp - Work-stealing thread pool --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"

#include <cassert>

using namespace dmp::exec;

namespace {
/// Identifies the pool (and worker slot) the current thread belongs to, so
/// submit() can route nested submissions to the submitting worker's own
/// deque and wait() can assert it is not called from inside a task.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;
} // namespace

unsigned ThreadPool::defaultThreadCount() {
  const unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Queues.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "null task submitted");
  unsigned Target;
  if (CurrentPool == this) {
    Target = CurrentWorker;
  } else {
    std::lock_guard<std::mutex> Lock(StateMutex);
    Target = static_cast<unsigned>(NextQueue++ % Queues.size());
  }
  // Account before publishing: once the task is visible in a deque another
  // worker may pop, run, and *finish* it — its Pending decrement must never
  // land before this increment.  The cost is a sleeper that wakes on
  // Queued > 0 a moment before the push below lands; it simply rescans.
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++Pending;
    ++Queued;
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mutex);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::tryRunOneTask(unsigned SelfIndex) {
  std::function<void()> Task;
  // Own deque first, newest task first (LIFO).
  {
    WorkerQueue &Own = *Queues[SelfIndex];
    std::lock_guard<std::mutex> Lock(Own.Mutex);
    if (!Own.Tasks.empty()) {
      Task = std::move(Own.Tasks.back());
      Own.Tasks.pop_back();
    }
  }
  // Then steal from the other workers, oldest task first (FIFO).
  if (!Task) {
    const size_t N = Queues.size();
    for (size_t Offset = 1; Offset < N && !Task; ++Offset) {
      WorkerQueue &Victim = *Queues[(SelfIndex + Offset) % N];
      std::lock_guard<std::mutex> Lock(Victim.Mutex);
      if (!Victim.Tasks.empty()) {
        Task = std::move(Victim.Tasks.front());
        Victim.Tasks.pop_front();
      }
    }
  }
  if (!Task)
    return false;
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    --Queued;
  }
  runTask(std::move(Task));
  return true;
}

void ThreadPool::runTask(std::function<void()> Task) {
  try {
    Task();
  } catch (...) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (!FirstException)
      FirstException = std::current_exception();
  }
  bool Done;
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    assert(Pending > 0 && "task finished with no pending count");
    Done = --Pending == 0;
  }
  if (Done)
    AllDone.notify_all();
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentWorker = Index;
  for (;;) {
    while (tryRunOneTask(Index)) {
    }
    std::unique_lock<std::mutex> Lock(StateMutex);
    // Queued counts tasks published or about to be published (submit()
    // increments it before the push), so exiting at Stopping && Queued == 0
    // cannot strand a task: anything still in flight keeps Queued positive
    // until some worker pops it.
    WorkAvailable.wait(Lock, [this] { return Stopping || Queued > 0; });
    if (Stopping && Queued == 0)
      return;
  }
}

void ThreadPool::wait() {
  assert(CurrentPool != this &&
         "wait() must not be called from inside a pool task");
  std::unique_lock<std::mutex> Lock(StateMutex);
  AllDone.wait(Lock, [this] { return Pending == 0; });
  if (FirstException) {
    std::exception_ptr E = FirstException;
    FirstException = nullptr;
    Lock.unlock();
    std::rethrow_exception(E);
  }
}
