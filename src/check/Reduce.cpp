//===- check/Reduce.cpp - Greedy test-case reducer -----------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/Reduce.h"

#include "cfg/DotExport.h"

#include <algorithm>
#include <cstdio>

using namespace dmp;
using namespace dmp::check;

GenRecipe check::reduceRecipe(const GenRecipe &Failing,
                              const RecipePredicate &StillFails,
                              unsigned MaxChecks) {
  GenRecipe Best = Failing;
  unsigned Checks = 0;
  const auto Try = [&](const GenRecipe &Candidate) {
    if (Checks >= MaxChecks)
      return false;
    ++Checks;
    if (!StillFails(Candidate))
      return false;
    Best = Candidate;
    return true;
  };

  bool Progress = true;
  while (Progress && Checks < MaxChecks) {
    Progress = false;

    // Drop op chunks, ddmin-style: halves first, then smaller runs, down
    // to single ops.
    for (size_t Chunk = std::max<size_t>(Best.Ops.size() / 2, 1); Chunk >= 1;
         Chunk /= 2) {
      for (size_t Start = 0; Start + 1 <= Best.Ops.size();) {
        if (Best.Ops.empty())
          break;
        GenRecipe Candidate = Best;
        const size_t End = std::min(Start + Chunk, Candidate.Ops.size());
        Candidate.Ops.erase(Candidate.Ops.begin() + Start,
                            Candidate.Ops.begin() + End);
        if (Try(Candidate))
          Progress = true; // Keep Start: the next chunk slid into place.
        else
          Start += Chunk;
      }
      if (Chunk == 1)
        break;
    }

    // Shrink the outer trip count toward 1.
    while (Best.OuterIters > 1) {
      GenRecipe Candidate = Best;
      Candidate.OuterIters = Best.OuterIters / 2;
      if (!Try(Candidate))
        break;
      Progress = true;
    }

    // Shrink per-op parameters (monotone by construction).
    for (size_t I = 0; I < Best.Ops.size(); ++I) {
      for (int Field = 0; Field < 3; ++Field) {
        while (true) {
          GenRecipe Candidate = Best;
          GenOp &Op = Candidate.Ops[I];
          uint32_t &V = Field == 0 ? Op.A : Field == 1 ? Op.B : Op.C;
          if (V == 0)
            break;
          V /= 2;
          if (!Try(Candidate))
            break;
          Progress = true;
        }
      }
    }
  }
  return Best;
}

std::string check::emitReproSnippet(const GenRecipe &Recipe,
                                    const std::string &Name) {
  std::string S;
  S += "/// Minimized dmp::check fuzz repro: " + describeRecipe(Recipe) + "\n";
  S += "inline dmp::check::GenRecipe buildRepro" + Name + "() {\n";
  S += "  dmp::check::GenRecipe R;\n";
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "  R.Seed = 0x%llxULL;\n",
                static_cast<unsigned long long>(Recipe.Seed));
  S += Buf;
  std::snprintf(Buf, sizeof(Buf), "  R.OuterIters = %u;\n", Recipe.OuterIters);
  S += Buf;
  if (!Recipe.Ops.empty()) {
    S += "  R.Ops = {\n";
    for (const GenOp &Op : Recipe.Ops) {
      std::snprintf(Buf, sizeof(Buf),
                    "      {dmp::check::GenOpKind::%s, %u, %u, %u},\n",
                    genOpKindName(Op.Kind), Op.A, Op.B, Op.C);
      S += Buf;
    }
    S += "  };\n";
  }
  S += "  return R;\n";
  S += "}\n";
  return S;
}

std::string check::emitReproDot(const GenRecipe &Recipe) {
  const GenProgram G = materialize(Recipe);
  std::string S;
  for (const auto &F : G.Prog->functions())
    S += cfg::exportFunctionDot(*F);
  return S;
}
