//===- check/Oracle.h - Differential oracle for dynamic predication -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle: runs one program through the reference
/// functional emulator and through the cycle simulator in three
/// configurations —
///
///   1. baseline           (dynamic predication off),
///   2. dmp-selected       (dpred on, diverge branches from the paper's
///                          best-heuristic selection on a real profile),
///   3. dmp-adversarial    (dpred on, *every* conditional branch marked
///                          diverge with its post-dominator CFM, loop
///                          latches as loop-diverge branches, all
///                          always-predicate) —
///
/// and asserts that every run retires bit-identical architectural state
/// (registers, memory fingerprint, in-order retired-store sequence), since
/// dynamic predication must be architecturally invisible (paper Section 2).
/// On top of state equality it checks internal simulator invariants: the
/// dpred episode-accounting identity, flush-vs-misprediction consistency,
/// and confidence-estimator bounds.
///
/// The adversarial configuration is the interesting one: it forces the
/// dpred machinery through every branch of every generated CFG shape,
/// including ones the real selector would never pick (oversized hammocks,
/// branches whose paths never merge, nested episode entries), which is
/// where episode-termination bugs live.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CHECK_ORACLE_H
#define DMP_CHECK_ORACLE_H

#include "cfg/Analysis.h"
#include "core/DivergeInfo.h"
#include "sim/FinalState.h"
#include "sim/SimConfig.h"
#include "sim/SimStats.h"

#include <string>
#include <vector>

namespace dmp::check {

/// Oracle knobs.
struct OracleOptions {
  /// Shared dynamic-instruction budget: the reference emulator and every
  /// simulator leg stop at the same count, so capped runs stay comparable.
  uint64_t MaxInstrs = 300'000;
  /// Base machine configuration; EnableDmp/MaxInstrs/InjectFault are
  /// overridden per leg.
  sim::SimConfig Sim;
  /// Canary fault injected into the dmp-selected leg's extracted state
  /// (see SimConfig::InjectFault).  Used by the oracle's own tests to
  /// prove it detects retired-state divergence.
  unsigned InjectFault = 0;
  bool RunSelected = true;
  bool RunAdversarial = true;
};

/// One simulator configuration's outcome.
struct LegResult {
  std::string Name;
  sim::SimStats Stats;
  sim::FinalState State;
  /// State mismatches vs the reference + invariant violations; empty = ok.
  std::vector<std::string> Errors;
};

/// Everything one oracle run produced.
struct OracleReport {
  sim::FinalState Reference;
  std::vector<LegResult> Legs;
  /// Structural verifier findings on the input program (a generator bug).
  std::vector<std::string> GenErrors;

  bool ok() const;
  /// All errors, one per line, prefixed with the leg name.
  std::string summary() const;
};

/// Runs \p P on the reference interpreter (Emulator::stepReference, kept
/// independent of the decoded fast path; same stepping discipline as the
/// simulator: stop at Halt or \p MaxInstrs) and extracts the final state.
sim::FinalState runReference(const ir::Program &P,
                             const std::vector<int64_t> &Image,
                             uint64_t MaxInstrs);

/// Marks every conditional branch a diverge branch: loop latches become
/// loop-diverge branches (header + written-register select-µop count),
/// everything else a hammock with its immediate post-dominator as the CFM
/// point (return CFM when the paths only rejoin at the virtual exit).  All
/// annotations are AlwaysPredicate, so every single execution of every
/// branch enters dpred-mode.
core::DivergeMap adversarialAnnotations(const cfg::ProgramAnalysis &PA);

/// Runs the full oracle on (\p P, \p Image).  \p PA must analyze \p P.
OracleReport runOracle(const ir::Program &P, const cfg::ProgramAnalysis &PA,
                       const std::vector<int64_t> &Image,
                       const OracleOptions &Opts = OracleOptions());

} // namespace dmp::check

#endif // DMP_CHECK_ORACLE_H
