//===- check/Reduce.h - Greedy test-case reducer --------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy shrinking of failing fuzz cases.  The reducer operates on
/// GenRecipes (not programs): it drops construct ops in ddmin-style chunks,
/// shrinks the outer trip count, and zeroes per-op parameters, keeping any
/// mutation for which the caller's predicate still reports failure.  Since
/// materialize() is total over recipes, every intermediate candidate is a
/// valid program, and the minimized recipe reproduces deterministically.
///
/// emitReproSnippet() renders the minimized recipe as a ready-to-commit
/// C++ builder function (tests/TestPrograms.h style) and emitReproDot()
/// renders the materialized CFG as Graphviz, so a found bug can be checked
/// in as a regression test together with a reviewable picture of the CFG
/// that triggered it.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CHECK_REDUCE_H
#define DMP_CHECK_REDUCE_H

#include "check/ProgramGen.h"

#include <functional>
#include <string>

namespace dmp::check {

/// Returns true when the candidate recipe still reproduces the failure.
using RecipePredicate = std::function<bool(const GenRecipe &)>;

/// Greedily shrinks \p Failing while \p StillFails holds.  The result is
/// 1-minimal with respect to the mutation set (no single op removal,
/// trip-count halving, or parameter shrink keeps it failing).
/// \p MaxChecks bounds total predicate evaluations.
GenRecipe reduceRecipe(const GenRecipe &Failing,
                       const RecipePredicate &StillFails,
                       unsigned MaxChecks = 2000);

/// Renders \p Recipe as a C++ function named buildRepro\p Name returning
/// the recipe — the checked-in form of a minimized failure.
std::string emitReproSnippet(const GenRecipe &Recipe, const std::string &Name);

/// Graphviz CFG of the materialized recipe's main function.
std::string emitReproDot(const GenRecipe &Recipe);

} // namespace dmp::check

#endif // DMP_CHECK_REDUCE_H
