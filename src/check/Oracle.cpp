//===- check/Oracle.cpp - Differential oracle for dynamic predication ---------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/Oracle.h"

#include "analyze/Analyze.h"
#include "core/DivergeSelector.h"
#include "profile/Emulator.h"
#include "profile/Profiler.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

using namespace dmp;
using namespace dmp::check;

bool OracleReport::ok() const {
  if (!GenErrors.empty())
    return false;
  for (const LegResult &Leg : Legs)
    if (!Leg.Errors.empty())
      return false;
  return true;
}

std::string OracleReport::summary() const {
  std::string S;
  for (const std::string &E : GenErrors)
    S += "generator: " + E + "\n";
  for (const LegResult &Leg : Legs)
    for (const std::string &E : Leg.Errors)
      S += Leg.Name + ": " + E + "\n";
  return S;
}

sim::FinalState check::runReference(const ir::Program &P,
                                    const std::vector<int64_t> &Image,
                                    uint64_t MaxInstrs) {
  sim::FinalState Out;
  profile::Emulator Emu(P, Image);
  profile::DynInstr D;
  // Same stepping discipline as DmpCore::run, so capped runs retire the
  // same instruction count as every simulator leg — but through
  // stepReference, the preserved original interpreter, so the oracle's
  // ground truth stays independent of the decoded fast path it checks.
  while (Emu.executedCount() < MaxInstrs && Emu.stepReference(D))
    if (D.I->Op == ir::Opcode::Store)
      Out.Stores.push_back({D.Addr, D.MemAddr, Emu.memWord(D.MemAddr)});
  sim::captureArchState(Emu, Out);
  return Out;
}

core::DivergeMap
check::adversarialAnnotations(const cfg::ProgramAnalysis &PA) {
  const ir::Program &P = PA.getProgram();
  core::DivergeMap Map;
  for (uint32_t Addr : P.condBranchAddrs()) {
    const ir::Instruction &I = P.instrAt(Addr);
    const ir::BasicBlock *B = P.blockAt(Addr);
    const cfg::FunctionAnalysis &FA = PA.atAddr(Addr);

    core::DivergeAnnotation Ann;
    Ann.AlwaysPredicate = true;

    const ir::BasicBlock *Taken = I.Target;
    const ir::BasicBlock *Fall = B->getFallthrough();
    const cfg::Loop *L = FA.LI.loopFor(B);
    const bool BackEdge =
        L && (Taken == L->getHeader() || Fall == L->getHeader());
    const bool ExitsLoop =
        L && (!L->contains(Taken) || (Fall && !L->contains(Fall)));
    if (BackEdge || ExitsLoop) {
      Ann.Kind = core::DivergeKind::Loop;
      Ann.LoopHeaderAddr = L->getHeader()->getStartAddr();
      Ann.LoopSelectUops = L->writtenRegCount();
      Ann.LoopStayTaken = L->contains(Taken);
    } else if (const ir::BasicBlock *Ipd = FA.PDT.ipostdom(B)) {
      Ann.Kind = core::DivergeKind::SimpleHammock;
      Ann.Cfms.push_back(core::CfmPoint::atAddress(Ipd->getStartAddr(), 1.0));
    } else {
      // Paths only rejoin after the function returns (Section 3.5).
      Ann.Kind = core::DivergeKind::SimpleHammock;
      Ann.Cfms.push_back(core::CfmPoint::atReturn(1.0));
    }
    Map.add(Addr, std::move(Ann));
  }
  return Map;
}

namespace {

std::string fmt(const char *Format, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

/// Asserts bit-identical retired architectural state vs the reference.
void compareStates(const sim::FinalState &Ref, LegResult &Leg) {
  const sim::FinalState &S = Leg.State;
  for (unsigned R = 0; R < ir::NumRegs; ++R)
    if (S.Regs[R] != Ref.Regs[R])
      Leg.Errors.push_back(fmt("final r%u mismatch (sim %lld != ref %lld)", R,
                               static_cast<long long>(S.Regs[R]),
                               static_cast<long long>(Ref.Regs[R])));
  if (S.MemoryWords != Ref.MemoryWords)
    Leg.Errors.push_back(fmt("memory size mismatch (sim %llu != ref %llu)",
                             static_cast<unsigned long long>(S.MemoryWords),
                             static_cast<unsigned long long>(Ref.MemoryWords)));
  if (S.MemoryFingerprint != Ref.MemoryFingerprint)
    Leg.Errors.push_back(
        fmt("memory fingerprint mismatch (sim %016llx != ref %016llx)",
            static_cast<unsigned long long>(S.MemoryFingerprint),
            static_cast<unsigned long long>(Ref.MemoryFingerprint)));
  if (S.Stores.size() != Ref.Stores.size())
    Leg.Errors.push_back(fmt("retired store count mismatch (sim %zu != ref "
                             "%zu)",
                             S.Stores.size(), Ref.Stores.size()));
  const size_t N = std::min(S.Stores.size(), Ref.Stores.size());
  for (size_t I = 0; I < N; ++I)
    if (!(S.Stores[I] == Ref.Stores[I])) {
      Leg.Errors.push_back(
          fmt("retired store %zu mismatch (sim pc=%u [%llu]=%lld != ref "
              "pc=%u [%llu]=%lld)",
              I, S.Stores[I].InstrAddr,
              static_cast<unsigned long long>(S.Stores[I].WordAddr),
              static_cast<long long>(S.Stores[I].Value),
              Ref.Stores[I].InstrAddr,
              static_cast<unsigned long long>(Ref.Stores[I].WordAddr),
              static_cast<long long>(Ref.Stores[I].Value)));
      break; // First divergence point is the useful one.
    }
  if (S.RetiredInstrs != Ref.RetiredInstrs)
    Leg.Errors.push_back(fmt("retired instr count mismatch (sim %llu != ref "
                             "%llu)",
                             static_cast<unsigned long long>(S.RetiredInstrs),
                             static_cast<unsigned long long>(Ref.RetiredInstrs)));
  if (S.Halted != Ref.Halted)
    Leg.Errors.push_back(fmt("halt state mismatch (sim %d != ref %d)",
                             S.Halted, Ref.Halted));
}

/// Internal-consistency checks on the simulator's own counters.
void checkInvariants(bool IsDmp, LegResult &Leg) {
  const sim::SimStats &S = Leg.Stats;
  if (S.Mispredictions > S.CondBranches)
    Leg.Errors.push_back(fmt("mispredictions %llu > cond branches %llu",
                             (unsigned long long)S.Mispredictions,
                             (unsigned long long)S.CondBranches));
  if (S.LowConfBranches > S.CondBranches)
    Leg.Errors.push_back(fmt("low-conf branches %llu > cond branches %llu",
                             (unsigned long long)S.LowConfBranches,
                             (unsigned long long)S.CondBranches));
  if (S.LowConfMispredicted > S.LowConfBranches)
    Leg.Errors.push_back(fmt("low-conf mispredicted %llu > low-conf %llu",
                             (unsigned long long)S.LowConfMispredicted,
                             (unsigned long long)S.LowConfBranches));

  if (!IsDmp) {
    // Without dpred every misprediction (branch or return) flushes, and
    // nothing else does.
    if (S.DpredEntries != 0 || S.SelectUops != 0 || S.DpredActiveAtEnd != 0)
      Leg.Errors.push_back("dpred counters nonzero in baseline run");
    if (S.Flushes != S.Mispredictions + S.RasMispredicts)
      Leg.Errors.push_back(
          fmt("baseline flushes %llu != mispredictions %llu + ras %llu",
              (unsigned long long)S.Flushes,
              (unsigned long long)S.Mispredictions,
              (unsigned long long)S.RasMispredicts));
    return;
  }

  // Dynamic predication may only remove flushes, never add them.
  if (S.Flushes > S.Mispredictions + S.RasMispredicts)
    Leg.Errors.push_back(
        fmt("dmp flushes %llu > mispredictions %llu + ras %llu",
            (unsigned long long)S.Flushes,
            (unsigned long long)S.Mispredictions,
            (unsigned long long)S.RasMispredicts));

  // Episode accounting: every entered episode terminates in exactly one
  // way (or was still active when the run ended).
  const uint64_t Ended = S.DpredMerged + S.DpredNoMerge + S.DpredAborted +
                         S.LoopCorrect + S.LoopEarlyExit + S.LoopLateExit +
                         S.LoopNoExit + S.DpredActiveAtEnd;
  if (S.DpredEntries != Ended)
    Leg.Errors.push_back(fmt("episode accounting broken: %llu entries != "
                             "%llu outcomes",
                             (unsigned long long)S.DpredEntries,
                             (unsigned long long)Ended));
  if (S.DpredEntriesLoop > S.DpredEntries ||
      S.DpredEntriesAlways > S.DpredEntries)
    Leg.Errors.push_back("episode kind counters exceed total entries");
  if (S.DpredSavedFlushes > S.DpredEntries)
    Leg.Errors.push_back(fmt("saved flushes %llu > episodes %llu",
                             (unsigned long long)S.DpredSavedFlushes,
                             (unsigned long long)S.DpredEntries));
}

} // namespace

OracleReport check::runOracle(const ir::Program &P,
                              const cfg::ProgramAnalysis &PA,
                              const std::vector<int64_t> &Image,
                              const OracleOptions &Opts) {
  OracleReport Report;
  // Fast pre-oracle: a structurally invalid program would surface as a
  // confusing leg divergence; lint it into precise diagnostics instead.
  analyze::DiagnosticSink LintSink;
  analyze::lintProgram(P, &LintSink);
  for (const analyze::Diagnostic &D : LintSink.diagnostics())
    if (D.Sev == analyze::Severity::Error)
      Report.GenErrors.push_back(D.renderText());
  if (!Report.GenErrors.empty())
    return Report; // Invalid program: nothing else is meaningful.

  Report.Reference = runReference(P, Image, Opts.MaxInstrs);

  const auto RunLeg = [&](const std::string &Name, bool IsDmp,
                          const core::DivergeMap *Diverge,
                          unsigned InjectFault) {
    LegResult Leg;
    Leg.Name = Name;
    sim::SimConfig Cfg = Opts.Sim;
    Cfg.MaxInstrs = Opts.MaxInstrs;
    Cfg.InjectFault = InjectFault;
    if (IsDmp)
      Leg.Stats = sim::simulateDmp(P, *Diverge, Image, Cfg, &Leg.State);
    else
      Leg.Stats = sim::simulateBaseline(P, Image, Cfg, &Leg.State);
    compareStates(Report.Reference, Leg);
    checkInvariants(IsDmp, Leg);
    Report.Legs.push_back(std::move(Leg));
  };

  RunLeg("baseline", false, nullptr, 0);

  if (Opts.RunSelected) {
    profile::ProfileOptions ProfOpts;
    ProfOpts.MaxInstrs = Opts.MaxInstrs;
    const profile::ProfileData Prof =
        profile::collectProfile(P, PA, Image, ProfOpts);
    const core::DivergeMap Selected = core::selectDivergeBranches(
        PA, Prof, core::SelectionConfig(),
        core::SelectionFeatures::allBestHeur());
    RunLeg("dmp-selected", true, &Selected, Opts.InjectFault);
  }

  if (Opts.RunAdversarial) {
    const core::DivergeMap Adversarial = adversarialAnnotations(PA);
    RunLeg("dmp-adversarial", true, &Adversarial, 0);
  }

  return Report;
}
