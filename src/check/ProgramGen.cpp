//===- check/ProgramGen.cpp - Seeded random program generator -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/ProgramGen.h"

#include "analyze/Analyze.h"
#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <cstdio>

using namespace dmp;
using namespace dmp::check;
using namespace dmp::ir;

const char *check::genOpKindName(GenOpKind Kind) {
  switch (Kind) {
  case GenOpKind::SimpleHammock:
    return "SimpleHammock";
  case GenOpKind::NestedDiamond:
    return "NestedDiamond";
  case GenOpKind::OverlappingDiamond:
    return "OverlappingDiamond";
  case GenOpKind::ShortLoop:
    return "ShortLoop";
  case GenOpKind::DataLoop:
    return "DataLoop";
  case GenOpKind::MultiRetCall:
    return "MultiRetCall";
  case GenOpKind::StoreBurst:
    return "StoreBurst";
  case GenOpKind::Straight:
    return "Straight";
  }
  return "?";
}

GenRecipe check::randomRecipe(uint64_t Seed, const GenConfig &Cfg) {
  // Decorrelate neighboring seeds (0, 1, 2, ... are the common fuzz seeds).
  RNG Rng(Seed * 0x9E3779B97F4A7C15ULL + 0x243F6A8885A308D3ULL);
  GenRecipe R;
  R.Seed = Seed;
  R.OuterIters = static_cast<unsigned>(
      Rng.nextInRange(Cfg.MinOuterIters, Cfg.MaxOuterIters));
  const unsigned NumOps =
      static_cast<unsigned>(Rng.nextInRange(Cfg.MinOps, Cfg.MaxOps));
  for (unsigned I = 0; I < NumOps; ++I) {
    GenOp Op;
    Op.Kind = static_cast<GenOpKind>(Rng.nextBelow(8));
    Op.A = static_cast<uint32_t>(Rng.nextBelow(8));
    Op.B = static_cast<uint32_t>(Rng.nextBelow(8));
    Op.C = static_cast<uint32_t>(Rng.nextBelow(256));
    R.Ops.push_back(Op);
  }
  return R;
}

namespace {

// Register conventions (mirroring the workload generators):
//   r1 outer index, r2 outer bound, r3 per-construct data word,
//   r4/r5 condition scratch, r6/r7 inner loop counter/bound,
//   r8..r11 filler, r20 accumulator.
constexpr Reg IdxReg = 1;
constexpr Reg BoundReg = 2;
constexpr Reg DataReg = 3;
constexpr Reg CondReg = 4;
constexpr Reg Scratch = 5;
constexpr Reg InnerIdx = 6;
constexpr Reg InnerBound = 7;
constexpr Reg FillerReg = 8;
constexpr Reg AccReg = 20;

/// Word offsets of the read and write regions in the memory image.
constexpr int64_t ReadBase = 0;
constexpr int64_t StoreBase = 1024;
constexpr unsigned ReadWords = 768;

/// Materialization context: the program under construction plus naming
/// counters.  Each emit*() appends blocks to main and leaves the builder
/// positioned in the construct's merge block.
struct GenBuilder {
  Program &Prog;
  Function &Main;
  IRBuilder B;
  unsigned OpIndex = 0;

  GenBuilder(Program &P, Function &Main) : Prog(P), Main(Main), B(P) {}

  std::string name(const char *Tag) const {
    return std::string(Tag) + std::to_string(OpIndex);
  }

  BasicBlock *newBlock(const char *Tag) { return Main.createBlock(name(Tag)); }

  /// Loads the construct's data word into DataReg: Mem[r1 + salt].
  void loadData(const GenOp &Op) {
    B.load(DataReg, IdxReg, ReadBase + Op.C % ReadWords);
  }

  /// Extracts a data-dependent condition bit into CondReg.
  void condBit(Reg Dst, unsigned Salt) {
    B.andI(Dst, DataReg, int64_t(1) << (Salt % 3));
  }

  void emitSimpleHammock(const GenOp &Op) {
    loadData(Op);
    condBit(CondReg, Op.C);
    BasicBlock *Else = Main.createBlock(name("else"));
    BasicBlock *Then = Main.createBlock(name("then"));
    BasicBlock *Merge = Main.createBlock(name("merge"));
    B.condBr(BrCond::Ne, CondReg, RegZero, Then);
    B.setInsertPoint(Else);
    B.emitFiller(Op.A, FillerReg);
    B.add(AccReg, AccReg, DataReg);
    B.jmp(Merge);
    B.setInsertPoint(Then);
    B.emitFiller(Op.A, FillerReg);
    B.sub(AccReg, AccReg, DataReg); // Falls through to Merge.
    B.setInsertPoint(Merge);
    B.xor_(AccReg, AccReg, IdxReg);
  }

  void emitNestedDiamond(const GenOp &Op) {
    loadData(Op);
    condBit(CondReg, Op.C);
    BasicBlock *Else = Main.createBlock(name("nelse"));
    BasicBlock *Then = Main.createBlock(name("nthen"));
    BasicBlock *InnerElse = Main.createBlock(name("nielse"));
    BasicBlock *InnerThen = Main.createBlock(name("nithen"));
    BasicBlock *Merge = Main.createBlock(name("nmerge"));
    B.condBr(BrCond::Ne, CondReg, RegZero, Then);
    B.setInsertPoint(Else);
    B.emitFiller(Op.A, FillerReg);
    B.add(AccReg, AccReg, DataReg);
    B.jmp(Merge);
    // Then-side contains the nested diamond on an independent bit.
    B.setInsertPoint(Then);
    condBit(Scratch, Op.C + 1);
    B.condBr(BrCond::Ne, Scratch, RegZero, InnerThen);
    B.setInsertPoint(InnerElse);
    B.addI(AccReg, AccReg, 3);
    B.jmp(Merge);
    B.setInsertPoint(InnerThen);
    B.emitFiller(Op.A, FillerReg);
    B.sub(AccReg, AccReg, DataReg); // Falls through to Merge.
    B.setInsertPoint(Merge);
    B.xor_(AccReg, AccReg, DataReg);
  }

  void emitOverlappingDiamond(const GenOp &Op) {
    loadData(Op);
    condBit(CondReg, Op.C);
    BasicBlock *Else = Main.createBlock(name("felse"));
    BasicBlock *Then = Main.createBlock(name("fthen"));
    BasicBlock *Then2 = Main.createBlock(name("fthen2"));
    BasicBlock *Merge = Main.createBlock(name("fmerge"));
    BasicBlock *Post = Main.createBlock(name("fpost"));
    B.condBr(BrCond::Ne, CondReg, RegZero, Then);
    B.setInsertPoint(Else);
    B.emitFiller(Op.A, FillerReg);
    B.add(AccReg, AccReg, DataReg);
    B.jmp(Merge);
    // The then-side occasionally bypasses the merge point entirely, making
    // it a CFM with probability < 1 (the frequently-hammock of Fig. 3c).
    B.setInsertPoint(Then);
    B.andI(Scratch, DataReg, 6);
    B.condBr(BrCond::Eq, Scratch, RegZero, Post);
    B.setInsertPoint(Then2);
    B.sub(AccReg, AccReg, DataReg); // Falls through to Merge.
    B.setInsertPoint(Merge);
    B.xor_(AccReg, AccReg, IdxReg); // Falls through to Post.
    B.setInsertPoint(Post);
    B.addI(AccReg, AccReg, 1);
  }

  void emitShortLoop(const GenOp &Op) {
    const int64_t Trip = 1 + Op.B % 6;
    B.loadImm(InnerIdx, 0);
    B.loadImm(InnerBound, Trip);
    BasicBlock *Head = Main.createBlock(name("ihead"));
    BasicBlock *After = Main.createBlock(name("iafter"));
    B.setInsertPoint(Head);
    B.load(Scratch, InnerIdx, ReadBase + (Op.C + 7) % ReadWords);
    B.add(AccReg, AccReg, Scratch);
    B.emitFiller(Op.A, FillerReg);
    B.addI(InnerIdx, InnerIdx, 1);
    B.condBr(BrCond::Lt, InnerIdx, InnerBound, Head);
    B.setInsertPoint(After);
    B.add(AccReg, AccReg, InnerIdx);
  }

  void emitDataLoop(const GenOp &Op) {
    const int64_t Cap = 3 + Op.B;
    B.loadImm(InnerIdx, 0);
    B.loadImm(InnerBound, Cap);
    BasicBlock *Head = Main.createBlock(name("dhead"));
    BasicBlock *Latch = Main.createBlock(name("dlatch"));
    BasicBlock *Exit = Main.createBlock(name("dexit"));
    // Exit early when the loaded word's low bits are zero; the counted cap
    // in the latch guarantees termination regardless of the data.
    B.setInsertPoint(Head);
    B.add(CondReg, InnerIdx, IdxReg);
    B.load(Scratch, CondReg, ReadBase + (Op.C + 13) % ReadWords);
    B.addI(InnerIdx, InnerIdx, 1);
    B.add(AccReg, AccReg, Scratch);
    B.andI(CondReg, Scratch, 3);
    B.condBr(BrCond::Eq, CondReg, RegZero, Exit);
    B.setInsertPoint(Latch);
    B.condBr(BrCond::Lt, InnerIdx, InnerBound, Head);
    B.setInsertPoint(Exit);
    B.add(AccReg, AccReg, InnerIdx);
  }

  void emitMultiRetCall(const GenOp &Op) {
    Function *Callee = Prog.createFunction(name("fn"));
    BasicBlock *Entry = Callee->createBlock(name("centry"));
    BasicBlock *RetA = Callee->createBlock(name("creta"));
    BasicBlock *RetB = Callee->createBlock(name("cretb"));
    IRBuilder CB(Prog);
    CB.setInsertPoint(Entry);
    CB.andI(CondReg, DataReg, int64_t(1) << (Op.C % 3));
    CB.condBr(BrCond::Ne, CondReg, RegZero, RetB);
    CB.setInsertPoint(RetA);
    CB.emitFiller(Op.A, FillerReg);
    CB.addI(AccReg, AccReg, 3);
    CB.ret();
    CB.setInsertPoint(RetB);
    CB.emitFiller(Op.A, FillerReg);
    CB.addI(AccReg, AccReg, 5);
    CB.ret();

    loadData(Op);
    B.call(Callee);
    B.add(AccReg, AccReg, DataReg);
  }

  void emitStoreBurst(const GenOp &Op) {
    loadData(Op);
    B.addI(CondReg, IdxReg, StoreBase + Op.C % 64);
    B.store(AccReg, CondReg, 0);
    B.store(DataReg, CondReg, 1);
  }

  void emitStraight(const GenOp &Op) {
    B.emitFiller(2 + Op.A, FillerReg);
    B.add(AccReg, AccReg, FillerReg);
  }

  void emitOp(const GenOp &Op) {
    switch (Op.Kind) {
    case GenOpKind::SimpleHammock:
      return emitSimpleHammock(Op);
    case GenOpKind::NestedDiamond:
      return emitNestedDiamond(Op);
    case GenOpKind::OverlappingDiamond:
      return emitOverlappingDiamond(Op);
    case GenOpKind::ShortLoop:
      return emitShortLoop(Op);
    case GenOpKind::DataLoop:
      return emitDataLoop(Op);
    case GenOpKind::MultiRetCall:
      return emitMultiRetCall(Op);
    case GenOpKind::StoreBurst:
      return emitStoreBurst(Op);
    case GenOpKind::Straight:
      return emitStraight(Op);
    }
  }
};

} // namespace

GenProgram check::materialize(const GenRecipe &Recipe) {
  GenProgram Out;
  Out.Prog = std::make_unique<Program>("gen");
  Program &P = *Out.Prog;
  Function *Main = P.createFunction("main");

  GenBuilder G(P, *Main);
  BasicBlock *Entry = Main->createBlock("entry");
  G.B.setInsertPoint(Entry);
  G.B.loadImm(BoundReg, std::max(1u, Recipe.OuterIters));
  G.B.loadImm(AccReg, 0);
  G.B.loadImm(IdxReg, 0);

  BasicBlock *LoopHead = Main->createBlock("loop");
  G.B.setInsertPoint(LoopHead);
  for (const GenOp &Op : Recipe.Ops) {
    G.emitOp(Op);
    ++G.OpIndex;
  }

  // Latch: advance the outer index and iterate.
  G.B.store(AccReg, IdxReg, StoreBase + 512);
  G.B.addI(IdxReg, IdxReg, 1);
  G.B.condBr(BrCond::Lt, IdxReg, BoundReg, LoopHead);

  BasicBlock *Exit = Main->createBlock("exit");
  G.B.setInsertPoint(Exit);
  G.B.store(AccReg, RegZero, StoreBase + 1023);
  G.B.halt();

  P.finalize();
  // IRLint as the generator's fast pre-oracle: error-severity findings
  // only, so warnings never mark a seed invalid (and never perturb the
  // fuzz campaign's result digest for clean programs).
  analyze::DiagnosticSink Sink;
  analyze::lintProgram(P, &Sink);
  for (const analyze::Diagnostic &D : Sink.diagnostics())
    if (D.Sev == analyze::Severity::Error)
      Out.VerifyErrors.push_back(D.renderText());

  // Seed-derived input data.  Small signed values keep the accumulator
  // well-behaved; the low bits (which all branch conditions key on) are
  // uniform.
  RNG Rng(Recipe.Seed ^ 0xD1B54A32D192ED03ULL);
  Out.Image.resize(ReadWords + 2);
  for (int64_t &W : Out.Image)
    W = Rng.nextInRange(-512, 512);
  return Out;
}

std::string check::describeRecipe(const GenRecipe &Recipe) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "seed=0x%llx iters=%u ops=[",
                static_cast<unsigned long long>(Recipe.Seed),
                Recipe.OuterIters);
  std::string S(Buf);
  for (size_t I = 0; I < Recipe.Ops.size(); ++I) {
    const GenOp &Op = Recipe.Ops[I];
    std::snprintf(Buf, sizeof(Buf), "%s%s(%u,%u,%u)", I ? " " : "",
                  genOpKindName(Op.Kind), Op.A, Op.B, Op.C);
    S += Buf;
  }
  S += "]";
  return S;
}
