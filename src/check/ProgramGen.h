//===- check/ProgramGen.h - Seeded random program generator --------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of valid dmp::ir programs for the differential
/// oracle (check/Oracle.h).  Generation is recipe-based: a seed expands
/// into a GenRecipe — an explicit list of construct ops plus the outer trip
/// count — and materialize() turns a recipe into a program + memory image.
/// The indirection is what makes failing seeds reducible: the greedy
/// reducer (check/Reduce.h) mutates the *recipe* (drop ops, shrink
/// parameters) and re-materializes, so every shrink step is itself a valid
/// program.
///
/// The construct vocabulary deliberately mirrors the paper's Figure 3 CFG
/// zoo — simple/nested hammocks, overlapping (frequently-hammock) diamonds,
/// short counted loops, data-dependent-exit loops, and calls with multiple
/// returns — because those are exactly the shapes the dpred machinery
/// special-cases.  All branch conditions are data-dependent on a
/// seed-derived memory image, so branch behavior (and thus confidence,
/// mispredictions, and episode outcomes) varies per seed.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CHECK_PROGRAMGEN_H
#define DMP_CHECK_PROGRAMGEN_H

#include "ir/Program.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dmp::check {

/// Shape of one generated construct inside the outer loop body.
enum class GenOpKind : uint8_t {
  SimpleHammock,      ///< if-else diamond, straight-line sides.
  NestedDiamond,      ///< diamond with a second diamond nested in one side.
  OverlappingDiamond, ///< diamond whose then-side can bypass the merge
                      ///< point (the frequently-hammock shape of Fig. 3c).
  ShortLoop,          ///< small counted inner loop.
  DataLoop,           ///< inner loop with data-dependent exit + trip cap.
  MultiRetCall,       ///< call of a function returning via two rets.
  StoreBurst,         ///< a pair of stores to the output region.
  Straight,           ///< straight-line ALU filler.
};

const char *genOpKindName(GenOpKind Kind);

/// One construct.  The parameter meaning is kind-specific but always
/// monotone: smaller values give a smaller/simpler construct, which is what
/// lets the reducer shrink them blindly.
struct GenOp {
  GenOpKind Kind = GenOpKind::Straight;
  uint32_t A = 0; ///< Filler/body length (0..7).
  uint32_t B = 0; ///< Trip count / nesting selector (0..7).
  uint32_t C = 0; ///< Offset and condition salt (0..255).

  bool operator==(const GenOp &O) const {
    return Kind == O.Kind && A == O.A && B == O.B && C == O.C;
  }
};

/// A full generated test case, reproducible from (Seed, OuterIters, Ops).
struct GenRecipe {
  uint64_t Seed = 0;        ///< Drives the memory image contents.
  unsigned OuterIters = 16; ///< Outer loop trip count.
  std::vector<GenOp> Ops;   ///< Constructs in the outer loop body, in order.
};

/// Bounds for randomRecipe().
struct GenConfig {
  unsigned MinOps = 2;
  unsigned MaxOps = 10;
  unsigned MinOuterIters = 8;
  unsigned MaxOuterIters = 48;
};

/// Expands \p Seed into a recipe; a pure function of its arguments.
GenRecipe randomRecipe(uint64_t Seed, const GenConfig &Cfg = GenConfig());

/// A materialized recipe: finalized program + input memory image.
struct GenProgram {
  std::unique_ptr<ir::Program> Prog;
  std::vector<int64_t> Image;
  /// Structural verifier findings; empty for a well-formed program.  A
  /// non-empty list is itself an oracle finding (the generator emitted an
  /// invalid program).
  std::vector<std::string> VerifyErrors;
};

/// Builds the program and image for \p Recipe; a pure function of the
/// recipe, so the same recipe always yields a bit-identical program.
GenProgram materialize(const GenRecipe &Recipe);

/// One-line human-readable description ("seed=0x2a iters=16 ops=[sh nd ...]").
std::string describeRecipe(const GenRecipe &Recipe);

} // namespace dmp::check

#endif // DMP_CHECK_PROGRAMGEN_H
