//===- core/DivergeInfo.cpp - Diverge branch annotations ----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DivergeInfo.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::core;

const char *core::divergeKindName(DivergeKind Kind) {
  switch (Kind) {
  case DivergeKind::SimpleHammock:
    return "simple";
  case DivergeKind::NestedHammock:
    return "nested";
  case DivergeKind::FreqHammock:
    return "freq";
  case DivergeKind::Loop:
    return "loop";
  case DivergeKind::NoCfm:
    return "no-cfm";
  }
  DMP_UNREACHABLE("unknown diverge kind");
}

double DivergeAnnotation::totalMergeProb() const {
  double Sum = 0.0;
  for (const CfmPoint &Cfm : Cfms)
    Sum += Cfm.MergeProb;
  return std::min(Sum, 1.0);
}

std::vector<uint32_t> DivergeMap::sortedAddrs() const {
  std::vector<uint32_t> Addrs;
  Addrs.reserve(Map.size());
  for (const auto &Entry : Map)
    Addrs.push_back(Entry.first);
  std::sort(Addrs.begin(), Addrs.end());
  return Addrs;
}

double DivergeMap::avgCfmPoints() const {
  if (Map.empty())
    return 0.0;
  size_t Total = 0;
  for (const auto &Entry : Map)
    Total += Entry.second.Cfms.size();
  return static_cast<double>(Total) / static_cast<double>(Map.size());
}

std::unordered_map<std::string, size_t> DivergeMap::kindCounts() const {
  std::unordered_map<std::string, size_t> Counts;
  for (const auto &Entry : Map)
    ++Counts[divergeKindName(Entry.second.Kind)];
  return Counts;
}
