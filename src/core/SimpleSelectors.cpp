//===- core/SimpleSelectors.cpp - Baseline selection algorithms ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SimpleSelectors.h"

#include "core/HammockAnalysis.h"
#include "support/RNG.h"

using namespace dmp;
using namespace dmp::core;

/// Builds the annotation used by the simple selectors: IPOSDOM as the only
/// CFM when it exists (footnote 10), otherwise a CFM-less dual-path entry.
static DivergeAnnotation simpleAnnotation(const cfg::ProgramAnalysis &PA,
                                          uint32_t Addr) {
  const ir::Program &P = PA.getProgram();
  const ir::BasicBlock *Block = P.blockAt(Addr);
  const cfg::FunctionAnalysis &FA = PA.forFunction(*Block->getParent());
  const ir::BasicBlock *Iposdom = FA.PDT.ipostdom(Block);

  DivergeAnnotation Annotation;
  if (Iposdom) {
    Annotation.Kind = DivergeKind::NestedHammock;
    Annotation.Cfms.push_back(
        CfmPoint::atAddress(Iposdom->getStartAddr(), 1.0));
  } else {
    Annotation.Kind = DivergeKind::NoCfm;
  }
  return Annotation;
}

DivergeMap core::selectEveryBranch(const cfg::ProgramAnalysis &PA,
                                   const profile::ProfileData &Prof) {
  DivergeMap Map;
  for (uint32_t Addr : PA.getProgram().condBranchAddrs())
    if (Prof.Edges.wasExecuted(Addr))
      Map.add(Addr, simpleAnnotation(PA, Addr));
  return Map;
}

DivergeMap core::selectRandom50(const cfg::ProgramAnalysis &PA,
                                const profile::ProfileData &Prof,
                                uint64_t Seed) {
  DivergeMap Map;
  RNG Rng(Seed);
  for (uint32_t Addr : PA.getProgram().condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    if (Rng.nextBool(0.5))
      Map.add(Addr, simpleAnnotation(PA, Addr));
  }
  return Map;
}

DivergeMap core::selectHighBP(const cfg::ProgramAnalysis &PA,
                              const profile::ProfileData &Prof,
                              double MinMispRate) {
  DivergeMap Map;
  for (uint32_t Addr : PA.getProgram().condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    if (Prof.Branches.mispRate(Addr) >= MinMispRate)
      Map.add(Addr, simpleAnnotation(PA, Addr));
  }
  return Map;
}

DivergeMap core::selectImmediate(const cfg::ProgramAnalysis &PA,
                                 const profile::ProfileData &Prof) {
  DivergeMap Map;
  const ir::Program &P = PA.getProgram();
  for (uint32_t Addr : P.condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    const ir::BasicBlock *Block = P.blockAt(Addr);
    const cfg::FunctionAnalysis &FA = PA.forFunction(*Block->getParent());
    if (FA.PDT.ipostdom(Block))
      Map.add(Addr, simpleAnnotation(PA, Addr));
  }
  return Map;
}

DivergeMap core::selectIfElse(const cfg::ProgramAnalysis &PA,
                              const profile::ProfileData &Prof,
                              const SelectionConfig &Config) {
  DivergeMap Map;
  for (uint32_t Addr : PA.getProgram().condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    const BranchCandidate Cand =
        analyzeBranch(PA, Prof.Edges, Addr, Config, Config.CostScopeMaxInstr,
                      Config.CostScopeMaxCondBr);
    if (Cand.StructKind != DivergeKind::SimpleHammock)
      continue;
    DivergeAnnotation Annotation;
    Annotation.Kind = DivergeKind::SimpleHammock;
    Annotation.Cfms.push_back(
        CfmPoint::atAddress(Cand.Iposdom->getStartAddr(), 1.0));
    Map.add(Addr, Annotation);
  }
  return Map;
}
