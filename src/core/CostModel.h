//===- core/CostModel.h - Analytical cost-benefit model -------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytical, profile-driven cost-benefit model for dynamic
/// predication (Section 4), including:
///
///  - Eq. 1-4: dpred_cost from dpred_overhead, Acc_Conf, and the machine's
///    misprediction penalty; a branch is selected when the cost is < 0;
///  - Eq. 5-13: estimation of N(dpred_insts)/N(useful_dpred_insts) with
///    Method 2 (longest path, "cost-long") and Method 3 (edge-profile
///    average, "cost-edge");
///  - Eq. 14: fetch-cycle overhead;
///  - Eq. 16: frequently-hammock overhead with merge probability;
///  - Eq. 17: diverge branches with multiple CFM points;
///  - Eq. 18-20: the loop cost model (Section 5.1), used analytically (the
///    paper's loop *selection* uses the Section 5.2 heuristics because the
///    required per-branch dpred profiling is impractical — we mirror that).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_COSTMODEL_H
#define DMP_CORE_COSTMODEL_H

#include "core/HammockAnalysis.h"
#include "core/SelectionConfig.h"

#include <vector>

namespace dmp::core {

/// Which N(dpred_insts) estimation method to use (Section 4.1.1).
enum class OverheadMethod {
  LongestPath, ///< Method 2: max instructions over explored paths.
  EdgeProfile, ///< Method 3: edge-profile expected instructions.
};

/// Full breakdown of one hammock cost evaluation.
struct HammockCost {
  /// Per-CFM N(dpred_insts(Xi)) terms.
  std::vector<double> DpredInstsPerCfm;
  /// Per-CFM N(useless_dpred_insts(Xi)) terms (Eq. 13).
  std::vector<double> UselessInstsPerCfm;
  /// Sum of per-CFM merge probabilities (capped at 1).
  double TotalMergeProb = 0.0;
  /// dpred_overhead in fetch cycles (Eq. 14/16/17).
  double OverheadCycles = 0.0;
  /// dpred_cost in cycles (Eq. 1); negative means predication pays off.
  double CostCycles = 0.0;
  /// Eq. 4: CostCycles < 0.
  bool Selected = false;
};

/// Evaluates the cost of dynamically predicating \p Cand with the CFM set
/// \p ChosenCfms.
///
/// With one CFM of merge probability 1 this reduces to the simple/nested
/// hammock model (Eq. 14); otherwise the frequently-hammock/multi-CFM model
/// (Eq. 16/17) applies.
HammockCost evaluateHammockCost(const BranchCandidate &Cand,
                                const std::vector<CfmCandidate> &ChosenCfms,
                                const SelectionConfig &Config,
                                OverheadMethod Method);

/// Inputs of the loop cost model (Eq. 18-20).
struct LoopCostInputs {
  /// N(loop body): static instructions in the loop body.
  double BodyInstrs = 0.0;
  /// N(select_uops): select-µops inserted after each predicated iteration.
  double SelectUops = 0.0;
  /// dpred_iter: loop iterations fetched during dpred-mode.
  double DpredIter = 0.0;
  /// dpred_extra_iter: extra iterations in the late-exit case.
  double DpredExtraIter = 0.0;
  /// Probabilities of the four outcomes of predicating the loop branch;
  /// must sum to (approximately) 1.
  double PCorrect = 0.0;
  double PEarlyExit = 0.0;
  double PLateExit = 0.0;
  double PNoExit = 0.0;
};

/// Breakdown of the loop cost model.
struct LoopCost {
  double OverheadCorrect = 0.0; ///< Eq. 18.
  double OverheadEarly = 0.0;   ///< Eq. 18 (flush penalty not saved).
  double OverheadLate = 0.0;    ///< Eq. 19.
  double OverheadNoExit = 0.0;  ///< Eq. 18.
  double CostCycles = 0.0;      ///< Expected cost; negative = beneficial.
  bool Selected = false;
};

/// Evaluates Eq. 18-20 for a diverge loop branch.
LoopCost evaluateLoopCost(const LoopCostInputs &Inputs,
                          const SelectionConfig &Config);

} // namespace dmp::core

#endif // DMP_CORE_COSTMODEL_H
