//===- core/DivergeSelector.cpp - Selection orchestration ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DivergeSelector.h"

#include "core/CostModel.h"
#include "core/HammockAnalysis.h"
#include "core/LoopSelect.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::core;

SelectionFeatures SelectionFeatures::exactOnly() { return SelectionFeatures(); }

SelectionFeatures SelectionFeatures::exactFreq() {
  SelectionFeatures F;
  F.Freq = true;
  return F;
}

SelectionFeatures SelectionFeatures::exactFreqShort() {
  SelectionFeatures F = exactFreq();
  F.ShortHammocks = true;
  return F;
}

SelectionFeatures SelectionFeatures::exactFreqShortRet() {
  SelectionFeatures F = exactFreqShort();
  F.ReturnCfm = true;
  return F;
}

SelectionFeatures SelectionFeatures::allBestHeur() {
  SelectionFeatures F = exactFreqShortRet();
  F.Loops = true;
  return F;
}

SelectionFeatures SelectionFeatures::costLong() {
  SelectionFeatures F;
  F.Freq = true;
  F.Mode = SelectionMode::CostLong;
  return F;
}

SelectionFeatures SelectionFeatures::costEdge() {
  SelectionFeatures F = costLong();
  F.Mode = SelectionMode::CostEdge;
  return F;
}

SelectionFeatures SelectionFeatures::allBestCost() {
  SelectionFeatures F = costEdge();
  F.ShortHammocks = true;
  F.ReturnCfm = true;
  F.Loops = true;
  return F;
}

namespace {

/// Per-branch selection pipeline, shared state bundled for readability.
class Selector {
public:
  Selector(const cfg::ProgramAnalysis &PA, const profile::ProfileData &Prof,
           const SelectionConfig &Config, const SelectionFeatures &Features,
           SelectionStats &Stats)
      : PA(PA), Prof(Prof), Config(Config), Features(Features), Stats(Stats) {}

  DivergeMap run() {
    DivergeMap Map;
    for (uint32_t Addr : PA.getProgram().condBranchAddrs()) {
      if (!Prof.Edges.wasExecuted(Addr))
        continue;
      ++Stats.CandidatesConsidered;

      // Loop exit branches go through the Section 5 path exclusively.
      if (isLoopExitBranch(PA, Addr)) {
        if (!Features.Loops)
          continue;
        DivergeAnnotation Annotation;
        const LoopDecision Decision =
            evaluateLoopBranch(PA, Prof, Addr, Config, Annotation);
        if (Decision.Selected) {
          ++Stats.SelectedLoop;
          Map.add(Addr, std::move(Annotation));
        }
        continue;
      }

      DivergeAnnotation Annotation;
      if (selectHammock(Addr, Annotation))
        Map.add(Addr, std::move(Annotation));
    }
    return Map;
  }

private:
  bool selectHammock(uint32_t Addr, DivergeAnnotation &Annotation);
  bool applyShortHammock(const BranchCandidate &Cand, uint32_t Addr,
                         DivergeAnnotation &Annotation);

  const cfg::ProgramAnalysis &PA;
  const profile::ProfileData &Prof;
  const SelectionConfig &Config;
  const SelectionFeatures &Features;
  SelectionStats &Stats;
};

} // namespace

/// Short hammock check (Section 3.4) for one CFM candidate.
static bool qualifiesAsShort(const BranchCandidate &Cand,
                             const CfmCandidate &Cfm, double MispRate,
                             const SelectionConfig &Config) {
  if (Cfm.IsReturn)
    return false;
  if (MispRate < Config.ShortHammockMinMispRate)
    return false;
  if (Cfm.MergeProb < Config.ShortHammockMinMergeProb)
    return false;
  const unsigned TakenLen =
      Cand.TakenPaths.maxInstrsTo(Cfm.Block, Config.CallExtraWeight);
  const unsigned FallLen =
      Cand.FallPaths.maxInstrsTo(Cfm.Block, Config.CallExtraWeight);
  return TakenLen < Config.ShortHammockMaxInstr &&
         FallLen < Config.ShortHammockMaxInstr;
}

bool Selector::applyShortHammock(const BranchCandidate &Cand, uint32_t Addr,
                                 DivergeAnnotation &Annotation) {
  if (!Features.ShortHammocks)
    return false;
  const double MispRate = Prof.Branches.mispRate(Addr);
  std::vector<CfmPoint> ShortCfms;
  for (const CfmCandidate &Cfm : Cand.Cfms)
    if (qualifiesAsShort(Cand, Cfm, MispRate, Config))
      ShortCfms.push_back(CfmPoint::atAddress(Cfm.addr(), Cfm.MergeProb));
  if (ShortCfms.empty())
    return false;

  // Short hammocks are always predicated; CFM candidates that do not
  // qualify as short are dropped (Section 3.4, last paragraph).
  if (ShortCfms.size() > Config.MaxCfmPoints)
    ShortCfms.resize(Config.MaxCfmPoints);
  Annotation.Kind = Cand.StructKind;
  Annotation.AlwaysPredicate = true;
  Annotation.Cfms = std::move(ShortCfms);
  ++Stats.SelectedShort;
  return true;
}

bool Selector::selectHammock(uint32_t Addr, DivergeAnnotation &Annotation) {
  const bool CostMode = Features.Mode != SelectionMode::Heuristic;
  const unsigned ScopeInstr =
      CostMode ? Config.CostScopeMaxInstr : Config.MaxInstr;
  const unsigned ScopeCbr =
      CostMode ? Config.CostScopeMaxCondBr : Config.MaxCondBr;

  const BranchCandidate Cand =
      analyzeBranch(PA, Prof.Edges, Addr, Config, ScopeInstr, ScopeCbr);

  // Short hammocks are checked first: they are selected regardless of the
  // other filters (their dpred cost is tiny by construction).
  if (applyShortHammock(Cand, Addr, Annotation))
    return true;

  const bool IsExactKind = Cand.StructKind == DivergeKind::SimpleHammock ||
                           Cand.StructKind == DivergeKind::NestedHammock;

  // The exact CFM option: the IPOSDOM, where merging is certain.
  std::vector<CfmCandidate> ExactSet;
  if (IsExactKind) {
    CfmCandidate Exact;
    Exact.Block = Cand.Iposdom;
    Exact.ReachTaken = Exact.ReachNotTaken = 1.0;
    Exact.MergeProb = 1.0;
    ExactSet.push_back(Exact);
  }

  // The approximate option: Alg-freq's chain-reduced candidates.
  std::vector<CfmCandidate> FreqSet;
  for (const CfmCandidate &Cfm : Cand.Cfms) {
    if (Cfm.IsReturn) {
      if (!Features.ReturnCfm)
        continue;
      const double Threshold = CostMode
                                   ? Config.ReturnCfmMinMergeProb
                                   : std::max(Config.MinMergeProb,
                                              Config.ReturnCfmMinMergeProb);
      if (Cfm.MergeProb < Threshold)
        continue;
    } else if (!CostMode && Cfm.MergeProb < Config.MinMergeProb) {
      // Heuristic mode filters by MIN_MERGE_PROB; the cost model uses
      // every candidate and lets Eq. 17 decide (Section 4 intro).
      continue;
    }
    FreqSet.push_back(Cfm);
    if (FreqSet.size() >= Config.MaxCfmPoints)
      break;
  }

  std::vector<CfmCandidate> Chosen;
  if (CostMode) {
    // The cost model evaluates both the exact CFM and Alg-freq's
    // approximate candidates (it "still uses Alg-exact and Alg-freq to
    // find candidates", Section 4) and keeps the cheaper selectable set.
    const OverheadMethod Method = Features.Mode == SelectionMode::CostLong
                                      ? OverheadMethod::LongestPath
                                      : OverheadMethod::EdgeProfile;
    double BestCost = 0.0;
    for (const auto *Set : {&ExactSet, &FreqSet}) {
      if (Set->empty())
        continue;
      const HammockCost Cost = evaluateHammockCost(Cand, *Set, Config, Method);
      if (Cost.Selected && Cost.CostCycles < BestCost) {
        BestCost = Cost.CostCycles;
        Chosen = *Set;
      }
    }
    if (Chosen.empty()) {
      ++Stats.RejectedByCost;
      return false;
    }
  } else {
    // Heuristic mode: Alg-exact handles exact kinds, Alg-freq the rest.
    if (IsExactKind) {
      if (!Features.Exact)
        return false;
      Chosen = ExactSet;
    } else {
      if (!Features.Freq)
        return false;
      Chosen = FreqSet;
    }
    if (Chosen.empty()) {
      ++Stats.RejectedByLimits;
      return false;
    }
  }

  Annotation.Kind = Cand.StructKind;
  bool HasRet = false;
  for (const CfmCandidate &Cfm : Chosen) {
    if (Cfm.IsReturn) {
      Annotation.Cfms.push_back(CfmPoint::atReturn(Cfm.MergeProb));
      HasRet = true;
    } else {
      Annotation.Cfms.push_back(CfmPoint::atAddress(Cfm.addr(), Cfm.MergeProb));
    }
  }
  if (IsExactKind)
    ++Stats.SelectedExact;
  else
    ++Stats.SelectedFreq;
  if (HasRet)
    ++Stats.SelectedRet;
  return true;
}

DivergeMap core::selectDivergeBranches(const cfg::ProgramAnalysis &PA,
                                       const profile::ProfileData &Prof,
                                       const SelectionConfig &Config,
                                       const SelectionFeatures &Features,
                                       SelectionStats *Stats) {
  SelectionStats Local;
  Selector S(PA, Prof, Config, Features, Stats ? *Stats : Local);
  return S.run();
}
