//===- core/AnnotationIO.cpp - DivergeMap serialization -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/AnnotationIO.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace dmp;
using namespace dmp::core;

static const char *kindToken(DivergeKind Kind) { return divergeKindName(Kind); }

static bool kindFromToken(const std::string &Token, DivergeKind &Kind) {
  for (DivergeKind K :
       {DivergeKind::SimpleHammock, DivergeKind::NestedHammock,
        DivergeKind::FreqHammock, DivergeKind::Loop, DivergeKind::NoCfm}) {
    if (Token == divergeKindName(K)) {
      Kind = K;
      return true;
    }
  }
  return false;
}

std::string core::serializeDivergeMap(const DivergeMap &Map) {
  std::string Out = "# dmp-diverge-map v1\n";
  for (uint32_t Addr : Map.sortedAddrs()) {
    const DivergeAnnotation &Ann = *Map.find(Addr);
    Out += formatString("branch %u kind=%s always=%d", Addr,
                        kindToken(Ann.Kind), Ann.AlwaysPredicate ? 1 : 0);
    if (Ann.Kind == DivergeKind::Loop)
      Out += formatString(" header=%u selects=%u stay=%s", Ann.LoopHeaderAddr,
                          Ann.LoopSelectUops,
                          Ann.LoopStayTaken ? "taken" : "nottaken");
    for (const CfmPoint &Cfm : Ann.Cfms) {
      if (Cfm.PointKind == CfmPoint::Kind::Return)
        Out += formatString(" cfm=ret:%.6f", Cfm.MergeProb);
      else
        Out += formatString(" cfm=addr:%u:%.6f", Cfm.Addr, Cfm.MergeProb);
    }
    Out += '\n';
  }
  return Out;
}

bool core::parseDivergeMap(const std::string &Text, DivergeMap &Map,
                           std::string &Error) {
  const std::vector<std::string> Lines = splitString(Text, '\n');
  bool SawHeader = false;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      if (Line.find("dmp-diverge-map v1") != std::string::npos)
        SawHeader = true;
      continue;
    }
    if (!SawHeader) {
      Error = formatString("line %zu: missing dmp-diverge-map v1 header",
                           LineNo + 1);
      return false;
    }

    const std::vector<std::string> Tokens = splitString(Line, ' ');
    if (Tokens.size() < 3 || Tokens[0] != "branch") {
      Error = formatString("line %zu: expected 'branch <addr> ...'",
                           LineNo + 1);
      return false;
    }
    DivergeAnnotation Ann;
    const uint32_t Addr =
        static_cast<uint32_t>(std::strtoul(Tokens[1].c_str(), nullptr, 10));

    for (size_t T = 2; T < Tokens.size(); ++T) {
      const std::string &Token = Tokens[T];
      if (Token.empty())
        continue;
      const size_t Eq = Token.find('=');
      if (Eq == std::string::npos) {
        Error = formatString("line %zu: malformed token '%s'", LineNo + 1,
                             Token.c_str());
        return false;
      }
      const std::string Key = Token.substr(0, Eq);
      const std::string Value = Token.substr(Eq + 1);
      if (Key == "kind") {
        if (!kindFromToken(Value, Ann.Kind)) {
          Error = formatString("line %zu: unknown kind '%s'", LineNo + 1,
                               Value.c_str());
          return false;
        }
      } else if (Key == "always") {
        Ann.AlwaysPredicate = (Value == "1");
      } else if (Key == "header") {
        Ann.LoopHeaderAddr =
            static_cast<uint32_t>(std::strtoul(Value.c_str(), nullptr, 10));
      } else if (Key == "selects") {
        Ann.LoopSelectUops =
            static_cast<uint32_t>(std::strtoul(Value.c_str(), nullptr, 10));
      } else if (Key == "stay") {
        Ann.LoopStayTaken = (Value == "taken");
      } else if (Key == "cfm") {
        const std::vector<std::string> Parts = splitString(Value, ':');
        if (Parts.size() == 2 && Parts[0] == "ret") {
          Ann.Cfms.push_back(CfmPoint::atReturn(std::atof(Parts[1].c_str())));
        } else if (Parts.size() == 3 && Parts[0] == "addr") {
          Ann.Cfms.push_back(CfmPoint::atAddress(
              static_cast<uint32_t>(
                  std::strtoul(Parts[1].c_str(), nullptr, 10)),
              std::atof(Parts[2].c_str())));
        } else {
          Error = formatString("line %zu: malformed cfm '%s'", LineNo + 1,
                               Value.c_str());
          return false;
        }
      } else {
        Error = formatString("line %zu: unknown key '%s'", LineNo + 1,
                             Key.c_str());
        return false;
      }
    }
    Map.add(Addr, std::move(Ann));
  }
  if (!SawHeader) {
    Error = "missing dmp-diverge-map v1 header";
    return false;
  }
  return true;
}
