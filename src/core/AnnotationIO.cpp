//===- core/AnnotationIO.cpp - DivergeMap serialization -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/AnnotationIO.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>

using namespace dmp;
using namespace dmp::core;

static const char *kindToken(DivergeKind Kind) { return divergeKindName(Kind); }

static bool kindFromToken(const std::string &Token, DivergeKind &Kind) {
  for (DivergeKind K :
       {DivergeKind::SimpleHammock, DivergeKind::NestedHammock,
        DivergeKind::FreqHammock, DivergeKind::Loop, DivergeKind::NoCfm}) {
    if (Token == divergeKindName(K)) {
      Kind = K;
      return true;
    }
  }
  return false;
}

std::string core::serializeDivergeMap(const DivergeMap &Map) {
  std::string Out = "# dmp-diverge-map v1\n";
  for (uint32_t Addr : Map.sortedAddrs()) {
    const DivergeAnnotation &Ann = *Map.find(Addr);
    Out += formatString("branch %u kind=%s always=%d", Addr,
                        kindToken(Ann.Kind), Ann.AlwaysPredicate ? 1 : 0);
    if (Ann.Kind == DivergeKind::Loop)
      Out += formatString(" header=%u selects=%u stay=%s", Ann.LoopHeaderAddr,
                          Ann.LoopSelectUops,
                          Ann.LoopStayTaken ? "taken" : "nottaken");
    for (const CfmPoint &Cfm : Ann.Cfms) {
      if (Cfm.PointKind == CfmPoint::Kind::Return)
        Out += formatString(" cfm=ret:%.6f", Cfm.MergeProb);
      else
        Out += formatString(" cfm=addr:%u:%.6f", Cfm.Addr, Cfm.MergeProb);
    }
    Out += '\n';
  }
  return Out;
}

/// Strict u32 parse: the whole token must be a decimal number that fits,
/// so garbage like "12x" or "99999999999" is a diagnostic, not a silent 0.
static bool parseU32Strict(const std::string &Token, uint32_t &Out) {
  if (Token.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  const unsigned long long V = std::strtoull(Token.c_str(), &End, 10);
  if (End == Token.c_str() || *End != '\0' || errno == ERANGE ||
      V > 0xFFFFFFFFULL)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

static bool parseProbStrict(const std::string &Token, double &Out) {
  if (Token.empty())
    return false;
  char *End = nullptr;
  const double V = std::strtod(Token.c_str(), &End);
  if (End == Token.c_str() || *End != '\0' || !(V >= 0.0) || !(V <= 1.0))
    return false;
  Out = V;
  return true;
}

Status core::parseDivergeMap(const std::string &Text, DivergeMap &Map) {
  const auto Fail = [](std::string Msg) {
    return Status::corrupt(std::move(Msg), "core::AnnotationIO");
  };
  const std::vector<std::string> Lines = splitString(Text, '\n');
  DivergeMap Out;
  bool SawHeader = false;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      if (Line.find("dmp-diverge-map v1") != std::string::npos)
        SawHeader = true;
      continue;
    }
    if (!SawHeader)
      return Fail(formatString("line %zu: missing dmp-diverge-map v1 header",
                               LineNo + 1));

    const std::vector<std::string> Tokens = splitString(Line, ' ');
    if (Tokens.size() < 3 || Tokens[0] != "branch")
      return Fail(formatString("line %zu: expected 'branch <addr> ...'",
                               LineNo + 1));
    DivergeAnnotation Ann;
    uint32_t Addr = 0;
    if (!parseU32Strict(Tokens[1], Addr))
      return Fail(formatString("line %zu: invalid branch address '%s'",
                               LineNo + 1, Tokens[1].c_str()));

    for (size_t T = 2; T < Tokens.size(); ++T) {
      const std::string &Token = Tokens[T];
      if (Token.empty())
        continue;
      const size_t Eq = Token.find('=');
      if (Eq == std::string::npos)
        return Fail(formatString("line %zu: malformed token '%s'", LineNo + 1,
                                 Token.c_str()));
      const std::string Key = Token.substr(0, Eq);
      const std::string Value = Token.substr(Eq + 1);
      if (Key == "kind") {
        if (!kindFromToken(Value, Ann.Kind))
          return Fail(formatString("line %zu: unknown kind '%s'", LineNo + 1,
                                   Value.c_str()));
      } else if (Key == "always") {
        Ann.AlwaysPredicate = (Value == "1");
      } else if (Key == "header") {
        if (!parseU32Strict(Value, Ann.LoopHeaderAddr))
          return Fail(formatString("line %zu: invalid header '%s'",
                                   LineNo + 1, Value.c_str()));
      } else if (Key == "selects") {
        if (!parseU32Strict(Value, Ann.LoopSelectUops))
          return Fail(formatString("line %zu: invalid selects '%s'",
                                   LineNo + 1, Value.c_str()));
      } else if (Key == "stay") {
        Ann.LoopStayTaken = (Value == "taken");
      } else if (Key == "cfm") {
        const std::vector<std::string> Parts = splitString(Value, ':');
        double Prob = 0.0;
        uint32_t CfmAddr = 0;
        if (Parts.size() == 2 && Parts[0] == "ret" &&
            parseProbStrict(Parts[1], Prob)) {
          Ann.Cfms.push_back(CfmPoint::atReturn(Prob));
        } else if (Parts.size() == 3 && Parts[0] == "addr" &&
                   parseU32Strict(Parts[1], CfmAddr) &&
                   parseProbStrict(Parts[2], Prob)) {
          Ann.Cfms.push_back(CfmPoint::atAddress(CfmAddr, Prob));
        } else {
          return Fail(formatString("line %zu: malformed cfm '%s'", LineNo + 1,
                                   Value.c_str()));
        }
      } else {
        return Fail(formatString("line %zu: unknown key '%s'", LineNo + 1,
                                 Key.c_str()));
      }
    }
    Out.add(Addr, std::move(Ann));
  }
  if (!SawHeader)
    return Fail("missing dmp-diverge-map v1 header");
  Map = std::move(Out);
  return Status();
}
