//===- core/SelectionConfig.h - Selection thresholds ----------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every tunable of the diverge-branch selection algorithms, in one struct.
/// Defaults are the paper's best-performing values:
///
///  - MAX_INSTR = 50, MAX_CBR = 5 (= MAX_INSTR/10), MIN_MERGE_PROB = 1%
///    (Section 7.1.1, Figure 7);
///  - MIN_EXEC_PROB = 0.001, MAX_CFM = 3 (Section 3.3);
///  - short hammocks: <10 instructions per path, >=95% merge probability,
///    >=5% misprediction rate (Section 3.4);
///  - loops: STATIC_LOOP_SIZE = 30, DYNAMIC_LOOP_SIZE = 80, LOOP_ITER = 15
///    (Section 5.2);
///  - cost model: Acc_Conf = 40%, fw = 8 wide, 25-cycle misprediction
///    penalty, scope limits MAX_INSTR = 200 / MAX_CBR = 20 (Section 4,
///    footnotes 4-5).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_SELECTIONCONFIG_H
#define DMP_CORE_SELECTIONCONFIG_H

namespace dmp::core {

/// How diverge branches are accepted.
enum class SelectionMode {
  Heuristic, ///< Threshold heuristics of Section 3 (Alg-exact/Alg-freq).
  CostLong,  ///< Cost-benefit with Method 2 (longest path) overhead.
  CostEdge,  ///< Cost-benefit with Method 3 (edge-profile) overhead.
};

/// Which selection components run (the cumulative bars of Figure 5).
struct SelectionFeatures {
  bool Exact = true;         ///< Alg-exact: simple/nested hammocks.
  bool Freq = false;         ///< Alg-freq: frequently-hammocks.
  bool ShortHammocks = false;///< Always-predicate short hammocks.
  bool ReturnCfm = false;    ///< Return CFM points.
  bool Loops = false;        ///< Diverge loop branches.
  SelectionMode Mode = SelectionMode::Heuristic;

  /// Named presets used throughout the benches.
  static SelectionFeatures exactOnly();
  static SelectionFeatures exactFreq();
  static SelectionFeatures exactFreqShort();
  static SelectionFeatures exactFreqShortRet();
  static SelectionFeatures allBestHeur(); ///< exact+freq+short+ret+loop.
  static SelectionFeatures costLong();
  static SelectionFeatures costEdge();
  static SelectionFeatures allBestCost(); ///< cost-edge+short+ret+loop.
};

/// All thresholds of Sections 3-5.
struct SelectionConfig {
  // Alg-exact / Alg-freq scope (Sections 3.2, 3.3).
  unsigned MaxInstr = 50;
  unsigned MaxCondBr = 5;
  double MinExecProb = 0.001;
  double MinMergeProb = 0.01;
  unsigned MaxCfmPoints = 3;

  // Short hammocks (Section 3.4).
  unsigned ShortHammockMaxInstr = 10;
  double ShortHammockMinMergeProb = 0.95;
  double ShortHammockMinMispRate = 0.05;

  // Return CFM points (Section 3.5): minimum probability of both sides
  // ending at (different) return instructions.
  double ReturnCfmMinMergeProb = 0.30;

  // Diverge loops (Section 5.2).
  unsigned StaticLoopSize = 30;
  unsigned DynamicLoopSize = 80;
  double LoopIter = 15.0;

  // Cost-benefit model (Section 4).
  double AccConf = 0.40;
  unsigned FetchWidth = 8;
  unsigned MispPenaltyCycles = 25;
  unsigned CostScopeMaxInstr = 200;
  unsigned CostScopeMaxCondBr = 20;

  // Path-enumeration implementation caps (DESIGN.md Section 5).
  unsigned MaxPaths = 4096;
  double MinPathProb = 1e-5;
  unsigned CallExtraWeight = 8;

  /// Returns a config with MaxInstr set to \p Value and MaxCondBr kept at
  /// the paper's MAX_INSTR/10 convention (Section 3.2).
  SelectionConfig withMaxInstr(unsigned Value) const {
    SelectionConfig C = *this;
    C.MaxInstr = Value;
    C.MaxCondBr = Value >= 10 ? Value / 10 : 1;
    return C;
  }

  SelectionConfig withMinMergeProb(double Value) const {
    SelectionConfig C = *this;
    C.MinMergeProb = Value;
    return C;
  }
};

} // namespace dmp::core

#endif // DMP_CORE_SELECTIONCONFIG_H
