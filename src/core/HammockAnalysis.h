//===- core/HammockAnalysis.h - Per-branch candidate analysis -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared per-branch analysis used by Alg-exact, Alg-freq, the short-hammock
/// heuristic, the return-CFM detector, and the cost-benefit model: path
/// enumeration on both sides of a conditional branch, structural
/// classification (simple / nested / frequently-hammock), CFM point
/// candidates with first-merge probabilities, and chain-of-CFM reduction
/// (Section 3.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_HAMMOCKANALYSIS_H
#define DMP_CORE_HAMMOCKANALYSIS_H

#include "cfg/Analysis.h"
#include "cfg/PathEnumerator.h"
#include "core/DivergeInfo.h"
#include "core/SelectionConfig.h"

#include <vector>

namespace dmp::core {

/// One CFM point candidate of a branch.
struct CfmCandidate {
  /// The merge block; nullptr for a return CFM.
  const ir::BasicBlock *Block = nullptr;
  bool IsReturn = false;
  /// Reach probability on each side (p_T / p_NT of Algorithm 2).
  double ReachTaken = 0.0;
  double ReachNotTaken = 0.0;
  /// First-merge probability (footnote 3): reach probability excluding
  /// paths that pass through another candidate of the same chain first.
  double MergeProb = 0.0;

  uint32_t addr() const { return Block ? Block->getStartAddr() : 0; }
};

/// Complete analysis of one conditional-branch diverge candidate.
struct BranchCandidate {
  const ir::Instruction *Branch = nullptr;
  const ir::BasicBlock *Block = nullptr;   ///< Block ending in the branch.
  const ir::BasicBlock *Iposdom = nullptr; ///< May be null (return merge).
  cfg::PathSet TakenPaths;
  cfg::PathSet FallPaths;

  /// Structural classification over the explored (frequent) paths.
  DivergeKind StructKind = DivergeKind::FreqHammock;

  /// True when every explored path on both sides reaches the IPOSDOM within
  /// the limits: the acceptance condition of Alg-exact.
  bool AllPathsReachIposdom = false;

  /// Chain-reduced CFM candidates, highest merge probability first.
  /// Includes at most one return-CFM entry (at the end when present).
  std::vector<CfmCandidate> Cfms;

  /// The branch's profiled taken probability: P(AB)/P(AC) of Eq. 12.
  double TakenProb = 0.0;

  /// Longest explored path length on either side (instructions).
  unsigned maxPathInstrs() const;
};

/// Analyzes the conditional branch at \p BranchAddr.
///
/// Path exploration uses \p MaxInstr / \p MaxCondBr as scope (Alg-exact and
/// Alg-freq pass Config.MaxInstr/MaxCondBr; the cost model passes its wider
/// CostScopeMaxInstr/MaxCondBr per footnote 4).
BranchCandidate analyzeBranch(const cfg::ProgramAnalysis &PA,
                              const cfg::EdgeProfile &Edges,
                              uint32_t BranchAddr,
                              const SelectionConfig &Config,
                              unsigned MaxInstr, unsigned MaxCondBr);

} // namespace dmp::core

#endif // DMP_CORE_HAMMOCKANALYSIS_H
