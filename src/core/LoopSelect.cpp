//===- core/LoopSelect.cpp - Diverge loop branch selection --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopSelect.h"

using namespace dmp;
using namespace dmp::core;

/// Innermost loop for which the branch at \p BranchAddr is an exit branch,
/// plus the in-loop and out-of-loop successors.
namespace {
struct ExitInfo {
  const cfg::Loop *L = nullptr;
  const ir::BasicBlock *StayTarget = nullptr;
  const ir::BasicBlock *ExitTarget = nullptr;
  bool StayTaken = false;
};
} // namespace

static ExitInfo exitInfoFor(const cfg::ProgramAnalysis &PA,
                            uint32_t BranchAddr) {
  ExitInfo Info;
  const ir::Program &P = PA.getProgram();
  const ir::Instruction &Branch = P.instrAt(BranchAddr);
  if (!Branch.isCondBr())
    return Info;
  const ir::BasicBlock *Block = P.blockAt(BranchAddr);
  const cfg::Loop *L = PA.innermostLoopAt(BranchAddr);
  if (!L)
    return Info;

  const ir::BasicBlock *Taken = Branch.Target;
  const ir::BasicBlock *Fall = Block->getFallthrough();
  if (!Fall)
    return Info;
  const bool TakenIn = L->contains(Taken);
  const bool FallIn = L->contains(Fall);
  if (TakenIn == FallIn)
    return Info; // Not an exit branch of the innermost loop.
  Info.L = L;
  Info.StayTaken = TakenIn;
  Info.StayTarget = TakenIn ? Taken : Fall;
  Info.ExitTarget = TakenIn ? Fall : Taken;
  return Info;
}

bool core::isLoopExitBranch(const cfg::ProgramAnalysis &PA,
                            uint32_t BranchAddr) {
  return exitInfoFor(PA, BranchAddr).L != nullptr;
}

LoopDecision core::evaluateLoopBranch(const cfg::ProgramAnalysis &PA,
                                      const profile::ProfileData &Prof,
                                      uint32_t BranchAddr,
                                      const SelectionConfig &Config,
                                      DivergeAnnotation &Annotation) {
  LoopDecision Decision;
  Decision.BranchAddr = BranchAddr;

  const ExitInfo Info = exitInfoFor(PA, BranchAddr);
  if (!Info.L)
    return Decision;

  const uint32_t HeaderAddr = Info.L->getHeader()->getStartAddr();
  Decision.HeaderAddr = HeaderAddr;
  Decision.StaticBodySize = Info.L->bodyInstrCount();

  const profile::LoopStats *Stats = Prof.Loops.find(HeaderAddr);
  Decision.AvgDynamicSize = Stats ? Stats->avgDynamicSize() : 0.0;
  Decision.AvgIterations = Stats ? Stats->avgIterations() : 0.0;

  // Section 5.2 heuristics 1-3.
  Decision.RejectedStatic = Decision.StaticBodySize > Config.StaticLoopSize;
  Decision.RejectedDynamic =
      Decision.AvgDynamicSize > static_cast<double>(Config.DynamicLoopSize);
  Decision.RejectedIter = Decision.AvgIterations > Config.LoopIter;

  Decision.Selected = !Decision.RejectedStatic && !Decision.RejectedDynamic &&
                      !Decision.RejectedIter && Stats != nullptr;
  if (!Decision.Selected)
    return Decision;

  Annotation = DivergeAnnotation();
  Annotation.Kind = DivergeKind::Loop;
  Annotation.LoopHeaderAddr = HeaderAddr;
  Annotation.LoopSelectUops = Info.L->writtenRegCount();
  Annotation.LoopStayTaken = Info.StayTaken;
  // The CFM of a diverge loop branch is the loop exit target: the
  // control-independent point where fetch continues after a (possibly
  // late) exit.
  Annotation.Cfms.push_back(
      CfmPoint::atAddress(Info.ExitTarget->getStartAddr(), 1.0));
  return Decision;
}
