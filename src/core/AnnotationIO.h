//===- core/AnnotationIO.h - DivergeMap serialization ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of the diverge-branch annotation map: the artifact
/// the paper's toolset "attaches to the binary and passes to the
/// simulator" (Section 6.1).  The format is a line-oriented, diff-friendly
/// text format:
///
///   # dmp-diverge-map v1
///   branch 142 kind=freq always=0 cfm=addr:187:0.970 cfm=addr:352:0.240
///   branch 205 kind=loop always=0 header=198 selects=5 stay=taken
///          cfm=addr:210:1.000      (single line; wrapped here for width)
///   branch 96 kind=freq always=0 cfm=ret:0.920
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_ANNOTATIONIO_H
#define DMP_CORE_ANNOTATIONIO_H

#include "core/DivergeInfo.h"
#include "support/Status.h"

#include <string>

namespace dmp::core {

/// Serializes \p Map in the v1 text format (deterministic order).
std::string serializeDivergeMap(const DivergeMap &Map);

/// Parses the v1 text format.  On failure returns a Corrupt Status whose
/// message is a one-line diagnostic (lowercase, no trailing period, per the
/// project's error-message style) and leaves \p Map untouched.  Malformed
/// input of any shape — truncated lines, non-numeric fields, garbage bytes,
/// oversized values — yields a diagnostic, never a crash.
Status parseDivergeMap(const std::string &Text, DivergeMap &Map);

} // namespace dmp::core

#endif // DMP_CORE_ANNOTATIONIO_H
