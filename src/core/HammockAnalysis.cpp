//===- core/HammockAnalysis.cpp - Per-branch candidate analysis ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/HammockAnalysis.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

using namespace dmp;
using namespace dmp::core;

unsigned BranchCandidate::maxPathInstrs() const {
  return std::max(TakenPaths.maxInstrs(), FallPaths.maxInstrs());
}

/// Returns true when every explored path in \p Set reached the stop block.
static bool allReachStop(const cfg::PathSet &Set) {
  if (Set.Paths.empty() || Set.Overflowed)
    return false;
  for (const cfg::Path &P : Set.Paths)
    if (P.End != cfg::PathEnd::ReachedStop)
      return false;
  return true;
}

/// Returns true when no explored path contains a conditional branch.
static bool noCondBranches(const cfg::PathSet &Set) {
  for (const cfg::Path &P : Set.Paths)
    if (P.CondBrs != 0)
      return false;
  return true;
}

/// Collects the blocks reached on both sides: the CFM point candidates of
/// Algorithm 2 line 4.
static std::vector<CfmCandidate>
collectCandidates(const BranchCandidate &Cand) {
  // Deterministic candidate order: iterate blocks of the taken side in
  // first-visit order.
  std::vector<const ir::BasicBlock *> Order;
  std::unordered_set<const ir::BasicBlock *> Seen;
  auto consider = [&](const ir::BasicBlock *Block) {
    if (Block && !Seen.count(Block)) {
      Seen.insert(Block);
      Order.push_back(Block);
    }
  };
  for (const cfg::Path &P : Cand.TakenPaths.Paths) {
    for (const ir::BasicBlock *Block : P.Blocks)
      consider(Block);
  }
  consider(Cand.TakenPaths.StopBlock);

  std::vector<CfmCandidate> Result;
  for (const ir::BasicBlock *Block : Order) {
    if (Block == Cand.Block)
      continue; // Re-reaching the branch block is a loop, not a merge.
    const double PT = Cand.TakenPaths.reachProb(Block);
    const double PNT = Cand.FallPaths.reachProb(Block);
    if (PT <= 0.0 || PNT <= 0.0)
      continue;
    CfmCandidate C;
    C.Block = Block;
    C.ReachTaken = PT;
    C.ReachNotTaken = PNT;
    C.MergeProb = PT * PNT;
    Result.push_back(C);
  }
  return Result;
}

/// Applies the chain-of-CFM-points reduction of Section 3.3.1.  Two
/// candidates form a chain when one lies on some explored path to the other;
/// of each chained pair only one may be selected — the one with the higher
/// *first-merge* probability (footnote 3: the probability of both paths
/// merging at X *for the first time*, i.e. without passing through a chained
/// candidate earlier).
///
/// The suppression is pairwise, not group-wise: two alternative merge points
/// M1 and M2 that never co-occur on a path both chain with a common
/// downstream block E, yet M1/M2 are independent of each other and may both
/// be selected (the multi-CFM case of Section 4.3).
static std::vector<CfmCandidate>
reduceChains(const BranchCandidate &Cand, std::vector<CfmCandidate> Cands) {
  const size_t N = Cands.size();
  if (N <= 1)
    return Cands;

  // Chained[i][j]: candidates i and j appear on one explored path together.
  std::vector<std::vector<bool>> Chained(N, std::vector<bool>(N, false));
  auto markPath = [&](const cfg::Path &P, const cfg::PathSet &Set) {
    std::vector<size_t> Visit;
    for (const ir::BasicBlock *Block : P.Blocks)
      for (size_t I = 0; I < N; ++I)
        if (Cands[I].Block == Block)
          Visit.push_back(I);
    if (P.End == cfg::PathEnd::ReachedStop)
      for (size_t I = 0; I < N; ++I)
        if (Cands[I].Block == Set.StopBlock)
          Visit.push_back(I);
    for (size_t A = 0; A < Visit.size(); ++A)
      for (size_t B = A + 1; B < Visit.size(); ++B) {
        Chained[Visit[A]][Visit[B]] = true;
        Chained[Visit[B]][Visit[A]] = true;
      }
  };
  for (const cfg::Path &P : Cand.TakenPaths.Paths)
    markPath(P, Cand.TakenPaths);
  for (const cfg::Path &P : Cand.FallPaths.Paths)
    markPath(P, Cand.FallPaths);

  // First-merge probability: exclude each candidate's chain mates.
  for (size_t I = 0; I < N; ++I) {
    std::unordered_set<const ir::BasicBlock *> Mates;
    for (size_t J = 0; J < N; ++J)
      if (J != I && Chained[I][J])
        Mates.insert(Cands[J].Block);
    if (Mates.empty())
      continue;
    const double FirstT =
        Cand.TakenPaths.firstReachProb(Cands[I].Block, Mates);
    const double FirstNT =
        Cand.FallPaths.firstReachProb(Cands[I].Block, Mates);
    Cands[I].MergeProb = FirstT * FirstNT;
  }

  // Pairwise suppression: the weaker of each chained pair is dropped (ties
  // break toward the earlier candidate, which was discovered first and is
  // therefore closer to the branch).
  std::vector<bool> Dropped(N, false);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      if (I == J || !Chained[I][J])
        continue;
      if (Cands[J].MergeProb > Cands[I].MergeProb ||
          (Cands[J].MergeProb == Cands[I].MergeProb && J < I))
        Dropped[I] = true;
    }

  std::vector<CfmCandidate> Result;
  for (size_t I = 0; I < N; ++I)
    if (!Dropped[I])
      Result.push_back(Cands[I]);
  return Result;
}

BranchCandidate core::analyzeBranch(const cfg::ProgramAnalysis &PA,
                                    const cfg::EdgeProfile &Edges,
                                    uint32_t BranchAddr,
                                    const SelectionConfig &Config,
                                    unsigned MaxInstr, unsigned MaxCondBr) {
  const ir::Program &P = PA.getProgram();
  BranchCandidate Cand;
  Cand.Branch = &P.instrAt(BranchAddr);
  assert(Cand.Branch->isCondBr() && "analyzing a non-branch");
  Cand.Block = P.blockAt(BranchAddr);
  Cand.TakenProb = Edges.takenProb(BranchAddr);

  const cfg::FunctionAnalysis &FA = PA.forFunction(*Cand.Block->getParent());
  Cand.Iposdom = FA.PDT.ipostdom(Cand.Block);

  cfg::PathLimits Limits;
  Limits.MaxInstr = MaxInstr;
  Limits.MaxCondBr = MaxCondBr;
  Limits.MinExecProb = Config.MinExecProb;
  Limits.MaxPaths = Config.MaxPaths;
  Limits.MinPathProb = Config.MinPathProb;
  Limits.CallExtraWeight = Config.CallExtraWeight;

  Cand.TakenPaths = cfg::enumeratePaths(Cand.Branch->Target, Cand.Iposdom,
                                        Edges, Limits);
  Cand.FallPaths = cfg::enumeratePaths(Cand.Block->getFallthrough(),
                                       Cand.Iposdom, Edges, Limits);

  Cand.AllPathsReachIposdom = Cand.Iposdom &&
                              allReachStop(Cand.TakenPaths) &&
                              allReachStop(Cand.FallPaths);

  // Structural classification (Figure 3).  Loop classification is decided
  // by the caller via LoopInfo; here we only distinguish the hammock kinds.
  if (Cand.AllPathsReachIposdom) {
    Cand.StructKind = (noCondBranches(Cand.TakenPaths) &&
                       noCondBranches(Cand.FallPaths))
                          ? DivergeKind::SimpleHammock
                          : DivergeKind::NestedHammock;
  } else {
    Cand.StructKind = DivergeKind::FreqHammock;
  }

  // CFM candidates: blocks reached on both sides, chain-reduced, plus a
  // return-CFM candidate when both sides can end at a return.
  std::vector<CfmCandidate> Cands = collectCandidates(Cand);
  Cands = reduceChains(Cand, std::move(Cands));

  const double RetT = Cand.TakenPaths.returnReachProb();
  const double RetNT = Cand.FallPaths.returnReachProb();
  if (RetT > 0.0 && RetNT > 0.0) {
    CfmCandidate RetCand;
    RetCand.IsReturn = true;
    RetCand.ReachTaken = RetT;
    RetCand.ReachNotTaken = RetNT;
    RetCand.MergeProb = RetT * RetNT;
    Cands.push_back(RetCand);
  }

  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const CfmCandidate &A, const CfmCandidate &B) {
                     return A.MergeProb > B.MergeProb;
                   });
  Cand.Cfms = std::move(Cands);
  return Cand;
}
