//===- core/DivergeInfo.h - Diverge branch annotations --------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-to-hardware interface of DMP: which conditional branches are
/// diverge branches, of which kind, and where their CFM points are.  In the
/// paper this information is "attached to the binary and passed to the
/// simulator" (Section 6.1); here a DivergeMap plays that role.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_DIVERGEINFO_H
#define DMP_CORE_DIVERGEINFO_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmp::core {

/// CFG type a diverge branch belongs to (paper Figure 3).
enum class DivergeKind : uint8_t {
  SimpleHammock, ///< if / if-else with no control flow inside.
  NestedHammock, ///< if-else with nested branches; exact CFM.
  FreqHammock,   ///< hammock only on frequently executed paths; approx CFM.
  Loop,          ///< loop exit branch (Section 5).
  NoCfm,         ///< diverge branch without CFM points: pure dual-path
                 ///< execution until resolution (used by the simple
                 ///< selectors of Section 7.2).
};

const char *divergeKindName(DivergeKind Kind);

/// One control-flow merge point.
struct CfmPoint {
  enum class Kind : uint8_t {
    Address, ///< dpred-mode ends when fetch reaches this address.
    Return,  ///< dpred-mode ends when a return executes (Section 3.5).
  };

  Kind PointKind = Kind::Address;
  /// Target address (block start) for Address kind; unused for Return.
  uint32_t Addr = 0;
  /// Profile-estimated probability of both paths merging here (first
  /// merge; footnote 3 correction applied for chains).
  double MergeProb = 0.0;

  static CfmPoint atAddress(uint32_t Addr, double MergeProb) {
    CfmPoint P;
    P.PointKind = Kind::Address;
    P.Addr = Addr;
    P.MergeProb = MergeProb;
    return P;
  }

  static CfmPoint atReturn(double MergeProb) {
    CfmPoint P;
    P.PointKind = Kind::Return;
    P.MergeProb = MergeProb;
    return P;
  }
};

/// Everything the ISA conveys about one diverge branch.
struct DivergeAnnotation {
  DivergeKind Kind = DivergeKind::NoCfm;
  /// Short hammocks are predicated regardless of confidence (Section 3.4).
  bool AlwaysPredicate = false;
  /// Up to MAX_CFM selected merge points, highest merge probability first.
  std::vector<CfmPoint> Cfms;
  /// For Loop kind: the loop header's start address.
  uint32_t LoopHeaderAddr = 0;
  /// For Loop kind: number of select-µops per predicated iteration
  /// (distinct registers written in the loop body).
  uint32_t LoopSelectUops = 0;
  /// For Loop kind: true when the taken direction of the branch stays in
  /// the loop (the not-taken direction exits), false when taken exits.
  bool LoopStayTaken = false;

  /// Sum of per-CFM merge probabilities (Eq. 17's sum; capped at 1).
  double totalMergeProb() const;
};

/// The "marked binary": static branch address -> annotation.
class DivergeMap {
public:
  void add(uint32_t BranchAddr, DivergeAnnotation Annotation) {
    Map[BranchAddr] = std::move(Annotation);
  }

  const DivergeAnnotation *find(uint32_t BranchAddr) const {
    auto It = Map.find(BranchAddr);
    return It == Map.end() ? nullptr : &It->second;
  }

  bool contains(uint32_t BranchAddr) const { return Map.count(BranchAddr); }

  size_t size() const { return Map.size(); }

  const std::unordered_map<uint32_t, DivergeAnnotation> &all() const {
    return Map;
  }

  /// Branch addresses in ascending order (deterministic iteration).
  std::vector<uint32_t> sortedAddrs() const;

  /// Average number of CFM points per diverge branch (Table 2's
  /// "Avg. # CFM" column).  Loop and NoCfm entries count their CFM lists
  /// as-is.
  double avgCfmPoints() const;

  /// Number of entries of each kind, for reports.
  std::unordered_map<std::string, size_t> kindCounts() const;

private:
  std::unordered_map<uint32_t, DivergeAnnotation> Map;
};

} // namespace dmp::core

#endif // DMP_CORE_DIVERGEINFO_H
