//===- core/DivergeSelector.h - Selection orchestration -------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the compiler: runs Alg-exact, Alg-freq, the short-hammock and
/// return-CFM optimizations, the loop heuristics, and (optionally) the
/// cost-benefit model over every profiled conditional branch, and produces
/// the DivergeMap that is "attached to the binary".
///
/// The SelectionFeatures toggles reproduce the cumulative configurations of
/// Figure 5: exact, exact+freq, exact+freq+short, exact+freq+short+ret,
/// All-best-heur, cost-long, cost-edge, ..., All-best-cost.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_DIVERGESELECTOR_H
#define DMP_CORE_DIVERGESELECTOR_H

#include "cfg/Analysis.h"
#include "core/DivergeInfo.h"
#include "core/SelectionConfig.h"
#include "profile/Profiler.h"

namespace dmp::core {

/// Aggregate statistics of one selection run, for reports and tests.
struct SelectionStats {
  size_t CandidatesConsidered = 0;
  size_t SelectedExact = 0;   ///< Simple + nested hammocks.
  size_t SelectedFreq = 0;    ///< Frequently-hammocks.
  size_t SelectedShort = 0;   ///< Marked always-predicate.
  size_t SelectedRet = 0;     ///< Branches whose CFM set includes a return.
  size_t SelectedLoop = 0;    ///< Diverge loop branches.
  size_t RejectedByCost = 0;  ///< Cost model said no.
  size_t RejectedByLimits = 0;///< Heuristic thresholds said no.
};

/// Runs diverge-branch selection and returns the annotation map.
/// \p Stats (optional) receives selection statistics.
DivergeMap selectDivergeBranches(const cfg::ProgramAnalysis &PA,
                                 const profile::ProfileData &Prof,
                                 const SelectionConfig &Config,
                                 const SelectionFeatures &Features,
                                 SelectionStats *Stats = nullptr);

} // namespace dmp::core

#endif // DMP_CORE_DIVERGESELECTOR_H
