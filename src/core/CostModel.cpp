//===- core/CostModel.cpp - Analytical cost-benefit model ---------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::core;

/// Per-side fetched-instruction estimate toward one CFM point.
///
/// Method 2 (Eq. 8-9): the longest explored path to the CFM.
/// Method 3 (Eq. 10-11): the edge-profile expectation; paths that do not
/// reach the CFM contribute their full explored length.
///
/// For a return CFM the distance is measured to the path-terminating return
/// instruction instead of to a block.
static double sideInstrs(const cfg::PathSet &Set, const CfmCandidate &Cfm,
                         unsigned CallWeight, OverheadMethod Method) {
  if (Cfm.IsReturn) {
    if (Method == OverheadMethod::LongestPath) {
      unsigned Best = 0;
      bool Any = false;
      for (const cfg::Path &P : Set.Paths)
        if (P.End == cfg::PathEnd::ReachedRet) {
          Best = std::max(Best, P.Instrs);
          Any = true;
        }
      return Any ? Best : Set.maxInstrs();
    }
    const double Total = Set.totalProb();
    if (Total <= 0.0)
      return 0.0;
    double Sum = 0.0;
    for (const cfg::Path &P : Set.Paths)
      Sum += P.Prob * static_cast<double>(P.Instrs);
    return Sum / Total;
  }

  if (Method == OverheadMethod::LongestPath)
    return Set.maxInstrsTo(Cfm.Block, CallWeight);
  return Set.expectedInstrsTo(Cfm.Block, CallWeight);
}

HammockCost core::evaluateHammockCost(const BranchCandidate &Cand,
                                      const std::vector<CfmCandidate> &Cfms,
                                      const SelectionConfig &Config,
                                      OverheadMethod Method) {
  HammockCost Result;
  const double FW = static_cast<double>(Config.FetchWidth);
  const double Penalty = static_cast<double>(Config.MispPenaltyCycles);

  double MergeSum = 0.0;
  double WeightedUselessCycles = 0.0;
  for (const CfmCandidate &Cfm : Cfms) {
    // N(BH) / N(CH) per Eq. 5: taken side and not-taken side.
    const double NTaken =
        sideInstrs(Cand.TakenPaths, Cfm, Config.CallExtraWeight, Method);
    const double NFall =
        sideInstrs(Cand.FallPaths, Cfm, Config.CallExtraWeight, Method);
    const double DpredInsts = NTaken + NFall;
    // Eq. 12: useful instructions are the correct-path side, weighted by
    // the probability of each direction being correct.
    const double Useful =
        Cand.TakenProb * NTaken + (1.0 - Cand.TakenProb) * NFall;
    // Eq. 13.
    const double Useless = std::max(0.0, DpredInsts - Useful);

    Result.DpredInstsPerCfm.push_back(DpredInsts);
    Result.UselessInstsPerCfm.push_back(Useless);
    // Eq. 17 numerator terms.
    WeightedUselessCycles += (Useless / FW) * Cfm.MergeProb;
    MergeSum += Cfm.MergeProb;
  }
  MergeSum = std::min(MergeSum, 1.0);
  Result.TotalMergeProb = MergeSum;

  // Eq. 16/17: when the paths fail to merge, half the fetch bandwidth is
  // wasted until the branch resolves.
  Result.OverheadCycles =
      WeightedUselessCycles + (1.0 - MergeSum) * (Penalty / 2.0);

  // Eq. 1-3: weight by the confidence estimator's accuracy.
  const double PCorrect = 1.0 - Config.AccConf; // entered but was correct
  const double PMisp = Config.AccConf;          // entered and was wrong
  Result.CostCycles = Result.OverheadCycles * PCorrect +
                      (Result.OverheadCycles - Penalty) * PMisp;
  // Eq. 4.
  Result.Selected = !Cfms.empty() && Result.CostCycles < 0.0;
  return Result;
}

LoopCost core::evaluateLoopCost(const LoopCostInputs &In,
                                const SelectionConfig &Config) {
  LoopCost Result;
  const double FW = static_cast<double>(Config.FetchWidth);
  const double Penalty = static_cast<double>(Config.MispPenaltyCycles);

  // Eq. 18: select-µop fetch overhead per dpred-mode episode.
  const double SelectOverhead = In.SelectUops * In.DpredIter / FW;

  Result.OverheadCorrect = SelectOverhead;
  Result.OverheadEarly = SelectOverhead;
  Result.OverheadNoExit = SelectOverhead;
  // Eq. 19: late exit additionally fetches the NOPed extra iterations.
  Result.OverheadLate =
      In.BodyInstrs * In.DpredExtraIter / FW + SelectOverhead;

  // Eq. 20: only the late-exit case converts a pipeline flush into useful
  // control-independent fetch, i.e. saves the misprediction penalty.
  Result.CostCycles = In.PCorrect * Result.OverheadCorrect +
                      In.PEarlyExit * Result.OverheadEarly +
                      In.PLateExit * (Result.OverheadLate - Penalty) +
                      In.PNoExit * Result.OverheadNoExit;
  Result.Selected = Result.CostCycles < 0.0;
  return Result;
}
