//===- core/SimpleSelectors.h - Baseline selection algorithms -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alternative simple diverge-branch selectors the paper compares
/// against (Section 7.2 / Figure 8):
///
///  1. Every-br: every executed branch;
///  2. Random-50: a random half of executed branches;
///  3. High-BP-5: branches with >= 5% profiled misprediction rate;
///  4. Immediate: branches that have an IPOSDOM;
///  5. If-else: only simple hammocks (no intervening control flow).
///
/// Per footnote 10, when a branch has an IPOSDOM it becomes the single CFM
/// point; branches without one are selected with no CFM, in which case the
/// processor stays in dpred-mode until the branch resolves and any benefit
/// comes from dual-path execution.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_SIMPLESELECTORS_H
#define DMP_CORE_SIMPLESELECTORS_H

#include "cfg/Analysis.h"
#include "core/DivergeInfo.h"
#include "core/SelectionConfig.h"
#include "profile/Profiler.h"

#include <cstdint>

namespace dmp::core {

/// Every executed conditional branch.
DivergeMap selectEveryBranch(const cfg::ProgramAnalysis &PA,
                             const profile::ProfileData &Prof);

/// A deterministic random 50% of executed conditional branches.
DivergeMap selectRandom50(const cfg::ProgramAnalysis &PA,
                          const profile::ProfileData &Prof,
                          uint64_t Seed = 0xD113);

/// Branches whose profiled misprediction rate is at least \p MinMispRate.
DivergeMap selectHighBP(const cfg::ProgramAnalysis &PA,
                        const profile::ProfileData &Prof,
                        double MinMispRate = 0.05);

/// Branches that have an immediate post-dominator.
DivergeMap selectImmediate(const cfg::ProgramAnalysis &PA,
                           const profile::ProfileData &Prof);

/// Only if / if-else branches with no intervening control flow.
DivergeMap selectIfElse(const cfg::ProgramAnalysis &PA,
                        const profile::ProfileData &Prof,
                        const SelectionConfig &Config);

} // namespace dmp::core

#endif // DMP_CORE_SIMPLESELECTORS_H
