//===- core/LoopSelect.h - Diverge loop branch selection ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selection of diverge loop branches (paper Section 5.2).  The full loop
/// cost model (Section 5.1 / core/CostModel.h) needs per-branch dpred
/// profiling that "is impractical due to its cost"; the paper therefore uses
/// three profile-driven heuristics, which we implement verbatim:
///
///  1. reject when the static loop body exceeds STATIC_LOOP_SIZE;
///  2. reject when the average dynamic instructions per loop invocation
///     exceed DYNAMIC_LOOP_SIZE;
///  3. reject when the average iteration count exceeds LOOP_ITER.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CORE_LOOPSELECT_H
#define DMP_CORE_LOOPSELECT_H

#include "cfg/Analysis.h"
#include "core/DivergeInfo.h"
#include "core/SelectionConfig.h"
#include "profile/Profiler.h"

namespace dmp::core {

/// Decision detail for one loop exit branch, for reports and tests.
struct LoopDecision {
  uint32_t BranchAddr = 0;
  uint32_t HeaderAddr = 0;
  unsigned StaticBodySize = 0;
  double AvgDynamicSize = 0.0;
  double AvgIterations = 0.0;
  bool RejectedStatic = false;
  bool RejectedDynamic = false;
  bool RejectedIter = false;
  bool Selected = false;
};

/// Examines the loop exit branch at \p BranchAddr.  Returns the decision;
/// when selected, \p Annotation is filled with a Loop-kind annotation
/// (header address, select-µop count, stay direction, exit-target CFM).
LoopDecision evaluateLoopBranch(const cfg::ProgramAnalysis &PA,
                                const profile::ProfileData &Prof,
                                uint32_t BranchAddr,
                                const SelectionConfig &Config,
                                DivergeAnnotation &Annotation);

/// True when the branch at \p BranchAddr is an exit branch of its innermost
/// loop (one successor in the loop, one outside).
bool isLoopExitBranch(const cfg::ProgramAnalysis &PA, uint32_t BranchAddr);

} // namespace dmp::core

#endif // DMP_CORE_LOOPSELECT_H
