//===- guard/Guard.h - Cancellation, deadlines, graceful shutdown -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dmp::guard: the operational-robustness layer of the campaign stack
/// (DESIGN.md "Shutdown, deadlines, and crash recovery").  Three pieces:
///
///  - CancelToken: a cooperative, async-signal-safe cancellation flag that
///    carries an ErrorCode + reason.  Producers (signal handlers, deadline
///    watchdogs, tests) trip it; consumers (TaskGraph::runAll task starts,
///    ExperimentEngine cell attempts, the DmpCore inner loop) poll it and
///    convert a trip into a dmp::Status instead of a hang or a lost
///    campaign.  First trip wins; trips are atomic stores only, so tripping
///    from a signal handler is safe.
///
///  - Deadline / DeadlineWatchdog: a wall-clock budget and a background
///    thread that trips a token when the budget runs out.  The watchdog is
///    how `--deadline` bounds a whole campaign and `fuzz_dmp --time-budget`
///    bounds a fuzzing sweep: work stops being *launched* at the deadline
///    and in-flight work drains (or, where a token is wired into the
///    simulator inner loop, aborts at the next poll).
///
///  - Signal handling: installSignalHandlers() arms SIGINT/SIGTERM with an
///    async-signal-safe handler (sig_atomic_t flag + self-pipe write +
///    processToken() trip).  The first signal requests a graceful drain —
///    drivers stop launching cells, flush a final journal checkpoint,
///    print a partial report, and exit exitcode::Interrupted (130).  A
///    second signal hard-exits immediately with the same code.
///
/// Everything here is deliberately *cooperative*: nothing is ever killed
/// mid-write, which is what keeps the artifact cache and campaign journal
/// crash-consistent (serialize::ArtifactCache handles the non-cooperative
/// cases — kill -9, power loss — with its recovery sweep).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_GUARD_GUARD_H
#define DMP_GUARD_GUARD_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dmp::guard {

/// A one-way cooperative cancellation flag.  cancel() is async-signal-safe
/// (atomic stores of a code and a pointer to a string literal; no
/// allocation, no locks); everything else is ordinary thread-safe reads.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Trips the token.  First trip wins; later calls are no-ops.  \p Reason
  /// must point to storage that outlives the token (a string literal).
  void cancel(ErrorCode Code = ErrorCode::Cancelled,
              const char *Reason = "cancelled") noexcept {
    const char *ExpectedReason = nullptr;
    TripReason.compare_exchange_strong(ExpectedReason, Reason,
                                       std::memory_order_relaxed);
    uint8_t ExpectedState = 0;
    State.compare_exchange_strong(ExpectedState, static_cast<uint8_t>(Code),
                                  std::memory_order_release);
  }

  bool cancelled() const noexcept {
    return State.load(std::memory_order_acquire) != 0;
  }

  /// Ok while live; after a trip, the Status the trip carried (origin
  /// "guard").
  Status status() const {
    const uint8_t S = State.load(std::memory_order_acquire);
    if (S == 0)
      return Status();
    const char *Reason = TripReason.load(std::memory_order_relaxed);
    return Status::make(static_cast<ErrorCode>(S),
                        Reason ? Reason : "cancelled", "guard");
  }

  /// status() with \p Where folded into the message, for call sites that
  /// want to say what was skipped.
  Status check(const char *Where) const {
    const Status S = status();
    if (S.ok())
      return S;
    return Status::make(S.code(), S.message() + " (" + Where + ")",
                        S.origin());
  }

  /// Re-arms a tripped token.  For tests only — never reset a token that
  /// live consumers may still poll.
  void reset() noexcept {
    State.store(0, std::memory_order_release);
    TripReason.store(nullptr, std::memory_order_relaxed);
  }

private:
  std::atomic<uint8_t> State{0}; ///< 0 = live, else the ErrorCode.
  std::atomic<const char *> TripReason{nullptr};
};

/// A wall-clock budget: either "never" or a fixed number of seconds from
/// construction.  Value type; cheap to copy.
class Deadline {
public:
  /// A deadline that never expires.
  Deadline() = default;

  /// Expires \p Seconds from now (fractional seconds allowed).
  explicit Deadline(double Seconds)
      : Never(false),
        At(std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(Seconds < 0 ? 0 : Seconds))) {}

  bool never() const { return Never; }
  bool expired() const {
    return !Never && std::chrono::steady_clock::now() >= At;
  }
  /// Seconds left (0 when expired; a very large value when never()).
  double remainingSeconds() const;
  std::chrono::steady_clock::time_point at() const { return At; }

private:
  bool Never = true;
  std::chrono::steady_clock::time_point At{};
};

/// Trips \p Token with (\p Code, \p Reason) when \p D expires.  The
/// deadline is monitored by a dedicated thread so compute-bound work gets
/// cancelled even if it never polls a clock; destroying the watchdog
/// before expiry disarms it without tripping.  A never() deadline spawns
/// no thread.
class DeadlineWatchdog {
public:
  DeadlineWatchdog(Deadline D, CancelToken &Token,
                   ErrorCode Code = ErrorCode::ResourceExhausted,
                   const char *Reason = "deadline exceeded");
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog &) = delete;
  DeadlineWatchdog &operator=(const DeadlineWatchdog &) = delete;

private:
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Stop = false;
  std::thread Thread;
};

/// The process-wide token tripped by SIGINT/SIGTERM.  Consumers poll it
/// (directly or via ExperimentEngine's drain path) to stop launching new
/// work after an interrupt.
CancelToken &processToken();

/// Arms SIGINT and SIGTERM with the graceful-shutdown handler: the first
/// signal trips processToken() (code Cancelled, reason "interrupted by
/// signal") and writes a byte to the self-pipe; a second signal hard-exits
/// with exitcode::Interrupted.  Idempotent; call once near the top of
/// main() in every driver.
void installSignalHandlers();

/// True once a first signal has been seen (i.e. processToken() was tripped
/// by the handler).
bool interrupted();

/// The signal number that tripped processToken() (SIGINT or SIGTERM), or 0
/// before any signal.  Lets long-lived services exit 128+sig — dmp_served
/// reports exitcode::Interrupted (130) for SIGINT and exitcode::Terminated
/// (143) for SIGTERM — while the one-shot drivers keep their uniform 130.
int lastSignal();

/// Read end of the self-pipe the handler writes to (for callers that block
/// in poll/select rather than compute), or -1 before installSignalHandlers().
int wakeupFd();

} // namespace dmp::guard

#endif // DMP_GUARD_GUARD_H
