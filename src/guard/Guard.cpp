//===- guard/Guard.cpp - Cancellation, deadlines, graceful shutdown -------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "support/ExitCodes.h"

#include <csignal>
#include <limits>
#include <unistd.h>

#include <fcntl.h>

namespace dmp::guard {

double Deadline::remainingSeconds() const {
  if (Never)
    return std::numeric_limits<double>::max();
  const auto Now = std::chrono::steady_clock::now();
  if (Now >= At)
    return 0.0;
  return std::chrono::duration<double>(At - Now).count();
}

DeadlineWatchdog::DeadlineWatchdog(Deadline D, CancelToken &Token,
                                   ErrorCode Code, const char *Reason) {
  if (D.never())
    return;
  Thread = std::thread([this, D, &Token, Code, Reason] {
    std::unique_lock<std::mutex> Lock(Mutex);
    // Spurious wakeups just re-check; a Stop wakeup disarms without trip.
    while (!Stop) {
      if (Cv.wait_until(Lock, D.at(), [this] { return Stop; }))
        return;
      if (D.expired()) {
        Token.cancel(Code, Reason);
        return;
      }
    }
  });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  if (!Thread.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  Cv.notify_all();
  Thread.join();
}

CancelToken &processToken() {
  static CancelToken Token;
  return Token;
}

namespace {

// Everything the handler touches must be async-signal-safe: a
// sig_atomic_t flag, atomic stores inside CancelToken::cancel, a write()
// to the self-pipe, and _exit().
volatile std::sig_atomic_t SignalSeen = 0;
volatile std::sig_atomic_t SignalNumber = 0;
int SelfPipe[2] = {-1, -1};

extern "C" void handleShutdownSignal(int Sig) {
  if (SignalSeen) {
    // Second signal: the user really means it.  No draining, no flushing
    // — the cache recovery sweep and journal old-or-new guarantee cover
    // whatever was in flight.  128+sig keeps the conventional identity
    // (130 for ^C^C, 143 for a double SIGTERM).
    ::_exit(128 + Sig);
  }
  SignalSeen = 1;
  SignalNumber = Sig;
  processToken().cancel(ErrorCode::Cancelled, "interrupted by signal");
  if (SelfPipe[1] != -1) {
    const char Byte = 1;
    // Best-effort; a full pipe still leaves the flag + token set.
    (void)!::write(SelfPipe[1], &Byte, 1);
  }
}

} // namespace

void installSignalHandlers() {
  static bool Installed = false;
  if (Installed)
    return;
  Installed = true;

  if (::pipe(SelfPipe) == 0) {
    for (int Fd : SelfPipe) {
      ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
      ::fcntl(Fd, F_SETFL, O_NONBLOCK);
    }
  } else {
    SelfPipe[0] = SelfPipe[1] = -1;
  }

  struct sigaction Action = {};
  Action.sa_handler = handleShutdownSignal;
  sigemptyset(&Action.sa_mask);
  // No SA_RESTART: blocking syscalls should return EINTR so drivers
  // notice the interrupt promptly.
  Action.sa_flags = 0;
  ::sigaction(SIGINT, &Action, nullptr);
  ::sigaction(SIGTERM, &Action, nullptr);
}

bool interrupted() { return SignalSeen != 0; }

int lastSignal() { return static_cast<int>(SignalNumber); }

int wakeupFd() { return SelfPipe[0]; }

} // namespace dmp::guard
