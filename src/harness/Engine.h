//===- harness/Engine.h - Parallel experiment engine ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExperimentEngine: fans the (benchmark × configuration) experiment matrix
/// out across a work-stealing pool as a task graph.  Per benchmark the
/// engine builds the paper pipeline with explicit dependency edges
///
///   build workload ──> profile(run) ──┬──> cell(config 0)
///                 ├──> profile(train) ┼──> cell(config 1)
///                 └──> baseline sim ──┴──> ...
///
/// so independent cells of different benchmarks overlap freely.  Results
/// land in a pre-allocated [benchmark][config] matrix of StatusOr slots,
/// and every cell gets its own RNG stream derived from the workload seed
/// and config index — which is why results are bit-identical for any
/// --jobs value.
///
/// Failure semantics (DESIGN.md "Failure semantics"): campaigns run to
/// completion.  A failing cell records its Status in its slot instead of
/// poisoning the graph; Transient failures (e.g. injected faults, resource
/// blips) are retried a bounded, deterministic number of times — attempts
/// are indexed, never wall-clock-timed, and each retry re-derives the same
/// per-cell RNG stream, so a retried cell is bit-identical to an
/// undisturbed one.  When a CampaignJournal is supplied with a CellCodec,
/// completed cells are checkpointed through the artifact cache and an
/// interrupted campaign resumes them instead of recomputing.
///
/// Shutdown and deadlines (DESIGN.md "Shutdown, deadlines, and crash
/// recovery"): the engine drains on guard::processToken() — after a SIGINT
/// no new cell starts, in-flight cells finish, drained cells hold a
/// Cancelled Status with origin "guard" and are counted as CellsCancelled
/// (not failures).  --deadline arms a wall-clock watchdog whose trip also
/// aborts in-flight simulations (SimConfig::Cancel); --cell-instr-budget
/// arms the deterministic per-cell instruction watchdog
/// (SimConfig::WatchdogInstrBudget), so a runaway cell yields
/// ResourceExhausted — a "--" gap, identically for any --jobs value.
///
/// EngineOptions carries the shared bench-driver command line:
/// --jobs N, --cache-dir DIR, --no-cache, --journal NAME, --deadline SEC,
/// --cell-instr-budget N, --cache-budget BYTES, --limit-benches N.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_ENGINE_H
#define DMP_HARNESS_ENGINE_H

#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"
#include "fault/Fault.h"
#include "guard/Guard.h"
#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "support/RNG.h"
#include "support/Status.h"

#include <atomic>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dmp::harness {

/// Execution knobs shared by every bench driver.
struct EngineOptions {
  unsigned Jobs = exec::ThreadPool::defaultThreadCount();
  std::string CacheDir = defaultCacheDir();
  bool UseCache = true;
  /// Bounded deterministic retries for Transient cell failures.
  unsigned CellRetries = 3;
  /// When non-empty, campaigns named <Journal>/<matrix> checkpoint
  /// completed cells through the cache and resume on rerun.
  std::string Journal;
  /// Wall-clock budget for the whole campaign in seconds; 0 = none.  At
  /// expiry no new cell starts and in-flight simulations abort at their
  /// next cancel poll; drained cells render as "--" gaps.
  double DeadlineSeconds = 0.0;
  /// Per-cell retired-instruction watchdog (SimConfig::WatchdogInstrBudget);
  /// 0 = none.  Deterministic across --jobs values.
  uint64_t CellInstrBudget = 0;
  /// Cache size budget in bytes; 0 = unbounded.  After the campaign,
  /// blobs are evicted oldest-first down to this budget, never touching
  /// the live campaign journals.
  uint64_t CacheBudgetBytes = 0;
  /// Truncate the benchmark suite to its first N entries (0 = all); for
  /// fast CLI-level tests and smoke runs, surfaced as --limit-benches.
  size_t LimitBenches = 0;
  /// The token the engine drains on; null means guard::processToken()
  /// (the SIGINT/SIGTERM token).  Tests point this at their own token to
  /// exercise draining without delivering signals.
  const guard::CancelToken *DrainToken = nullptr;

  /// $DMP_CACHE_DIR, or ".dmp-cache" under the working directory.
  static std::string defaultCacheDir();

  /// Parses the shared driver flags (--jobs N, --cache-dir DIR, --no-cache,
  /// --journal NAME, --deadline SEC, --cell-instr-budget N, --cache-budget
  /// BYTES, --limit-benches N, --help).  Prints usage and exits with
  /// exitcode::Usage on any unknown/invalid argument, so drivers reject
  /// stray flags instead of ignoring them.
  static EngineOptions parseOrExit(int Argc, char **Argv);

  static void printUsage(const char *Prog, std::FILE *Out);
};

/// One (benchmark, configuration) unit of work handed to a cell function.
struct Cell {
  BenchContext &Bench;
  size_t Config; ///< Column index in the result matrix.
  /// Deterministic per-cell stream: a pure function of the workload seed
  /// and config index, independent of scheduling, thread count, and retry
  /// attempt.
  RNG Rng;
};

/// Which pipeline stages the engine should complete before cells run.
/// Cells may still lazily compute an unlisted stage (BenchContext is
/// thread-safe); listing them here just maximizes overlap.
struct CellNeeds {
  bool RunProfile = true;
  bool TrainProfile = false;
  bool Baseline = true;
};

/// Byte codec for journaling one cell result type.
template <typename R> struct CellCodec {
  std::function<std::vector<uint8_t>(const R &)> Encode;
  std::function<StatusOr<R>(const std::vector<uint8_t> &)> Decode;
};

/// Codec for plain double cells (IEEE-754 bits, little-endian).
const CellCodec<double> &doubleCellCodec();

/// Campaign-level accounting across every runMatrix call of an engine.
struct CampaignCounters {
  uint64_t CellsComputed = 0; ///< Cells whose function ran to success.
  uint64_t CellsFailed = 0;   ///< Cells that ended with a non-ok Status.
  uint64_t CellsResumed = 0;  ///< Cells restored from a campaign journal.
  /// Cells shed by a drain (signal) or deadline — origin "guard" Statuses.
  /// Kept apart from CellsFailed: a cancelled cell is not a defect, and a
  /// journaled rerun will compute it.
  uint64_t CellsCancelled = 0;
  uint64_t TransientRetries = 0;
  /// One "<bench>/<config>: <status>" line per failed cell, in the order
  /// failures were recorded (scheduling-dependent; sort for comparisons).
  std::vector<std::string> Failures;
};

/// Runs experiment matrices over a pool, with prepared benchmark contexts
/// reused across calls (so e.g. the two panels of Figure 5 share profiles
/// and baselines).
class ExperimentEngine {
public:
  ExperimentEngine(ExperimentOptions Options, const EngineOptions &Engine);

  exec::ThreadPool &pool() { return Pool; }
  const ExperimentOptions &options() const { return Options; }
  serialize::ArtifactCache *cache() const { return Options.Cache.get(); }

  /// Runs CellFn for every (benchmark, config) cell and returns the
  /// [benchmark][config] result matrix in Specs × [0, ConfigCount) order,
  /// regardless of scheduling.  The campaign runs to completion: a failed
  /// cell holds its Status (rendered as a gap by Reports) and everything
  /// else still computes.  With \p Journal and \p Codec, already-journaled
  /// cells are resumed and fresh completions are checkpointed.
  template <typename R>
  std::vector<std::vector<StatusOr<R>>>
  runMatrix(const std::vector<workloads::BenchmarkSpec> &Specs,
            size_t ConfigCount, const std::function<R(Cell &)> &CellFn,
            const CellNeeds &Needs = CellNeeds(),
            CampaignJournal *Journal = nullptr,
            const CellCodec<R> *Codec = nullptr) {
    std::vector<std::vector<StatusOr<R>>> Results(Specs.size());
    std::vector<std::vector<char>> Resumed(Specs.size());
    for (size_t B = 0; B < Specs.size(); ++B) {
      Results[B].assign(ConfigCount, StatusOr<R>());
      Resumed[B].assign(ConfigCount, 0);
    }

    // Resume journaled cells up front (single-threaded, deterministic).
    if (Journal && Codec) {
      std::vector<uint8_t> Payload;
      for (size_t B = 0; B < Specs.size(); ++B)
        for (size_t C = 0; C < ConfigCount; ++C)
          if (Journal->lookup(B, C, Payload)) {
            StatusOr<R> Value = Codec->Decode(Payload);
            if (Value.ok()) {
              Results[B][C] = std::move(Value);
              Resumed[B][C] = 1;
              noteResumed();
            }
          }
    }

    std::vector<BenchContext *> Contexts(Specs.size(), nullptr);
    exec::TaskGraph Graph;
    // Cell task id -> matrix slot, to map stage-failure cancellations.
    std::vector<std::pair<size_t, size_t>> SlotOf;
    std::vector<exec::TaskGraph::TaskId> CellTasks;
    for (size_t B = 0; B < Specs.size(); ++B) {
      bool AnyFresh = false;
      for (size_t C = 0; C < ConfigCount; ++C)
        AnyFresh |= !Resumed[B][C];
      if (!AnyFresh)
        continue; // whole row journaled: skip stages too
      const workloads::BenchmarkSpec &Spec = Specs[B];
      const auto Build = Graph.add(
          [this, &Spec, &Contexts, B] { Contexts[B] = &contextFor(Spec); });
      std::vector<exec::TaskGraph::TaskId> StageIds;
      if (Needs.RunProfile)
        StageIds.push_back(Graph.add(
            [&Contexts, B] {
              Contexts[B]->profileData(workloads::InputSetKind::Run);
            },
            {Build}));
      if (Needs.TrainProfile)
        StageIds.push_back(Graph.add(
            [&Contexts, B] {
              Contexts[B]->profileData(workloads::InputSetKind::Train);
            },
            {Build}));
      if (Needs.Baseline)
        StageIds.push_back(
            Graph.add([&Contexts, B] { Contexts[B]->baseline(); }, {Build}));
      if (StageIds.empty())
        StageIds.push_back(Build);
      for (size_t C = 0; C < ConfigCount; ++C) {
        if (Resumed[B][C])
          continue;
        CellTasks.push_back(Graph.add(
            [this, &Results, &Contexts, &Spec, &CellFn, B, C, Journal,
             Codec] {
              runCell<R>(Results[B][C], *Contexts[B], Spec, B, C, CellFn,
                         Journal, Codec);
            },
            StageIds));
        SlotOf.push_back({B, C});
      }
    }
    const std::vector<Status> Statuses =
        Graph.runAll(Pool, [this] { return cancelStatus(); });
    // Cells cancelled because a pipeline stage failed (or because the
    // campaign is draining) never wrote their slot; surface the
    // cancellation (or the stage's own failure) there.  Drain/deadline
    // cancellations carry origin "guard" and are accounted separately —
    // they are shed work, not defects.
    for (size_t I = 0; I < CellTasks.size(); ++I) {
      const Status &S = Statuses[CellTasks[I]];
      if (!S.ok()) {
        const auto [B, C] = SlotOf[I];
        Results[B][C] = S;
        if (S.origin() == "guard")
          noteCancelled();
        else
          noteFailure(Specs[B].Name, C, S);
      }
    }
    return Results;
  }

  /// Per-benchmark convenience: a single-config matrix, flattened.
  template <typename R>
  std::vector<StatusOr<R>>
  runPerBenchmark(const std::vector<workloads::BenchmarkSpec> &Specs,
                  const std::function<R(Cell &)> &Fn,
                  const CellNeeds &Needs = CellNeeds()) {
    std::vector<std::vector<StatusOr<R>>> Matrix =
        runMatrix<R>(Specs, 1, Fn, Needs);
    std::vector<StatusOr<R>> Flat;
    Flat.reserve(Matrix.size());
    for (std::vector<StatusOr<R>> &Row : Matrix)
      Flat.push_back(std::move(Row[0]));
    return Flat;
  }

  /// The journal for matrix \p MatrixName under this engine's --journal
  /// campaign, or null when journaling is off or the cache is disabled.
  /// The engine owns the journal; pointers stay valid for its lifetime.
  CampaignJournal *journalFor(const std::string &MatrixName,
                              const serialize::Digest &ParamsKey,
                              size_t Benchmarks, size_t Configs);

  /// The prepared context for \p Spec, built on first use (thread-safe).
  BenchContext &contextFor(const workloads::BenchmarkSpec &Spec);

  /// Campaign accounting so far (copy; safe to call between matrices).
  CampaignCounters campaign() const;

  /// "jobs=N cache=DIR hits=H misses=M stores=S corrupt=C store-failures=F
  /// orphans-reaped=O evicted=E lock-contention=L retries=R failed-cells=X
  /// cancelled=Z resumed=Y" for driver footers (cache fields omitted with
  /// cache=off).
  std::string statsLine() const;

  /// "" when no cell failed, else one indented line per failure for
  /// driver footers.
  std::string failureLines() const;

  /// The deterministic RNG stream of cell (\p Spec, \p Config).
  static RNG cellRng(const workloads::BenchmarkSpec &Spec, size_t Config);

  /// Ok while the campaign should keep launching cells; otherwise the
  /// drain token's or deadline's Status (origin "guard").
  Status cancelStatus() const;

  /// True once the drain token or deadline tripped.
  bool draining() const { return !cancelStatus().ok(); }

  /// Rewrites every live campaign journal's checkpoint now; drivers call
  /// this on the shutdown path so the final on-disk state reflects every
  /// completed cell before the partial report prints.  Returns the first
  /// non-ok store outcome, if any.
  Status flushJournals();

  /// Runs the cache eviction pass when --cache-budget was given,
  /// protecting every live journal blob.  Returns blobs evicted (0 when
  /// unbudgeted, cache off, or under budget).
  uint64_t evictCacheToBudget();

private:
  template <typename R>
  void runCell(StatusOr<R> &Slot, BenchContext &Bench,
               const workloads::BenchmarkSpec &Spec, size_t B, size_t C,
               const std::function<R(Cell &)> &CellFn,
               CampaignJournal *Journal, const CellCodec<R> *Codec) {
    const std::string OpKey =
        std::string(Spec.Name) + "/" + std::to_string(C);
    const unsigned MaxAttempts = CellRetries + 1;
    for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
      // Drain check per attempt: a retry loop must not outlive the
      // campaign's shutdown either.
      if (Status Drain = cancelStatus(); !Drain.ok()) {
        Slot = std::move(Drain);
        noteCancelled();
        return;
      }
      Status Failure;
      try {
        if (Faults) {
          Status Injected =
              Faults->check(fault::Site::TaskRun, OpKey, Attempt);
          if (!Injected.ok())
            throw StatusError(std::move(Injected));
        }
        // The cell RNG is re-derived per attempt, so a retried cell
        // computes on exactly the stream an undisturbed run would use.
        Cell Unit{Bench, C, cellRng(Spec, C)};
        R Value = CellFn(Unit);
        if (Journal && Codec)
          Journal->record(B, C, Codec->Encode(Value));
        Slot = std::move(Value);
        noteComputed();
        return;
      } catch (const StatusError &E) {
        Failure = E.status();
      } catch (const std::exception &E) {
        Failure = Status::invariant(E.what(), "harness::ExperimentEngine");
      } catch (...) {
        Failure = Status::invariant("cell threw a non-std exception",
                                    "harness::ExperimentEngine");
      }
      if (Failure.origin() == "guard") {
        // The cell aborted because the campaign is draining or hit its
        // deadline mid-simulation: shed work, never retried, never a
        // failure line.
        Slot = std::move(Failure);
        noteCancelled();
        return;
      }
      if (Failure.code() == ErrorCode::Transient &&
          Attempt + 1 < MaxAttempts) {
        noteRetry();
        continue;
      }
      Slot = Failure;
      noteFailure(Spec.Name, C, Failure);
      return;
    }
  }

  void noteComputed();
  void noteRetry();
  void noteResumed();
  void noteCancelled();
  void noteFailure(const std::string &Bench, size_t Config,
                   const Status &S);

  ExperimentOptions Options;
  exec::ThreadPool Pool;
  unsigned CellRetries;
  std::string JournalName;
  /// Deadline state: an engine-owned token tripped by the wall-clock
  /// watchdog (also wired into Options.Sim.Cancel so in-flight simulations
  /// abort), plus the external drain token (process SIGINT token unless a
  /// test overrides it).
  guard::CancelToken DeadlineToken;
  std::unique_ptr<guard::DeadlineWatchdog> Watchdog;
  const guard::CancelToken *Drain = nullptr;
  uint64_t CacheBudgetBytes = 0;
  /// Test hook ($DMP_TEST_RAISE_SIGINT_AFTER_CELLS): raise SIGINT once
  /// after this many computed cells, so CLI tests can interrupt a campaign
  /// at a deterministic point.  0 = off.
  uint64_t RaiseSigintAfterCells = 0;
  std::atomic<bool> SigintRaised{false};
  std::shared_ptr<const fault::Injector> Faults;
  std::mutex ContextsMutex;
  std::map<std::string, std::unique_ptr<BenchContext>> Contexts;
  std::mutex JournalsMutex;
  std::map<std::string, std::unique_ptr<CampaignJournal>> Journals;
  mutable std::mutex CampaignMutex;
  CampaignCounters Campaign;
};

/// The first \p Engine.LimitBenches entries of \p Suite (all of it when
/// the limit is 0): the --limit-benches view every engine driver applies
/// to its suite.
std::vector<workloads::BenchmarkSpec>
limitSuite(const std::vector<workloads::BenchmarkSpec> &Suite,
           const EngineOptions &Engine);

/// The shared engine-driver epilogue: flushes campaign journals, runs the
/// cache eviction pass, prints the "[engine] ..." stats footer and any
/// failure lines to stderr, and returns the driver's exit code —
/// exitcode::Interrupted (with a resume hint) after a SIGINT/SIGTERM
/// drain, exitcode::Ok otherwise.  Call it as the driver's `return`
/// statement.
int finishDriver(ExperimentEngine &Engine);

} // namespace dmp::harness

#endif // DMP_HARNESS_ENGINE_H
