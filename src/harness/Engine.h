//===- harness/Engine.h - Parallel experiment engine ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExperimentEngine: fans the (benchmark × configuration) experiment matrix
/// out across a work-stealing pool as a task graph.  Per benchmark the
/// engine builds the paper pipeline with explicit dependency edges
///
///   build workload ──> profile(run) ──┬──> cell(config 0)
///                 ├──> profile(train) ┼──> cell(config 1)
///                 └──> baseline sim ──┴──> ...
///
/// so independent cells of different benchmarks overlap freely.  Results
/// land in a pre-allocated [benchmark][config] matrix, and every cell gets
/// its own RNG stream derived from the workload seed and config index —
/// which is why results are bit-identical for any --jobs value.
///
/// EngineOptions carries the shared bench-driver command line:
/// --jobs N, --cache-dir DIR, --no-cache.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_ENGINE_H
#define DMP_HARNESS_ENGINE_H

#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"
#include "harness/Experiment.h"
#include "support/RNG.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dmp::harness {

/// Execution knobs shared by every bench driver.
struct EngineOptions {
  unsigned Jobs = exec::ThreadPool::defaultThreadCount();
  std::string CacheDir = defaultCacheDir();
  bool UseCache = true;

  /// $DMP_CACHE_DIR, or ".dmp-cache" under the working directory.
  static std::string defaultCacheDir();

  /// Parses the shared driver flags (--jobs N, --cache-dir DIR, --no-cache,
  /// --help).  Prints usage and exits on --help or on any unknown/invalid
  /// argument, so drivers reject stray flags instead of ignoring them.
  static EngineOptions parseOrExit(int Argc, char **Argv);

  static void printUsage(const char *Prog, std::FILE *Out);
};

/// One (benchmark, configuration) unit of work handed to a cell function.
struct Cell {
  BenchContext &Bench;
  size_t Config; ///< Column index in the result matrix.
  /// Deterministic per-cell stream: a pure function of the workload seed
  /// and config index, independent of scheduling and thread count.
  RNG Rng;
};

/// Which pipeline stages the engine should complete before cells run.
/// Cells may still lazily compute an unlisted stage (BenchContext is
/// thread-safe); listing them here just maximizes overlap.
struct CellNeeds {
  bool RunProfile = true;
  bool TrainProfile = false;
  bool Baseline = true;
};

/// Runs experiment matrices over a pool, with prepared benchmark contexts
/// reused across calls (so e.g. the two panels of Figure 5 share profiles
/// and baselines).
class ExperimentEngine {
public:
  ExperimentEngine(ExperimentOptions Options, const EngineOptions &Engine);

  exec::ThreadPool &pool() { return Pool; }
  const ExperimentOptions &options() const { return Options; }
  serialize::ArtifactCache *cache() const { return Options.Cache.get(); }

  /// Runs CellFn for every (benchmark, config) cell and returns the
  /// [benchmark][config] result matrix in Specs × [0, ConfigCount) order,
  /// regardless of scheduling.  Rethrows the first cell exception.
  template <typename R>
  std::vector<std::vector<R>>
  runMatrix(const std::vector<workloads::BenchmarkSpec> &Specs,
            size_t ConfigCount, const std::function<R(Cell &)> &CellFn,
            const CellNeeds &Needs = CellNeeds()) {
    std::vector<std::vector<R>> Results(Specs.size());
    std::vector<BenchContext *> Contexts(Specs.size(), nullptr);
    exec::TaskGraph Graph;
    for (size_t B = 0; B < Specs.size(); ++B) {
      Results[B].assign(ConfigCount, R());
      const workloads::BenchmarkSpec &Spec = Specs[B];
      const auto Build = Graph.add(
          [this, &Spec, &Contexts, B] { Contexts[B] = &contextFor(Spec); });
      std::vector<exec::TaskGraph::TaskId> StageIds;
      if (Needs.RunProfile)
        StageIds.push_back(Graph.add(
            [&Contexts, B] {
              Contexts[B]->profileData(workloads::InputSetKind::Run);
            },
            {Build}));
      if (Needs.TrainProfile)
        StageIds.push_back(Graph.add(
            [&Contexts, B] {
              Contexts[B]->profileData(workloads::InputSetKind::Train);
            },
            {Build}));
      if (Needs.Baseline)
        StageIds.push_back(
            Graph.add([&Contexts, B] { Contexts[B]->baseline(); }, {Build}));
      if (StageIds.empty())
        StageIds.push_back(Build);
      for (size_t C = 0; C < ConfigCount; ++C)
        Graph.add(
            [&Results, &Contexts, &Spec, &CellFn, B, C] {
              Cell Unit{*Contexts[B], C, cellRng(Spec, C)};
              Results[B][C] = CellFn(Unit);
            },
            StageIds);
    }
    Graph.run(Pool);
    return Results;
  }

  /// Per-benchmark convenience: a single-config matrix, flattened.
  template <typename R>
  std::vector<R>
  runPerBenchmark(const std::vector<workloads::BenchmarkSpec> &Specs,
                  const std::function<R(Cell &)> &Fn,
                  const CellNeeds &Needs = CellNeeds()) {
    std::vector<std::vector<R>> Matrix =
        runMatrix<R>(Specs, 1, Fn, Needs);
    std::vector<R> Flat;
    Flat.reserve(Matrix.size());
    for (std::vector<R> &Row : Matrix)
      Flat.push_back(std::move(Row[0]));
    return Flat;
  }

  /// The prepared context for \p Spec, built on first use (thread-safe).
  BenchContext &contextFor(const workloads::BenchmarkSpec &Spec);

  /// "jobs=N cache=DIR hits=H misses=M stores=S" for driver footers.
  std::string statsLine() const;

  /// The deterministic RNG stream of cell (\p Spec, \p Config).
  static RNG cellRng(const workloads::BenchmarkSpec &Spec, size_t Config);

private:
  ExperimentOptions Options;
  exec::ThreadPool Pool;
  std::mutex ContextsMutex;
  std::map<std::string, std::unique_ptr<BenchContext>> Contexts;
};

} // namespace dmp::harness

#endif // DMP_HARNESS_ENGINE_H
