//===- harness/Experiment.cpp - Profile->select->simulate pipeline ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "serialize/ProfileIO.h"

using namespace dmp;
using namespace dmp::harness;

namespace {

/// Folds every field of \p Spec into \p H.  The workload builder is a pure
/// function of the spec, so this stands in for hashing the program itself.
void hashSpec(serialize::Hasher &H, const workloads::BenchmarkSpec &Spec) {
  H.update(std::string(Spec.Name));
  for (unsigned V :
       {Spec.OuterIters, Spec.SimpleHard, Spec.SimpleEasy, Spec.Nested,
        Spec.Freq, Spec.Short, Spec.RetFuncs, Spec.DataLoops, Spec.HardLoops,
        Spec.BorderLoops, Spec.Guarded, Spec.Big, Spec.CallHammocks,
        Spec.DualMerge, Spec.Straight, Spec.BodyLen, Spec.MergeLen,
        Spec.StraightLen})
    H.updateU64(V);
  H.updateDouble(Spec.HardP);
  H.updateU64(Spec.Seed);
}

void hashSimConfig(serialize::Hasher &H, const sim::SimConfig &C) {
  for (uint64_t V :
       {uint64_t(C.FetchWidth), uint64_t(C.MaxNotTakenBranchesPerFetch),
        uint64_t(C.FrontEndDepth), uint64_t(C.IssueWidth),
        uint64_t(C.RetireWidth), uint64_t(C.RobSize), uint64_t(C.LsqSize),
        uint64_t(C.Predictor), uint64_t(C.BtbEntries), uint64_t(C.RasEntries),
        uint64_t(C.ConfIndexBits), uint64_t(C.ConfHistoryBits),
        uint64_t(C.ConfThreshold), C.Memory.IL1Size, uint64_t(C.Memory.IL1Assoc),
        uint64_t(C.Memory.IL1Latency), C.Memory.DL1Size,
        uint64_t(C.Memory.DL1Assoc), uint64_t(C.Memory.DL1Latency),
        C.Memory.L2Size, uint64_t(C.Memory.L2Assoc),
        uint64_t(C.Memory.L2Latency), uint64_t(C.Memory.LineBytes),
        uint64_t(C.Memory.MemoryLatency), uint64_t(C.EnableDmp),
        uint64_t(C.NumPredicateRegs), uint64_t(C.NumCfmRegisters),
        uint64_t(C.MaxDpredInstrs), uint64_t(C.MaxLoopDpredIters), C.MaxInstrs,
        uint64_t(C.InjectFault), C.WatchdogInstrBudget})
    H.updateU64(V);
  // C.Cancel and C.Progress are deliberately NOT hashed: cancellation and
  // liveness beats are execution-time concerns, not part of the simulated
  // machine, and a token pointer would make keys unstable run to run.
}

void hashSelectionConfig(serialize::Hasher &H,
                         const core::SelectionConfig &C) {
  for (uint64_t V :
       {uint64_t(C.MaxInstr), uint64_t(C.MaxCondBr), uint64_t(C.MaxCfmPoints),
        uint64_t(C.ShortHammockMaxInstr), uint64_t(C.StaticLoopSize),
        uint64_t(C.DynamicLoopSize), uint64_t(C.FetchWidth),
        uint64_t(C.MispPenaltyCycles), uint64_t(C.CostScopeMaxInstr),
        uint64_t(C.CostScopeMaxCondBr), uint64_t(C.MaxPaths),
        uint64_t(C.CallExtraWeight)})
    H.updateU64(V);
  for (double V :
       {C.MinExecProb, C.MinMergeProb, C.ShortHammockMinMergeProb,
        C.ShortHammockMinMispRate, C.ReturnCfmMinMergeProb, C.LoopIter,
        C.AccConf, C.MinPathProb})
    H.updateDouble(V);
}

} // namespace

serialize::Digest
harness::profileCacheKey(const workloads::BenchmarkSpec &Spec,
                         workloads::InputSetKind Kind,
                         const profile::ProfileOptions &Options,
                         uint32_t SchemaVersion) {
  serialize::Hasher H;
  H.update(std::string("dmp-profile-key"));
  H.updateU64(SchemaVersion);
  hashSpec(H, Spec);
  H.updateU64(Kind == workloads::InputSetKind::Run ? 0 : 1);
  H.updateU64(Options.MaxInstrs);
  H.updateU64(static_cast<uint64_t>(Options.Predictor));
  return H.finish();
}

serialize::Digest harness::simCacheKey(const workloads::BenchmarkSpec &Spec,
                                       const sim::SimConfig &Config,
                                       const core::DivergeMap *Diverge,
                                       const core::SelectionConfig *Selection,
                                       uint32_t SchemaVersion) {
  serialize::Hasher H;
  H.update(std::string(Diverge ? "dmp-sim-key" : "dmp-baseline-key"));
  H.updateU64(SchemaVersion);
  hashSpec(H, Spec);
  hashSimConfig(H, Config);
  if (Diverge) {
    const std::vector<uint8_t> Bytes = serialize::encodeDivergeMap(*Diverge);
    H.update(Bytes.data(), Bytes.size());
  }
  if (Selection)
    hashSelectionConfig(H, *Selection);
  return H.finish();
}

BenchContext::BenchContext(const workloads::BenchmarkSpec &Spec,
                           const ExperimentOptions &Options)
    : Options(Options), Spec(Spec), W(workloads::buildBenchmark(Spec)) {
  PA = std::make_unique<cfg::ProgramAnalysis>(*W.Prog);
  RunImage = W.buildImage(workloads::InputSetKind::Run);
}

const profile::ProfileData &
BenchContext::profileData(workloads::InputSetKind Kind) {
  std::lock_guard<std::mutex> Lock(LazyMutex);
  auto &Slot =
      Kind == workloads::InputSetKind::Run ? RunProfile : TrainProfile;
  if (Slot)
    return *Slot;

  serialize::Digest Key;
  if (Options.Cache) {
    Key = profileCacheKey(Spec, Kind, Options.Profile);
    if (auto Blob = Options.Cache->load(Key)) {
      profile::ProfileData Data;
      const Status Fault =
          Options.Faults
              ? Options.Faults->check(fault::Site::ProfileDecode, Key.hex())
              : Status();
      if (Fault.ok() && serialize::decodeProfileData(*Blob, Data).ok()) {
        Slot = std::move(Data);
        return *Slot;
      }
      // Undecodable (or fault-shimmed) blob: fall through and recompute;
      // the store below rewrites it in the current format.
    }
  }

  const std::vector<int64_t> Image =
      Kind == workloads::InputSetKind::Run ? RunImage : W.buildImage(Kind);
  Slot = profile::collectProfile(*W.Prog, *PA, Image, Options.Profile);
  if (Options.Cache)
    Options.Cache->store(Key, serialize::encodeProfileData(*Slot));
  return *Slot;
}

const sim::SimStats &BenchContext::baseline() {
  std::lock_guard<std::mutex> Lock(LazyMutex);
  if (BaselineStats)
    return *BaselineStats;

  serialize::Digest Key;
  if (Options.Cache) {
    Key = simCacheKey(Spec, Options.Sim, nullptr);
    if (auto Blob = Options.Cache->load(Key)) {
      sim::SimStats Stats;
      if (serialize::decodeSimStats(*Blob, Stats).ok()) {
        BaselineStats = Stats;
        return *BaselineStats;
      }
    }
  }

  BaselineStats = sim::simulateBaseline(*W.Prog, RunImage, Options.Sim);
  if (Options.Cache)
    Options.Cache->store(Key, serialize::encodeSimStats(*BaselineStats));
  return *BaselineStats;
}

sim::SimStats BenchContext::simulateWith(const core::DivergeMap &Diverge) const {
  serialize::Digest Key;
  if (Options.Cache) {
    Key = simCacheKey(Spec, Options.Sim, &Diverge, &Options.Selection);
    if (auto Blob = Options.Cache->load(Key)) {
      sim::SimStats Stats;
      if (serialize::decodeSimStats(*Blob, Stats).ok())
        return Stats;
    }
  }
  sim::SimStats Stats = sim::simulateDmp(*W.Prog, Diverge, RunImage, Options.Sim);
  if (Options.Cache)
    Options.Cache->store(Key, serialize::encodeSimStats(Stats));
  return Stats;
}

core::DivergeMap BenchContext::select(const core::SelectionFeatures &Features,
                                      workloads::InputSetKind ProfileInput,
                                      core::SelectionStats *Stats) {
  return core::selectDivergeBranches(*PA, profileData(ProfileInput),
                                     Options.Selection, Features, Stats);
}

sim::SimStats
BenchContext::runSelection(const core::SelectionFeatures &Features,
                           workloads::InputSetKind ProfileInput) {
  return simulateWith(select(Features, ProfileInput));
}

double harness::ipcImprovement(const sim::SimStats &Base,
                               const sim::SimStats &Dmp) {
  if (Base.ipc() <= 0.0)
    return 0.0;
  return Dmp.ipc() / Base.ipc() - 1.0;
}
