//===- harness/Experiment.cpp - Profile->select->simulate pipeline ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

using namespace dmp;
using namespace dmp::harness;

BenchContext::BenchContext(const workloads::BenchmarkSpec &Spec,
                           const ExperimentOptions &Options)
    : Options(Options), W(workloads::buildBenchmark(Spec)) {
  PA = std::make_unique<cfg::ProgramAnalysis>(*W.Prog);
  RunImage = W.buildImage(workloads::InputSetKind::Run);
}

const profile::ProfileData &
BenchContext::profileData(workloads::InputSetKind Kind) {
  auto &Slot =
      Kind == workloads::InputSetKind::Run ? RunProfile : TrainProfile;
  if (!Slot) {
    const std::vector<int64_t> Image =
        Kind == workloads::InputSetKind::Run ? RunImage
                                             : W.buildImage(Kind);
    Slot = profile::collectProfile(*W.Prog, *PA, Image, Options.Profile);
  }
  return *Slot;
}

const sim::SimStats &BenchContext::baseline() {
  if (!BaselineStats)
    BaselineStats = sim::simulateBaseline(*W.Prog, RunImage, Options.Sim);
  return *BaselineStats;
}

sim::SimStats BenchContext::simulateWith(const core::DivergeMap &Diverge) const {
  return sim::simulateDmp(*W.Prog, Diverge, RunImage, Options.Sim);
}

core::DivergeMap BenchContext::select(const core::SelectionFeatures &Features,
                                      workloads::InputSetKind ProfileInput,
                                      core::SelectionStats *Stats) {
  return core::selectDivergeBranches(*PA, profileData(ProfileInput),
                                     Options.Selection, Features, Stats);
}

sim::SimStats
BenchContext::runSelection(const core::SelectionFeatures &Features,
                           workloads::InputSetKind ProfileInput) {
  return simulateWith(select(Features, ProfileInput));
}

double harness::ipcImprovement(const sim::SimStats &Base,
                               const sim::SimStats &Dmp) {
  if (Base.ipc() <= 0.0)
    return 0.0;
  return Dmp.ipc() / Base.ipc() - 1.0;
}
