//===- harness/Reports.h - Paper-style result tables ----------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared rendering for the bench binaries: per-benchmark series tables
/// (the textual equivalent of the paper's bar charts) with a geometric-mean
/// summary row, matching how the paper reports "average performance
/// improvement".
///
/// Failed cells are explicit gaps: a NaN value (or a non-ok StatusOr cell)
/// renders as "--" and is skipped by the geomean, so a campaign with
/// isolated per-cell failures still produces an honest table instead of
/// aborting or averaging garbage.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_REPORTS_H
#define DMP_HARNESS_REPORTS_H

#include "support/Status.h"

#include <string>
#include <vector>

namespace dmp::harness {

/// A figure-like series table: rows = benchmarks, columns = configurations,
/// cells = percent improvement over baseline.
class ImprovementReport {
public:
  explicit ImprovementReport(std::vector<std::string> ConfigNames);

  /// The sentinel rendered as a gap ("--"): quiet NaN.
  static double gap();
  static bool isGap(double Value);

  /// Adds one benchmark row; \p Improvements must align with the config
  /// names (fractions, 0.204 = +20.4%; gap() for a failed cell).
  void addBenchmark(const std::string &Name,
                    const std::vector<double> &Improvements);

  /// As above, from engine cell results: non-ok cells become gaps.
  void addBenchmark(const std::string &Name,
                    const std::vector<StatusOr<double>> &Cells);

  /// Geometric-mean improvement of one configuration column, skipping
  /// gaps; gap() when the whole column is gaps.
  double geomeanImprovement(size_t ConfigIndex) const;

  /// Renders benchmarks plus a final "geomean" row.
  std::string render(const std::string &Title) const;

  size_t benchmarkCount() const { return Rows.size(); }
  const std::vector<std::vector<double>> &values() const { return Values; }

private:
  std::vector<std::string> ConfigNames;
  std::vector<std::string> Rows;
  std::vector<std::vector<double>> Values; // [bench][config]
};

} // namespace dmp::harness

#endif // DMP_HARNESS_REPORTS_H
