//===- harness/Engine.cpp - Parallel experiment engine --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Engine.h"

#include "support/ExitCodes.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dmp;
using namespace dmp::harness;

std::string EngineOptions::defaultCacheDir() {
  if (const char *Env = std::getenv("DMP_CACHE_DIR"))
    if (*Env)
      return Env;
  return ".dmp-cache";
}

void EngineOptions::printUsage(const char *Prog, std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: %s [--jobs N] [--cache-dir DIR] [--no-cache] "
      "[--journal NAME]\n"
      "          [--deadline SEC] [--cell-instr-budget N] "
      "[--cache-budget BYTES] [--limit-benches N]\n"
      "  --jobs N             worker threads for the experiment matrix "
      "(default: hardware threads)\n"
      "  --cache-dir DIR      artifact cache location (default: "
      "$DMP_CACHE_DIR or .dmp-cache)\n"
      "  --no-cache           recompute everything; do not read or "
      "write the artifact cache\n"
      "  --journal NAME       checkpoint completed cells under campaign "
      "NAME and resume them on rerun\n"
      "  --deadline SEC       stop launching cells after SEC seconds; "
      "unfinished cells render as gaps\n"
      "  --cell-instr-budget N abort any cell still simulating after N "
      "retired instructions (ResourceExhausted)\n"
      "  --cache-budget BYTES evict oldest cache blobs down to BYTES "
      "after the run (journals are kept)\n"
      "  --limit-benches N    run only the first N suite benchmarks\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 130 interrupted "
      "(checkpoint flushed; rerun with --journal to resume)\n",
      Prog);
}

namespace {

/// Parses "--flag=V" or "--flag V"; advances \p I past a consumed separate
/// value.  Returns nullptr when \p Arg is not \p Flag.
const char *flagValue(const char *Flag, int &I, int Argc, char **Argv) {
  const char *Arg = Argv[I];
  const size_t FlagLen = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, FlagLen) != 0)
    return nullptr;
  if (Arg[FlagLen] == '=')
    return Arg + FlagLen + 1;
  if (Arg[FlagLen] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

} // namespace

EngineOptions EngineOptions::parseOrExit(int Argc, char **Argv) {
  EngineOptions Opts;
  auto UsageError = [&](const char *Fmt, const char *What) {
    std::fprintf(stderr, Fmt, What);
    printUsage(Argv[0], stderr);
    std::exit(exitcode::Usage);
  };
  auto ParseU64 = [&](const char *Flag, const char *V, uint64_t Min,
                      uint64_t Max) -> uint64_t {
    char *End = nullptr;
    const unsigned long long N = std::strtoull(V, &End, 10);
    if (End == V || *End != '\0' || N < Min || N > Max) {
      std::fprintf(stderr, "error: invalid %s value '%s'\n", Flag, V);
      printUsage(Argv[0], stderr);
      std::exit(exitcode::Usage);
    }
    return N;
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage(Argv[0], stdout);
      std::exit(exitcode::Ok);
    }
    if (std::strcmp(Arg, "--no-cache") == 0) {
      Opts.UseCache = false;
      continue;
    }
    if (const char *V = flagValue("--jobs", I, Argc, Argv)) {
      Opts.Jobs = static_cast<unsigned>(ParseU64("--jobs", V, 1, 1024));
      continue;
    }
    if (const char *V = flagValue("--cache-dir", I, Argc, Argv)) {
      Opts.CacheDir = V;
      continue;
    }
    if (const char *V = flagValue("--journal", I, Argc, Argv)) {
      Opts.Journal = V;
      continue;
    }
    if (const char *V = flagValue("--deadline", I, Argc, Argv)) {
      char *End = nullptr;
      const double Sec = std::strtod(V, &End);
      if (End == V || *End != '\0' || !(Sec > 0.0))
        UsageError("error: invalid --deadline value '%s'\n", V);
      Opts.DeadlineSeconds = Sec;
      continue;
    }
    if (const char *V = flagValue("--cell-instr-budget", I, Argc, Argv)) {
      Opts.CellInstrBudget =
          ParseU64("--cell-instr-budget", V, 1, ~0ULL);
      continue;
    }
    if (const char *V = flagValue("--cache-budget", I, Argc, Argv)) {
      Opts.CacheBudgetBytes = ParseU64("--cache-budget", V, 0, ~0ULL);
      continue;
    }
    if (const char *V = flagValue("--limit-benches", I, Argc, Argv)) {
      Opts.LimitBenches =
          static_cast<size_t>(ParseU64("--limit-benches", V, 1, 1 << 20));
      continue;
    }
    UsageError("error: unknown option '%s'\n", Arg);
  }
  return Opts;
}

const CellCodec<double> &dmp::harness::doubleCellCodec() {
  static const CellCodec<double> Codec{
      [](const double &Value) {
        uint64_t Bits = 0;
        static_assert(sizeof(Bits) == sizeof(Value));
        std::memcpy(&Bits, &Value, sizeof(Bits));
        std::vector<uint8_t> Bytes(8);
        for (size_t I = 0; I < 8; ++I)
          Bytes[I] = static_cast<uint8_t>(Bits >> (8 * I));
        return Bytes;
      },
      [](const std::vector<uint8_t> &Bytes) -> StatusOr<double> {
        if (Bytes.size() != 8)
          return Status::corrupt("journaled double cell is not 8 bytes",
                                 "harness::CellCodec");
        uint64_t Bits = 0;
        for (size_t I = 0; I < 8; ++I)
          Bits |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
        double Value = 0.0;
        std::memcpy(&Value, &Bits, sizeof(Value));
        return Value;
      }};
  return Codec;
}

ExperimentEngine::ExperimentEngine(ExperimentOptions Options,
                                   const EngineOptions &Engine)
    : Options(std::move(Options)), Pool(Engine.Jobs),
      CellRetries(Engine.CellRetries), JournalName(Engine.Journal),
      Drain(Engine.DrainToken ? Engine.DrainToken : &guard::processToken()),
      CacheBudgetBytes(Engine.CacheBudgetBytes),
      Faults(this->Options.Faults) {
  if (Engine.CellInstrBudget)
    this->Options.Sim.WatchdogInstrBudget = Engine.CellInstrBudget;
  // The deadline is a hard stop: its trip is also visible to the
  // simulator inner loop, so a cell that is mid-flight when the clock
  // runs out aborts at its next poll instead of running to completion.
  this->Options.Sim.Cancel = &DeadlineToken;
  if (Engine.DeadlineSeconds > 0.0)
    Watchdog = std::make_unique<guard::DeadlineWatchdog>(
        guard::Deadline(Engine.DeadlineSeconds), DeadlineToken);
  if (const char *Env = std::getenv("DMP_TEST_RAISE_SIGINT_AFTER_CELLS"))
    RaiseSigintAfterCells = std::strtoull(Env, nullptr, 10);
  if (Engine.UseCache && !this->Options.Cache)
    this->Options.Cache =
        std::make_shared<serialize::ArtifactCache>(Engine.CacheDir);
  if (!Engine.UseCache)
    this->Options.Cache.reset();
  if (this->Options.Cache && Faults)
    this->Options.Cache->setFaultInjector(Faults.get());
}

Status ExperimentEngine::cancelStatus() const {
  if (Drain && Drain->cancelled())
    return Drain->status();
  return DeadlineToken.status();
}

Status ExperimentEngine::flushJournals() {
  std::lock_guard<std::mutex> Lock(JournalsMutex);
  Status First;
  for (auto &[Name, Journal] : Journals) {
    const Status S = Journal->flush();
    if (!S.ok() && First.ok())
      First = S;
  }
  return First;
}

uint64_t ExperimentEngine::evictCacheToBudget() {
  if (!Options.Cache || CacheBudgetBytes == 0)
    return 0;
  std::vector<serialize::Digest> Protect;
  {
    std::lock_guard<std::mutex> Lock(JournalsMutex);
    for (const auto &[Name, Journal] : Journals)
      Protect.push_back(Journal->key());
  }
  return Options.Cache->evictToBudget(CacheBudgetBytes, Protect);
}

CampaignJournal *
ExperimentEngine::journalFor(const std::string &MatrixName,
                             const serialize::Digest &ParamsKey,
                             size_t Benchmarks, size_t Configs) {
  if (JournalName.empty() || !Options.Cache)
    return nullptr;
  std::lock_guard<std::mutex> Lock(JournalsMutex);
  auto It = Journals.find(MatrixName);
  if (It == Journals.end())
    It = Journals
             .emplace(MatrixName,
                      std::make_unique<CampaignJournal>(
                          Options.Cache, JournalName + "/" + MatrixName,
                          ParamsKey, Benchmarks, Configs))
             .first;
  return It->second.get();
}

BenchContext &ExperimentEngine::contextFor(const workloads::BenchmarkSpec &Spec) {
  {
    std::lock_guard<std::mutex> Lock(ContextsMutex);
    auto It = Contexts.find(Spec.Name);
    if (It != Contexts.end())
      return *It->second;
  }
  // Build outside the lock so different benchmarks prepare concurrently.
  auto Fresh = std::make_unique<BenchContext>(Spec, Options);
  std::lock_guard<std::mutex> Lock(ContextsMutex);
  auto [It, Inserted] = Contexts.emplace(Spec.Name, std::move(Fresh));
  return *It->second;
}

RNG ExperimentEngine::cellRng(const workloads::BenchmarkSpec &Spec,
                              size_t Config) {
  // Two rounds of forking decorrelate the per-cell streams from the
  // workload builder's own use of Spec.Seed.
  RNG Base(Spec.Seed ^ 0xD1B54A32D192ED03ULL);
  RNG Mixer(Base.next() + 0x9E3779B97F4A7C15ULL * (Config + 1));
  return Mixer.fork();
}

void ExperimentEngine::noteComputed() {
  bool Raise = false;
  {
    std::lock_guard<std::mutex> Lock(CampaignMutex);
    ++Campaign.CellsComputed;
    if (RaiseSigintAfterCells &&
        Campaign.CellsComputed >= RaiseSigintAfterCells &&
        !SigintRaised.exchange(true))
      Raise = true;
  }
  // Deterministic-interrupt test hook: deliver the real signal so the
  // whole handler -> token -> drain -> exit-130 path is exercised.
  if (Raise)
    std::raise(SIGINT);
}

void ExperimentEngine::noteCancelled() {
  std::lock_guard<std::mutex> Lock(CampaignMutex);
  ++Campaign.CellsCancelled;
}

void ExperimentEngine::noteRetry() {
  std::lock_guard<std::mutex> Lock(CampaignMutex);
  ++Campaign.TransientRetries;
}

void ExperimentEngine::noteResumed() {
  std::lock_guard<std::mutex> Lock(CampaignMutex);
  ++Campaign.CellsResumed;
}

void ExperimentEngine::noteFailure(const std::string &Bench, size_t Config,
                                   const Status &S) {
  std::lock_guard<std::mutex> Lock(CampaignMutex);
  ++Campaign.CellsFailed;
  Campaign.Failures.push_back(Bench + "/" + std::to_string(Config) + ": " +
                              S.toString());
}

CampaignCounters ExperimentEngine::campaign() const {
  std::lock_guard<std::mutex> Lock(CampaignMutex);
  return Campaign;
}

std::string ExperimentEngine::statsLine() const {
  const CampaignCounters Counters = campaign();
  char Line[768];
  if (const serialize::ArtifactCache *C = Options.Cache.get()) {
    std::snprintf(
        Line, sizeof(Line),
        "jobs=%u cache=%s hits=%llu misses=%llu stores=%llu corrupt=%llu "
        "store-failures=%llu orphans-reaped=%llu evicted=%llu "
        "lock-contention=%llu retries=%llu failed-cells=%llu "
        "cancelled=%llu resumed=%llu",
        Pool.threadCount(), C->dir().c_str(),
        static_cast<unsigned long long>(C->hits()),
        static_cast<unsigned long long>(C->misses()),
        static_cast<unsigned long long>(C->stores()),
        static_cast<unsigned long long>(C->corruptDeletes()),
        static_cast<unsigned long long>(C->failedStores()),
        static_cast<unsigned long long>(C->orphansReaped()),
        static_cast<unsigned long long>(C->evictions()),
        static_cast<unsigned long long>(C->lockContention()),
        static_cast<unsigned long long>(Counters.TransientRetries),
        static_cast<unsigned long long>(Counters.CellsFailed),
        static_cast<unsigned long long>(Counters.CellsCancelled),
        static_cast<unsigned long long>(Counters.CellsResumed));
  } else {
    std::snprintf(
        Line, sizeof(Line),
        "jobs=%u cache=off retries=%llu failed-cells=%llu cancelled=%llu "
        "resumed=%llu",
        Pool.threadCount(),
        static_cast<unsigned long long>(Counters.TransientRetries),
        static_cast<unsigned long long>(Counters.CellsFailed),
        static_cast<unsigned long long>(Counters.CellsCancelled),
        static_cast<unsigned long long>(Counters.CellsResumed));
  }
  return Line;
}

std::string ExperimentEngine::failureLines() const {
  const CampaignCounters Counters = campaign();
  std::string Out;
  for (const std::string &Line : Counters.Failures) {
    Out += "  failed cell ";
    Out += Line;
    Out += '\n';
  }
  return Out;
}

std::vector<workloads::BenchmarkSpec>
harness::limitSuite(const std::vector<workloads::BenchmarkSpec> &Suite,
                    const EngineOptions &Engine) {
  if (Engine.LimitBenches == 0 || Engine.LimitBenches >= Suite.size())
    return Suite;
  return {Suite.begin(),
          Suite.begin() + static_cast<ptrdiff_t>(Engine.LimitBenches)};
}

int harness::finishDriver(ExperimentEngine &Engine) {
  // Make the checkpoint durable before reporting: everything the partial
  // report shows as done must be resumable.
  Engine.flushJournals();
  Engine.evictCacheToBudget();
  std::fprintf(stderr, "[engine] %s\n", Engine.statsLine().c_str());
  std::fprintf(stderr, "%s", Engine.failureLines().c_str());
  if (guard::interrupted()) {
    std::fprintf(stderr,
                 "[guard] interrupted: results above are partial; rerun "
                 "with --journal to resume completed cells\n");
    return exitcode::Interrupted;
  }
  return exitcode::Ok;
}
