//===- harness/Experiment.h - Profile->select->simulate pipeline ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BenchContext: one benchmark prepared for experiments — the built program,
/// its CFG analyses, lazily collected profiles for both input sets, and a
/// cached baseline simulation.  All benches and examples run through this,
/// so identical stages are computed once per benchmark.
///
/// The canonical paper pipeline is:
///   profile(input) -> selectDivergeBranches(...) -> simulateDmp(run input)
/// compared against simulateBaseline(run input).
///
/// When ExperimentOptions::Cache is set, profiles and simulation results
/// are additionally backed by the content-addressed artifact cache: the
/// cache key digests the workload spec, input set, and profiler/simulator
/// config (see the *CacheKey functions), so each (benchmark, input) cell is
/// profiled once ever — across benches and dmpc invocations — and a warm
/// cache replays bit-identical results.
///
/// A BenchContext is safe to share between concurrent experiment tasks:
/// the lazy profile/baseline stages are guarded by a mutex, and everything
/// else is read-only after construction.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_EXPERIMENT_H
#define DMP_HARNESS_EXPERIMENT_H

#include "cfg/Analysis.h"
#include "core/DivergeSelector.h"
#include "fault/Fault.h"
#include "profile/Profiler.h"
#include "serialize/ArtifactCache.h"
#include "serialize/ProfileIO.h"
#include "sim/SimConfig.h"
#include "sim/Simulator.h"
#include "workloads/SpecSuite.h"

#include <memory>
#include <mutex>
#include <optional>

namespace dmp::harness {

/// Knobs of one experiment campaign.
struct ExperimentOptions {
  profile::ProfileOptions Profile;
  core::SelectionConfig Selection;
  sim::SimConfig Sim;

  /// Content-addressed artifact cache shared by every context of the
  /// campaign; null disables caching.
  std::shared_ptr<serialize::ArtifactCache> Cache;

  /// Optional deterministic fault injector shared by the campaign.  The
  /// engine wires it onto the cache, cell execution, and the profile
  /// decode path; null runs fault-free.
  std::shared_ptr<const fault::Injector> Faults;

  ExperimentOptions() {
    // Benches run every benchmark under many configurations; bound each
    // simulation so full campaigns stay minutes, not hours.  Programs are
    // ~1-2M dynamic instructions, so most runs complete anyway.
    Profile.MaxInstrs = 4'000'000;
    Sim.MaxInstrs = 1'200'000;
  }
};

/// Cache key for the profile of (\p Spec, \p Kind) under \p Options.
/// \p SchemaVersion is folded into the digest so bumping
/// serialize::kCacheSchemaVersion retires every stale entry (tests pass an
/// explicit version to prove the miss).
serialize::Digest
profileCacheKey(const workloads::BenchmarkSpec &Spec,
                workloads::InputSetKind Kind,
                const profile::ProfileOptions &Options,
                uint32_t SchemaVersion = serialize::kCacheSchemaVersion);

/// Cache key for one simulation of \p Spec (run input) under \p Config.
/// \p Diverge selects the DMP simulation keyed by the annotation content;
/// null keys the baseline.  \p Selection (optional) folds a digest of the
/// selector configuration that produced \p Diverge, so retuned selection
/// thresholds can never replay a stale annotation set's simulation even
/// when the annotations happen to collide.
serialize::Digest
simCacheKey(const workloads::BenchmarkSpec &Spec, const sim::SimConfig &Config,
            const core::DivergeMap *Diverge,
            const core::SelectionConfig *Selection = nullptr,
            uint32_t SchemaVersion = serialize::kCacheSchemaVersion);

/// One benchmark, prepared once, simulated many times.
class BenchContext {
public:
  BenchContext(const workloads::BenchmarkSpec &Spec,
               const ExperimentOptions &Options);

  const workloads::BenchmarkSpec &spec() const { return Spec; }
  const workloads::Workload &workload() const { return W; }
  const cfg::ProgramAnalysis &analysis() const { return *PA; }
  const ExperimentOptions &options() const { return Options; }

  /// Profile collected on the given input set (cached in-memory and, when
  /// an artifact cache is configured, on disk).
  const profile::ProfileData &profileData(workloads::InputSetKind Kind);

  /// Baseline simulation on the run input (cached).
  const sim::SimStats &baseline();

  /// DMP simulation on the run input with the given annotations.
  sim::SimStats simulateWith(const core::DivergeMap &Diverge) const;

  /// Convenience: select with \p Features (profiling on \p ProfileInput)
  /// and simulate.
  sim::SimStats runSelection(const core::SelectionFeatures &Features,
                             workloads::InputSetKind ProfileInput =
                                 workloads::InputSetKind::Run);

  /// Selection only (no simulation), for selection-centric experiments.
  core::DivergeMap select(const core::SelectionFeatures &Features,
                          workloads::InputSetKind ProfileInput,
                          core::SelectionStats *Stats = nullptr);

private:
  ExperimentOptions Options;
  workloads::BenchmarkSpec Spec;
  workloads::Workload W;
  std::unique_ptr<cfg::ProgramAnalysis> PA;
  std::vector<int64_t> RunImage;

  // Lazily computed stages, guarded for concurrent experiment tasks.
  std::mutex LazyMutex;
  std::optional<profile::ProfileData> RunProfile;
  std::optional<profile::ProfileData> TrainProfile;
  std::optional<sim::SimStats> BaselineStats;
};

/// Percent IPC improvement of \p Dmp over \p Base (0.204 = +20.4%).
double ipcImprovement(const sim::SimStats &Base, const sim::SimStats &Dmp);

} // namespace dmp::harness

#endif // DMP_HARNESS_EXPERIMENT_H
