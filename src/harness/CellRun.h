//===- harness/CellRun.h - One remotely-executable experiment cell -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-cell engine entry point that both local `dmpc` and the
/// `dmp::serve` worker processes call, so a campaign computed remotely is
/// the *same computation* as a local one — not a reimplementation that
/// happens to agree.  A CellSpec names one (benchmark, selection
/// configuration) unit; runCellSpec() executes the canonical paper pipeline
///
///   profile(input) -> selectByAlgo(...) -> simulate baseline + DMP
///
/// and returns a CellResult whose canonical byte encoding (and hence its
/// SHA-256 digest, cellResultDigest()) is a pure function of the spec: any
/// worker, any host, any retry attempt produces the identical digest.
/// That digest is the acceptance contract of `dmpc --remote` (see
/// DESIGN.md "Service architecture").
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_CELLRUN_H
#define DMP_HARNESS_CELLRUN_H

#include "harness/Experiment.h"
#include "serialize/ByteStream.h"
#include "serialize/Hash.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dmp::harness {

/// One (benchmark, configuration) unit of remotely-executable work, in the
/// vocabulary of dmpc's command line.  Defaults match dmpc's defaults so a
/// bare `dmpc <bench> --simulate` and a bare remote submit agree.
struct CellSpec {
  std::string Benchmark;
  std::string Algo = "all";
  workloads::InputSetKind ProfileInput = workloads::InputSetKind::Run;
  unsigned MaxInstr = 50;
  double MinMergeProb = 0.01;
  uint64_t SimInstrs = 1'200'000;
  uint64_t ProfileInstrs = 4'000'000;

  /// Invariant Status naming the first malformed field (empty/unknown
  /// values are caught at decode time server-side too, so a hostile client
  /// cannot push an out-of-range spec into a worker).
  Status validate() const;
};

/// Everything one cell produces: both simulations plus the selection shape
/// (for the dmpc report line).
struct CellResult {
  sim::SimStats Baseline;
  sim::SimStats Dmp;
  uint64_t DivergeBranches = 0;
  double AvgCfmPoints = 0.0;
};

/// Runs the selection algorithm named by dmpc's --algo grammar (exact,
/// freq, short, ret, all, cost-long, cost-edge, all-cost, every-br,
/// random-50, high-bp-5, immediate, if-else).  NotFound for an unknown
/// name.  Shared by dmpc and the serve workers: one grammar, one behavior.
StatusOr<core::DivergeMap> selectByAlgo(BenchContext &Bench,
                                        const std::string &Algo,
                                        workloads::InputSetKind Input,
                                        core::SelectionStats *Stats = nullptr);

/// The full profile -> select -> simulate pipeline for one cell.  \p Cache
/// (nullable) backs the profile and simulation stages; results are
/// bit-identical with or without it.  All failures come back as Status
/// (NotFound for an unknown benchmark/algorithm, Invariant for a malformed
/// spec) — never an exit or a throw, because this runs inside long-lived
/// worker processes.  \p Progress (nullable) is the liveness beat hook:
/// the simulation stages call it every sim::kCancelPollInstrs retired
/// instructions (see SimConfig::Progress); it never affects the result or
/// its digest.
StatusOr<CellResult>
runCellSpec(const CellSpec &Spec,
            std::shared_ptr<serialize::ArtifactCache> Cache,
            std::function<void()> Progress = {});

/// Canonical little-endian encodings, shared by the wire protocol and the
/// digest.  Specs/results embed in larger messages via the ByteWriter /
/// ByteReader forms; decode failures are Corrupt.
void encodeCellSpec(serialize::ByteWriter &W, const CellSpec &Spec);
Status decodeCellSpec(serialize::ByteReader &R, CellSpec &Spec);

std::vector<uint8_t> encodeCellResult(const CellResult &R);
Status decodeCellResult(const std::vector<uint8_t> &Blob, CellResult &R);

/// SHA-256 of encodeCellResult(R): the stats digest `dmpc --simulate`
/// prints locally and `dmpc --remote` must reproduce bit-identically.
serialize::Digest cellResultDigest(const CellResult &R);

} // namespace dmp::harness

#endif // DMP_HARNESS_CELLRUN_H
