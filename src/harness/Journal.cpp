//===- harness/Journal.cpp - Campaign checkpoint/resume journal ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Journal.h"

#include "serialize/ByteStream.h"
#include "serialize/ProfileIO.h"

#include <cstdio>

using namespace dmp;
using namespace dmp::harness;

namespace {

constexpr uint32_t kJournalMagic = 0x444D504A; // "DMPJ"
constexpr uint32_t kJournalVersion = 1;

serialize::Digest journalKey(const std::string &Name,
                             const serialize::Digest &ParamsKey,
                             size_t Benchmarks, size_t Configs) {
  serialize::Hasher H;
  H.update(std::string("dmp-journal-key"));
  H.updateU64(serialize::kCacheSchemaVersion);
  H.update(Name);
  H.update(ParamsKey.Bytes.data(), ParamsKey.Bytes.size());
  H.updateU64(Benchmarks);
  H.updateU64(Configs);
  return H.finish();
}

} // namespace

serialize::Digest harness::paramsDigest(const std::vector<std::string> &Parts) {
  serialize::Hasher H;
  H.update(std::string("dmp-campaign-params"));
  H.updateU64(Parts.size());
  for (const std::string &Part : Parts) {
    H.updateU64(Part.size());
    H.update(Part);
  }
  return H.finish();
}

CampaignJournal::CampaignJournal(
    std::shared_ptr<serialize::ArtifactCache> Cache, std::string Name,
    const serialize::Digest &ParamsKey, size_t Benchmarks, size_t Configs)
    : Cache(std::move(Cache)),
      Key(journalKey(Name, ParamsKey, Benchmarks, Configs)) {
  if (!this->Cache)
    return;
  // Any failure from here on is a cold start, never a propagated error:
  // the journal is an accelerator, and a damaged checkpoint must not be
  // able to kill the campaign it was supposed to protect.  Corrupt blobs
  // get one warning line so the operator knows resume data was lost.
  auto ColdStart = [this](const std::string &Why) {
    LoadStatus = Status::corrupt(Why, "harness::CampaignJournal");
    std::fprintf(stderr,
                 "[journal] corrupt checkpoint (%s): cold start\n",
                 Why.c_str());
  };
  const StatusOr<std::vector<uint8_t>> Blob = this->Cache->load(Key);
  if (!Blob.ok()) {
    if (Blob.status().code() == ErrorCode::Corrupt)
      ColdStart(Blob.status().message());
    else
      LoadStatus = Blob.status(); // NotFound/Transient: fresh, no drama
    return;
  }
  serialize::ByteReader R(*Blob);
  if (R.readU32() != kJournalMagic || R.readU32() != kJournalVersion) {
    ColdStart("bad journal magic/version");
    return;
  }
  const uint64_t Count = R.readU64();
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint8_t>> Loaded;
  for (uint64_t I = 0; I < Count && R.ok(); ++I) {
    const uint32_t B = R.readU32();
    const uint32_t C = R.readU32();
    const uint64_t Size = R.readU64();
    if (Size > R.remaining()) {
      ColdStart("truncated journal payload");
      return;
    }
    std::vector<uint8_t> Payload(Size);
    for (uint8_t &Byte : Payload)
      Byte = R.readU8();
    Loaded.emplace(std::make_pair(B, C), std::move(Payload));
  }
  if (!R.ok() || !R.atEnd()) {
    ColdStart("journal record stream damaged");
    return;
  }
  Cells = std::move(Loaded);
}

bool CampaignJournal::lookup(size_t Bench, size_t Config,
                             std::vector<uint8_t> &Payload) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Cells.find({static_cast<uint32_t>(Bench),
                              static_cast<uint32_t>(Config)});
  if (It == Cells.end())
    return false;
  Payload = It->second;
  return true;
}

void CampaignJournal::record(size_t Bench, size_t Config,
                             std::vector<uint8_t> Payload) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Cells[{static_cast<uint32_t>(Bench), static_cast<uint32_t>(Config)}] =
      std::move(Payload);
  LastCheckpoint = checkpointLocked();
}

size_t CampaignJournal::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cells.size();
}

Status CampaignJournal::lastCheckpointStatus() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return LastCheckpoint;
}

Status CampaignJournal::loadStatus() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return LoadStatus;
}

Status CampaignJournal::flush() {
  std::lock_guard<std::mutex> Lock(Mutex);
  LastCheckpoint = checkpointLocked();
  return LastCheckpoint;
}

void CampaignJournal::setFaultInjector(const fault::Injector *Injector) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Faults = Injector;
}

Status CampaignJournal::checkpointLocked() {
  if (!Cache)
    return Status();
  // Crashpoint: die with the new record accumulated in memory but the
  // whole-blob rewrite not yet issued — the on-disk checkpoint must still
  // be the complete previous one.  The "#<count>" key suffix lets a plan
  // with Rate < 1 pick deterministically *which* rewrite crashes.
  if (Faults)
    Faults->maybeCrash(fault::Site::CrashMidJournalRewrite,
                       Key.hex() + "#" + std::to_string(Cells.size()));
  serialize::ByteWriter W;
  W.writeU32(kJournalMagic);
  W.writeU32(kJournalVersion);
  W.writeU64(Cells.size());
  for (const auto &[Cell, Payload] : Cells) {
    W.writeU32(Cell.first);
    W.writeU32(Cell.second);
    W.writeU64(Payload.size());
    W.writeBytes(Payload.data(), Payload.size());
  }
  return Cache->store(Key, W.bytes());
}
