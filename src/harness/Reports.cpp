//===- harness/Reports.cpp - Paper-style result tables ------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Reports.h"

#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace dmp;
using namespace dmp::harness;

ImprovementReport::ImprovementReport(std::vector<std::string> Names)
    : ConfigNames(std::move(Names)) {}

double ImprovementReport::gap() {
  return std::numeric_limits<double>::quiet_NaN();
}

bool ImprovementReport::isGap(double Value) { return std::isnan(Value); }

void ImprovementReport::addBenchmark(const std::string &Name,
                                     const std::vector<double> &Improvements) {
  assert(Improvements.size() == ConfigNames.size() && "column mismatch");
  Rows.push_back(Name);
  Values.push_back(Improvements);
}

void ImprovementReport::addBenchmark(
    const std::string &Name, const std::vector<StatusOr<double>> &Cells) {
  std::vector<double> Row;
  Row.reserve(Cells.size());
  for (const StatusOr<double> &Cell : Cells)
    Row.push_back(Cell.ok() ? *Cell : gap());
  addBenchmark(Name, Row);
}

double ImprovementReport::geomeanImprovement(size_t ConfigIndex) const {
  std::vector<double> Ratios;
  Ratios.reserve(Values.size());
  for (const auto &Row : Values)
    if (!isGap(Row[ConfigIndex]))
      Ratios.push_back(1.0 + Row[ConfigIndex]);
  if (Ratios.empty())
    return gap();
  return geomean(Ratios) - 1.0;
}

std::string ImprovementReport::render(const std::string &Title) const {
  std::vector<std::string> Header;
  Header.push_back("benchmark");
  for (const std::string &Name : ConfigNames)
    Header.push_back(Name);
  Table T(Header);
  for (size_t R = 0; R < Rows.size(); ++R) {
    std::vector<std::string> Cells;
    Cells.push_back(Rows[R]);
    for (double V : Values[R])
      Cells.push_back(isGap(V) ? "--" : formatPercent(V));
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> Mean;
  Mean.push_back("geomean");
  for (size_t C = 0; C < ConfigNames.size(); ++C) {
    const double G = geomeanImprovement(C);
    Mean.push_back(isGap(G) ? "--" : formatPercent(G));
  }
  T.addRow(Mean);

  std::string Out = Title + "\n";
  Out += T.render();
  return Out;
}
