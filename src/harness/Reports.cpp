//===- harness/Reports.cpp - Paper-style result tables ------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Reports.h"

#include "support/MathExtras.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cassert>

using namespace dmp;
using namespace dmp::harness;

ImprovementReport::ImprovementReport(std::vector<std::string> Names)
    : ConfigNames(std::move(Names)) {}

void ImprovementReport::addBenchmark(const std::string &Name,
                                     const std::vector<double> &Improvements) {
  assert(Improvements.size() == ConfigNames.size() && "column mismatch");
  Rows.push_back(Name);
  Values.push_back(Improvements);
}

double ImprovementReport::geomeanImprovement(size_t ConfigIndex) const {
  std::vector<double> Ratios;
  Ratios.reserve(Values.size());
  for (const auto &Row : Values)
    Ratios.push_back(1.0 + Row[ConfigIndex]);
  return geomean(Ratios) - 1.0;
}

std::string ImprovementReport::render(const std::string &Title) const {
  std::vector<std::string> Header;
  Header.push_back("benchmark");
  for (const std::string &Name : ConfigNames)
    Header.push_back(Name);
  Table T(Header);
  for (size_t R = 0; R < Rows.size(); ++R) {
    std::vector<std::string> Cells;
    Cells.push_back(Rows[R]);
    for (double V : Values[R])
      Cells.push_back(formatPercent(V));
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> Mean;
  Mean.push_back("geomean");
  for (size_t C = 0; C < ConfigNames.size(); ++C)
    Mean.push_back(formatPercent(geomeanImprovement(C)));
  T.addRow(Mean);

  std::string Out = Title + "\n";
  Out += T.render();
  return Out;
}
