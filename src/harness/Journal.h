//===- harness/Journal.h - Campaign checkpoint/resume journal ---*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CampaignJournal: a per-campaign record of completed (benchmark, config)
/// cells, checkpointed through the content-addressed ArtifactCache so an
/// interrupted dmpc/bench campaign resumes completed cells instead of
/// recomputing them.
///
/// The journal key digests the campaign name, a caller-supplied parameter
/// digest, and the matrix shape, so a retuned campaign can never resume a
/// stale journal.  Every record() rewrites the whole journal blob (stores
/// are atomic temp-file + rename), which keeps the on-disk state a
/// consistent prefix of the campaign at every instant: killing the process
/// at any point loses at most the cells whose record() had not completed.
///
/// Checkpoint I/O failures are non-fatal — the campaign still completes,
/// it just resumes less on the next run (lastCheckpointStatus() exposes
/// the most recent store outcome for reports).  A corrupt checkpoint
/// (truncated/garbage payload, torn only by forces outside the atomic
/// store protocol) likewise degrades to a cold start with a one-line
/// stderr warning — never a propagated decode error; loadStatus() reports
/// what the constructor found.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_HARNESS_JOURNAL_H
#define DMP_HARNESS_JOURNAL_H

#include "serialize/ArtifactCache.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dmp::harness {

/// Digests a campaign's parameter strings (config names, sweep values) for
/// use as a journal ParamsKey, so renaming or re-tuning the matrix retires
/// the old checkpoint.
serialize::Digest paramsDigest(const std::vector<std::string> &Parts);

/// Completed-cell journal for one campaign matrix.
class CampaignJournal {
public:
  /// Opens the journal for campaign (\p Name, \p ParamsKey, \p Benchmarks x
  /// \p Configs) and loads any previous checkpoint from \p Cache.
  CampaignJournal(std::shared_ptr<serialize::ArtifactCache> Cache,
                  std::string Name, const serialize::Digest &ParamsKey,
                  size_t Benchmarks, size_t Configs);

  /// The cache key this journal checkpoints under.
  const serialize::Digest &key() const { return Key; }

  /// Fetches the recorded payload of cell (\p Bench, \p Config); returns
  /// false when the cell has not been journaled.
  bool lookup(size_t Bench, size_t Config,
              std::vector<uint8_t> &Payload) const;

  /// Records cell (\p Bench, \p Config) as completed and checkpoints the
  /// journal to the cache.
  void record(size_t Bench, size_t Config, std::vector<uint8_t> Payload);

  /// Number of journaled cells currently held.
  size_t entries() const;

  /// Outcome of the most recent checkpoint store (ok before the first).
  Status lastCheckpointStatus() const;

  /// What the constructor's checkpoint load found: Ok (resumed or no
  /// cache), NotFound (cold start, no prior checkpoint), or Corrupt (cold
  /// start forced by a truncated/garbage blob — already warned on stderr).
  Status loadStatus() const;

  /// Rewrites the checkpoint now, even if no record() happened since the
  /// last one.  Drivers call this from their shutdown path so an
  /// interrupted campaign's final journal state is durable before the
  /// partial report prints.  Returns the store outcome (also retained for
  /// lastCheckpointStatus()).
  Status flush();

  /// Installs the crashpoint shim for the fork-based crash harness; the
  /// injector must outlive the journal.  This is separate from the cache's
  /// own injector so a test can crash the journal *rewrite decision*
  /// (CrashMidJournalRewrite, keyed "<journal key>#<cell count>") rather
  /// than the underlying blob store.
  void setFaultInjector(const fault::Injector *Injector);

private:
  Status checkpointLocked();

  std::shared_ptr<serialize::ArtifactCache> Cache;
  serialize::Digest Key;
  const fault::Injector *Faults = nullptr;
  Status LoadStatus;

  mutable std::mutex Mutex;
  /// (bench, config) -> encoded cell result; std::map for deterministic
  /// checkpoint bytes.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint8_t>> Cells;
  Status LastCheckpoint;
};

} // namespace dmp::harness

#endif // DMP_HARNESS_JOURNAL_H
