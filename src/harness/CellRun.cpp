//===- harness/CellRun.cpp - One remotely-executable experiment cell ------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/CellRun.h"

#include "core/SimpleSelectors.h"
#include "serialize/ProfileIO.h"

using namespace dmp;
using namespace dmp::harness;

namespace {

constexpr uint32_t kCellResultTag = 0x43524553; // "CRES"
constexpr uint32_t kCellResultVersion = 1;
/// Bound on benchmark/algorithm name lengths at decode time, so a hostile
/// frame cannot make a worker allocate an absurd string.
constexpr uint64_t kMaxNameBytes = 256;

Status corrupt(const char *Msg) {
  return Status::corrupt(Msg, "harness::CellRun");
}

Status invalid(std::string Msg) {
  return Status::invariant(std::move(Msg), "harness::CellRun");
}

} // namespace

Status CellSpec::validate() const {
  if (Benchmark.empty() || Benchmark.size() > kMaxNameBytes)
    return invalid("cell spec has an empty or oversized benchmark name");
  if (Algo.empty() || Algo.size() > kMaxNameBytes)
    return invalid("cell spec has an empty or oversized algorithm name");
  if (MaxInstr == 0 || MaxInstr > 1'000'000)
    return invalid("cell spec max-instr out of range");
  if (!(MinMergeProb >= 0.0 && MinMergeProb <= 1.0))
    return invalid("cell spec min-merge-prob out of range");
  if (SimInstrs == 0)
    return invalid("cell spec sim-instrs must be positive");
  if (ProfileInstrs == 0)
    return invalid("cell spec profile-instrs must be positive");
  return Status();
}

StatusOr<core::DivergeMap>
harness::selectByAlgo(BenchContext &Bench, const std::string &Algo,
                      workloads::InputSetKind Input,
                      core::SelectionStats *Stats) {
  using core::SelectionFeatures;
  if (Algo == "exact")
    return Bench.select(SelectionFeatures::exactOnly(), Input, Stats);
  if (Algo == "freq")
    return Bench.select(SelectionFeatures::exactFreq(), Input, Stats);
  if (Algo == "short")
    return Bench.select(SelectionFeatures::exactFreqShort(), Input, Stats);
  if (Algo == "ret")
    return Bench.select(SelectionFeatures::exactFreqShortRet(), Input, Stats);
  if (Algo == "all")
    return Bench.select(SelectionFeatures::allBestHeur(), Input, Stats);
  if (Algo == "cost-long")
    return Bench.select(SelectionFeatures::costLong(), Input, Stats);
  if (Algo == "cost-edge")
    return Bench.select(SelectionFeatures::costEdge(), Input, Stats);
  if (Algo == "all-cost")
    return Bench.select(SelectionFeatures::allBestCost(), Input, Stats);

  const cfg::ProgramAnalysis &PA = Bench.analysis();
  const profile::ProfileData &Prof = Bench.profileData(Input);
  if (Algo == "every-br")
    return core::selectEveryBranch(PA, Prof);
  if (Algo == "random-50")
    return core::selectRandom50(PA, Prof);
  if (Algo == "high-bp-5")
    return core::selectHighBP(PA, Prof);
  if (Algo == "immediate")
    return core::selectImmediate(PA, Prof);
  if (Algo == "if-else")
    return core::selectIfElse(PA, Prof, Bench.options().Selection);

  return Status::notFound("unknown selection algorithm '" + Algo + "'",
                          "harness::CellRun");
}

StatusOr<CellResult>
harness::runCellSpec(const CellSpec &Spec,
                     std::shared_ptr<serialize::ArtifactCache> Cache,
                     std::function<void()> Progress) {
  if (Status S = Spec.validate(); !S.ok())
    return S;

  const workloads::BenchmarkSpec *Bench = nullptr;
  for (const workloads::BenchmarkSpec &S : workloads::specSuite())
    if (Spec.Benchmark == S.Name)
      Bench = &S;
  if (!Bench)
    return Status::notFound("unknown benchmark '" + Spec.Benchmark + "'",
                            "harness::CellRun");

  // Exactly the options dmpc builds from the same command line, which is
  // what makes local and remote digests bit-identical.
  ExperimentOptions Options;
  Options.Selection = Options.Selection.withMaxInstr(Spec.MaxInstr)
                          .withMinMergeProb(Spec.MinMergeProb);
  Options.Sim.MaxInstrs = Spec.SimInstrs;
  Options.Sim.Progress = std::move(Progress);
  Options.Profile.MaxInstrs = Spec.ProfileInstrs;
  Options.Cache = std::move(Cache);

  try {
    BenchContext Context(*Bench, Options);
    StatusOr<core::DivergeMap> Map =
        selectByAlgo(Context, Spec.Algo, Spec.ProfileInput);
    if (!Map.ok())
      return Map.status();
    CellResult Result;
    Result.Baseline = Context.baseline();
    Result.Dmp = Context.simulateWith(*Map);
    Result.DivergeBranches = Map->size();
    Result.AvgCfmPoints = Map->avgCfmPoints();
    return Result;
  } catch (const StatusError &E) {
    return E.status();
  } catch (const std::exception &E) {
    return Status::invariant(E.what(), "harness::CellRun");
  }
}

void harness::encodeCellSpec(serialize::ByteWriter &W, const CellSpec &Spec) {
  W.writeString(Spec.Benchmark);
  W.writeString(Spec.Algo);
  W.writeU8(Spec.ProfileInput == workloads::InputSetKind::Train ? 1 : 0);
  W.writeU32(Spec.MaxInstr);
  W.writeDouble(Spec.MinMergeProb);
  W.writeU64(Spec.SimInstrs);
  W.writeU64(Spec.ProfileInstrs);
}

Status harness::decodeCellSpec(serialize::ByteReader &R, CellSpec &Spec) {
  CellSpec Out;
  Out.Benchmark = R.readString();
  Out.Algo = R.readString();
  const uint8_t Input = R.readU8();
  Out.MaxInstr = R.readU32();
  Out.MinMergeProb = R.readDouble();
  Out.SimInstrs = R.readU64();
  Out.ProfileInstrs = R.readU64();
  if (!R.ok())
    return corrupt("truncated cell spec");
  if (Input > 1)
    return corrupt("cell spec has an invalid input-set kind");
  Out.ProfileInput = Input ? workloads::InputSetKind::Train
                           : workloads::InputSetKind::Run;
  // Range checks double as decode validation: a malformed spec is Corrupt
  // at the protocol boundary, not an Invariant deep inside a worker.
  if (Status S = Out.validate(); !S.ok())
    return corrupt("cell spec failed validation");
  Spec = std::move(Out);
  return Status();
}

std::vector<uint8_t> harness::encodeCellResult(const CellResult &R) {
  serialize::ByteWriter W;
  W.writeU32(kCellResultTag);
  W.writeU32(kCellResultVersion);
  const std::vector<uint8_t> Base = serialize::encodeSimStats(R.Baseline);
  const std::vector<uint8_t> Dmp = serialize::encodeSimStats(R.Dmp);
  W.writeU64(Base.size());
  W.writeBytes(Base.data(), Base.size());
  W.writeU64(Dmp.size());
  W.writeBytes(Dmp.data(), Dmp.size());
  W.writeU64(R.DivergeBranches);
  W.writeDouble(R.AvgCfmPoints);
  return W.take();
}

Status harness::decodeCellResult(const std::vector<uint8_t> &Blob,
                                 CellResult &R) {
  serialize::ByteReader Reader(Blob);
  if (Reader.readU32() != kCellResultTag || !Reader.ok())
    return corrupt("cell result has a bad tag");
  if (Reader.readU32() != kCellResultVersion || !Reader.ok())
    return corrupt("cell result has an unsupported version");
  CellResult Out;
  for (sim::SimStats *Stats : {&Out.Baseline, &Out.Dmp}) {
    const uint64_t Size = Reader.readU64();
    if (!Reader.ok() || Size > Reader.remaining())
      return corrupt("cell result stats blob is truncated");
    std::vector<uint8_t> Sub(Size);
    for (uint64_t I = 0; I < Size; ++I)
      Sub[I] = Reader.readU8();
    if (Status S = serialize::decodeSimStats(Sub, *Stats); !S.ok())
      return S;
  }
  Out.DivergeBranches = Reader.readU64();
  Out.AvgCfmPoints = Reader.readDouble();
  if (!Reader.ok() || !Reader.atEnd())
    return corrupt("cell result has trailing or missing bytes");
  R = std::move(Out);
  return Status();
}

serialize::Digest harness::cellResultDigest(const CellResult &R) {
  const std::vector<uint8_t> Bytes = encodeCellResult(R);
  return serialize::Hasher::hash(Bytes.data(), Bytes.size());
}
