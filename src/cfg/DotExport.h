//===- cfg/DotExport.h - Graphviz export of CFGs and selections ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (dot) rendering of function CFGs, optionally decorated with
/// edge-profile probabilities and the selected diverge branches / CFM
/// points — the visual counterpart of the paper's Figures 2-4.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_DOTEXPORT_H
#define DMP_CFG_DOTEXPORT_H

#include "cfg/EdgeProfile.h"
#include "core/DivergeInfo.h"
#include "ir/Function.h"

#include <string>

namespace dmp::cfg {

/// Rendering options.
struct DotOptions {
  /// Annotate conditional-branch edges with profiled probabilities.
  const EdgeProfile *Edges = nullptr;
  /// Highlight diverge branches (doubled border) and CFM points (filled).
  const core::DivergeMap *Diverge = nullptr;
  /// Include per-block instruction counts in node labels.
  bool ShowInstrCounts = true;
};

/// Renders one function as a dot digraph.
std::string exportFunctionDot(const ir::Function &F,
                              const DotOptions &Options = DotOptions());

} // namespace dmp::cfg

#endif // DMP_CFG_DOTEXPORT_H
