//===- cfg/EdgeProfile.h - Edge profiling data ---------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-profile storage: per-conditional-branch taken/not-taken counts and
/// per-block execution counts.  Filled by the profiler (profile/Profiler.h)
/// and consumed by every selection algorithm and the cost-benefit model.
///
/// The paper's Section 4.1.1 (footnote 6) notes edge profiling assumes
/// branch directions are independent; the path enumerator makes the same
/// assumption when multiplying edge probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_EDGEPROFILE_H
#define DMP_CFG_EDGEPROFILE_H

#include <cstdint>
#include <unordered_map>

namespace dmp::cfg {

/// Taken / not-taken execution counts of one static conditional branch.
struct BranchCounts {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;

  uint64_t total() const { return Taken + NotTaken; }
  double takenProb() const {
    const uint64_t Total = total();
    return Total == 0 ? 0.0 : static_cast<double>(Taken) / Total;
  }
};

/// Edge profile of one program run (or of a merged set of runs).
class EdgeProfile {
public:
  /// Records one dynamic execution of the conditional branch at \p Addr.
  void recordBranch(uint32_t Addr, bool Taken) {
    BranchCounts &Counts = Branches[Addr];
    if (Taken)
      ++Counts.Taken;
    else
      ++Counts.NotTaken;
  }

  /// Records one entry into the block starting at \p StartAddr.
  void recordBlockExec(uint32_t StartAddr) { ++BlockExec[StartAddr]; }

  /// Counts for the branch at \p Addr (zeros when never executed).
  BranchCounts branchCounts(uint32_t Addr) const {
    auto It = Branches.find(Addr);
    return It == Branches.end() ? BranchCounts() : It->second;
  }

  /// P(taken) for the branch at \p Addr; 0 when never executed.
  double takenProb(uint32_t Addr) const {
    return branchCounts(Addr).takenProb();
  }

  /// Whether the branch at \p Addr executed at least once during profiling.
  /// Both Alg-exact and Alg-freq iterate only over executed branches.
  bool wasExecuted(uint32_t Addr) const {
    return branchCounts(Addr).total() != 0;
  }

  uint64_t blockExecCount(uint32_t StartAddr) const {
    auto It = BlockExec.find(StartAddr);
    return It == BlockExec.end() ? 0 : It->second;
  }

  const std::unordered_map<uint32_t, BranchCounts> &branches() const {
    return Branches;
  }

  const std::unordered_map<uint32_t, uint64_t> &blockExecCounts() const {
    return BlockExec;
  }

  /// Bulk setters for deserialization and profile merging.
  void setBranchCounts(uint32_t Addr, BranchCounts Counts) {
    Branches[Addr] = Counts;
  }
  void setBlockExecCount(uint32_t StartAddr, uint64_t Count) {
    BlockExec[StartAddr] = Count;
  }

private:
  std::unordered_map<uint32_t, BranchCounts> Branches;
  std::unordered_map<uint32_t, uint64_t> BlockExec;
};

} // namespace dmp::cfg

#endif // DMP_CFG_EDGEPROFILE_H
