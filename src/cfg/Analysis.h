//===- cfg/Analysis.h - Cached per-function CFG analyses -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramAnalysis: builds and owns the CFG view, dominator tree,
/// post-dominator tree, and loop info for every function of a finalized
/// program.  Shared by the profiler, the selection algorithms, and the
/// cost-benefit model, so each analysis is computed exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_ANALYSIS_H
#define DMP_CFG_ANALYSIS_H

#include "cfg/Dominators.h"
#include "cfg/LoopInfo.h"
#include "ir/Program.h"

#include <memory>
#include <vector>

namespace dmp::cfg {

/// All analyses of one function.
struct FunctionAnalysis {
  explicit FunctionAnalysis(const ir::Function &F)
      : View(F), DT(View), PDT(View), LI(View, DT) {}

  CFGView View;
  DominatorTree DT;
  PostDominatorTree PDT;
  LoopInfo LI;
};

/// Program-wide analysis cache.
class ProgramAnalysis {
public:
  explicit ProgramAnalysis(const ir::Program &P);

  const ir::Program &getProgram() const { return P; }

  const FunctionAnalysis &forFunction(const ir::Function &F) const {
    return *Analyses[F.getId()];
  }

  /// Analysis of the function containing \p Addr.
  const FunctionAnalysis &atAddr(uint32_t Addr) const {
    return forFunction(*P.functionAt(Addr));
  }

  /// Innermost loop containing the block at \p Addr, or nullptr.
  const Loop *innermostLoopAt(uint32_t Addr) const;

private:
  const ir::Program &P;
  std::vector<std::unique_ptr<FunctionAnalysis>> Analyses;
};

} // namespace dmp::cfg

#endif // DMP_CFG_ANALYSIS_H
