//===- cfg/PathEnumerator.h - Profile-pruned path exploration -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded, profile-pruned enumeration of control-flow paths after a branch:
/// the worklist computation at the heart of Alg-exact and Alg-freq
/// (paper Algorithms 1 and 2).
///
/// Exploration starts at one side of a diverge-branch candidate and follows
/// only branch directions whose profiled frequency is at least
/// MIN_EXEC_PROB, up to the IPOSDOM (stop block), MAX_INSTR instructions, or
/// MAX_CBR conditional branches — exactly the limits of Algorithm 2.  On top
/// of the paper's limits we bound the number of materialized paths and drop
/// vanishing-probability paths; both caps are recorded so callers can treat
/// truncated probability mass conservatively (as "did not merge").
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_PATHENUMERATOR_H
#define DMP_CFG_PATHENUMERATOR_H

#include "cfg/EdgeProfile.h"
#include "ir/Function.h"

#include <unordered_set>
#include <vector>

namespace dmp::cfg {

/// Exploration limits.  Defaults are the paper's best-performing heuristic
/// thresholds (Section 7.1.1): MAX_INSTR=50, MAX_CBR=MAX_INSTR/10,
/// MIN_EXEC_PROB=0.001.
struct PathLimits {
  unsigned MaxInstr = 50;
  unsigned MaxCondBr = 5;
  double MinExecProb = 0.001;

  /// Implementation caps beyond the paper (Section 6 of DESIGN.md): bound
  /// the number of explicit paths and prune vanishing-probability paths so
  /// that MAX_CBR=20 cost-model exploration stays tractable.
  unsigned MaxPaths = 4096;
  double MinPathProb = 1e-5;

  /// Extra fetched-instruction weight charged for each Call on a path:
  /// dpred-mode fetches through calls, so a call contributes callee
  /// instructions that a static intra-procedural count would miss.
  unsigned CallExtraWeight = 8;
};

/// Why a path ended.
enum class PathEnd : uint8_t {
  ReachedStop, ///< Reached the stop block (IPOSDOM / CFM search frontier).
  ReachedRet,  ///< Reached a return instruction (return-CFM candidate).
  ReachedHalt, ///< Reached program end.
  Truncated,   ///< Hit MaxInstr/MaxCondBr/probability limits.
  Looped,      ///< Revisited a block already on this path.
};

/// One enumerated control-flow path.
struct Path {
  /// Blocks visited in order.  Excludes the stop block itself.
  std::vector<const ir::BasicBlock *> Blocks;
  /// Product of followed edge probabilities.
  double Prob = 1.0;
  /// Weighted instruction count over Blocks (calls weighted per
  /// PathLimits::CallExtraWeight).
  unsigned Instrs = 0;
  /// Conditional branches encountered as terminators along the path.
  unsigned CondBrs = 0;
  PathEnd End = PathEnd::Truncated;
  /// For ReachedRet: the return instruction that ended the path.
  const ir::Instruction *RetInstr = nullptr;

  /// True when the path contains \p Block or stops at it.
  bool reaches(const ir::BasicBlock *Block, const ir::BasicBlock *Stop) const;

  /// Weighted instructions before the first occurrence of \p Block; the
  /// whole path when \p Block is not on it.
  unsigned instrsBefore(const ir::BasicBlock *Block, unsigned CallWeight) const;
};

/// All paths explored from one side of a branch.
struct PathSet {
  std::vector<Path> Paths;
  const ir::BasicBlock *StopBlock = nullptr;
  /// True when MaxPaths was hit; unexplored probability mass exists beyond
  /// LostProbMass.
  bool Overflowed = false;
  /// Probability mass of dropped (sub-MinPathProb or unexecuted-direction)
  /// continuations.
  double LostProbMass = 0.0;

  /// Total probability over materialized paths.
  double totalProb() const;

  /// Probability that this side reaches \p Block: the p_T(X) / p_NT(X)
  /// terms of Algorithm 2.
  double reachProb(const ir::BasicBlock *Block) const;

  /// Probability of reaching \p Block without passing through any block of
  /// \p Excluded first — the "merging at X for the first time" correction
  /// of footnote 3 (chains of CFM points).
  double firstReachProb(
      const ir::BasicBlock *Block,
      const std::unordered_set<const ir::BasicBlock *> &Excluded) const;

  /// Probability that the side ends at a return instruction (Section 3.5).
  double returnReachProb() const;

  /// Longest weighted instruction distance to \p Block over paths reaching
  /// it (cost-model Method 2, Eq. 8-9).  Falls back to the longest path
  /// overall when nothing reaches \p Block.
  unsigned maxInstrsTo(const ir::BasicBlock *Block, unsigned CallWeight) const;

  /// Expected weighted instructions fetched on this side before merging at
  /// \p Block (cost-model Method 3, Eq. 10-11): paths not reaching the
  /// block contribute their full length.
  double expectedInstrsTo(const ir::BasicBlock *Block,
                          unsigned CallWeight) const;

  /// Longest path length regardless of merge point.
  unsigned maxInstrs() const;
};

/// Enumerates paths starting at \p Start (one side of a branch), stopping at
/// \p Stop (usually IPOSDOM of the branch; may be nullptr).
PathSet enumeratePaths(const ir::BasicBlock *Start, const ir::BasicBlock *Stop,
                       const EdgeProfile &Profile, const PathLimits &Limits);

} // namespace dmp::cfg

#endif // DMP_CFG_PATHENUMERATOR_H
