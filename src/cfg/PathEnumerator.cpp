//===- cfg/PathEnumerator.cpp - Profile-pruned path exploration ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/PathEnumerator.h"

#include "support/Compiler.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::cfg;

/// Weighted size of \p Block: static instructions plus the call weight for
/// each Call instruction (dpred-mode fetches through calls).
static unsigned blockWeight(const ir::BasicBlock &Block, unsigned CallWeight) {
  unsigned Weight = Block.instrCount();
  for (const ir::Instruction &Inst : Block.instructions())
    if (Inst.Op == ir::Opcode::Call)
      Weight += CallWeight;
  return Weight;
}

bool Path::reaches(const ir::BasicBlock *Block,
                   const ir::BasicBlock *Stop) const {
  if (Block == Stop && End == PathEnd::ReachedStop)
    return true;
  return std::find(Blocks.begin(), Blocks.end(), Block) != Blocks.end();
}

unsigned Path::instrsBefore(const ir::BasicBlock *Block,
                            unsigned CallWeight) const {
  unsigned Count = 0;
  for (const ir::BasicBlock *B : Blocks) {
    if (B == Block)
      return Count;
    Count += blockWeight(*B, CallWeight);
  }
  return Count;
}

double PathSet::totalProb() const {
  double Sum = 0.0;
  for (const Path &P : Paths)
    Sum += P.Prob;
  return Sum;
}

double PathSet::reachProb(const ir::BasicBlock *Block) const {
  double Sum = 0.0;
  for (const Path &P : Paths)
    if (P.reaches(Block, StopBlock))
      Sum += P.Prob;
  return Sum;
}

double PathSet::firstReachProb(
    const ir::BasicBlock *Block,
    const std::unordered_set<const ir::BasicBlock *> &Excluded) const {
  double Sum = 0.0;
  for (const Path &P : Paths) {
    bool Blocked = false;
    bool Reached = false;
    for (const ir::BasicBlock *B : P.Blocks) {
      if (B == Block) {
        Reached = true;
        break;
      }
      if (Excluded.count(B)) {
        Blocked = true;
        break;
      }
    }
    if (!Reached && !Blocked && Block == StopBlock &&
        P.End == PathEnd::ReachedStop)
      Reached = true;
    if (Reached && !Blocked)
      Sum += P.Prob;
  }
  return Sum;
}

double PathSet::returnReachProb() const {
  double Sum = 0.0;
  for (const Path &P : Paths)
    if (P.End == PathEnd::ReachedRet)
      Sum += P.Prob;
  return Sum;
}

unsigned PathSet::maxInstrsTo(const ir::BasicBlock *Block,
                              unsigned CallWeight) const {
  // Longest possible fetch distance before merging at \p Block (Eq. 8-9):
  // paths that never reach the block contribute their whole explored
  // length, since the machine fetches all of it before the merge/abort.
  unsigned Best = 0;
  for (const Path &P : Paths)
    Best = std::max(Best, P.instrsBefore(Block, CallWeight));
  return Best;
}

double PathSet::expectedInstrsTo(const ir::BasicBlock *Block,
                                 unsigned CallWeight) const {
  const double Total = totalProb();
  if (Total <= 0.0)
    return 0.0;
  double Sum = 0.0;
  for (const Path &P : Paths)
    Sum += P.Prob * static_cast<double>(P.instrsBefore(Block, CallWeight));
  return Sum / Total;
}

unsigned PathSet::maxInstrs() const {
  unsigned Best = 0;
  for (const Path &P : Paths)
    Best = std::max(Best, P.Instrs);
  return Best;
}

namespace {

/// DFS frame: a partially explored path plus the block to enter next.
struct WorkItem {
  Path Partial;
  const ir::BasicBlock *Next;
};

} // namespace

PathSet cfg::enumeratePaths(const ir::BasicBlock *Start,
                            const ir::BasicBlock *Stop,
                            const EdgeProfile &Profile,
                            const PathLimits &Limits) {
  PathSet Result;
  Result.StopBlock = Stop;
  assert(Start && "path enumeration needs a start block");

  std::vector<WorkItem> Work;
  Work.push_back({Path(), Start});

  while (!Work.empty()) {
    if (Result.Paths.size() >= Limits.MaxPaths) {
      // Unexplored work is dropped; account its probability mass.
      Result.Overflowed = true;
      for (const WorkItem &Item : Work)
        Result.LostProbMass += Item.Partial.Prob;
      break;
    }

    WorkItem Item = std::move(Work.back());
    Work.pop_back();
    Path &P = Item.Partial;
    const ir::BasicBlock *Block = Item.Next;

    // Reaching the stop block finishes the path without including it.
    if (Block == Stop) {
      P.End = PathEnd::ReachedStop;
      Result.Paths.push_back(std::move(P));
      continue;
    }

    // A cycle within the path: dynamic predication exploration does not
    // follow loops (loop diverge branches are handled separately).
    if (std::find(P.Blocks.begin(), P.Blocks.end(), Block) != P.Blocks.end()) {
      P.End = PathEnd::Looped;
      Result.Paths.push_back(std::move(P));
      continue;
    }

    P.Blocks.push_back(Block);
    P.Instrs += blockWeight(*Block, Limits.CallExtraWeight);
    if (P.Instrs > Limits.MaxInstr) {
      P.End = PathEnd::Truncated;
      Result.Paths.push_back(std::move(P));
      continue;
    }

    const ir::Instruction *Term = Block->getTerminator();
    if (!Term) {
      // Fallthrough block.
      const ir::BasicBlock *Next = Block->getFallthrough();
      assert(Next && "verifier guarantees no falling off a function");
      Work.push_back({std::move(P), Next});
      continue;
    }

    switch (Term->Op) {
    case ir::Opcode::Jmp:
      Work.push_back({std::move(P), Term->Target});
      break;
    case ir::Opcode::Ret:
      P.End = PathEnd::ReachedRet;
      P.RetInstr = Term;
      Result.Paths.push_back(std::move(P));
      break;
    case ir::Opcode::Halt:
      P.End = PathEnd::ReachedHalt;
      Result.Paths.push_back(std::move(P));
      break;
    case ir::Opcode::CondBr: {
      ++P.CondBrs;
      if (P.CondBrs > Limits.MaxCondBr) {
        P.End = PathEnd::Truncated;
        Result.Paths.push_back(std::move(P));
        break;
      }
      const double TakenProb = Profile.takenProb(Term->Addr);
      const bool Executed = Profile.wasExecuted(Term->Addr);
      struct Dir {
        const ir::BasicBlock *Target;
        double Prob;
      };
      const Dir Dirs[2] = {
          {Term->Target, TakenProb},
          {Block->getFallthrough(), Executed ? 1.0 - TakenProb : 0.0}};
      bool AnyFollowed = false;
      for (const Dir &D : Dirs) {
        if (!D.Target || D.Prob < Limits.MinExecProb) {
          Result.LostProbMass += P.Prob * D.Prob;
          continue;
        }
        Path Child = P;
        Child.Prob *= D.Prob;
        if (Child.Prob < Limits.MinPathProb) {
          Result.LostProbMass += Child.Prob;
          continue;
        }
        Work.push_back({std::move(Child), D.Target});
        AnyFollowed = true;
      }
      if (!AnyFollowed) {
        // Both directions pruned: materialize as truncated so the partial
        // path still contributes to overhead estimates.
        P.End = PathEnd::Truncated;
        Result.Paths.push_back(std::move(P));
      }
      break;
    }
    default:
      DMP_UNREACHABLE("non-terminator as block terminator");
    }
  }

  return Result;
}
