//===- cfg/LoopInfo.cpp - Natural loop detection -------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/LoopInfo.h"

#include <algorithm>
#include <set>

using namespace dmp;
using namespace dmp::cfg;

bool Loop::contains(const ir::BasicBlock *Block) const {
  return std::find(Blocks.begin(), Blocks.end(), Block) != Blocks.end();
}

std::vector<const ir::Instruction *> Loop::exitBranches() const {
  std::vector<const ir::Instruction *> Result;
  for (const ir::BasicBlock *Block : Blocks) {
    const ir::Instruction *Term = Block->getTerminator();
    if (!Term || !Term->isCondBr())
      continue;
    bool HasInside = false, HasOutside = false;
    for (const ir::BasicBlock *Succ : Block->successors()) {
      if (contains(Succ))
        HasInside = true;
      else
        HasOutside = true;
    }
    if (HasInside && HasOutside)
      Result.push_back(Term);
  }
  return Result;
}

unsigned Loop::bodyInstrCount() const {
  unsigned Count = 0;
  for (const ir::BasicBlock *Block : Blocks)
    Count += Block->instrCount();
  return Count;
}

unsigned Loop::writtenRegCount() const {
  std::set<ir::Reg> Written;
  for (const ir::BasicBlock *Block : Blocks)
    for (const ir::Instruction &Inst : Block->instructions())
      if (Inst.writesReg())
        Written.insert(Inst.Dst);
  return static_cast<unsigned>(Written.size());
}

LoopInfo::LoopInfo(const CFGView &View, const DominatorTree &DT) {
  const unsigned N = View.blockCount();
  InnermostOf.assign(N, nullptr);

  // Find back edges in deterministic block order and build each natural
  // loop by reverse reachability from the tail, stopping at the header.
  for (unsigned Id = 0; Id < N; ++Id) {
    const ir::BasicBlock *Tail = View.block(Id);
    if (!View.isReachable(Tail))
      continue;
    for (const ir::BasicBlock *Header : View.successors(Id)) {
      if (!DT.dominates(Header, Tail))
        continue;
      // (Tail -> Header) is a back edge.  Merge into an existing loop with
      // the same header if any (multiple back edges, one natural loop).
      Loop *L = nullptr;
      for (auto &Existing : Loops)
        if (Existing->getHeader() == Header) {
          L = Existing.get();
          break;
        }
      if (!L) {
        Loops.push_back(std::make_unique<Loop>(Header));
        L = Loops.back().get();
        L->Blocks.push_back(Header);
      }
      // Reverse BFS from Tail.
      std::vector<const ir::BasicBlock *> Work;
      if (!L->contains(Tail)) {
        L->Blocks.push_back(Tail);
        Work.push_back(Tail);
      }
      while (!Work.empty()) {
        const ir::BasicBlock *Block = Work.back();
        Work.pop_back();
        if (Block == Header)
          continue;
        for (const ir::BasicBlock *Pred : View.predecessors(Block->getId())) {
          if (!View.isReachable(Pred) || L->contains(Pred))
            continue;
          L->Blocks.push_back(Pred);
          Work.push_back(Pred);
        }
      }
    }
  }

  // Establish nesting: loop A is nested in B when B contains A's header and
  // A != B and A's block set is a subset (containment of header suffices for
  // natural loops sharing no header).  Compute parent = smallest strict
  // superset containing the header.
  for (auto &Inner : Loops) {
    Loop *Best = nullptr;
    for (auto &Outer : Loops) {
      if (Outer.get() == Inner.get())
        continue;
      if (!Outer->contains(Inner->getHeader()))
        continue;
      if (!Best || Best->Blocks.size() > Outer->Blocks.size())
        Best = Outer.get();
    }
    Inner->Parent = Best;
  }
  for (auto &L : Loops) {
    unsigned Depth = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++Depth;
    L->Depth = Depth;
  }

  // Innermost map: deepest loop containing each block.
  for (auto &L : Loops)
    for (const ir::BasicBlock *Block : L->blocks()) {
      const Loop *Current = InnermostOf[Block->getId()];
      if (!Current || Current->getDepth() < L->getDepth())
        InnermostOf[Block->getId()] = L.get();
    }
}

const Loop *LoopInfo::loopFor(const ir::BasicBlock *Block) const {
  return InnermostOf[Block->getId()];
}

const Loop *LoopInfo::loopWithHeader(const ir::BasicBlock *Block) const {
  for (const auto &L : Loops)
    if (L->getHeader() == Block)
      return L.get();
  return nullptr;
}
