//===- cfg/Analysis.cpp - Cached per-function CFG analyses --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"

using namespace dmp;
using namespace dmp::cfg;

ProgramAnalysis::ProgramAnalysis(const ir::Program &P) : P(P) {
  assert(P.isFinalized() && "analyzing an unfinalized program");
  Analyses.reserve(P.functions().size());
  for (const auto &F : P.functions())
    Analyses.push_back(std::make_unique<FunctionAnalysis>(*F));
}

const Loop *ProgramAnalysis::innermostLoopAt(uint32_t Addr) const {
  const ir::BasicBlock *Block = P.blockAt(Addr);
  return forFunction(*Block->getParent()).LI.loopFor(Block);
}
