//===- cfg/Dominators.h - Dominator and post-dominator trees -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees using Cooper, Harvey, and Kennedy's
/// "A Simple, Fast Dominance Algorithm" (SPE 2001) — the algorithm the paper
/// itself cites for computing immediate post-dominators (IPOSDOM), which
/// define exact CFM points (Section 3.1).
///
/// Post-dominance is computed against a virtual exit node so that functions
/// with multiple Ret/Halt blocks are handled uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_DOMINATORS_H
#define DMP_CFG_DOMINATORS_H

#include "cfg/CFG.h"

#include <vector>

namespace dmp::cfg {

/// Shared implementation for dominators (Direction=Forward) and
/// post-dominators (Direction=Reverse).
class DominanceInfo {
public:
  enum class Direction { Forward, Reverse };

  DominanceInfo(const CFGView &View, Direction Dir);

  /// The immediate (post-)dominator of \p Block, or nullptr when it is the
  /// root, is unreachable, or its immediate post-dominator is the virtual
  /// exit (i.e. the paths only rejoin "after" the function returns).
  const ir::BasicBlock *idom(const ir::BasicBlock *Block) const;

  /// Returns true when \p A (post-)dominates \p B.  A block (post-)dominates
  /// itself.
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

private:
  unsigned intersect(unsigned A, unsigned B) const;

  const CFGView &View;
  Direction Dir;
  // Node ids: 0..N-1 are blocks; N is the virtual root for Reverse.
  unsigned VirtualRoot;
  static constexpr unsigned Undef = ~0u;
  std::vector<unsigned> Idom;     // per node id
  std::vector<unsigned> RpoIndex; // processing order index per node id
};

/// Dominator tree of a function.
class DominatorTree {
public:
  explicit DominatorTree(const CFGView &View)
      : Info(View, DominanceInfo::Direction::Forward) {}

  const ir::BasicBlock *idom(const ir::BasicBlock *Block) const {
    return Info.idom(Block);
  }
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const {
    return Info.dominates(A, B);
  }

private:
  DominanceInfo Info;
};

/// Post-dominator tree of a function.  ipostdom() is the "exact CFM point"
/// of a branch in the paper's terminology.
class PostDominatorTree {
public:
  explicit PostDominatorTree(const CFGView &View)
      : Info(View, DominanceInfo::Direction::Reverse) {}

  /// Immediate post-dominator, or nullptr when control only rejoins at the
  /// virtual exit (e.g. paths ending in different return instructions —
  /// the "return CFM" case of Section 3.5).
  const ir::BasicBlock *ipostdom(const ir::BasicBlock *Block) const {
    return Info.idom(Block);
  }
  bool postDominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const {
    return Info.dominates(A, B);
  }

private:
  DominanceInfo Info;
};

} // namespace dmp::cfg

#endif // DMP_CFG_DOMINATORS_H
