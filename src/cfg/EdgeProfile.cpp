//===- cfg/EdgeProfile.cpp - Edge profiling data -------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// EdgeProfile is header-only; this file anchors the translation unit so the
// library always has an object for the cfg/ profile types.
//
//===----------------------------------------------------------------------===//

#include "cfg/EdgeProfile.h"

namespace dmp::cfg {
// Intentionally empty.
} // namespace dmp::cfg
