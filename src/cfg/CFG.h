//===- cfg/CFG.h - Function-level CFG view -------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFGView: an indexed view of a function's intra-procedural control-flow
/// graph (successor and predecessor lists, reverse postorder), shared by the
/// dominator and loop analyses.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_CFG_H
#define DMP_CFG_CFG_H

#include "ir/Function.h"

#include <vector>

namespace dmp::cfg {

/// Indexed successor/predecessor lists for one function.
///
/// Block indices are ir::BasicBlock::getId(), which is dense in layout
/// order.  Rebuild the view if the function changes (functions are immutable
/// after Program::finalize(), so in practice a view is built once).
class CFGView {
public:
  explicit CFGView(const ir::Function &F);

  const ir::Function &getFunction() const { return F; }
  unsigned blockCount() const { return static_cast<unsigned>(Succs.size()); }

  const std::vector<const ir::BasicBlock *> &successors(unsigned Id) const {
    return Succs[Id];
  }
  const std::vector<const ir::BasicBlock *> &predecessors(unsigned Id) const {
    return Preds[Id];
  }

  const ir::BasicBlock *block(unsigned Id) const { return Blocks[Id]; }

  /// Blocks in reverse postorder from the entry.  Unreachable blocks are
  /// excluded.
  const std::vector<const ir::BasicBlock *> &reversePostorder() const {
    return RPO;
  }

  /// True when \p Block is reachable from the entry.
  bool isReachable(const ir::BasicBlock *Block) const {
    return Reachable[Block->getId()];
  }

private:
  const ir::Function &F;
  std::vector<const ir::BasicBlock *> Blocks;
  std::vector<std::vector<const ir::BasicBlock *>> Succs;
  std::vector<std::vector<const ir::BasicBlock *>> Preds;
  std::vector<const ir::BasicBlock *> RPO;
  std::vector<bool> Reachable;
};

} // namespace dmp::cfg

#endif // DMP_CFG_CFG_H
