//===- cfg/DotExport.cpp - Graphviz export of CFGs and selections -------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/DotExport.h"

#include "support/StringUtils.h"

#include <unordered_set>

using namespace dmp;
using namespace dmp::cfg;

std::string cfg::exportFunctionDot(const ir::Function &F,
                                   const DotOptions &Options) {
  // Collect the decoration sets up front.
  std::unordered_set<const ir::BasicBlock *> DivergeBlocks;
  std::unordered_set<uint32_t> CfmAddrs;
  if (Options.Diverge) {
    for (const auto &Entry : Options.Diverge->all()) {
      for (const auto &Block : F.blocks()) {
        const ir::Instruction *Term = Block->getTerminator();
        if (Term && Term->Addr == Entry.first)
          DivergeBlocks.insert(Block.get());
      }
      for (const core::CfmPoint &Cfm : Entry.second.Cfms)
        if (Cfm.PointKind == core::CfmPoint::Kind::Address)
          CfmAddrs.insert(Cfm.Addr);
    }
  }

  std::string Out =
      formatString("digraph \"%s\" {\n  node [shape=box, fontname="
                   "\"monospace\"];\n",
                   F.getName().c_str());

  for (const auto &Block : F.blocks()) {
    std::string Label = Block->getName();
    if (Options.ShowInstrCounts)
      Label += formatString("\\n%u instrs @%u", Block->instrCount(),
                            Block->getStartAddr());
    std::string Attrs = formatString("label=\"%s\"", Label.c_str());
    if (DivergeBlocks.count(Block.get()))
      Attrs += ", peripheries=2, color=red";
    if (CfmAddrs.count(Block->getStartAddr()))
      Attrs += ", style=filled, fillcolor=lightblue";
    Out += formatString("  b%u [%s];\n", Block->getId(), Attrs.c_str());
  }

  for (const auto &Block : F.blocks()) {
    const ir::Instruction *Term = Block->getTerminator();
    const auto Succs = Block->successors();
    for (size_t I = 0; I < Succs.size(); ++I) {
      std::string Attrs;
      if (Term && Term->isCondBr()) {
        const bool IsTaken = (I == 0);
        Attrs = IsTaken ? "label=\"T" : "label=\"NT";
        if (Options.Edges && Options.Edges->wasExecuted(Term->Addr)) {
          const double P = Options.Edges->takenProb(Term->Addr);
          Attrs += formatString(" %.2f", IsTaken ? P : 1.0 - P);
        }
        Attrs += "\"";
      }
      Out += formatString("  b%u -> b%u [%s];\n", Block->getId(),
                          Succs[I]->getId(), Attrs.c_str());
    }
  }
  Out += "}\n";
  return Out;
}
