//===- cfg/CFG.cpp - Function-level CFG view -----------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::cfg;

CFGView::CFGView(const ir::Function &F) : F(F) {
  const unsigned N = static_cast<unsigned>(F.blockCount());
  Blocks.resize(N);
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (const auto &Block : F.blocks()) {
    Blocks[Block->getId()] = Block.get();
    for (ir::BasicBlock *Succ : Block->successors()) {
      Succs[Block->getId()].push_back(Succ);
      Preds[Succ->getId()].push_back(Block.get());
    }
  }

  // Iterative DFS postorder from the entry; RPO is its reverse.
  if (N == 0)
    return;
  std::vector<const ir::BasicBlock *> Postorder;
  std::vector<std::pair<const ir::BasicBlock *, size_t>> Stack;
  std::vector<bool> Visited(N, false);
  const ir::BasicBlock *Entry = F.getEntry();
  Visited[Entry->getId()] = true;
  Stack.emplace_back(Entry, 0);
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const auto &SuccList = Succs[Block->getId()];
    if (NextSucc < SuccList.size()) {
      const ir::BasicBlock *Succ = SuccList[NextSucc++];
      if (!Visited[Succ->getId()]) {
        Visited[Succ->getId()] = true;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Postorder.push_back(Block);
    Stack.pop_back();
  }
  Reachable = Visited;
  RPO.assign(Postorder.rbegin(), Postorder.rend());
}
