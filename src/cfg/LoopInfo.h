//===- cfg/LoopInfo.h - Natural loop detection ---------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection via back edges (tail -> header where the header
/// dominates the tail).  The loop-diverge-branch selector (paper Section 5)
/// uses this to find loop exit branches, loop body sizes, and nesting.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_CFG_LOOPINFO_H
#define DMP_CFG_LOOPINFO_H

#include "cfg/Dominators.h"

#include <memory>
#include <vector>

namespace dmp::cfg {

/// One natural loop.
class Loop {
public:
  Loop(const ir::BasicBlock *Header) : Header(Header) {}

  const ir::BasicBlock *getHeader() const { return Header; }

  /// All blocks in the loop, header first; order is deterministic.
  const std::vector<const ir::BasicBlock *> &blocks() const { return Blocks; }

  bool contains(const ir::BasicBlock *Block) const;

  /// Conditional branches with one successor inside the loop and one
  /// outside: the "loop exit branch" diverge candidates of Figure 3(d).
  /// Returned as the terminating instruction of each exiting block.
  std::vector<const ir::Instruction *> exitBranches() const;

  /// Static instruction count over all loop blocks — N(loop body) in the
  /// loop cost model, and the STATIC_LOOP_SIZE heuristic input.
  unsigned bodyInstrCount() const;

  /// Number of distinct registers written in the loop body.  The paper
  /// found N(select_uops) strongly correlated with body size; we model the
  /// select-µop count per predicated iteration with exactly this number.
  unsigned writtenRegCount() const;

  /// Nesting depth; outermost loops have depth 1.
  unsigned getDepth() const { return Depth; }
  Loop *getParent() const { return Parent; }

private:
  friend class LoopInfo;
  const ir::BasicBlock *Header;
  std::vector<const ir::BasicBlock *> Blocks;
  Loop *Parent = nullptr;
  unsigned Depth = 1;
};

/// All natural loops of a function.
class LoopInfo {
public:
  LoopInfo(const CFGView &View, const DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Innermost loop containing \p Block, or nullptr.
  const Loop *loopFor(const ir::BasicBlock *Block) const;

  /// Innermost loop headed by \p Block, or nullptr.
  const Loop *loopWithHeader(const ir::BasicBlock *Block) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<const Loop *> InnermostOf; // indexed by block id
};

} // namespace dmp::cfg

#endif // DMP_CFG_LOOPINFO_H
