//===- cfg/Dominators.cpp - Dominator and post-dominator trees ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
//
// Cooper-Harvey-Kennedy iterative dominance.  We run it on the forward CFG
// for dominators and on the reverse CFG (augmented with a virtual exit that
// is the unique predecessor-of-exits) for post-dominators.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace dmp;
using namespace dmp::cfg;

DominanceInfo::DominanceInfo(const CFGView &View, Direction Dir)
    : View(View), Dir(Dir) {
  const unsigned N = View.blockCount();
  VirtualRoot = N; // Only used in Reverse mode.
  const unsigned NumNodes = (Dir == Direction::Reverse) ? N + 1 : N;
  Idom.assign(NumNodes, Undef);
  RpoIndex.assign(NumNodes, Undef);

  // Build the processing order: reverse postorder of the graph rooted at
  // the root node (entry for Forward; virtual exit for Reverse).
  //
  // Edges in processing direction:
  //   Forward: preds(n) = CFG predecessors.
  //   Reverse: preds(n) = CFG successors; the virtual exit's "successors"
  //            are all blocks without CFG successors (Ret/Halt blocks).
  std::vector<std::vector<unsigned>> Walk(NumNodes); // graph to traverse
  std::vector<std::vector<unsigned>> Join(NumNodes); // preds used in joins
  auto addEdge = [&](unsigned From, unsigned To) {
    Walk[From].push_back(To);
    Join[To].push_back(From);
  };

  if (Dir == Direction::Forward) {
    for (unsigned Id = 0; Id < N; ++Id)
      for (const ir::BasicBlock *Succ : View.successors(Id))
        addEdge(Id, Succ->getId());
  } else {
    for (unsigned Id = 0; Id < N; ++Id) {
      const auto &Succs = View.successors(Id);
      if (Succs.empty()) {
        // Exit block: reversed edge from the virtual exit.
        addEdge(VirtualRoot, Id);
      } else {
        for (const ir::BasicBlock *Succ : Succs)
          addEdge(Succ->getId(), Id); // reversed
      }
    }
  }

  const unsigned Root =
      (Dir == Direction::Forward) ? View.getFunction().getEntry()->getId()
                                  : VirtualRoot;

  // Iterative DFS postorder over Walk from Root.
  std::vector<unsigned> Order;
  {
    std::vector<std::pair<unsigned, size_t>> Stack;
    std::vector<bool> Visited(NumNodes, false);
    Visited[Root] = true;
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      if (Next < Walk[Node].size()) {
        const unsigned Succ = Walk[Node][Next++];
        if (!Visited[Succ]) {
          Visited[Succ] = true;
          Stack.emplace_back(Succ, 0);
        }
        continue;
      }
      Order.push_back(Node);
      Stack.pop_back();
    }
    std::reverse(Order.begin(), Order.end()); // now reverse postorder
  }
  for (unsigned I = 0; I < Order.size(); ++I)
    RpoIndex[Order[I]] = I;

  // Cooper-Harvey-Kennedy fixed point.
  Idom[Root] = Root;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : Order) {
      if (Node == Root)
        continue;
      unsigned NewIdom = Undef;
      for (unsigned Pred : Join[Node]) {
        if (Idom[Pred] == Undef)
          continue; // not processed yet / unreachable
        NewIdom = (NewIdom == Undef) ? Pred : intersect(Pred, NewIdom);
      }
      if (NewIdom != Undef && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
}

unsigned DominanceInfo::intersect(unsigned A, unsigned B) const {
  while (A != B) {
    while (RpoIndex[A] > RpoIndex[B])
      A = Idom[A];
    while (RpoIndex[B] > RpoIndex[A])
      B = Idom[B];
  }
  return A;
}

const ir::BasicBlock *DominanceInfo::idom(const ir::BasicBlock *Block) const {
  const unsigned Id = Block->getId();
  assert(Id < View.blockCount() && "foreign block");
  const unsigned Parent = Idom[Id];
  if (Parent == Undef || Parent == Id)
    return nullptr;
  if (Dir == Direction::Reverse && Parent == VirtualRoot)
    return nullptr;
  return View.block(Parent);
}

bool DominanceInfo::dominates(const ir::BasicBlock *A,
                              const ir::BasicBlock *B) const {
  unsigned Target = A->getId();
  unsigned Node = B->getId();
  if (Idom[Node] == Undef)
    return false; // B unreachable
  while (true) {
    if (Node == Target)
      return true;
    const unsigned Parent = Idom[Node];
    if (Parent == Undef || Parent == Node)
      return false; // reached root
    if (Dir == Direction::Reverse && Parent == VirtualRoot)
      return false;
    Node = Parent;
  }
}
