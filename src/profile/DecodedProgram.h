//===- profile/DecodedProgram.h - Predecoded instruction array ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat predecoded form of an ir::Program, built once per program and shared
/// by every emulator over it.  Each DecodedInstr carries all operand fields
/// by value and branch/call targets resolved to flat addresses, so the
/// emulator's hot loop touches one dense 32-byte record per instruction
/// instead of chasing Instruction -> BasicBlock/Function pointers.
///
/// Decoding is pure caching: it must never change architectural semantics.
/// The digest-identity contract (DESIGN.md) is enforced by the differential
/// tests in tests/test_throughput_diff.cpp, which compare this fast path
/// against Emulator::stepReference() instruction by instruction.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_DECODEDPROGRAM_H
#define DMP_PROFILE_DECODEDPROGRAM_H

#include "ir/Instruction.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace dmp::profile {

/// Guest integer semantics, shared by the decoded fast path and the
/// reference interpreter: two's-complement wraparound mod 2^64, computed in
/// unsigned so host signed-overflow UB never enters the emulated ISA.
namespace isa {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapShl(int64_t A, uint64_t Shamt) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << (Shamt & 63));
}
/// x/0 = 0 and INT64_MIN/-1 wraps to itself, so the host division is never
/// undefined (mirrors the Div case of the reference interpreter).
inline int64_t wrapDiv(int64_t Num, int64_t Den) {
  return Den == 0                          ? 0
         : (Num == INT64_MIN && Den == -1) ? Num
                                           : Num / Den;
}
/// Branch-condition evaluation; semantics identical to
/// ir::Instruction::evalCond but on a bare BrCond so the decoded path never
/// touches the Instruction record.
inline bool evalCond(ir::BrCond C, int64_t A, int64_t B) {
  switch (C) {
  case ir::BrCond::Eq:
    return A == B;
  case ir::BrCond::Ne:
    return A != B;
  case ir::BrCond::Lt:
    return A < B;
  case ir::BrCond::Ge:
    return A >= B;
  case ir::BrCond::Ltu:
    return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  case ir::BrCond::Geu:
    return static_cast<uint64_t>(A) >= static_cast<uint64_t>(B);
  }
  return false; // Unreachable for valid BrCond values.
}

} // namespace isa

/// Extended dispatch-op space for the batched interpreter loop: values
/// 0..22 are the ir::Opcode values verbatim; values from FirstFused up are
/// superops — adjacent instruction groups fused at decode time so the hot
/// loop pays one dispatch for the whole group.  Fusion is purely a dispatch
/// accelerator: each fused handler executes the member records' own
/// operand fields with unchanged architectural semantics, and every
/// address keeps its own (greedily longest) FuseOp, so control flow that
/// enters the middle of a group re-dispatches there exactly.
namespace fuse {
enum : uint8_t {
  FirstFused = 23,
  /// AddI; Xor; Add — the dominant ALU triple of the generated workloads.
  AddIXorAdd = FirstFused,
  /// Two consecutive AddI; Xor; Add triples (one dispatch per six ops).
  AddIXorAdd2,
  AddIXor,
  XorAdd,
  AddAddI,
  NumDispatchOps,
};
} // namespace fuse

/// One predecoded instruction.  32 bytes, address-indexed, immutable after
/// construction.
struct DecodedInstr {
  int64_t Imm = 0;
  /// Canonical IR instruction (for DynInstr::I and any client introspection).
  const ir::Instruction *Src = nullptr;
  /// Resolved control-transfer target: taken target of CondBr, target of
  /// Jmp, callee entry of Call.  Zero otherwise.
  uint32_t Target = 0;
  /// Number of consecutive non-control-flow instructions starting at this
  /// address (including this one); 0 when this instruction itself may
  /// transfer control.  A run of RunLen instructions always falls through,
  /// so the emulator can retire the whole run without per-instruction
  /// next-PC or halt checks.
  uint32_t RunLen = 0;
  ir::Opcode Op = ir::Opcode::Nop;
  ir::BrCond Cond = ir::BrCond::Eq;
  ir::Reg Dst = 0;
  ir::Reg Src1 = 0;
  ir::Reg Src2 = 0;
  /// Dispatch op for run(): the base opcode, or a fuse:: superop covering
  /// this and the following record(s).  A group never extends past the
  /// containing straight-line run (group size <= RunLen).
  uint8_t FuseOp = static_cast<uint8_t>(ir::Opcode::Nop);
};

/// The decoded-instruction cache for one program.  Obtain via of(); the
/// instance is built once (thread-safe) and owned by the Program, so it is
/// valid exactly as long as the Program is.
class DecodedProgram {
public:
  /// The decoded form of \p P, building it on first use.
  static const DecodedProgram &of(const ir::Program &P);

  const DecodedInstr *data() const { return Instrs.data(); }
  uint32_t size() const { return static_cast<uint32_t>(Instrs.size()); }
  const DecodedInstr &at(uint32_t Addr) const {
    assert(Addr < Instrs.size() && "address out of range");
    return Instrs[Addr];
  }

private:
  explicit DecodedProgram(const ir::Program &P);

  std::vector<DecodedInstr> Instrs;
};

} // namespace dmp::profile

#endif // DMP_PROFILE_DECODEDPROGRAM_H
