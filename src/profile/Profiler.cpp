//===- profile/Profiler.cpp - Profile collection -------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/Profiler.h"

#include "profile/Emulator.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::profile;

double ProfileData::profileMPKI() const {
  if (DynamicInstrs == 0)
    return 0.0;
  return 1000.0 * static_cast<double>(Branches.totalMispredictions()) /
         static_cast<double>(DynamicInstrs);
}

uint64_t BranchProfile::totalMispredictions() const {
  uint64_t Total = 0;
  for (const auto &Entry : Stats)
    Total += Entry.second.Mispredicted;
  return Total;
}

namespace {

/// Tracks loop invocations/iterations along the dynamic execution, frame by
/// frame so that calls inside loops do not disturb the caller's loop state.
///
/// Per-loop dynamic-instruction counts are span-based: a loop remains
/// active continuously from open to close, so instead of bumping a map
/// entry for every active loop on every instruction (the old hot path),
/// each active loop records the executed-instruction count at open time
/// and the close charges the whole span at once.  Counting conventions
/// match the old per-instruction scheme exactly: an instruction is charged
/// to every loop active while it executed, where loops closed by entering
/// a non-member block stop *before* the entering instruction, and loops
/// closed by Ret (or end of run) still count the closing instruction.
class LoopTracker {
public:
  LoopTracker(const cfg::ProgramAnalysis &PA, LoopProfile &Out)
      : PA(PA), Out(Out) {
    Frames.emplace_back();
  }

  /// \p Executed is the emulator's executedCount() right after stepping the
  /// first instruction of \p Block.
  void onBlockEntry(const ir::BasicBlock *Block, uint64_t Executed) {
    auto &Active = Frames.back();
    const cfg::LoopInfo &LI =
        PA.forFunction(*Block->getParent()).LI;

    // Close loops that no longer contain the new block.  Their span ends
    // before the entering instruction, which executed outside the loop.
    while (!Active.empty() && !Active.back().L->contains(Block))
      closeTop(Executed);

    // Open the chain of loops that contain the block and are not active,
    // outermost first.  The entering instruction itself (already stepped)
    // is the first one charged to them.
    std::vector<const cfg::Loop *> ToOpen;
    for (const cfg::Loop *L = LI.loopFor(Block); L; L = L->getParent()) {
      const bool AlreadyActive =
          std::any_of(Active.begin(), Active.end(),
                      [L](const ActiveLoop &A) { return A.L == L; });
      if (!AlreadyActive)
        ToOpen.push_back(L);
    }
    for (auto It = ToOpen.rbegin(); It != ToOpen.rend(); ++It)
      Active.push_back({*It, 1, Executed});

    // A back edge into the header of the innermost active loop is a new
    // iteration.
    if (!Active.empty() && Active.back().L->getHeader() == Block &&
        ToOpen.empty())
      ++Active.back().Iterations;
  }

  void onCall() { Frames.emplace_back(); }

  /// \p Executed is the executedCount() right after stepping the Ret, which
  /// is charged to the loops it closes.
  void onRet(uint64_t Executed) {
    while (!Frames.back().empty())
      closeTop(Executed + 1);
    if (Frames.size() > 1)
      Frames.pop_back();
  }

  /// Closes everything still active at end of run; the last executed
  /// instruction is charged to all of them.
  void finish(uint64_t Executed) {
    while (Frames.size() > 1)
      onRet(Executed);
    while (!Frames.back().empty())
      closeTop(Executed + 1);
  }

private:
  struct ActiveLoop {
    const cfg::Loop *L;
    uint64_t Iterations;
    /// executedCount() when the loop was opened (the open instruction has
    /// already been stepped, so it is the first one inside the span).
    uint64_t OpenExecuted;
  };

  /// Closes the innermost active loop.  \p At is the exclusive end of its
  /// instruction span, in executedCount() units: the count right after the
  /// last instruction charged to the loop.
  void closeTop(uint64_t At) {
    auto &Active = Frames.back();
    const ActiveLoop &A = Active.back();
    LoopStats &S = Out.statsFor(A.L->getHeader()->getStartAddr());
    S.Iterations.addSample(A.Iterations);
    ++S.Invocations;
    S.DynamicInstrs += At - A.OpenExecuted;
    Active.pop_back();
  }

  const cfg::ProgramAnalysis &PA;
  LoopProfile &Out;
  std::vector<std::vector<ActiveLoop>> Frames;
};

} // namespace

ProfileData profile::collectProfile(const ir::Program &P,
                                    const cfg::ProgramAnalysis &PA,
                                    const std::vector<int64_t> &MemoryImage,
                                    const ProfileOptions &Options) {
  ProfileData Data;
  Emulator Emu(P, MemoryImage);
  auto Predictor = uarch::createPredictor(Options.Predictor);
  LoopTracker Loops(PA, Data.Loops);

  DynInstr Inst;
  while (Emu.executedCount() < Options.MaxInstrs && Emu.step(Inst)) {
    const ir::BasicBlock *Block = P.blockAt(Inst.Addr);
    if (Inst.Addr == Block->getStartAddr()) {
      Data.Edges.recordBlockExec(Inst.Addr);
      Loops.onBlockEntry(Block, Emu.executedCount());
    }

    switch (Inst.I->Op) {
    case ir::Opcode::CondBr: {
      const bool Predicted = Predictor->predict(Inst.Addr);
      Predictor->update(Inst.Addr, Inst.Taken);
      Data.Edges.recordBranch(Inst.Addr, Inst.Taken);
      Data.Branches.record(Inst.Addr, Inst.Taken, Predicted != Inst.Taken);
      break;
    }
    case ir::Opcode::Call:
      Loops.onCall();
      break;
    case ir::Opcode::Ret:
      Loops.onRet(Emu.executedCount());
      break;
    default:
      break;
    }
  }

  Loops.finish(Emu.executedCount());
  Data.DynamicInstrs = Emu.executedCount();
  Data.Completed = Emu.isHalted();
  return Data;
}
