//===- profile/Profiler.cpp - Profile collection -------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/Profiler.h"

#include "profile/Emulator.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::profile;

double ProfileData::profileMPKI() const {
  if (DynamicInstrs == 0)
    return 0.0;
  return 1000.0 * static_cast<double>(Branches.totalMispredictions()) /
         static_cast<double>(DynamicInstrs);
}

uint64_t BranchProfile::totalMispredictions() const {
  uint64_t Total = 0;
  for (const auto &Entry : Stats)
    Total += Entry.second.Mispredicted;
  return Total;
}

namespace {

/// Tracks loop invocations/iterations along the dynamic execution, frame by
/// frame so that calls inside loops do not disturb the caller's loop state.
class LoopTracker {
public:
  LoopTracker(const cfg::ProgramAnalysis &PA, LoopProfile &Out)
      : PA(PA), Out(Out) {
    Frames.emplace_back();
  }

  void onBlockEntry(const ir::BasicBlock *Block) {
    auto &Active = Frames.back();
    const cfg::LoopInfo &LI =
        PA.forFunction(*Block->getParent()).LI;

    // Close loops that no longer contain the new block.
    while (!Active.empty() && !Active.back().L->contains(Block))
      closeTop();

    // Open the chain of loops that contain the block and are not active,
    // outermost first.
    std::vector<const cfg::Loop *> ToOpen;
    for (const cfg::Loop *L = LI.loopFor(Block); L; L = L->getParent()) {
      const bool AlreadyActive =
          std::any_of(Active.begin(), Active.end(),
                      [L](const ActiveLoop &A) { return A.L == L; });
      if (!AlreadyActive)
        ToOpen.push_back(L);
    }
    for (auto It = ToOpen.rbegin(); It != ToOpen.rend(); ++It)
      Active.push_back({*It, 1});

    // A back edge into the header of the innermost active loop is a new
    // iteration.
    if (!Active.empty() && Active.back().L->getHeader() == Block &&
        ToOpen.empty())
      ++Active.back().Iterations;
  }

  void onInstruction() {
    for (auto &Frame : Frames)
      for (auto &A : Frame)
        ++Out.statsFor(A.L->getHeader()->getStartAddr()).DynamicInstrs;
  }

  void onCall() { Frames.emplace_back(); }

  void onRet() {
    while (!Frames.back().empty())
      closeTop();
    if (Frames.size() > 1)
      Frames.pop_back();
  }

  void finish() {
    while (Frames.size() > 1)
      onRet();
    while (!Frames.back().empty())
      closeTop();
  }

private:
  struct ActiveLoop {
    const cfg::Loop *L;
    uint64_t Iterations;
  };

  void closeTop() {
    auto &Active = Frames.back();
    const ActiveLoop &A = Active.back();
    LoopStats &S = Out.statsFor(A.L->getHeader()->getStartAddr());
    S.Iterations.addSample(A.Iterations);
    ++S.Invocations;
    Active.pop_back();
  }

  const cfg::ProgramAnalysis &PA;
  LoopProfile &Out;
  std::vector<std::vector<ActiveLoop>> Frames;
};

} // namespace

ProfileData profile::collectProfile(const ir::Program &P,
                                    const cfg::ProgramAnalysis &PA,
                                    const std::vector<int64_t> &MemoryImage,
                                    const ProfileOptions &Options) {
  ProfileData Data;
  Emulator Emu(P, MemoryImage);
  auto Predictor = uarch::createPredictor(Options.Predictor);
  LoopTracker Loops(PA, Data.Loops);

  DynInstr Inst;
  while (Emu.executedCount() < Options.MaxInstrs && Emu.step(Inst)) {
    const ir::BasicBlock *Block = P.blockAt(Inst.Addr);
    if (Inst.Addr == Block->getStartAddr()) {
      Data.Edges.recordBlockExec(Inst.Addr);
      Loops.onBlockEntry(Block);
    }
    Loops.onInstruction();

    switch (Inst.I->Op) {
    case ir::Opcode::CondBr: {
      const bool Predicted = Predictor->predict(Inst.Addr);
      Predictor->update(Inst.Addr, Inst.Taken);
      Data.Edges.recordBranch(Inst.Addr, Inst.Taken);
      Data.Branches.record(Inst.Addr, Inst.Taken, Predicted != Inst.Taken);
      break;
    }
    case ir::Opcode::Call:
      Loops.onCall();
      break;
    case ir::Opcode::Ret:
      Loops.onRet();
      break;
    default:
      break;
    }
  }

  Loops.finish();
  Data.DynamicInstrs = Emu.executedCount();
  Data.Completed = Emu.isHalted();
  return Data;
}
