//===- profile/LoopProfile.h - Loop iteration profile --------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-loop profiling data: iteration counts per invocation and dynamic
/// instruction counts, keyed by the loop header's start address.  Feeds the
/// diverge-loop selection heuristics of Section 5.2 (STATIC_LOOP_SIZE,
/// DYNAMIC_LOOP_SIZE, LOOP_ITER).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_LOOPPROFILE_H
#define DMP_PROFILE_LOOPPROFILE_H

#include "support/Histogram.h"

#include <cstdint>
#include <unordered_map>

namespace dmp::profile {

/// Profile of one static natural loop.
struct LoopStats {
  /// Iterations per invocation.
  Histogram Iterations;
  /// Dynamic instructions attributed to the loop (including nested code)
  /// across all invocations.
  uint64_t DynamicInstrs = 0;
  uint64_t Invocations = 0;

  /// Average iterations per invocation (the LOOP_ITER heuristic input).
  double avgIterations() const { return Iterations.average(); }

  /// Average dynamic instructions from loop entrance to exit (the
  /// DYNAMIC_LOOP_SIZE heuristic input).
  double avgDynamicSize() const {
    return Invocations == 0 ? 0.0
                            : static_cast<double>(DynamicInstrs) /
                                  static_cast<double>(Invocations);
  }
};

/// Map of loop header start address -> stats.
class LoopProfile {
public:
  LoopStats &statsFor(uint32_t HeaderAddr) { return Stats[HeaderAddr]; }

  const LoopStats *find(uint32_t HeaderAddr) const {
    auto It = Stats.find(HeaderAddr);
    return It == Stats.end() ? nullptr : &It->second;
  }

  const std::unordered_map<uint32_t, LoopStats> &all() const { return Stats; }

private:
  std::unordered_map<uint32_t, LoopStats> Stats;
};

} // namespace dmp::profile

#endif // DMP_PROFILE_LOOPPROFILE_H
