//===- profile/DecodedProgram.cpp - Predecoded instruction array ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/DecodedProgram.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::profile;

DecodedProgram::DecodedProgram(const Program &P) {
  assert(P.isFinalized() && "decoding an unfinalized program");
  const uint32_t N = P.instrCount();
  Instrs.resize(N);
  for (uint32_t A = 0; A < N; ++A) {
    const Instruction &I = P.instrAt(A);
    DecodedInstr &D = Instrs[A];
    D.Imm = I.Imm;
    D.Src = &I;
    D.Op = I.Op;
    D.Cond = I.Cond;
    D.Dst = I.Dst;
    D.Src1 = I.Src1;
    D.Src2 = I.Src2;
    if (I.Op == Opcode::CondBr || I.Op == Opcode::Jmp)
      D.Target = I.Target->getStartAddr();
    else if (I.Op == Opcode::Call)
      D.Target = I.Callee->getEntryAddr();
  }
  // Straight-line run lengths, back to front: an instruction that cannot
  // transfer control extends the run starting right after it.  Every valid
  // program ends each function in a terminator, so a run never falls off
  // the end of the address space.
  for (uint32_t A = N; A-- > 0;)
    if (!isControlFlow(Instrs[A].Op))
      Instrs[A].RunLen = (A + 1 < N ? Instrs[A + 1].RunLen : 0) + 1;
  // Superop fusion for the batched dispatch loop: at every address, pick
  // the longest fused group that fits inside the straight-line run
  // (greedy, overlapping — each address describes execution starting
  // there, so branching into the middle of someone else's group is fine).
  for (uint32_t A = 0; A < N; ++A) {
    DecodedInstr &D = Instrs[A];
    const Opcode Op1 = D.Op;
    const Opcode Op2 = D.RunLen >= 2 ? Instrs[A + 1].Op : Opcode::Halt;
    const bool Triple = D.RunLen >= 3 && Op1 == Opcode::AddI &&
                        Op2 == Opcode::Xor && Instrs[A + 2].Op == Opcode::Add;
    if (Triple && D.RunLen >= 6 && Instrs[A + 3].Op == Opcode::AddI &&
        Instrs[A + 4].Op == Opcode::Xor && Instrs[A + 5].Op == Opcode::Add)
      D.FuseOp = fuse::AddIXorAdd2;
    else if (Triple)
      D.FuseOp = fuse::AddIXorAdd;
    else if (Op1 == Opcode::AddI && Op2 == Opcode::Xor)
      D.FuseOp = fuse::AddIXor;
    else if (Op1 == Opcode::Xor && Op2 == Opcode::Add)
      D.FuseOp = fuse::XorAdd;
    else if (Op1 == Opcode::Add && Op2 == Opcode::AddI)
      D.FuseOp = fuse::AddAddI;
    else
      D.FuseOp = static_cast<uint8_t>(Op1);
  }
}

const DecodedProgram &DecodedProgram::of(const Program &P) {
  const auto &Slot =
      P.decodeCache(+[](const Program &Prog) -> std::shared_ptr<const void> {
        return std::shared_ptr<const void>(new DecodedProgram(Prog));
      });
  return *static_cast<const DecodedProgram *>(Slot.get());
}
