//===- profile/Profiler.h - Profile collection ---------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling pass: one functional run of the program on a given input
/// set, collecting the three profiles the compiler algorithms consume:
///
///  - edge profile (taken/not-taken counts, block execution counts),
///  - branch misprediction profile under a profiling-time predictor,
///  - loop iteration/size profile.
///
/// This corresponds to the paper's profiling run (Section 6.1): profiling is
/// done with either the same input set as the evaluation run or a different
/// one (Section 7.3 studies the difference).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_PROFILER_H
#define DMP_PROFILE_PROFILER_H

#include "cfg/Analysis.h"
#include "cfg/EdgeProfile.h"
#include "profile/BranchProfile.h"
#include "profile/LoopProfile.h"
#include "uarch/BranchPredictor.h"

#include <cstdint>
#include <vector>

namespace dmp::profile {

/// Profiling-run options.
struct ProfileOptions {
  /// Dynamic instruction budget of the profiling run.
  uint64_t MaxInstrs = 20'000'000;
  /// The predictor emulated at profile time to estimate misprediction
  /// rates.  Deliberately smaller/different from the runtime predictor.
  uarch::PredictorKind Predictor = uarch::PredictorKind::GShare;
};

/// Everything a profiling run produces.
struct ProfileData {
  cfg::EdgeProfile Edges;
  BranchProfile Branches;
  LoopProfile Loops;
  uint64_t DynamicInstrs = 0;
  /// True when the program ran to completion within the budget.
  bool Completed = false;

  /// Program-level mispredictions-per-kilo-instruction under the profiling
  /// predictor (the MPKI column of Table 2 is the *runtime* MPKI; this one
  /// is its profile-time analogue).
  double profileMPKI() const;
};

/// Runs \p P on \p MemoryImage and collects profiles.  \p PA must analyze
/// the same program.
ProfileData collectProfile(const ir::Program &P, const cfg::ProgramAnalysis &PA,
                           const std::vector<int64_t> &MemoryImage,
                           const ProfileOptions &Options = ProfileOptions());

} // namespace dmp::profile

#endif // DMP_PROFILE_PROFILER_H
