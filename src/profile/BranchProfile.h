//===- profile/BranchProfile.h - Branch misprediction profile ------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-static-branch misprediction profile, collected by running a
/// profiling-time predictor alongside functional emulation.  Inputs to the
/// short-hammock heuristic (misprediction rate >= 5%, Section 3.4) and the
/// High-BP-5 baseline selector (Section 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_BRANCHPROFILE_H
#define DMP_PROFILE_BRANCHPROFILE_H

#include <cstdint>
#include <unordered_map>

namespace dmp::profile {

/// Counts for one static conditional branch under the profiling predictor.
struct BranchStats {
  uint64_t Executed = 0;
  uint64_t Taken = 0;
  uint64_t Mispredicted = 0;

  double mispRate() const {
    return Executed == 0
               ? 0.0
               : static_cast<double>(Mispredicted) /
                     static_cast<double>(Executed);
  }
};

/// Map of static branch address -> profiling-time stats.
class BranchProfile {
public:
  void record(uint32_t Addr, bool Taken, bool Mispredicted) {
    BranchStats &S = Stats[Addr];
    ++S.Executed;
    if (Taken)
      ++S.Taken;
    if (Mispredicted)
      ++S.Mispredicted;
  }

  BranchStats stats(uint32_t Addr) const {
    auto It = Stats.find(Addr);
    return It == Stats.end() ? BranchStats() : It->second;
  }

  double mispRate(uint32_t Addr) const { return stats(Addr).mispRate(); }

  const std::unordered_map<uint32_t, BranchStats> &all() const {
    return Stats;
  }

  /// Bulk setter for deserialization.
  void setStats(uint32_t Addr, BranchStats S) { Stats[Addr] = S; }

  /// Total mispredictions across all static branches.
  uint64_t totalMispredictions() const;

private:
  std::unordered_map<uint32_t, BranchStats> Stats;
};

} // namespace dmp::profile

#endif // DMP_PROFILE_BRANCHPROFILE_H
