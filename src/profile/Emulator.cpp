//===- profile/Emulator.cpp - Functional ISA emulator --------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/Emulator.h"

#include "support/Compiler.h"
#include "support/MathExtras.h"

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::profile;

/// Smallest emulated memory, in 64-bit words.
static constexpr uint64_t MinMemoryWords = 1ull << 16;

namespace {

// Reference-interpreter copies of the guest arithmetic helpers.  Kept
// file-local (rather than reusing profile::isa) so the reference path stays
// textually self-contained: it is the oracle the predecoded fast path is
// diffed against, and should not share code with it beyond the ISA spec.
int64_t refWrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t refWrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t refWrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t refWrapShl(int64_t A, uint64_t Shamt) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << (Shamt & 63));
}

/// Retires the straight-line records [D, End) one at a time, dispatching on
/// the base opcode.  Used for budget-clamped partial runs (where a fused
/// group could straddle the cut) and as the portable fallback when the
/// threaded-dispatch extension is unavailable.
void execScalarRun(const DecodedInstr *D, const DecodedInstr *const End,
                   int64_t *DMP_RESTRICT RegsL, int64_t *DMP_RESTRICT MemL,
                   const uint64_t Mask) {
  for (; D != End; ++D) {
    switch (D->Op) {
    case Opcode::Add:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapAdd(RegsL[D->Src1], RegsL[D->Src2]);
      break;
    case Opcode::Sub:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapSub(RegsL[D->Src1], RegsL[D->Src2]);
      break;
    case Opcode::Mul:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapMul(RegsL[D->Src1], RegsL[D->Src2]);
      break;
    case Opcode::Div:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapDiv(RegsL[D->Src1], RegsL[D->Src2]);
      break;
    case Opcode::And:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] & RegsL[D->Src2];
      break;
    case Opcode::Or:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] | RegsL[D->Src2];
      break;
    case Opcode::Xor:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] ^ RegsL[D->Src2];
      break;
    case Opcode::Shl:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapShl(RegsL[D->Src1],
                                     static_cast<uint64_t>(RegsL[D->Src2]));
      break;
    case Opcode::Shr:
      if (D->Dst)
        RegsL[D->Dst] = static_cast<int64_t>(
            static_cast<uint64_t>(RegsL[D->Src1]) >>
            (static_cast<uint64_t>(RegsL[D->Src2]) & 63));
      break;
    case Opcode::Slt:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] < RegsL[D->Src2] ? 1 : 0;
      break;
    case Opcode::AddI:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapAdd(RegsL[D->Src1], D->Imm);
      break;
    case Opcode::MulI:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapMul(RegsL[D->Src1], D->Imm);
      break;
    case Opcode::AndI:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] & D->Imm;
      break;
    case Opcode::SltI:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] < D->Imm ? 1 : 0;
      break;
    case Opcode::LoadImm:
      if (D->Dst)
        RegsL[D->Dst] = D->Imm;
      break;
    case Opcode::Load:
      if (D->Dst)
        RegsL[D->Dst] =
            MemL[static_cast<uint64_t>(isa::wrapAdd(RegsL[D->Src1], D->Imm)) &
                 Mask];
      break;
    case Opcode::Store:
      MemL[static_cast<uint64_t>(isa::wrapAdd(RegsL[D->Src1], D->Imm)) &
           Mask] = RegsL[D->Src2];
      break;
    default: // Nop; control flow never appears inside a run.
      break;
    }
  }
}

} // namespace

Emulator::Emulator(const Program &P, const std::vector<int64_t> &MemoryImage)
    : P(P), Code(DecodedProgram::of(P).data()), Memory(MemoryImage) {
  assert(P.isFinalized() && "emulating an unfinalized program");
  uint64_t Words = Memory.size() < MinMemoryWords ? MinMemoryWords
                                                  : Memory.size();
  if (!isPowerOf2(Words))
    Words = 1ull << log2Ceil(Words);
  Memory.resize(Words, 0);
  AddrMask = Words - 1;
  PC = P.getMain()->getEntryAddr();
  CallStack.reserve(64);
}

void Emulator::run(uint64_t MaxInstrs) {
  // Hoist the hot state into restrict-qualified locals: the register file
  // and data memory are distinct objects, but both are int64_t arrays, so
  // without restrict every Store forces the compiler to reload registers
  // (and the vector's data pointer) on the next instruction.
  int64_t *DMP_RESTRICT RegsL = Regs;
  int64_t *DMP_RESTRICT MemL = Memory.data();
  const DecodedInstr *DMP_RESTRICT CodeL = Code;
  const uint64_t Mask = AddrMask;
  uint32_t LPC = PC;
  uint64_t Done = Executed;

  while (!Halted && Done < MaxInstrs) {
    const DecodedInstr *D = CodeL + LPC;
    uint64_t Run = D->RunLen;
    if (DMP_UNLIKELY(Run > MaxInstrs - Done)) {
      // Budget-clamped partial run: a fused group could straddle the cut,
      // so retire it record by record on the base opcode; the loop
      // condition then ends the call with the budget met exactly.
      Run = MaxInstrs - Done;
      execScalarRun(D, D + Run, RegsL, MemL, Mask);
      LPC += static_cast<uint32_t>(Run);
      Done += Run;
      continue;
    }
    // A straight-line run: every instruction falls through and cannot halt,
    // so retire the whole run with one PC/Executed update, no DynInstr, and
    // one dispatch per instruction — or per fused group.
    const DecodedInstr *const End = D + Run;
#if defined(__GNUC__)
    {
      // Direct-threaded dispatch (GNU labels-as-values): every handler ends
      // in its own indirect jump, so the host branch predictor learns a
      // separate successor history per opcode instead of sharing one
      // switch site.  Indexed by DecodedInstr::FuseOp — base opcodes in
      // enum order, then the fuse:: superops.  Control-flow opcodes never
      // occur inside a run and alias the Nop handler only to keep the
      // table total.
      static_assert(static_cast<unsigned>(Opcode::Add) == 0 &&
                        static_cast<unsigned>(Opcode::Store) == 16 &&
                        static_cast<unsigned>(Opcode::Halt) == 22 &&
                        fuse::AddIXorAdd == 23 && fuse::NumDispatchOps == 28,
                    "dispatch table must match Opcode and fuse:: order");
      static const void *const Dispatch[fuse::NumDispatchOps] = {
          &&Op_Add,     &&Op_Sub,  &&Op_Mul,   &&Op_Div,  &&Op_And,
          &&Op_Or,      &&Op_Xor,  &&Op_Shl,   &&Op_Shr,  &&Op_Slt,
          &&Op_AddI,    &&Op_MulI, &&Op_AndI,  &&Op_SltI, &&Op_LoadImm,
          &&Op_Load,    &&Op_Store,
          &&Op_Nop /*CondBr*/, &&Op_Nop /*Jmp*/, &&Op_Nop /*Call*/,
          &&Op_Nop /*Ret*/,    &&Op_Nop,         &&Op_Nop /*Halt*/,
          &&Op_AddIXorAdd,     &&Op_AddIXorAdd2, &&Op_AddIXor,
          &&Op_XorAdd,         &&Op_AddAddI};
#define DMP_DISPATCH_NEXT(Step)                                                \
  do {                                                                         \
    D += (Step);                                                               \
    if (D >= End)                                                              \
      goto RunDone;                                                            \
    goto *Dispatch[D->FuseOp];                                                 \
  } while (false)
      if (D == End)
        goto RunDone;
      goto *Dispatch[D->FuseOp];
    Op_Add:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapAdd(RegsL[D->Src1], RegsL[D->Src2]);
      DMP_DISPATCH_NEXT(1);
    Op_Sub:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapSub(RegsL[D->Src1], RegsL[D->Src2]);
      DMP_DISPATCH_NEXT(1);
    Op_Mul:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapMul(RegsL[D->Src1], RegsL[D->Src2]);
      DMP_DISPATCH_NEXT(1);
    Op_Div:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapDiv(RegsL[D->Src1], RegsL[D->Src2]);
      DMP_DISPATCH_NEXT(1);
    Op_And:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] & RegsL[D->Src2];
      DMP_DISPATCH_NEXT(1);
    Op_Or:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] | RegsL[D->Src2];
      DMP_DISPATCH_NEXT(1);
    Op_Xor:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] ^ RegsL[D->Src2];
      DMP_DISPATCH_NEXT(1);
    Op_Shl:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapShl(RegsL[D->Src1],
                                     static_cast<uint64_t>(RegsL[D->Src2]));
      DMP_DISPATCH_NEXT(1);
    Op_Shr:
      if (D->Dst)
        RegsL[D->Dst] = static_cast<int64_t>(
            static_cast<uint64_t>(RegsL[D->Src1]) >>
            (static_cast<uint64_t>(RegsL[D->Src2]) & 63));
      DMP_DISPATCH_NEXT(1);
    Op_Slt:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] < RegsL[D->Src2] ? 1 : 0;
      DMP_DISPATCH_NEXT(1);
    Op_AddI:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapAdd(RegsL[D->Src1], D->Imm);
      DMP_DISPATCH_NEXT(1);
    Op_MulI:
      if (D->Dst)
        RegsL[D->Dst] = isa::wrapMul(RegsL[D->Src1], D->Imm);
      DMP_DISPATCH_NEXT(1);
    Op_AndI:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] & D->Imm;
      DMP_DISPATCH_NEXT(1);
    Op_SltI:
      if (D->Dst)
        RegsL[D->Dst] = RegsL[D->Src1] < D->Imm ? 1 : 0;
      DMP_DISPATCH_NEXT(1);
    Op_LoadImm:
      if (D->Dst)
        RegsL[D->Dst] = D->Imm;
      DMP_DISPATCH_NEXT(1);
    Op_Load:
      if (D->Dst)
        RegsL[D->Dst] = MemL[static_cast<uint64_t>(
                                 isa::wrapAdd(RegsL[D->Src1], D->Imm)) &
                             Mask];
      DMP_DISPATCH_NEXT(1);
    Op_Store:
      MemL[static_cast<uint64_t>(isa::wrapAdd(RegsL[D->Src1], D->Imm)) &
           Mask] = RegsL[D->Src2];
      DMP_DISPATCH_NEXT(1);
    Op_Nop:
      DMP_DISPATCH_NEXT(1);
    Op_AddIXorAdd:
      if (D[0].Dst)
        RegsL[D[0].Dst] = isa::wrapAdd(RegsL[D[0].Src1], D[0].Imm);
      if (D[1].Dst)
        RegsL[D[1].Dst] = RegsL[D[1].Src1] ^ RegsL[D[1].Src2];
      if (D[2].Dst)
        RegsL[D[2].Dst] = isa::wrapAdd(RegsL[D[2].Src1], RegsL[D[2].Src2]);
      DMP_DISPATCH_NEXT(3);
    Op_AddIXorAdd2:
      if (D[0].Dst)
        RegsL[D[0].Dst] = isa::wrapAdd(RegsL[D[0].Src1], D[0].Imm);
      if (D[1].Dst)
        RegsL[D[1].Dst] = RegsL[D[1].Src1] ^ RegsL[D[1].Src2];
      if (D[2].Dst)
        RegsL[D[2].Dst] = isa::wrapAdd(RegsL[D[2].Src1], RegsL[D[2].Src2]);
      if (D[3].Dst)
        RegsL[D[3].Dst] = isa::wrapAdd(RegsL[D[3].Src1], D[3].Imm);
      if (D[4].Dst)
        RegsL[D[4].Dst] = RegsL[D[4].Src1] ^ RegsL[D[4].Src2];
      if (D[5].Dst)
        RegsL[D[5].Dst] = isa::wrapAdd(RegsL[D[5].Src1], RegsL[D[5].Src2]);
      DMP_DISPATCH_NEXT(6);
    Op_AddIXor:
      if (D[0].Dst)
        RegsL[D[0].Dst] = isa::wrapAdd(RegsL[D[0].Src1], D[0].Imm);
      if (D[1].Dst)
        RegsL[D[1].Dst] = RegsL[D[1].Src1] ^ RegsL[D[1].Src2];
      DMP_DISPATCH_NEXT(2);
    Op_XorAdd:
      if (D[0].Dst)
        RegsL[D[0].Dst] = RegsL[D[0].Src1] ^ RegsL[D[0].Src2];
      if (D[1].Dst)
        RegsL[D[1].Dst] = isa::wrapAdd(RegsL[D[1].Src1], RegsL[D[1].Src2]);
      DMP_DISPATCH_NEXT(2);
    Op_AddAddI:
      if (D[0].Dst)
        RegsL[D[0].Dst] = isa::wrapAdd(RegsL[D[0].Src1], RegsL[D[0].Src2]);
      if (D[1].Dst)
        RegsL[D[1].Dst] = isa::wrapAdd(RegsL[D[1].Src1], D[1].Imm);
      DMP_DISPATCH_NEXT(2);
    RunDone:;
#undef DMP_DISPATCH_NEXT
    }
#else
    execScalarRun(D, End, RegsL, MemL, Mask);
#endif
    LPC += static_cast<uint32_t>(Run);
    Done += Run;
    if (Done >= MaxInstrs)
      break;
    // The instruction at LPC is now the control-flow terminator of the run
    // (or we started on one: Run == 0).  Handle it inline — same semantics
    // as step(), minus the DynInstr bookkeeping no caller of run() needs.
    const DecodedInstr &T = CodeL[LPC];
    ++Done;
    switch (T.Op) {
    case Opcode::CondBr:
      LPC = isa::evalCond(T.Cond, RegsL[T.Src1], RegsL[T.Src2]) ? T.Target
                                                                : LPC + 1;
      break;
    case Opcode::Jmp:
      LPC = T.Target;
      break;
    case Opcode::Call:
      CallStack.push_back(LPC + 1);
      LPC = T.Target;
      break;
    case Opcode::Ret:
      if (CallStack.empty())
        Halted = true; // PC stays on the Ret, as in step().
      else {
        LPC = CallStack.back();
        CallStack.pop_back();
      }
      break;
    default: // Halt (the only other RunLen == 0 opcode).
      Halted = true;
      break;
    }
  }
  PC = LPC;
  Executed = Done;
}

bool Emulator::stepReference(DynInstr &Out) {
  if (Halted)
    return false;

  const Instruction &I = P.instrAt(PC);
  Out.I = &I;
  Out.Addr = PC;
  Out.Taken = false;
  Out.MemAddr = 0;

  auto readReg = [this](Reg R) -> int64_t {
    return R == RegZero ? 0 : Regs[R];
  };
  auto writeReg = [this](Reg R, int64_t V) {
    if (R != RegZero)
      Regs[R] = V;
  };

  uint32_t Next = PC + 1;
  switch (I.Op) {
  case Opcode::Add:
    writeReg(I.Dst, refWrapAdd(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Sub:
    writeReg(I.Dst, refWrapSub(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Mul:
    writeReg(I.Dst, refWrapMul(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Div: {
    const int64_t Num = readReg(I.Src1);
    const int64_t Den = readReg(I.Src2);
    // Guest semantics: x/0 = 0 and INT64_MIN/-1 wraps to itself, so the
    // host division is never undefined.
    writeReg(I.Dst, Den == 0 ? 0
             : (Num == INT64_MIN && Den == -1) ? Num
                                               : Num / Den);
    break;
  }
  case Opcode::And:
    writeReg(I.Dst, readReg(I.Src1) & readReg(I.Src2));
    break;
  case Opcode::Or:
    writeReg(I.Dst, readReg(I.Src1) | readReg(I.Src2));
    break;
  case Opcode::Xor:
    writeReg(I.Dst, readReg(I.Src1) ^ readReg(I.Src2));
    break;
  case Opcode::Shl:
    writeReg(I.Dst, refWrapShl(readReg(I.Src1),
                               static_cast<uint64_t>(readReg(I.Src2))));
    break;
  case Opcode::Shr:
    writeReg(I.Dst, static_cast<int64_t>(
                        static_cast<uint64_t>(readReg(I.Src1)) >>
                        (static_cast<uint64_t>(readReg(I.Src2)) & 63)));
    break;
  case Opcode::Slt:
    writeReg(I.Dst, readReg(I.Src1) < readReg(I.Src2) ? 1 : 0);
    break;
  case Opcode::AddI:
    writeReg(I.Dst, refWrapAdd(readReg(I.Src1), I.Imm));
    break;
  case Opcode::MulI:
    writeReg(I.Dst, refWrapMul(readReg(I.Src1), I.Imm));
    break;
  case Opcode::AndI:
    writeReg(I.Dst, readReg(I.Src1) & I.Imm);
    break;
  case Opcode::SltI:
    writeReg(I.Dst, readReg(I.Src1) < I.Imm ? 1 : 0);
    break;
  case Opcode::LoadImm:
    writeReg(I.Dst, I.Imm);
    break;
  case Opcode::Load: {
    const uint64_t Addr =
        static_cast<uint64_t>(refWrapAdd(readReg(I.Src1), I.Imm)) & AddrMask;
    Out.MemAddr = Addr;
    writeReg(I.Dst, Memory[Addr]);
    break;
  }
  case Opcode::Store: {
    const uint64_t Addr =
        static_cast<uint64_t>(refWrapAdd(readReg(I.Src1), I.Imm)) & AddrMask;
    Out.MemAddr = Addr;
    Memory[Addr] = readReg(I.Src2);
    break;
  }
  case Opcode::CondBr:
    Out.Taken = I.evalCond(readReg(I.Src1), readReg(I.Src2));
    if (Out.Taken)
      Next = I.Target->getStartAddr();
    break;
  case Opcode::Jmp:
    Next = I.Target->getStartAddr();
    break;
  case Opcode::Call:
    CallStack.push_back(PC + 1);
    Next = I.Callee->getEntryAddr();
    break;
  case Opcode::Ret:
    if (CallStack.empty()) {
      Halted = true;
      Next = PC;
    } else {
      Next = CallStack.back();
      CallStack.pop_back();
    }
    break;
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    Halted = true;
    Next = PC;
    break;
  }

  Out.NextAddr = Next;
  PC = Next;
  ++Executed;
  return true;
}
