//===- profile/Emulator.cpp - Functional ISA emulator --------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/Emulator.h"

#include "support/Compiler.h"
#include "support/MathExtras.h"

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::profile;

/// Smallest emulated memory, in 64-bit words.
static constexpr uint64_t MinMemoryWords = 1ull << 16;

namespace {

// Guest integer semantics are two's-complement wraparound mod 2^64; compute
// in unsigned so host signed-overflow UB never enters the emulated ISA.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapShl(int64_t A, uint64_t Shamt) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << (Shamt & 63));
}

} // namespace

Emulator::Emulator(const Program &P, const std::vector<int64_t> &MemoryImage)
    : P(P), Memory(MemoryImage) {
  assert(P.isFinalized() && "emulating an unfinalized program");
  uint64_t Words = Memory.size() < MinMemoryWords ? MinMemoryWords
                                                  : Memory.size();
  if (!isPowerOf2(Words))
    Words = 1ull << log2Ceil(Words);
  Memory.resize(Words, 0);
  AddrMask = Words - 1;
  PC = P.getMain()->getEntryAddr();
  CallStack.reserve(64);
}

bool Emulator::step(DynInstr &Out) {
  if (Halted)
    return false;

  const Instruction &I = P.instrAt(PC);
  Out.I = &I;
  Out.Addr = PC;
  Out.Taken = false;
  Out.MemAddr = 0;

  auto readReg = [this](Reg R) -> int64_t {
    return R == RegZero ? 0 : Regs[R];
  };
  auto writeReg = [this](Reg R, int64_t V) {
    if (R != RegZero)
      Regs[R] = V;
  };

  uint32_t Next = PC + 1;
  switch (I.Op) {
  case Opcode::Add:
    writeReg(I.Dst, wrapAdd(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Sub:
    writeReg(I.Dst, wrapSub(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Mul:
    writeReg(I.Dst, wrapMul(readReg(I.Src1), readReg(I.Src2)));
    break;
  case Opcode::Div: {
    const int64_t Num = readReg(I.Src1);
    const int64_t Den = readReg(I.Src2);
    // Guest semantics: x/0 = 0 and INT64_MIN/-1 wraps to itself, so the
    // host division is never undefined.
    writeReg(I.Dst, Den == 0 ? 0
             : (Num == INT64_MIN && Den == -1) ? Num
                                               : Num / Den);
    break;
  }
  case Opcode::And:
    writeReg(I.Dst, readReg(I.Src1) & readReg(I.Src2));
    break;
  case Opcode::Or:
    writeReg(I.Dst, readReg(I.Src1) | readReg(I.Src2));
    break;
  case Opcode::Xor:
    writeReg(I.Dst, readReg(I.Src1) ^ readReg(I.Src2));
    break;
  case Opcode::Shl:
    writeReg(I.Dst, wrapShl(readReg(I.Src1),
                            static_cast<uint64_t>(readReg(I.Src2))));
    break;
  case Opcode::Shr:
    writeReg(I.Dst, static_cast<int64_t>(
                        static_cast<uint64_t>(readReg(I.Src1)) >>
                        (static_cast<uint64_t>(readReg(I.Src2)) & 63)));
    break;
  case Opcode::Slt:
    writeReg(I.Dst, readReg(I.Src1) < readReg(I.Src2) ? 1 : 0);
    break;
  case Opcode::AddI:
    writeReg(I.Dst, wrapAdd(readReg(I.Src1), I.Imm));
    break;
  case Opcode::MulI:
    writeReg(I.Dst, wrapMul(readReg(I.Src1), I.Imm));
    break;
  case Opcode::AndI:
    writeReg(I.Dst, readReg(I.Src1) & I.Imm);
    break;
  case Opcode::SltI:
    writeReg(I.Dst, readReg(I.Src1) < I.Imm ? 1 : 0);
    break;
  case Opcode::LoadImm:
    writeReg(I.Dst, I.Imm);
    break;
  case Opcode::Load: {
    const uint64_t Addr =
        static_cast<uint64_t>(wrapAdd(readReg(I.Src1), I.Imm)) & AddrMask;
    Out.MemAddr = Addr;
    writeReg(I.Dst, Memory[Addr]);
    break;
  }
  case Opcode::Store: {
    const uint64_t Addr =
        static_cast<uint64_t>(wrapAdd(readReg(I.Src1), I.Imm)) & AddrMask;
    Out.MemAddr = Addr;
    Memory[Addr] = readReg(I.Src2);
    break;
  }
  case Opcode::CondBr:
    Out.Taken = I.evalCond(readReg(I.Src1), readReg(I.Src2));
    if (Out.Taken)
      Next = I.Target->getStartAddr();
    break;
  case Opcode::Jmp:
    Next = I.Target->getStartAddr();
    break;
  case Opcode::Call:
    CallStack.push_back(PC + 1);
    Next = I.Callee->getEntryAddr();
    break;
  case Opcode::Ret:
    if (CallStack.empty()) {
      Halted = true;
      Next = PC;
    } else {
      Next = CallStack.back();
      CallStack.pop_back();
    }
    break;
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    Halted = true;
    Next = PC;
    break;
  }

  Out.NextAddr = Next;
  PC = Next;
  ++Executed;
  return true;
}
