//===- profile/Emulator.h - Functional ISA emulator ----------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional (architectural) emulator of the DMP ISA.  It is the ground
/// truth for both the profiler (edge/branch/loop profiles) and the cycle
/// simulator (which consumes the dynamic instruction stream the emulator
/// produces: trace-driven timing with execution-driven outcomes).
///
/// Two execution paths share one architectural state:
///  - step() dispatches over the predecoded flat array (DecodedProgram) and
///    is inlined into every caller's loop; run() additionally retires whole
///    straight-line runs without per-instruction bookkeeping.
///  - stepReference() re-dispatches from the IR every step — the original
///    interpreter, kept verbatim as the oracle the fast path is
///    differentially tested against (and used by the fuzz oracle's
///    reference leg so the two legs stay independent).
/// Both paths must be bit-identical in every observable: registers, memory,
/// executed count, and every DynInstr field.  See DESIGN.md "Fast paths &
/// the digest-identity contract".
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_EMULATOR_H
#define DMP_PROFILE_EMULATOR_H

#include "profile/DecodedProgram.h"

#include <cstdint>
#include <vector>

namespace dmp::profile {

/// One dynamically executed instruction, as seen by emulator clients.
struct DynInstr {
  const ir::Instruction *I = nullptr;
  uint32_t Addr = 0;
  /// Address of the next instruction actually executed.
  uint32_t NextAddr = 0;
  /// For CondBr: the resolved direction.
  bool Taken = false;
  /// For Load/Store: the effective word address.
  uint64_t MemAddr = 0;
};

/// Architectural state + stepper.
///
/// Memory is a flat array of 64-bit words; effective addresses wrap (are
/// masked) to the memory size, so every program is memory-safe by
/// construction.  r0 reads as zero.  Ret in main (empty call stack) halts.
class Emulator {
public:
  /// \p MemoryImage is the input data set; it is copied so one image can
  /// drive many runs.  Memory is padded to the next power of two, at least
  /// 64K words.
  Emulator(const ir::Program &P, const std::vector<int64_t> &MemoryImage);

  /// Executes one instruction over the predecoded fast path.  Returns false
  /// (and leaves \p Out untouched) when the program has halted.
  ///
  /// One flat switch covers every opcode — a single dispatch per step, like
  /// the reference interpreter, but over the dense DecodedInstr record with
  /// pre-resolved targets and unconditional register reads.
  bool step(DynInstr &Out) {
    if (Halted)
      return false;
    const DecodedInstr &D = Code[PC];
    Out.I = D.Src;
    Out.Addr = PC;
    Out.Taken = false;
    Out.MemAddr = 0;
    uint32_t Next = PC + 1;
    switch (D.Op) {
    case ir::Opcode::Add:
      writeReg(D.Dst, isa::wrapAdd(Regs[D.Src1], Regs[D.Src2]));
      break;
    case ir::Opcode::Sub:
      writeReg(D.Dst, isa::wrapSub(Regs[D.Src1], Regs[D.Src2]));
      break;
    case ir::Opcode::Mul:
      writeReg(D.Dst, isa::wrapMul(Regs[D.Src1], Regs[D.Src2]));
      break;
    case ir::Opcode::Div:
      writeReg(D.Dst, isa::wrapDiv(Regs[D.Src1], Regs[D.Src2]));
      break;
    case ir::Opcode::And:
      writeReg(D.Dst, Regs[D.Src1] & Regs[D.Src2]);
      break;
    case ir::Opcode::Or:
      writeReg(D.Dst, Regs[D.Src1] | Regs[D.Src2]);
      break;
    case ir::Opcode::Xor:
      writeReg(D.Dst, Regs[D.Src1] ^ Regs[D.Src2]);
      break;
    case ir::Opcode::Shl:
      writeReg(D.Dst, isa::wrapShl(Regs[D.Src1],
                                   static_cast<uint64_t>(Regs[D.Src2])));
      break;
    case ir::Opcode::Shr:
      writeReg(D.Dst, static_cast<int64_t>(
                          static_cast<uint64_t>(Regs[D.Src1]) >>
                          (static_cast<uint64_t>(Regs[D.Src2]) & 63)));
      break;
    case ir::Opcode::Slt:
      writeReg(D.Dst, Regs[D.Src1] < Regs[D.Src2] ? 1 : 0);
      break;
    case ir::Opcode::AddI:
      writeReg(D.Dst, isa::wrapAdd(Regs[D.Src1], D.Imm));
      break;
    case ir::Opcode::MulI:
      writeReg(D.Dst, isa::wrapMul(Regs[D.Src1], D.Imm));
      break;
    case ir::Opcode::AndI:
      writeReg(D.Dst, Regs[D.Src1] & D.Imm);
      break;
    case ir::Opcode::SltI:
      writeReg(D.Dst, Regs[D.Src1] < D.Imm ? 1 : 0);
      break;
    case ir::Opcode::LoadImm:
      writeReg(D.Dst, D.Imm);
      break;
    case ir::Opcode::Load: {
      const uint64_t Addr =
          static_cast<uint64_t>(isa::wrapAdd(Regs[D.Src1], D.Imm)) & AddrMask;
      Out.MemAddr = Addr;
      writeReg(D.Dst, Memory[Addr]);
      break;
    }
    case ir::Opcode::Store: {
      const uint64_t Addr =
          static_cast<uint64_t>(isa::wrapAdd(Regs[D.Src1], D.Imm)) & AddrMask;
      Out.MemAddr = Addr;
      Memory[Addr] = Regs[D.Src2];
      break;
    }
    case ir::Opcode::CondBr:
      Out.Taken = isa::evalCond(D.Cond, Regs[D.Src1], Regs[D.Src2]);
      if (Out.Taken)
        Next = D.Target;
      break;
    case ir::Opcode::Jmp:
      Next = D.Target;
      break;
    case ir::Opcode::Call:
      CallStack.push_back(PC + 1);
      Next = D.Target;
      break;
    case ir::Opcode::Ret:
      if (CallStack.empty()) {
        Halted = true;
        Next = PC;
      } else {
        Next = CallStack.back();
        CallStack.pop_back();
      }
      break;
    case ir::Opcode::Nop:
      break;
    case ir::Opcode::Halt:
      Halted = true;
      Next = PC;
      break;
    }
    Out.NextAddr = Next;
    PC = Next;
    ++Executed;
    return true;
  }

  /// Executes until \p MaxInstrs instructions have retired in total or the
  /// program halts — bit-identical in final state to
  /// `DynInstr D; while (executedCount() < MaxInstrs && step(D));` but
  /// retires straight-line runs in a batch, without materializing DynInstr
  /// records or re-checking halt/budget per instruction.
  void run(uint64_t MaxInstrs);

  /// Executes one instruction by re-decoding from the IR — the original
  /// interpreter loop, preserved as the reference semantics for the
  /// differential tests and the fuzz oracle.  Interchangeable with step()
  /// at any instruction boundary.
  bool stepReference(DynInstr &Out);

  bool isHalted() const { return Halted; }
  uint64_t executedCount() const { return Executed; }

  int64_t reg(ir::Reg R) const { return R == ir::RegZero ? 0 : Regs[R]; }
  int64_t memWord(uint64_t WordAddr) const {
    return Memory[WordAddr & AddrMask];
  }
  /// Size of the (padded) memory image, in 64-bit words.
  uint64_t memoryWords() const { return Memory.size(); }
  uint32_t pc() const { return PC; }
  size_t callDepth() const { return CallStack.size(); }

private:
  /// r0 is hardwired to zero: writes are dropped, which keeps Regs[0] == 0
  /// forever and lets every read be a plain array load.
  void writeReg(ir::Reg R, int64_t V) {
    if (R != ir::RegZero)
      Regs[R] = V;
  }

  const ir::Program &P;
  /// Flat decoded array, owned by the Program's decode cache (valid as long
  /// as P is).
  const DecodedInstr *Code;
  std::vector<int64_t> Memory;
  uint64_t AddrMask;
  int64_t Regs[ir::NumRegs] = {};
  uint32_t PC = 0;
  std::vector<uint32_t> CallStack;
  bool Halted = false;
  uint64_t Executed = 0;
};

} // namespace dmp::profile

#endif // DMP_PROFILE_EMULATOR_H
