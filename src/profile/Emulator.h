//===- profile/Emulator.h - Functional ISA emulator ----------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional (architectural) emulator of the DMP ISA.  It is the ground
/// truth for both the profiler (edge/branch/loop profiles) and the cycle
/// simulator (which consumes the dynamic instruction stream the emulator
/// produces: trace-driven timing with execution-driven outcomes).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_EMULATOR_H
#define DMP_PROFILE_EMULATOR_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace dmp::profile {

/// One dynamically executed instruction, as seen by emulator clients.
struct DynInstr {
  const ir::Instruction *I = nullptr;
  uint32_t Addr = 0;
  /// Address of the next instruction actually executed.
  uint32_t NextAddr = 0;
  /// For CondBr: the resolved direction.
  bool Taken = false;
  /// For Load/Store: the effective word address.
  uint64_t MemAddr = 0;
};

/// Architectural state + stepper.
///
/// Memory is a flat array of 64-bit words; effective addresses wrap (are
/// masked) to the memory size, so every program is memory-safe by
/// construction.  r0 reads as zero.  Ret in main (empty call stack) halts.
class Emulator {
public:
  /// \p MemoryImage is the input data set; it is copied so one image can
  /// drive many runs.  Memory is padded to the next power of two, at least
  /// 64K words.
  Emulator(const ir::Program &P, const std::vector<int64_t> &MemoryImage);

  /// Executes one instruction.  Returns false (and leaves \p Out untouched)
  /// when the program has halted.
  bool step(DynInstr &Out);

  bool isHalted() const { return Halted; }
  uint64_t executedCount() const { return Executed; }

  int64_t reg(ir::Reg R) const { return R == ir::RegZero ? 0 : Regs[R]; }
  int64_t memWord(uint64_t WordAddr) const {
    return Memory[WordAddr & AddrMask];
  }
  /// Size of the (padded) memory image, in 64-bit words.
  uint64_t memoryWords() const { return Memory.size(); }
  uint32_t pc() const { return PC; }
  size_t callDepth() const { return CallStack.size(); }

private:
  const ir::Program &P;
  std::vector<int64_t> Memory;
  uint64_t AddrMask;
  int64_t Regs[ir::NumRegs] = {};
  uint32_t PC = 0;
  std::vector<uint32_t> CallStack;
  bool Halted = false;
  uint64_t Executed = 0;
};

} // namespace dmp::profile

#endif // DMP_PROFILE_EMULATOR_H
