//===- profile/TwoDProfile.cpp - Input-dependent branch detection -------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/TwoDProfile.h"

#include "profile/Emulator.h"
#include "uarch/BranchPredictor.h"

#include <cmath>

using namespace dmp;
using namespace dmp::profile;

double PhaseStats::meanMispRate() const {
  double Sum = 0.0;
  unsigned Active = 0;
  for (const auto &[Execs, Misps] : Slices) {
    if (Execs == 0)
      continue;
    Sum += static_cast<double>(Misps) / static_cast<double>(Execs);
    ++Active;
  }
  return Active == 0 ? 0.0 : Sum / Active;
}

double PhaseStats::mispRateStdDev() const {
  const double Mean = meanMispRate();
  double SumSq = 0.0;
  unsigned Active = 0;
  for (const auto &[Execs, Misps] : Slices) {
    if (Execs == 0)
      continue;
    const double Rate =
        static_cast<double>(Misps) / static_cast<double>(Execs);
    SumSq += (Rate - Mean) * (Rate - Mean);
    ++Active;
  }
  return Active == 0 ? 0.0 : std::sqrt(SumSq / Active);
}

double PhaseStats::overallMispRate() const {
  uint64_t Execs = 0, Misps = 0;
  for (const auto &[E, M] : Slices) {
    Execs += E;
    Misps += M;
  }
  return Execs == 0 ? 0.0
                    : static_cast<double>(Misps) / static_cast<double>(Execs);
}

bool TwoDProfileData::isPotentiallyMispredicted(uint32_t Addr,
                                                double MinMispRate,
                                                double MinStdDev) const {
  const PhaseStats *S = find(Addr);
  if (!S)
    return false; // never executed
  return S->overallMispRate() >= MinMispRate ||
         S->mispRateStdDev() >= MinStdDev;
}

TwoDProfileData profile::collectTwoDProfile(
    const ir::Program &P, const std::vector<int64_t> &MemoryImage,
    unsigned NumSlices, uint64_t MaxInstrs) {
  TwoDProfileData Data;
  Emulator Emu(P, MemoryImage);
  auto Predictor = uarch::createPredictor(uarch::PredictorKind::GShare);

  const uint64_t SliceLen = std::max<uint64_t>(1, MaxInstrs / NumSlices);
  DynInstr D;
  while (Emu.executedCount() < MaxInstrs && Emu.step(D)) {
    if (D.I->Op != ir::Opcode::CondBr)
      continue;
    const bool Predicted = Predictor->predict(D.Addr);
    Predictor->update(D.Addr, D.Taken);
    const unsigned Slice = static_cast<unsigned>(
        std::min<uint64_t>(Emu.executedCount() / SliceLen, NumSlices - 1));
    PhaseStats &S = Data.statsFor(D.Addr);
    if (S.Slices.size() < NumSlices)
      S.Slices.resize(NumSlices, {0, 0});
    ++S.Slices[Slice].first;
    if (Predicted != D.Taken)
      ++S.Slices[Slice].second;
  }
  return Data;
}

core::DivergeMap profile::filterAlwaysEasyBranches(
    const core::DivergeMap &Map, const TwoDProfileData &Profile,
    size_t *Dropped, double MinMispRate, double MinStdDev) {
  core::DivergeMap Filtered;
  size_t DroppedCount = 0;
  for (uint32_t Addr : Map.sortedAddrs()) {
    if (Profile.isPotentiallyMispredicted(Addr, MinMispRate, MinStdDev))
      Filtered.add(Addr, *Map.find(Addr));
    else
      ++DroppedCount;
  }
  if (Dropped)
    *Dropped = DroppedCount;
  return Filtered;
}
