//===- profile/TwoDProfile.h - Input-dependent branch detection -----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 2D-profiling (Kim, Suleman, Mutlu & Patt, 2006), the extension the paper
/// proposes adopting in Section 8.3 / future work: detect *input-dependent*
/// branches from a single profiling run by slicing the run into time phases
/// and measuring how a branch's misprediction rate varies across phases.
/// Branches whose rate is both low and stable are "always easy to predict";
/// excluding them from diverge-branch selection reduces static code size
/// and confidence-estimator aliasing without losing coverage.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_PROFILE_TWODPROFILE_H
#define DMP_PROFILE_TWODPROFILE_H

#include "core/DivergeInfo.h"
#include "ir/Program.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dmp::profile {

/// Per-branch phase-resolved misprediction statistics.
struct PhaseStats {
  /// Per-slice (executed, mispredicted) counts.
  std::vector<std::pair<uint64_t, uint64_t>> Slices;

  /// Mean per-slice misprediction rate (over slices where the branch ran).
  double meanMispRate() const;
  /// Standard deviation of the per-slice misprediction rate: the
  /// 2D-profiling signal.  High deviation = phase/input-dependent.
  double mispRateStdDev() const;
  /// Total misprediction rate over the whole run.
  double overallMispRate() const;
};

/// Result of a 2D-profiling run.
class TwoDProfileData {
public:
  PhaseStats &statsFor(uint32_t Addr) { return Stats[Addr]; }
  const PhaseStats *find(uint32_t Addr) const {
    auto It = Stats.find(Addr);
    return It == Stats.end() ? nullptr : &It->second;
  }
  const std::unordered_map<uint32_t, PhaseStats> &all() const {
    return Stats;
  }

  /// A branch is *potentially mispredicted* when its overall misprediction
  /// rate exceeds \p MinMispRate or its per-phase rate varies by more than
  /// \p MinStdDev (it may be easy now but hard with another input).
  bool isPotentiallyMispredicted(uint32_t Addr, double MinMispRate = 0.02,
                                 double MinStdDev = 0.02) const;

private:
  std::unordered_map<uint32_t, PhaseStats> Stats;
};

/// Runs the program once and collects per-phase branch statistics with a
/// profiling-time predictor.  \p NumSlices time phases over at most
/// \p MaxInstrs instructions.
TwoDProfileData collectTwoDProfile(const ir::Program &P,
                                   const std::vector<int64_t> &MemoryImage,
                                   unsigned NumSlices = 16,
                                   uint64_t MaxInstrs = 20'000'000);

/// The paper's proposed application: drop diverge branches that 2D
/// profiling shows are always easy to predict.  Returns the filtered map
/// and (via \p Dropped) how many entries were removed.
core::DivergeMap filterAlwaysEasyBranches(const core::DivergeMap &Map,
                                          const TwoDProfileData &Profile,
                                          size_t *Dropped = nullptr,
                                          double MinMispRate = 0.02,
                                          double MinStdDev = 0.02);

} // namespace dmp::profile

#endif // DMP_PROFILE_TWODPROFILE_H
