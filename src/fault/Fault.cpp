//===- fault/Fault.cpp - Deterministic fault injection --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"
#include "support/ExitCodes.h"

#include <unistd.h>

using namespace dmp;
using namespace dmp::fault;

const char *fault::siteName(Site S) {
  switch (S) {
  case Site::CacheLoad:
    return "cache-load";
  case Site::CacheStore:
    return "cache-store";
  case Site::TaskRun:
    return "task-run";
  case Site::ProfileDecode:
    return "profile-decode";
  case Site::CrashMidStore:
    return "crash-mid-store";
  case Site::CrashMidJournalRewrite:
    return "crash-mid-journal-rewrite";
  }
  return "unknown";
}

namespace {

/// SplitMix64 finalizer: the same mixer RNG.h uses for seeding, good
/// enough to turn (seed, site, key) into an i.i.d.-looking uniform draw.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// FNV-1a over the key bytes, folded with the plan seed and site.
uint64_t opHash(uint64_t Seed, Site S, const std::string &Key) {
  uint64_t H = 0xCBF29CE484222325ULL ^ mix64(Seed);
  for (unsigned char C : Key) {
    H ^= C;
    H *= 0x100000001B3ULL;
  }
  return mix64(H ^ (static_cast<uint64_t>(S) + 1) * 0xD1B54A32D192ED03ULL);
}

} // namespace

bool Plan::active() const {
  for (const SiteSpec &Spec : Sites)
    if (Spec.Rate > 0.0)
      return true;
  return false;
}

bool Plan::shouldFault(Site S, const std::string &Key,
                       unsigned Attempt) const {
  const SiteSpec &Spec = at(S);
  if (Spec.Rate <= 0.0 || Attempt >= Spec.MaxFaultsPerOp)
    return false;
  // Top 53 bits as a uniform double in [0, 1).
  const double Draw =
      static_cast<double>(opHash(Seed, S, Key) >> 11) * 0x1.0p-53;
  return Draw < Spec.Rate;
}

Plan Plan::transientEverywhere(uint64_t Seed, double Rate,
                               unsigned MaxFaultsPerOp) {
  Plan P;
  P.Seed = Seed;
  // Fault-return sites only: "everywhere" deliberately excludes the
  // CrashMid* crashpoints, which kill the process instead of returning a
  // Status and are armed individually by the crash harness.
  for (Site S : {Site::CacheLoad, Site::CacheStore, Site::TaskRun,
                 Site::ProfileDecode}) {
    SiteSpec &Spec = P.at(S);
    Spec.Rate = Rate;
    Spec.MaxFaultsPerOp = MaxFaultsPerOp;
    Spec.Code = ErrorCode::Transient;
  }
  return P;
}

Status Injector::check(Site S, const std::string &Key,
                       unsigned Attempt) const {
  if (!ThePlan.shouldFault(S, Key, Attempt))
    return Status();
  Counts[static_cast<size_t>(S)].fetch_add(1, std::memory_order_relaxed);
  return Status::make(ThePlan.at(S).Code,
                      std::string("injected fault at ") + siteName(S) +
                          " (op " + Key + ", attempt " +
                          std::to_string(Attempt) + ")",
                      "fault");
}

void Injector::maybeCrash(Site S, const std::string &Key) const {
  // Crashpoints fire at most once per key (Attempt 0 semantics): after the
  // crashed child is reaped and the operation retried in a fresh process,
  // the same plan fires again — which is exactly what the harness wants,
  // so recovery tests re-arm with a different plan (or different key) for
  // the rerun.
  if (!ThePlan.shouldFault(S, Key, /*Attempt=*/0))
    return;
  Counts[static_cast<size_t>(S)].fetch_add(1, std::memory_order_relaxed);
  ::_exit(exitcode::CrashChild);
}

uint64_t Injector::totalInjected() const {
  uint64_t Total = 0;
  for (const auto &C : Counts)
    Total += C.load(std::memory_order_relaxed);
  return Total;
}
