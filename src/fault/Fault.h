//===- fault/Fault.h - Deterministic fault injection ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the campaign execution stack.  A
/// fault::Plan is a seeded schedule of fault sites; a fault::Injector
/// evaluates the plan at instrumented hook points:
///
///   CacheLoad     serialize::ArtifactCache::load    (read shim)
///   CacheStore    serialize::ArtifactCache::store   (write shim)
///   TaskRun       harness::ExperimentEngine cells   (task execution)
///   ProfileDecode harness::BenchContext cached-blob decode
///
/// Two further sites are *crashpoints* rather than fault returns: when the
/// plan selects them, Injector::maybeCrash() _exit(137)s the process at
/// the most hostile instant of a write protocol.  They exist solely for
/// the fork-based crash harness (tests/test_crash.cpp), which forks a
/// child with such a plan and verifies the parent-side recovery
/// guarantees:
///
///   CrashMidStore         ArtifactCache::store, after the temp file is
///                         written but before the atomic rename
///   CrashMidJournalRewrite CampaignJournal checkpoint, before the
///                         whole-blob rewrite reaches the cache
///
/// Whether an operation faults is a *pure function* of (plan seed, site,
/// operation key, attempt number) — no wall-clock, no global counters — so
/// a fault schedule is reproducible across runs and independent of thread
/// scheduling.  Transient faults clear after Plan::MaxFaultsPerOp attempts,
/// which is what makes bounded retry provably terminate; combined with the
/// engine's fall-back-to-recompute semantics for cache faults, the campaign
/// result digest stays bit-identical to a fault-free run for any --jobs
/// value (see tests/test_fault.cpp).
///
/// Injection *counters* (how many faults actually fired per site) are kept
/// for reports and tests; they are scheduling-dependent only in the sense
/// that concurrent duplicate operations may each consult the plan.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_FAULT_FAULT_H
#define DMP_FAULT_FAULT_H

#include "support/Status.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dmp::fault {

/// Instrumented hook points in the execution stack.
enum class Site : uint8_t {
  CacheLoad = 0,
  CacheStore,
  TaskRun,
  ProfileDecode,
  CrashMidStore,
  CrashMidJournalRewrite,
};

constexpr size_t kNumSites = 6;

/// Stable lowercase name of \p S ("cache-load", ...).
const char *siteName(Site S);

/// Per-site schedule knobs.
struct SiteSpec {
  /// Fraction of operation keys that fault at this site, in [0, 1].
  double Rate = 0.0;
  /// A faulted key stops faulting after this many attempts; ~0u makes the
  /// fault permanent (never clears, exhausting any bounded retry).
  unsigned MaxFaultsPerOp = 1;
  /// The code injected failures carry (Transient by default; Invariant
  /// models a permanent per-cell defect).
  ErrorCode Code = ErrorCode::Transient;
};

/// A seeded schedule of fault sites.  Value type; cheap to copy.
struct Plan {
  uint64_t Seed = 0;
  std::array<SiteSpec, kNumSites> Sites{};

  SiteSpec &at(Site S) { return Sites[static_cast<size_t>(S)]; }
  const SiteSpec &at(Site S) const { return Sites[static_cast<size_t>(S)]; }

  /// True when some site has a non-zero rate.
  bool active() const;

  /// Pure decision function: does (\p S, \p Key) fault on \p Attempt?
  bool shouldFault(Site S, const std::string &Key, unsigned Attempt) const;

  /// Convenience: \p Rate of transient faults at every site, clearing
  /// after \p MaxFaultsPerOp attempts.
  static Plan transientEverywhere(uint64_t Seed, double Rate,
                                  unsigned MaxFaultsPerOp = 1);
};

/// Evaluates a Plan at the hook points and counts what fired.  Shared by
/// the artifact cache and the experiment engine; thread-safe.
class Injector {
public:
  explicit Injector(Plan P = Plan()) : ThePlan(P) {}

  const Plan &plan() const { return ThePlan; }
  bool active() const { return ThePlan.active(); }

  /// Consults the plan for operation (\p S, \p Key, \p Attempt).  Returns
  /// ok when the operation should proceed; otherwise an injected Status
  /// carrying the site's error code, and bumps the site's counter.
  Status check(Site S, const std::string &Key, unsigned Attempt = 0) const;

  /// Crashpoint hook: if the plan selects (\p S, \p Key), bumps the site
  /// counter and kills the process with ::_exit(exitcode::CrashChild) —
  /// no destructors, no stdio flush, exactly like a kill -9 landing at
  /// this instruction.  Only meaningful for the CrashMid* sites; a plan
  /// with Rate 0 there (the default) makes this a no-op.
  void maybeCrash(Site S, const std::string &Key) const;

  /// How many injected faults fired at \p S so far.
  uint64_t injected(Site S) const {
    return Counts[static_cast<size_t>(S)].load(std::memory_order_relaxed);
  }
  uint64_t totalInjected() const;

private:
  Plan ThePlan;
  mutable std::array<std::atomic<uint64_t>, kNumSites> Counts{};
};

} // namespace dmp::fault

#endif // DMP_FAULT_FAULT_H
