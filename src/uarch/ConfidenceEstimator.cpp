//===- uarch/ConfidenceEstimator.cpp - JRS confidence estimation --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/ConfidenceEstimator.h"

#include <cassert>

using namespace dmp;
using namespace dmp::uarch;

ConfidenceEstimator::ConfidenceEstimator(unsigned IndexBits,
                                         unsigned HistoryBits,
                                         unsigned Threshold)
    : IndexBits(IndexBits), HistoryBits(HistoryBits), Threshold(Threshold),
      Table(1u << IndexBits) {
  assert(Threshold <= SaturatingCounter<4>::Max &&
         "threshold exceeds counter range");
  // Counters start saturated (high confidence).  Hardware resets to zero,
  // but simulation runs here are orders of magnitude shorter than SPEC
  // runs; starting warm reproduces the steady-state behavior the paper's
  // Acc_Conf = 15%-50% range describes instead of a permanently cold
  // table that flags everything low-confidence.
  for (auto &MDC : Table)
    MDC.reset(SaturatingCounter<4>::Max);
}

unsigned ConfidenceEstimator::indexFor(uint32_t Addr) const {
  const uint64_t HistMask = (1ull << HistoryBits) - 1;
  const uint64_t IdxMask = (1ull << IndexBits) - 1;
  return static_cast<unsigned>((Addr ^ (History & HistMask)) & IdxMask);
}

bool ConfidenceEstimator::isLowConfidence(uint32_t Addr) const {
  return Table[indexFor(Addr)].get() < Threshold;
}

void ConfidenceEstimator::update(uint32_t Addr, bool PredictedCorrectly,
                                 bool Taken) {
  SaturatingCounter<4> &MDC = Table[indexFor(Addr)];
  const bool WasLowConf = MDC.get() < Threshold;
  if (WasLowConf) {
    ++LowConfTotal;
    if (!PredictedCorrectly)
      ++LowConfMispredicted;
  }
  if (PredictedCorrectly)
    MDC.increment();
  else
    MDC.reset(0);
  History = (History << 1) | (Taken ? 1 : 0);
}

void ConfidenceEstimator::reset() {
  for (auto &MDC : Table)
    MDC.reset(SaturatingCounter<4>::Max);
  History = 0;
  LowConfTotal = 0;
  LowConfMispredicted = 0;
}

double ConfidenceEstimator::measuredAccConf() const {
  if (LowConfTotal == 0)
    return 0.0;
  return static_cast<double>(LowConfMispredicted) /
         static_cast<double>(LowConfTotal);
}
