//===- uarch/Cache.h - Set-associative caches ----------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative LRU caches and the two-level hierarchy of Table 1:
/// 64KB 2-way 2-cycle I-cache, 64KB 4-way 2-cycle D-cache, 1MB 8-way
/// 10-cycle unified L2, 300-cycle minimum memory latency.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_UARCH_CACHE_H
#define DMP_UARCH_CACHE_H

#include <cstdint>
#include <vector>

namespace dmp::uarch {

/// One set-associative LRU cache level.
class Cache {
public:
  Cache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes,
        unsigned HitLatency);

  /// Accesses \p ByteAddr: returns true on hit.  On miss the line is filled
  /// (this model has no fill delay bookkeeping; latency is charged by the
  /// hierarchy).
  bool access(uint64_t ByteAddr);

  unsigned hitLatency() const { return HitLatency; }
  uint64_t accessCount() const { return Accesses; }
  uint64_t missCount() const { return Misses; }
  double missRate() const {
    return Accesses == 0
               ? 0.0
               : static_cast<double>(Misses) / static_cast<double>(Accesses);
  }

  void reset();

private:
  struct Line {
    uint64_t Tag = ~0ull;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  unsigned NumSets;
  unsigned Assoc;
  unsigned LineShift;
  /// log2(NumSets), precomputed so tag extraction is one shift per access.
  unsigned SetShift;
  unsigned HitLatency;
  std::vector<Line> Lines; // NumSets * Assoc
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  uint64_t UseClock = 0;
};

/// Latencies and geometry for the full hierarchy.
struct MemoryConfig {
  uint64_t IL1Size = 64 * 1024;
  unsigned IL1Assoc = 2;
  unsigned IL1Latency = 2;
  uint64_t DL1Size = 64 * 1024;
  unsigned DL1Assoc = 4;
  unsigned DL1Latency = 2;
  uint64_t L2Size = 1024 * 1024;
  unsigned L2Assoc = 8;
  unsigned L2Latency = 10;
  unsigned LineBytes = 64;
  unsigned MemoryLatency = 300;
};

/// The I/D/L2/memory hierarchy.  Returns the total latency of an access.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config = MemoryConfig());

  /// Latency of an instruction fetch of the line containing \p ByteAddr.
  unsigned fetchLatency(uint64_t ByteAddr);

  /// Latency of a data load of \p ByteAddr.
  unsigned loadLatency(uint64_t ByteAddr);

  /// Stores access the DL1/L2 for line allocation; write latency is hidden
  /// by the store buffer, so no latency is returned.
  void storeAccess(uint64_t ByteAddr);

  const Cache &il1() const { return IL1; }
  const Cache &dl1() const { return DL1; }
  const Cache &l2() const { return L2; }

  void reset();

private:
  MemoryConfig Config;
  Cache IL1;
  Cache DL1;
  Cache L2;
};

} // namespace dmp::uarch

#endif // DMP_UARCH_CACHE_H
