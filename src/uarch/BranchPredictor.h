//===- uarch/BranchPredictor.h - Direction predictors --------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch direction predictors.
///
/// The simulated processor uses the paper's configuration: a 16KB perceptron
/// predictor (64-bit global history, 256 entries; Jiménez & Lin, HPCA-7).
/// The profiling compiler uses a smaller gshare predictor — deliberately a
/// different design from the runtime predictor, mirroring the reality that
/// a profiler only approximates the target machine's prediction behavior.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_UARCH_BRANCHPREDICTOR_H
#define DMP_UARCH_BRANCHPREDICTOR_H

#include "support/Saturating.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace dmp::uarch {

/// Abstract direction predictor with immediate (trace-driven) update.
///
/// predict() is const so that dpred-mode wrong-path exploration can query
/// directions without disturbing predictor state; update() feeds back the
/// actual outcome and advances the global history.
class BranchPredictor {
public:
  virtual ~BranchPredictor();

  /// Predicts the direction of the conditional branch at \p Addr.
  virtual bool predict(uint32_t Addr) const = 0;

  /// Predicts with an explicit (speculative) history instead of the global
  /// history register.  dpred-mode path walkers shift their own predicted
  /// outcomes into this history, as speculative history update does in
  /// hardware — without it, a walker's prediction for a loop branch could
  /// never change across iterations and late exits would never occur.
  virtual bool predictWithHistory(uint32_t Addr,
                                  uint64_t SpecHistory) const = 0;

  /// Trains with the actual outcome and shifts the global history.
  virtual void update(uint32_t Addr, bool Taken) = 0;

  /// Low bits of the global history register (for confidence indexing).
  virtual uint64_t history() const = 0;

  /// Resets all tables and history.
  virtual void reset() = 0;
};

/// Perceptron predictor (Jiménez & Lin, HPCA-7 2001): Table 1's
/// "16KB (64-bit history, 256-entry) perceptron branch predictor".
class PerceptronPredictor final : public BranchPredictor {
public:
  /// \p NumEntries perceptrons, \p HistoryBits of global history.  The
  /// training threshold uses the paper's recommended 1.93*h + 14.
  explicit PerceptronPredictor(unsigned NumEntries = 256,
                               unsigned HistoryBits = 64);

  bool predict(uint32_t Addr) const override;
  bool predictWithHistory(uint32_t Addr, uint64_t SpecHistory) const override;
  void update(uint32_t Addr, bool Taken) override;
  uint64_t history() const override { return History; }
  void reset() override;

private:
  int dotProduct(uint32_t Addr, uint64_t Hist) const;
  unsigned indexFor(uint32_t Addr) const;

  unsigned NumEntries;
  unsigned HistoryBits;
  int Threshold;
  // Entry layout: [bias, w_1 .. w_HistoryBits] signed 8-bit saturating.
  std::vector<SaturatingWeight<-128, 127>> Weights;
  uint64_t History = 0;

  // Memo of the last predict() dot product.  The simulator predicts and
  // then immediately trains each branch, so update() recomputing the
  // 65-term sum would double the predictor cost for nothing; the memo is
  // keyed on (Addr, History) and dropped whenever any weight changes, so
  // reuse is exact.  predictWithHistory (speculative history) bypasses it.
  mutable uint32_t MemoAddr = 0;
  mutable uint64_t MemoHist = 0;
  mutable int MemoSum = 0;
  mutable bool MemoValid = false;
};

/// gshare predictor (global history XOR pc indexing 2-bit counters).  Used
/// as the profiling-time predictor for branch-misprediction profiles.
class GSharePredictor final : public BranchPredictor {
public:
  explicit GSharePredictor(unsigned IndexBits = 14);

  bool predict(uint32_t Addr) const override;
  bool predictWithHistory(uint32_t Addr, uint64_t SpecHistory) const override;
  void update(uint32_t Addr, bool Taken) override;
  uint64_t history() const override { return History; }
  void reset() override;

private:
  unsigned indexFor(uint32_t Addr, uint64_t Hist) const;

  unsigned IndexBits;
  std::vector<SaturatingCounter<2>> Counters;
  uint64_t History = 0;
};

/// Factory for the predictor kinds the experiments use.
enum class PredictorKind { Perceptron, GShare };

std::unique_ptr<BranchPredictor> createPredictor(PredictorKind Kind);

} // namespace dmp::uarch

#endif // DMP_UARCH_BRANCHPREDICTOR_H
