//===- uarch/Cache.cpp - Set-associative caches --------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/Cache.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace dmp;
using namespace dmp::uarch;

Cache::Cache(uint64_t SizeBytes, unsigned Assoc, unsigned LineBytes,
             unsigned HitLatency)
    : Assoc(Assoc), LineShift(log2Floor(LineBytes)), HitLatency(HitLatency) {
  assert(isPowerOf2(LineBytes) && "line size must be a power of two");
  assert(SizeBytes % (static_cast<uint64_t>(Assoc) * LineBytes) == 0 &&
         "size must be divisible by assoc * line");
  NumSets = static_cast<unsigned>(SizeBytes / (Assoc * LineBytes));
  assert(isPowerOf2(NumSets) && "set count must be a power of two");
  SetShift = log2Floor(NumSets);
  Lines.resize(static_cast<size_t>(NumSets) * Assoc);
}

bool Cache::access(uint64_t ByteAddr) {
  ++Accesses;
  ++UseClock;
  const uint64_t LineAddr = ByteAddr >> LineShift;
  const unsigned Set = static_cast<unsigned>(LineAddr & (NumSets - 1));
  const uint64_t Tag = LineAddr >> SetShift;
  Line *Victim = nullptr;
  for (unsigned Way = 0; Way < Assoc; ++Way) {
    Line &L = Lines[static_cast<size_t>(Set) * Assoc + Way];
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = UseClock;
      return true;
    }
    if (!Victim || !L.Valid ||
        (Victim->Valid && L.LastUse < Victim->LastUse))
      Victim = &L;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = UseClock;
  return false;
}

void Cache::reset() {
  for (auto &L : Lines)
    L = Line();
  Accesses = Misses = UseClock = 0;
}

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &Config)
    : Config(Config),
      IL1(Config.IL1Size, Config.IL1Assoc, Config.LineBytes,
          Config.IL1Latency),
      DL1(Config.DL1Size, Config.DL1Assoc, Config.LineBytes,
          Config.DL1Latency),
      L2(Config.L2Size, Config.L2Assoc, Config.LineBytes, Config.L2Latency) {}

unsigned MemoryHierarchy::fetchLatency(uint64_t ByteAddr) {
  if (IL1.access(ByteAddr))
    return Config.IL1Latency;
  if (L2.access(ByteAddr))
    return Config.IL1Latency + Config.L2Latency;
  return Config.IL1Latency + Config.L2Latency + Config.MemoryLatency;
}

unsigned MemoryHierarchy::loadLatency(uint64_t ByteAddr) {
  if (DL1.access(ByteAddr))
    return Config.DL1Latency;
  if (L2.access(ByteAddr))
    return Config.DL1Latency + Config.L2Latency;
  return Config.DL1Latency + Config.L2Latency + Config.MemoryLatency;
}

void MemoryHierarchy::storeAccess(uint64_t ByteAddr) {
  if (!DL1.access(ByteAddr))
    L2.access(ByteAddr);
}

void MemoryHierarchy::reset() {
  IL1.reset();
  DL1.reset();
  L2.reset();
}
