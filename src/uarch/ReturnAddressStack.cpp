//===- uarch/ReturnAddressStack.cpp - RAS --------------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/ReturnAddressStack.h"

#include <cassert>

using namespace dmp::uarch;

ReturnAddressStack::ReturnAddressStack(unsigned Capacity)
    : Slots(Capacity, 0), Capacity(Capacity) {
  assert(Capacity > 0 && "RAS needs at least one slot");
}

void ReturnAddressStack::push(uint32_t ReturnAddr) {
  Slots[Top] = ReturnAddr;
  Top = (Top + 1) % Capacity;
  if (Depth < Capacity)
    ++Depth;
}

uint32_t ReturnAddressStack::pop() {
  if (Depth == 0)
    return 0;
  Top = (Top + Capacity - 1) % Capacity;
  --Depth;
  return Slots[Top];
}

uint32_t ReturnAddressStack::top() const {
  if (Depth == 0)
    return 0;
  return Slots[(Top + Capacity - 1) % Capacity];
}

void ReturnAddressStack::reset() {
  Top = 0;
  Depth = 0;
}
