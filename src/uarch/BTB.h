//===- uarch/BTB.h - Branch target buffer --------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-mapped branch target buffer (Table 1: 4K entries).  A taken
/// control transfer whose target misses in the BTB costs one fetch bubble
/// while the target is computed.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_UARCH_BTB_H
#define DMP_UARCH_BTB_H

#include <cstdint>
#include <vector>

namespace dmp::uarch {

/// Direct-mapped BTB.
class BTB {
public:
  explicit BTB(unsigned NumEntries = 4096);

  /// Looks up \p Addr; returns true with \p Target filled on hit.
  bool lookup(uint32_t Addr, uint32_t &Target) const;

  /// Installs/updates the mapping Addr -> Target.
  void update(uint32_t Addr, uint32_t Target);

  void reset();

  uint64_t hitCount() const { return Hits; }
  uint64_t missCount() const { return Misses; }

private:
  struct Entry {
    uint32_t Tag = ~0u;
    uint32_t Target = 0;
  };
  unsigned NumEntries;
  std::vector<Entry> Entries;
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
};

} // namespace dmp::uarch

#endif // DMP_UARCH_BTB_H
