//===- uarch/ConfidenceEstimator.h - JRS confidence estimation -----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enhanced JRS confidence estimator (Jacobsen, Rotenberg & Smith MICRO-29;
/// enhancements per Grunwald et al. ISCA-25): Table 1's "2KB (12-bit
/// history, threshold 14) enhanced JRS confidence estimator".
///
/// DMP enters dpred-mode only for *low-confidence* diverge branches; the
/// accuracy of this estimator (PVN) is the Acc_Conf input of the paper's
/// cost-benefit model (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_UARCH_CONFIDENCEESTIMATOR_H
#define DMP_UARCH_CONFIDENCEESTIMATOR_H

#include "support/Saturating.h"

#include <cstdint>
#include <vector>

namespace dmp::uarch {

/// Miss-distance-counter confidence table indexed by pc XOR branch history.
class ConfidenceEstimator {
public:
  /// \p IndexBits selects table size (4096 entries = 2KB of 4-bit MDCs),
  /// \p HistoryBits the amount of local history XORed into the index,
  /// \p Threshold the MDC value at or above which a branch is deemed
  /// high-confidence.
  explicit ConfidenceEstimator(unsigned IndexBits = 12,
                               unsigned HistoryBits = 12,
                               unsigned Threshold = 14);

  /// True when the branch at \p Addr is currently low-confidence: the
  /// trigger condition for entering dpred-mode.
  bool isLowConfidence(uint32_t Addr) const;

  /// Updates with the resolved outcome: correct predictions increment the
  /// miss distance counter, mispredictions reset it.  Also advances the
  /// internal outcome history.
  void update(uint32_t Addr, bool PredictedCorrectly, bool Taken);

  void reset();

  /// Measured PVN (predictive value of a negative/low-confidence estimate):
  /// the fraction of low-confidence estimates that were actually
  /// mispredicted.  This is the paper's Acc_Conf, "usually between
  /// 15%-50%" (Section 4.1).
  double measuredAccConf() const;

  uint64_t lowConfidenceCount() const { return LowConfTotal; }

private:
  unsigned indexFor(uint32_t Addr) const;

  unsigned IndexBits;
  unsigned HistoryBits;
  unsigned Threshold;
  std::vector<SaturatingCounter<4>> Table;
  uint64_t History = 0;

  // PVN bookkeeping.
  uint64_t LowConfTotal = 0;
  uint64_t LowConfMispredicted = 0;
};

} // namespace dmp::uarch

#endif // DMP_UARCH_CONFIDENCEESTIMATOR_H
