//===- uarch/ReturnAddressStack.h - RAS -----------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Circular return-address stack (Table 1: 64 entries).  Overflow silently
/// overwrites the oldest entry, so deep recursion produces the occasional
/// return misprediction, as in real hardware.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_UARCH_RETURNADDRESSSTACK_H
#define DMP_UARCH_RETURNADDRESSSTACK_H

#include <cstdint>
#include <vector>

namespace dmp::uarch {

/// Fixed-capacity circular return-address stack.
class ReturnAddressStack {
public:
  explicit ReturnAddressStack(unsigned Capacity = 64);

  void push(uint32_t ReturnAddr);

  /// Pops the predicted return address; returns 0 on underflow (which the
  /// core treats as a mispredicted return).
  uint32_t pop();

  /// Peek without popping (used by the dpred wrong-path walker).
  uint32_t top() const;

  void reset();

  unsigned depth() const { return Depth; }

private:
  std::vector<uint32_t> Slots;
  unsigned Capacity;
  unsigned Top = 0;   // next push position
  unsigned Depth = 0; // live entries, <= Capacity
};

} // namespace dmp::uarch

#endif // DMP_UARCH_RETURNADDRESSSTACK_H
