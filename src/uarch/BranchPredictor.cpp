//===- uarch/BranchPredictor.cpp - Direction predictors -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/BranchPredictor.h"

#include "support/Compiler.h"

#include <cmath>

using namespace dmp;
using namespace dmp::uarch;

BranchPredictor::~BranchPredictor() = default;

//===----------------------------------------------------------------------===//
// PerceptronPredictor
//===----------------------------------------------------------------------===//

PerceptronPredictor::PerceptronPredictor(unsigned NumEntries,
                                         unsigned HistoryBits)
    : NumEntries(NumEntries), HistoryBits(HistoryBits),
      Threshold(static_cast<int>(1.93 * HistoryBits + 14)),
      Weights(static_cast<size_t>(NumEntries) * (HistoryBits + 1)) {
  assert(HistoryBits <= 64 && "history register is 64 bits");
  assert(NumEntries > 0 && "need at least one perceptron");
}

unsigned PerceptronPredictor::indexFor(uint32_t Addr) const {
  // Power-of-two tables (the Table 1 configuration) index with a mask; the
  // modulo only survives for odd experimental sizes.
  if ((NumEntries & (NumEntries - 1)) == 0)
    return Addr & (NumEntries - 1);
  return Addr % NumEntries;
}

int PerceptronPredictor::dotProduct(uint32_t Addr, uint64_t Hist) const {
  const size_t Base =
      static_cast<size_t>(indexFor(Addr)) * (HistoryBits + 1);
  // sum(X_b * w_b) with X_b = +/-1 equals 2*sum(w_b where bit set) - sum(w_b):
  // accumulating the selected and total sums branchlessly keeps the loop a
  // straight line the compiler can vectorize.
  const SaturatingWeight<-128, 127> *W = &Weights[Base + 1];
  int Selected = 0;
  int Total = 0;
  for (unsigned Bit = 0; Bit < HistoryBits; ++Bit) {
    const int V = W[Bit].get();
    Total += V;
    Selected += V & -static_cast<int>((Hist >> Bit) & 1);
  }
  return Weights[Base].get() + 2 * Selected - Total;
}

bool PerceptronPredictor::predict(uint32_t Addr) const {
  const int Sum = dotProduct(Addr, History);
  MemoAddr = Addr;
  MemoHist = History;
  MemoSum = Sum;
  MemoValid = true;
  return Sum >= 0;
}

bool PerceptronPredictor::predictWithHistory(uint32_t Addr,
                                             uint64_t SpecHistory) const {
  return dotProduct(Addr, SpecHistory) >= 0;
}

void PerceptronPredictor::update(uint32_t Addr, bool Taken) {
  const int Output = (MemoValid && MemoAddr == Addr && MemoHist == History)
                         ? MemoSum
                         : dotProduct(Addr, History);
  const bool Predicted = Output >= 0;
  if (Predicted != Taken || std::abs(Output) <= Threshold) {
    const size_t Base =
        static_cast<size_t>(indexFor(Addr)) * (HistoryBits + 1);
    const int T = Taken ? 1 : -1;
    Weights[Base].add(T);
    for (unsigned Bit = 0; Bit < HistoryBits; ++Bit) {
      const int X = ((History >> Bit) & 1) ? 1 : -1;
      Weights[Base + 1 + Bit].add(T * X);
    }
    MemoValid = false; // Weights changed; any memoized sum is stale.
  }
  History = (History << 1) | (Taken ? 1 : 0);
}

void PerceptronPredictor::reset() {
  for (auto &W : Weights)
    W.add(-W.get());
  History = 0;
  MemoValid = false;
}

//===----------------------------------------------------------------------===//
// GSharePredictor
//===----------------------------------------------------------------------===//

GSharePredictor::GSharePredictor(unsigned IndexBits)
    : IndexBits(IndexBits), Counters(1u << IndexBits) {
  assert(IndexBits >= 4 && IndexBits <= 24 && "unreasonable gshare size");
  // Initialize counters to weakly-taken so cold branches bias taken,
  // matching the common hardware reset state.
  for (auto &C : Counters)
    C.reset(2);
}

unsigned GSharePredictor::indexFor(uint32_t Addr, uint64_t Hist) const {
  const uint64_t Mask = (1ull << IndexBits) - 1;
  return static_cast<unsigned>((Addr ^ Hist) & Mask);
}

bool GSharePredictor::predict(uint32_t Addr) const {
  return Counters[indexFor(Addr, History)].isWeaklySet();
}

bool GSharePredictor::predictWithHistory(uint32_t Addr,
                                         uint64_t SpecHistory) const {
  return Counters[indexFor(Addr, SpecHistory)].isWeaklySet();
}

void GSharePredictor::update(uint32_t Addr, bool Taken) {
  SaturatingCounter<2> &C = Counters[indexFor(Addr, History)];
  if (Taken)
    C.increment();
  else
    C.decrement();
  History = (History << 1) | (Taken ? 1 : 0);
}

void GSharePredictor::reset() {
  for (auto &C : Counters)
    C.reset(2);
  History = 0;
}

std::unique_ptr<BranchPredictor> uarch::createPredictor(PredictorKind Kind) {
  switch (Kind) {
  case PredictorKind::Perceptron:
    return std::make_unique<PerceptronPredictor>();
  case PredictorKind::GShare:
    return std::make_unique<GSharePredictor>();
  }
  DMP_UNREACHABLE("unknown predictor kind");
}
