//===- uarch/BTB.cpp - Branch target buffer ------------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/BTB.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace dmp;
using namespace dmp::uarch;

BTB::BTB(unsigned NumEntries) : NumEntries(NumEntries), Entries(NumEntries) {
  assert(isPowerOf2(NumEntries) && "BTB size must be a power of two");
}

bool BTB::lookup(uint32_t Addr, uint32_t &Target) const {
  const Entry &E = Entries[Addr & (NumEntries - 1)];
  if (E.Tag == Addr) {
    ++Hits;
    Target = E.Target;
    return true;
  }
  ++Misses;
  return false;
}

void BTB::update(uint32_t Addr, uint32_t Target) {
  Entry &E = Entries[Addr & (NumEntries - 1)];
  E.Tag = Addr;
  E.Target = Target;
}

void BTB::reset() {
  for (auto &E : Entries)
    E = Entry();
  Hits = Misses = 0;
}
