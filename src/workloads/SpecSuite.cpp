//===- workloads/SpecSuite.cpp - SPEC-like synthetic suite --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SpecSuite.h"

#include "analyze/Analyze.h"
#include "support/Compiler.h"
#include "workloads/Patterns.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace dmp;
using namespace dmp::workloads;

//===----------------------------------------------------------------------===//
// Input image generation
//===----------------------------------------------------------------------===//

namespace {
/// Distribution shifts applied to the train input set, so profiles from the
/// two sets agree on most branches but not all (Figures 9-10).
struct InputVariant {
  uint64_t SeedSalt;
  double PShift;      ///< Bernoulli probability shift (toward 0.5-crossing).
  int64_t TripShift;  ///< Trip-count upper bound shift.
  double SwitchShift; ///< Markov switch-probability shift.
};
} // namespace

static InputVariant variantFor(InputSetKind Kind) {
  switch (Kind) {
  case InputSetKind::Run:
    return {0x52554E, 0.0, 0, 0.0};
  case InputSetKind::Train:
    return {0x545241494E, 0.05, 2, 0.02};
  }
  DMP_UNREACHABLE("unknown input set kind");
}

std::vector<int64_t> Workload::buildImage(InputSetKind Kind) const {
  const InputVariant Variant = variantFor(Kind);
  std::vector<int64_t> Image(MemoryWords, 0);
  RNG Rng(BaseSeed ^ Variant.SeedSalt);
  for (const PatternSlot &Slot : Slots) {
    RNG SlotRng = Rng.fork();
    switch (Slot.PatternKind) {
    case PatternSlot::Kind::Bernoulli: {
      double P = Slot.P + (Slot.P <= 0.5 ? Variant.PShift : -Variant.PShift);
      P = std::clamp(P, 0.0, 0.98);
      fillBernoulli(Image, Slot.Base, ComponentBuilder::RegionWords, P,
                    SlotRng);
      break;
    }
    case PatternSlot::Kind::Periodic:
      fillPeriodic(Image, Slot.Base, ComponentBuilder::RegionWords,
                   Slot.Period);
      break;
    case PatternSlot::Kind::Trip: {
      const int64_t Hi =
          std::max(Slot.TripLo, Slot.TripHi + Variant.TripShift);
      if (Slot.TripSticky > 0.0)
        fillStickyTrips(Image, Slot.Base, ComponentBuilder::RegionWords,
                        Slot.TripLo, Hi, Slot.TripSticky, SlotRng);
      else
        fillTripCounts(Image, Slot.Base, ComponentBuilder::RegionWords,
                       Slot.TripLo, Hi, SlotRng);
      break;
    }
    case PatternSlot::Kind::Markov:
      fillMarkov(Image, Slot.Base, ComponentBuilder::RegionWords,
                 std::clamp(Slot.SwitchProb + Variant.SwitchShift, 0.005, 0.5),
                 SlotRng);
      break;
    }
  }
  return Image;
}

//===----------------------------------------------------------------------===//
// Benchmark construction
//===----------------------------------------------------------------------===//

namespace {
/// Slot prototypes.
PatternSlot hardSlot(double P) {
  PatternSlot S;
  S.PatternKind = PatternSlot::Kind::Bernoulli;
  S.P = P;
  return S;
}

PatternSlot rareSlot(double P = 0.03) { return hardSlot(P); }

PatternSlot easySlot(unsigned Variation) {
  // All variants are strongly biased or strongly sticky: bias survives the
  // global-history pollution of neighboring random branches, which a
  // periodic pattern does not (a lesson measured, not assumed — periodic
  // branches mispredicted ~35% here despite being "predictable").
  PatternSlot S;
  switch (Variation % 3) {
  case 0:
    S.PatternKind = PatternSlot::Kind::Bernoulli;
    S.P = 0.995;
    break;
  case 1:
    S.PatternKind = PatternSlot::Kind::Bernoulli;
    S.P = 0.015;
    break;
  default:
    S.PatternKind = PatternSlot::Kind::Markov;
    S.SwitchProb = 0.008;
    break;
  }
  return S;
}

PatternSlot tripSlot(int64_t Lo, int64_t Hi) {
  PatternSlot S;
  S.PatternKind = PatternSlot::Kind::Trip;
  S.TripLo = Lo;
  S.TripHi = Hi;
  return S;
}
} // namespace

Workload workloads::buildBenchmark(const BenchmarkSpec &Spec) {
  Workload W;
  W.Name = Spec.Name;
  W.BaseSeed = Spec.Seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  W.Prog = std::make_unique<ir::Program>(Spec.Name);

  ComponentBuilder B(*W.Prog);
  B.beginMain(Spec.OuterIters);

  // Interleave component kinds deterministically so hard and easy branches
  // mix in the instruction stream as they do in real programs.
  unsigned Variation = static_cast<unsigned>(Spec.Seed);
  for (unsigned I = 0; I < Spec.SimpleHard; ++I)
    B.addSimpleHammock(B.newSlot(hardSlot(Spec.HardP)), Spec.BodyLen,
                       Spec.MergeLen);
  for (unsigned I = 0; I < Spec.Short; ++I) {
    // Short-hammock branches use bursty (Markov) data: long predictable
    // runs with misprediction bursts.  The first misprediction of each
    // burst hits at *high* confidence, which is exactly the case the
    // always-predicate heuristic of Section 3.4 recovers.
    PatternSlot Bursty;
    Bursty.PatternKind = PatternSlot::Kind::Markov;
    Bursty.SwitchProb = 0.04;
    B.addShortHammock(B.newSlot(Bursty), /*BodyLen=*/3, Spec.MergeLen);
  }
  for (unsigned I = 0; I < Spec.Freq; ++I)
    B.addFreqHammock(B.newSlot(hardSlot(Spec.HardP)), B.newSlot(rareSlot()),
                     Spec.BodyLen, /*RareLen=*/90, Spec.MergeLen);
  for (unsigned I = 0; I < Spec.SimpleEasy; ++I)
    B.addSimpleHammock(B.newSlot(easySlot(Variation + I)), Spec.BodyLen,
                       Spec.MergeLen);
  for (unsigned I = 0; I < Spec.Nested; ++I)
    B.addNestedHammock(B.newSlot(hardSlot(Spec.HardP)),
                       B.newSlot(hardSlot(Spec.HardP)), Spec.BodyLen,
                       Spec.MergeLen);
  for (unsigned I = 0; I < Spec.DataLoops; ++I) {
    // Sticky trip counts: runs of equal lengths that a history predictor
    // partially learns, producing the late-exit episodes that make loop
    // predication profitable (Section 5.1).
    PatternSlot Trips = tripSlot(1, 7);
    Trips.TripSticky = 0.80;
    B.addDataLoop(B.newSlot(Trips), /*BodyLen=*/6,
                  /*PostLen=*/Spec.MergeLen);
  }
  for (unsigned I = 0; I < Spec.BorderLoops; ++I) {
    // The guard is periodic (perfectly predictable): it only controls how
    // often the loop runs, without adding mispredictions of its own.
    PatternSlot Gate;
    Gate.PatternKind = PatternSlot::Kind::Periodic;
    Gate.Period = 12;
    B.addBorderlineLoop(B.newSlot(Gate), B.newSlot(tripSlot(10, 19)),
                        Spec.MergeLen);
  }
  for (unsigned I = 0; I < Spec.Guarded; ++I)
    B.addGuardedHammock(B.newSlot(hardSlot(0.0)),
                        B.newSlot(hardSlot(Spec.HardP)), Spec.BodyLen,
                        Spec.MergeLen);
  for (unsigned I = 0; I < Spec.HardLoops; ++I)
    B.addDataLoop(B.newSlot(tripSlot(2, 6)), /*BodyLen=*/34,
                  /*PostLen=*/Spec.MergeLen);
  for (unsigned I = 0; I < Spec.RetFuncs; ++I)
    B.addRetFunc(B.newSlot(hardSlot(0.30)), Spec.BodyLen, Spec.MergeLen);
  for (unsigned I = 0; I < Spec.CallHammocks; ++I)
    B.addCallHammock(B.newSlot(hardSlot(Spec.HardP)), Spec.BodyLen,
                     Spec.MergeLen);
  for (unsigned I = 0; I < Spec.DualMerge; ++I) {
    // Balanced, sticky selector: both alternative merge blocks are reached
    // often enough that both pass MIN_MERGE_PROB and the branch genuinely
    // has two CFM points (Section 4.3).
    PatternSlot Sel;
    Sel.PatternKind = PatternSlot::Kind::Markov;
    Sel.SwitchProb = 0.03;
    // The condition is mostly predictable: dual-merge hammocks exercise
    // multi-CFM selection and the Eq. 17 machinery without dominating the
    // benchmark's misprediction profile (both stopped paths sit at
    // *different* CFM registers when the selector flips, which is dead
    // time until resolution — a real DMP hazard worth modeling but not
    // amplifying).
    B.addDualMergeHammock(B.newSlot(hardSlot(0.05)), B.newSlot(Sel),
                          Spec.BodyLen, Spec.MergeLen);
  }
  for (unsigned I = 0; I < Spec.Straight; ++I)
    B.addStraightline(Spec.StraightLen);
  for (unsigned I = 0; I < Spec.Big; ++I)
    B.addBigHammock(B.newSlot(hardSlot(Spec.HardP)), /*BodyLen=*/120,
                    Spec.MergeLen);

  B.endMain();
  W.Prog->finalize();
  // A malformed generated workload is a builder bug, not an input error.
  analyze::DiagnosticSink Sink;
  if (!analyze::lintProgram(*W.Prog, &Sink).ok()) {
    std::fprintf(stderr, "workload %s failed lint:\n%s",
                 W.Prog->getName().c_str(), Sink.renderText().c_str());
    std::abort();
  }

  W.Slots = B.slots();
  W.MemoryWords = B.memoryWords();
  return W;
}

const std::vector<BenchmarkSpec> &workloads::specSuite() {
  // Counts and hardness chosen to echo Table 2's per-benchmark character
  // (MPKI ordering, CFG mix, which techniques matter per benchmark).
  static const std::vector<BenchmarkSpec> Suite = {
      // SPEC CPU2000 INT.
      {.Name = "gzip", .OuterIters = 4096, .SimpleEasy = 2, .Freq = 1,
       .DataLoops = 1, .HardLoops = 1, .Big = 1, .Straight = 5,
       .BodyLen = 12, .MergeLen = 14, .HardP = 0.50, .Seed = 101},
      {.Name = "vpr", .OuterIters = 4096, .SimpleEasy = 1, .Freq = 2,
       .Short = 3, .Big = 1, .Straight = 3, .BodyLen = 10, .MergeLen = 12,
       .HardP = 0.50, .Seed = 102},
      {.Name = "gcc", .OuterIters = 4096, .SimpleEasy = 2, .Nested = 1,
       .Freq = 1, .Short = 1, .HardLoops = 1, .Big = 4, .CallHammocks = 1,
       .BodyLen = 14, .MergeLen = 12, .HardP = 0.50, .Seed = 103},
      {.Name = "mcf", .OuterIters = 4096, .SimpleEasy = 2, .Freq = 1,
       .Short = 2, .BorderLoops = 1, .Big = 2, .Straight = 2,
       .BodyLen = 10, .MergeLen = 16, .HardP = 0.50, .Seed = 104},
      {.Name = "crafty", .OuterIters = 4096, .SimpleEasy = 2, .Nested = 1,
       .Freq = 1, .BorderLoops = 1, .Guarded = 1, .Big = 3,
       .CallHammocks = 1, .DualMerge = 1, .Straight = 4, .BodyLen = 12,
       .MergeLen = 14, .HardP = 0.40, .Seed = 105},
      {.Name = "parser", .OuterIters = 4096, .SimpleEasy = 1, .Freq = 1,
       .DataLoops = 3, .HardLoops = 1, .Big = 1, .Straight = 4,
       .BodyLen = 10, .MergeLen = 14, .HardP = 0.50, .Seed = 106},
      {.Name = "eon", .OuterIters = 4096, .SimpleHard = 1, .SimpleEasy = 4,
       .Big = 1, .Straight = 2, .BodyLen = 12, .MergeLen = 14,
       .HardP = 0.25, .Seed = 107},
      {.Name = "perlbmk", .OuterIters = 4096, .SimpleHard = 1,
       .SimpleEasy = 3, .Big = 2, .Straight = 2, .BodyLen = 12,
       .MergeLen = 14, .HardP = 0.35, .Seed = 108},
      {.Name = "gap", .OuterIters = 4096, .SimpleEasy = 5, .Freq = 1,
       .BorderLoops = 1, .Straight = 2, .BodyLen = 14, .MergeLen = 14,
       .HardP = 0.30, .Seed = 109},
      {.Name = "vortex", .OuterIters = 4096, .SimpleEasy = 5,
       .BorderLoops = 1, .Big = 1, .Straight = 1, .BodyLen = 14,
       .MergeLen = 14, .HardP = 0.12, .Seed = 110},
      {.Name = "bzip2", .OuterIters = 4096, .SimpleHard = 1, .SimpleEasy = 1,
       .Freq = 2, .BorderLoops = 1, .Guarded = 1, .Big = 3, .Straight = 2,
       .BodyLen = 12, .MergeLen = 14, .HardP = 0.50, .Seed = 111},
      {.Name = "twolf", .OuterIters = 4096, .SimpleEasy = 1, .Nested = 1,
       .Freq = 1, .Short = 2, .RetFuncs = 1, .Big = 2, .Straight = 5,
       .BodyLen = 10, .MergeLen = 14, .HardP = 0.42, .Seed = 112},
      // SPEC 95 INT.
      {.Name = "compress", .OuterIters = 4096, .SimpleEasy = 2, .Freq = 1,
       .Big = 3, .Straight = 3, .BodyLen = 12, .MergeLen = 14,
       .HardP = 0.50, .Seed = 113},
      {.Name = "go", .OuterIters = 4096, .SimpleHard = 1, .SimpleEasy = 1,
       .Nested = 1, .Freq = 2, .Short = 1, .RetFuncs = 1, .HardLoops = 1,
       .Guarded = 1, .Big = 3, .BodyLen = 10, .MergeLen = 12, .HardP = 0.50,
       .Seed = 114},
      {.Name = "ijpeg", .OuterIters = 4096, .SimpleEasy = 2, .Nested = 1,
       .Freq = 1, .BorderLoops = 1, .Guarded = 1, .Big = 2,
       .CallHammocks = 1, .DualMerge = 1, .Straight = 4, .BodyLen = 12,
       .MergeLen = 14, .HardP = 0.30, .Seed = 115},
      {.Name = "li", .OuterIters = 4096, .SimpleHard = 1, .SimpleEasy = 2,
       .Big = 2, .Straight = 2, .BodyLen = 12, .MergeLen = 14, .HardP = 0.45,
       .Seed = 116},
      {.Name = "m88ksim", .OuterIters = 4096, .SimpleHard = 1, .SimpleEasy = 4,
       .Big = 1, .Straight = 2, .BodyLen = 12, .MergeLen = 14, .HardP = 0.12,
       .Seed = 117},
  };
  return Suite;
}

Workload workloads::buildByName(const std::string &Name) {
  for (const BenchmarkSpec &Spec : specSuite())
    if (Name == Spec.Name)
      return buildBenchmark(Spec);
  std::fprintf(stderr, "unknown benchmark: %s\n", Name.c_str());
  std::abort();
}
