//===- workloads/SpecSuite.h - SPEC-like synthetic suite ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 17 synthetic benchmarks standing in for the paper's 12 SPEC CPU2000
/// plus 5 SPEC 95 integer benchmarks (Table 2).  Each benchmark composes
/// the ComponentBuilder's CFG structures with counts and branch-data
/// predictabilities tuned to echo its namesake's character: go is branchy
/// and hard (MPKI ~23), gap/vortex are easy (~1), vpr/twolf are rich in
/// mispredicted short hammocks, parser/gzip lean on unpredictable loops,
/// twolf/go have hammocks merging at different returns, gcc has complex
/// CFGs with few frequently-hammocks.
///
/// Each benchmark has two input sets: "run" (the MinneSPEC-reduced stand-in,
/// used for evaluation) and "train" (a shifted distribution, used for the
/// input-set sensitivity experiments of Figures 9-10).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_WORKLOADS_SPECSUITE_H
#define DMP_WORKLOADS_SPECSUITE_H

#include "ir/Program.h"
#include "workloads/ComponentBuilder.h"

#include <memory>
#include <string>
#include <vector>

namespace dmp::workloads {

/// Which input data set to generate (Section 7.3).
enum class InputSetKind {
  Run,   ///< Evaluation input (reduced-input stand-in).
  Train, ///< Profiling-only alternative input (train stand-in).
};

/// Composition recipe of one benchmark.
struct BenchmarkSpec {
  const char *Name;
  unsigned OuterIters;
  // Component counts.
  unsigned SimpleHard = 0;
  unsigned SimpleEasy = 0;
  unsigned Nested = 0;
  unsigned Freq = 0;
  unsigned Short = 0;
  unsigned RetFuncs = 0;
  unsigned DataLoops = 0;
  /// Loops that fail the Section 5.2 heuristics (big bodies): their exit
  /// mispredictions are *not* coverable by DMP.
  unsigned HardLoops = 0;
  /// Loops whose LOOP_ITER decision flips between input sets (Figure 10).
  unsigned BorderLoops = 0;
  /// Hammocks guarded by a train-input-only branch (Figure 10).
  unsigned Guarded = 0;
  /// Oversized hammocks: rejected by both the thresholds and the cost
  /// model; their mispredictions are *not* coverable by DMP.
  unsigned Big = 0;
  unsigned CallHammocks = 0;
  unsigned DualMerge = 0;
  unsigned Straight = 0; ///< Branch-free filler components.
  // Shape parameters.
  unsigned BodyLen = 12;   ///< Instructions per hammock side.
  unsigned MergeLen = 14;  ///< Control-independent instructions after CFM.
  unsigned StraightLen = 50;
  double HardP = 0.5;      ///< Taken probability of hard branches.
  uint64_t Seed = 1;
};

/// A built benchmark: program + recipe for its input images.
struct Workload {
  std::string Name;
  std::unique_ptr<ir::Program> Prog;
  std::vector<PatternSlot> Slots;
  uint64_t MemoryWords = 0;

  /// Generates the memory image of the given input set.
  std::vector<int64_t> buildImage(InputSetKind Kind) const;

private:
  friend Workload buildBenchmark(const BenchmarkSpec &Spec);
  uint64_t BaseSeed = 1;
};

/// Builds one benchmark from its spec (verified before return).
Workload buildBenchmark(const BenchmarkSpec &Spec);

/// The 17-benchmark suite, in Table 2 order.
const std::vector<BenchmarkSpec> &specSuite();

/// Builds a suite benchmark by name; aborts on unknown names.
Workload buildByName(const std::string &Name);

} // namespace dmp::workloads

#endif // DMP_WORKLOADS_SPECSUITE_H
