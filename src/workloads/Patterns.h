//===- workloads/Patterns.h - Branch-feeding data patterns ----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-pattern generators for the synthetic benchmarks.  Branch outcomes in
/// the generated programs are data-dependent: each control-flow component
/// loads one word per outer-loop iteration from its own memory region and
/// branches on it.  The pattern written into that region therefore controls
/// the branch's bias and predictability:
///
///  - Bernoulli(p ~ 0.5): hard to predict (random);
///  - Bernoulli(p near 0/1): easy (strongly biased);
///  - periodic: easy for history-based predictors;
///  - trip counts: loop iteration counts with a controlled spread,
///    producing parser-like unpredictable loop exits.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_WORKLOADS_PATTERNS_H
#define DMP_WORKLOADS_PATTERNS_H

#include "support/RNG.h"

#include <cstdint>
#include <vector>

namespace dmp::workloads {

/// Writes \p Count words of 0/1 with P(1) = \p P at \p Image[Base...].
void fillBernoulli(std::vector<int64_t> &Image, uint64_t Base, uint64_t Count,
                   double P, RNG &Rng);

/// Writes a repeating 0/1 pattern of the given \p Period (e.g. 1 0 0 1 0 0).
void fillPeriodic(std::vector<int64_t> &Image, uint64_t Base, uint64_t Count,
                  unsigned Period);

/// Writes uniform trip counts in [\p Lo, \p Hi].
void fillTripCounts(std::vector<int64_t> &Image, uint64_t Base, uint64_t Count,
                    int64_t Lo, int64_t Hi, RNG &Rng);

/// Writes *sticky* trip counts: each value repeats the previous one with
/// probability \p StickyProb, otherwise redraws uniformly in [Lo, Hi].
/// Models parser-like loops (consecutive words often have similar lengths)
/// whose exits a history-based predictor can partially learn — the source
/// of genuine late-exit episodes (Section 5.1).
void fillStickyTrips(std::vector<int64_t> &Image, uint64_t Base,
                     uint64_t Count, int64_t Lo, int64_t Hi,
                     double StickyProb, RNG &Rng);

/// Writes a first-order Markov 0/1 stream with switch probability
/// \p SwitchProb: small values give long, history-predictable runs.
void fillMarkov(std::vector<int64_t> &Image, uint64_t Base, uint64_t Count,
                double SwitchProb, RNG &Rng);

} // namespace dmp::workloads

#endif // DMP_WORKLOADS_PATTERNS_H
