//===- workloads/Patterns.cpp - Branch-feeding data patterns ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Patterns.h"

#include <cassert>

using namespace dmp;
using namespace dmp::workloads;

static void ensureSize(std::vector<int64_t> &Image, uint64_t End) {
  if (Image.size() < End)
    Image.resize(End, 0);
}

void workloads::fillBernoulli(std::vector<int64_t> &Image, uint64_t Base,
                              uint64_t Count, double P, RNG &Rng) {
  ensureSize(Image, Base + Count);
  for (uint64_t I = 0; I < Count; ++I)
    Image[Base + I] = Rng.nextBool(P) ? 1 : 0;
}

void workloads::fillPeriodic(std::vector<int64_t> &Image, uint64_t Base,
                             uint64_t Count, unsigned Period) {
  assert(Period >= 2 && "period of 1 is constant");
  ensureSize(Image, Base + Count);
  for (uint64_t I = 0; I < Count; ++I)
    Image[Base + I] = (I % Period == 0) ? 1 : 0;
}

void workloads::fillTripCounts(std::vector<int64_t> &Image, uint64_t Base,
                               uint64_t Count, int64_t Lo, int64_t Hi,
                               RNG &Rng) {
  ensureSize(Image, Base + Count);
  for (uint64_t I = 0; I < Count; ++I)
    Image[Base + I] = Rng.nextInRange(Lo, Hi);
}

void workloads::fillStickyTrips(std::vector<int64_t> &Image, uint64_t Base,
                                uint64_t Count, int64_t Lo, int64_t Hi,
                                double StickyProb, RNG &Rng) {
  ensureSize(Image, Base + Count);
  int64_t Current = Rng.nextInRange(Lo, Hi);
  for (uint64_t I = 0; I < Count; ++I) {
    if (!Rng.nextBool(StickyProb))
      Current = Rng.nextInRange(Lo, Hi);
    Image[Base + I] = Current;
  }
}

void workloads::fillMarkov(std::vector<int64_t> &Image, uint64_t Base,
                           uint64_t Count, double SwitchProb, RNG &Rng) {
  ensureSize(Image, Base + Count);
  int64_t State = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    if (Rng.nextBool(SwitchProb))
      State ^= 1;
    Image[Base + I] = State;
  }
}
