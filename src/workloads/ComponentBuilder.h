//===- workloads/ComponentBuilder.h - CFG component factory ---------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the control-flow components the synthetic benchmarks are composed
/// of, one per CFG type in the paper's Figure 3 plus the special cases of
/// Sections 3.4/3.5:
///
///  - simple hammocks (if-else, no control flow inside),
///  - nested hammocks,
///  - frequently-hammocks (rare long path that bypasses the frequent merge),
///  - short hammocks (<10 instructions per side),
///  - functions whose paths end in different returns (return-CFM),
///  - data-dependent loops (parser-style unpredictable trip counts),
///  - oversized hammocks (should be rejected by any sane selector),
///  - hammocks with calls inside.
///
/// Every component reads one word per outer-loop iteration from its own
/// pattern slot; the slot's data distribution controls the branch's
/// predictability (see workloads/Patterns.h).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_WORKLOADS_COMPONENTBUILDER_H
#define DMP_WORKLOADS_COMPONENTBUILDER_H

#include "ir/IRBuilder.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmp::workloads {

/// One memory region feeding one data-dependent branch (or loop trip
/// count).  The program reads Image[Base + outer_index].
struct PatternSlot {
  enum class Kind : uint8_t { Bernoulli, Periodic, Trip, Markov };

  uint64_t Base = 0;
  Kind PatternKind = Kind::Bernoulli;
  double P = 0.5;          ///< Bernoulli taken probability.
  unsigned Period = 3;     ///< Periodic period.
  int64_t TripLo = 1;      ///< Trip-count range.
  int64_t TripHi = 8;
  double TripSticky = 0.0; ///< Probability of repeating the previous trip.
  double SwitchProb = 0.05; ///< Markov switch probability.
};

/// Incrementally builds a benchmark program: an outer loop over components.
///
/// Register conventions: r1 outer index, r2 outer bound, r3/r5 loaded data,
/// r6/r7 inner loop counter/bound, r8..r19 filler windows, r20 accumulator.
class ComponentBuilder {
public:
  /// Words per pattern region; outer iteration counts must not exceed it.
  static constexpr uint64_t RegionWords = 8192;

  /// Control-independent tail appended to a frequently-hammock's frequent
  /// merge block, pushing the branch's IPOSDOM far beyond the machine's
  /// resolution-time fetch budget.
  static constexpr unsigned FreqTailLen = 150;

  explicit ComponentBuilder(ir::Program &P);

  /// Creates main and opens the outer loop.  Must be called first.
  void beginMain(unsigned OuterIters);

  /// Closes the outer loop and emits the exit/halt path.  Call last.
  void endMain();

  // Components (append to the outer loop body, in call order).
  void addSimpleHammock(const PatternSlot &Cond, unsigned BodyLen,
                        unsigned MergeLen);
  void addNestedHammock(const PatternSlot &Outer, const PatternSlot &Inner,
                        unsigned BodyLen, unsigned MergeLen);
  void addFreqHammock(const PatternSlot &Cond, const PatternSlot &Rare,
                      unsigned BodyLen, unsigned RareLen, unsigned MergeLen);
  void addShortHammock(const PatternSlot &Cond, unsigned BodyLen,
                       unsigned MergeLen);
  void addRetFunc(const PatternSlot &Cond, unsigned BodyLen,
                  unsigned MergeLen);
  void addDataLoop(const PatternSlot &Trip, unsigned BodyLen,
                   unsigned PostLen);
  void addBigHammock(const PatternSlot &Cond, unsigned BodyLen,
                     unsigned MergeLen);
  void addCallHammock(const PatternSlot &Cond, unsigned BodyLen,
                      unsigned MergeLen);

  /// Branch-free filler: dilutes branch density (controls MPKI without
  /// changing the control-flow mix).
  void addStraightline(unsigned Len);

  /// A data loop whose average iteration count sits just under the
  /// LOOP_ITER threshold on the run input and just over it on the train
  /// input, so the Section 5.2 heuristics select it with one profiling
  /// input set but not the other (the "only-run" bars of Figure 10).
  void addBorderlineLoop(const PatternSlot &Guard, const PatternSlot &Trip,
                         unsigned PostLen);

  /// A hard hammock guarded by a branch that essentially never fires on
  /// the run input but does on the (shifted) train input: the inner branch
  /// is profiled — and therefore selectable — only when profiling with the
  /// train input (the "only-train" bars of Figure 10).
  void addGuardedHammock(const PatternSlot &Guard, const PatternSlot &Cond,
                         unsigned BodyLen, unsigned MergeLen);

  /// A hammock whose two sides each branch to one of two *alternative*
  /// merge blocks M1/M2, so the diverge branch legitimately has two
  /// independent CFM points (exercises MAX_CFM > 1 and Eq. 17).
  void addDualMergeHammock(const PatternSlot &Cond, const PatternSlot &Sel,
                           unsigned BodyLen, unsigned MergeLen);

  /// Allocates the next pattern region, records the slot, and returns a
  /// copy (by value: the internal slot list reallocates as it grows).
  PatternSlot newSlot(PatternSlot Proto);

  const std::vector<PatternSlot> &slots() const { return Slots; }

  /// Total words of data memory the program touches.
  uint64_t memoryWords() const { return NextBase + RegionWords; }

private:
  /// Emits "ld \p DataReg, slot(r1)" into the current block.
  void loadSlot(const PatternSlot &Slot, ir::Reg DataReg);
  /// Rotating filler register window per component.
  ir::Reg fillerWindow();
  /// Starts the next component's merge/continuation block.
  ir::BasicBlock *newBlock(const char *Tag);
  std::string blockName(const char *Tag) const;

  ir::Program &P;
  ir::IRBuilder B;
  ir::Function *Main = nullptr;
  ir::Function *Leaf = nullptr; ///< Shared helper callee for call hammocks.
  ir::BasicBlock *OuterHeader = nullptr;
  ir::BasicBlock *Cur = nullptr;
  unsigned ComponentIndex = 0;
  unsigned RetFuncIndex = 0;
  uint64_t NextBase = 0;
  uint64_t ScratchBase = 0;
  std::vector<PatternSlot> Slots;
};

} // namespace dmp::workloads

#endif // DMP_WORKLOADS_COMPONENTBUILDER_H
