//===- workloads/ComponentBuilder.cpp - CFG component factory -----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ComponentBuilder.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::workloads;

ComponentBuilder::ComponentBuilder(Program &P) : P(P), B(P) {}

std::string ComponentBuilder::blockName(const char *Tag) const {
  return formatString("c%u_%s", ComponentIndex, Tag);
}

BasicBlock *ComponentBuilder::newBlock(const char *Tag) {
  return Main->createBlock(blockName(Tag));
}

Reg ComponentBuilder::fillerWindow() {
  static const Reg Windows[3] = {8, 12, 16};
  return Windows[ComponentIndex % 3];
}

void ComponentBuilder::loadSlot(const PatternSlot &Slot, Reg DataReg) {
  B.load(DataReg, /*Base=*/1, static_cast<int64_t>(Slot.Base));
}

PatternSlot ComponentBuilder::newSlot(PatternSlot Proto) {
  Proto.Base = NextBase;
  NextBase += RegionWords;
  Slots.push_back(Proto);
  return Proto;
}

void ComponentBuilder::beginMain(unsigned OuterIters) {
  assert(!Main && "beginMain called twice");
  assert(OuterIters <= RegionWords && "outer loop exceeds pattern regions");
  Main = P.createFunction("main");
  // Scratch region for accumulator stores.
  ScratchBase = NextBase;
  NextBase += RegionWords;

  BasicBlock *Entry = Main->createBlock("entry");
  B.setInsertPoint(Entry);
  B.loadImm(/*Dst=*/1, 0);
  B.loadImm(/*Dst=*/2, static_cast<int64_t>(OuterIters));
  B.loadImm(/*Dst=*/20, 0);
  for (Reg R = 8; R <= 19; ++R)
    B.loadImm(R, static_cast<int64_t>(R));

  OuterHeader = Main->createBlock("outer");
  Cur = OuterHeader;
  B.setInsertPoint(Cur);
}

void ComponentBuilder::endMain() {
  assert(Main && "endMain before beginMain");
  // Store the accumulator so stores exercise the D-cache, bump the index,
  // and loop.
  B.setInsertPoint(Cur);
  B.store(/*Value=*/20, /*Base=*/1, static_cast<int64_t>(ScratchBase));
  B.addI(/*Dst=*/1, /*Src=*/1, 1);
  B.condBr(BrCond::Lt, /*A=*/1, /*B=*/2, OuterHeader);

  BasicBlock *Exit = Main->createBlock("exit");
  B.setInsertPoint(Exit);
  B.halt();
}

void ComponentBuilder::addSimpleHammock(const PatternSlot &Cond,
                                        unsigned BodyLen, unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Cond, /*DataReg=*/3);
  BasicBlock *Taken = nullptr; // forward-declared after fall block

  BasicBlock *Fall = nullptr;
  // We must create the taken block after the fall block for layout, but the
  // branch needs the taken target first; create both, then emit.
  Fall = newBlock("F");
  Taken = newBlock("T");
  BasicBlock *Merge = newBlock("M");
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, W);
  B.add(/*Dst=*/20, /*A=*/20, W);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  B.emitFiller(BodyLen, W);
  B.sub(/*Dst=*/20, /*A=*/20, W);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.emitFiller(MergeLen, W);
  Cur = Merge;
}

void ComponentBuilder::addNestedHammock(const PatternSlot &Outer,
                                        const PatternSlot &Inner,
                                        unsigned BodyLen, unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Outer, /*DataReg=*/3);

  BasicBlock *Fall = newBlock("F");
  BasicBlock *Taken = newBlock("T");
  BasicBlock *InnerFall = newBlock("T1");
  BasicBlock *InnerTaken = newBlock("T2");
  BasicBlock *Merge = newBlock("M");
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, W);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  loadSlot(Inner, /*DataReg=*/5);
  B.emitFiller(BodyLen / 2, W);
  B.condBr(BrCond::Ne, /*A=*/5, /*B=*/0, InnerTaken);

  B.setInsertPoint(InnerFall);
  B.emitFiller(BodyLen / 2, W);
  B.jmp(Merge);

  B.setInsertPoint(InnerTaken);
  B.emitFiller(BodyLen / 2, W);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.emitFiller(MergeLen, W);
  Cur = Merge;
}

void ComponentBuilder::addFreqHammock(const PatternSlot &Cond,
                                      const PatternSlot &Rare,
                                      unsigned BodyLen, unsigned RareLen,
                                      unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Cond, /*DataReg=*/3);

  BasicBlock *Fall = newBlock("F");
  BasicBlock *Taken = newBlock("T");
  BasicBlock *TakenBody = newBlock("T2");
  BasicBlock *RarePath = newBlock("R");
  BasicBlock *Merge = newBlock("M");
  BasicBlock *End = newBlock("E");
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, W);
  B.add(/*Dst=*/20, /*A=*/20, W);
  B.jmp(Merge);

  // Taken side: usually short work then merge at M, but a rare long path
  // bypasses M entirely, so M is only an *approximate* CFM point of the
  // branch in Cur — the defining feature of a frequently-hammock.
  B.setInsertPoint(Taken);
  loadSlot(Rare, /*DataReg=*/5);
  B.condBr(BrCond::Ne, /*A=*/5, /*B=*/0, RarePath);

  B.setInsertPoint(TakenBody);
  B.emitFiller(BodyLen, W);
  B.jmp(Merge);

  B.setInsertPoint(RarePath);
  B.emitFiller(RareLen, W);
  B.jmp(End);

  // The frequent merge block carries a long control-independent tail, so
  // the branch's *immediate post-dominator* (End) is far away: selecting
  // End as the CFM (what the naive Immediate/Every-br selectors do per
  // footnote 10) cannot merge before resolution, while the frequent merge
  // M is close — the defining asymmetry of frequently-hammocks.
  B.setInsertPoint(Merge);
  B.emitFiller(MergeLen + FreqTailLen, W);
  // Falls through to End.

  B.setInsertPoint(End);
  B.emitFiller(2, W);
  Cur = End;
}

void ComponentBuilder::addShortHammock(const PatternSlot &Cond,
                                       unsigned BodyLen, unsigned MergeLen) {
  assert(BodyLen <= 6 && "short hammocks must stay under 10 instrs/side");
  addSimpleHammock(Cond, BodyLen, MergeLen);
}

void ComponentBuilder::addRetFunc(const PatternSlot &Cond, unsigned BodyLen,
                                  unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();

  // Callee: a branch whose two paths end in *different* returns, so the
  // only merge point is the instruction after the call (Section 3.5).
  Function *F = P.createFunction(formatString("retfn%u", RetFuncIndex++));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Fall = F->createBlock("F");
  BasicBlock *Taken = F->createBlock("T");

  B.setInsertPoint(Entry);
  loadSlot(Cond, /*DataReg=*/3);
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, W);
  B.add(/*Dst=*/20, /*A=*/20, W);
  B.ret();

  B.setInsertPoint(Taken);
  B.emitFiller(BodyLen, W);
  B.sub(/*Dst=*/20, /*A=*/20, W);
  B.ret();

  // Caller side: call, then control-independent post-return work.
  B.setInsertPoint(Cur);
  B.call(F);
  BasicBlock *Post = newBlock("P");
  B.setInsertPoint(Post);
  B.emitFiller(MergeLen, W);
  Cur = Post;
}

void ComponentBuilder::addDataLoop(const PatternSlot &Trip, unsigned BodyLen,
                                   unsigned PostLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Trip, /*DataReg=*/7);
  B.loadImm(/*Dst=*/6, 0);

  // do { body } while (++i < trip): a single-block self loop whose exit
  // branch is the diverge-loop candidate (Figure 3d).
  BasicBlock *LoopBody = newBlock("L");
  B.setInsertPoint(LoopBody);
  B.emitFiller(BodyLen, W);
  B.addI(/*Dst=*/6, /*Src=*/6, 1);
  B.condBr(BrCond::Lt, /*A=*/6, /*B=*/7, LoopBody);

  BasicBlock *Post = newBlock("P");
  B.setInsertPoint(Post);
  B.emitFiller(PostLen, W);
  Cur = Post;
}

void ComponentBuilder::addBigHammock(const PatternSlot &Cond, unsigned BodyLen,
                                     unsigned MergeLen) {
  assert(BodyLen >= 60 && "big hammocks should exceed sane MAX_INSTR");
  addSimpleHammock(Cond, BodyLen, MergeLen);
}

void ComponentBuilder::addStraightline(unsigned Len) {
  ++ComponentIndex;
  B.setInsertPoint(Cur);
  B.emitFiller(Len, fillerWindow());
}

void ComponentBuilder::addBorderlineLoop(const PatternSlot &Guard,
                                         const PatternSlot &Trip,
                                         unsigned PostLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  // The loop runs on a minority of iterations so its (numerous) exit-branch
  // instances do not dominate the benchmark's dynamic branch mix.
  loadSlot(Guard, /*DataReg=*/3);

  BasicBlock *Pre = newBlock("BP");
  BasicBlock *LoopBody = newBlock("BL");
  BasicBlock *Skip = nullptr; // Post doubles as the skip target, see below.

  B.setInsertPoint(Pre);
  loadSlot(Trip, /*DataReg=*/7);
  B.loadImm(/*Dst=*/6, 0);

  // Tiny body so STATIC_LOOP_SIZE and DYNAMIC_LOOP_SIZE both pass; the
  // LOOP_ITER heuristic is the one that flips across input sets.
  B.setInsertPoint(LoopBody);
  B.emitFiller(3, W);
  B.addI(/*Dst=*/6, /*Src=*/6, 1);
  B.condBr(BrCond::Lt, /*A=*/6, /*B=*/7, LoopBody);

  // A tail after the loop pushes every guard-to-merge path beyond the
  // selection scope: the *guard* must never look like a profitable
  // frequently-hammock (only the loop's exit branch is the candidate here).
  BasicBlock *Tail = newBlock("BT");
  B.setInsertPoint(Tail);
  B.emitFiller(60, W);

  BasicBlock *Post = newBlock("P");
  Skip = Post;
  B.setInsertPoint(Cur);
  B.condBr(BrCond::Eq, /*A=*/3, /*B=*/0, Skip);
  B.setInsertPoint(Post);
  B.emitFiller(PostLen, W);
  Cur = Post;
}

void ComponentBuilder::addGuardedHammock(const PatternSlot &Guard,
                                         const PatternSlot &Cond,
                                         unsigned BodyLen, unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Guard, /*DataReg=*/3);

  BasicBlock *Guarded = newBlock("G");
  BasicBlock *GFall = newBlock("GF");
  BasicBlock *GTaken = newBlock("GT");
  BasicBlock *Merge = newBlock("M");
  // Guard: skip the whole region unless the (input-dependent) guard fires.
  B.condBr(BrCond::Eq, /*A=*/3, /*B=*/0, Merge);

  B.setInsertPoint(Guarded);
  loadSlot(Cond, /*DataReg=*/5);
  B.condBr(BrCond::Ne, /*A=*/5, /*B=*/0, GTaken);

  B.setInsertPoint(GFall);
  B.emitFiller(BodyLen, W);
  B.jmp(Merge);

  B.setInsertPoint(GTaken);
  B.emitFiller(BodyLen, W);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.emitFiller(MergeLen, W);
  Cur = Merge;
}

void ComponentBuilder::addDualMergeHammock(const PatternSlot &Cond,
                                           const PatternSlot &Sel,
                                           unsigned BodyLen,
                                           unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();
  B.setInsertPoint(Cur);
  loadSlot(Cond, /*DataReg=*/3);
  loadSlot(Sel, /*DataReg=*/5);

  BasicBlock *Fall = newBlock("F");
  BasicBlock *F1 = newBlock("F1");
  BasicBlock *F2 = newBlock("F2");
  BasicBlock *Taken = newBlock("T");
  BasicBlock *T1 = newBlock("T1");
  BasicBlock *T2 = newBlock("T2");
  BasicBlock *M1 = newBlock("M1");
  BasicBlock *M2 = newBlock("M2");
  BasicBlock *End = newBlock("E");
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  // Each side routes to M1 or M2 on the same selector value, so the merge
  // block actually reached correlates across the two sides.
  B.setInsertPoint(Fall);
  B.condBr(BrCond::Ne, /*A=*/5, /*B=*/0, F2);
  B.setInsertPoint(F1);
  B.emitFiller(BodyLen, W);
  B.jmp(M1);
  B.setInsertPoint(F2);
  B.emitFiller(BodyLen, W);
  B.jmp(M2);

  B.setInsertPoint(Taken);
  B.condBr(BrCond::Ne, /*A=*/5, /*B=*/0, T2);
  B.setInsertPoint(T1);
  B.emitFiller(BodyLen, W);
  B.jmp(M1);
  B.setInsertPoint(T2);
  B.emitFiller(BodyLen, W);
  B.jmp(M2);

  // The merge blocks are long enough that the common end block E lies
  // beyond MAX_INSTR, keeping M1/M2 the selectable (independent) CFMs.
  B.setInsertPoint(M1);
  B.emitFiller(MergeLen + 50, W);
  B.jmp(End);
  B.setInsertPoint(M2);
  B.emitFiller(MergeLen + 50, W);
  // Falls through to End.

  B.setInsertPoint(End);
  B.emitFiller(2, W);
  Cur = End;
}

void ComponentBuilder::addCallHammock(const PatternSlot &Cond,
                                      unsigned BodyLen, unsigned MergeLen) {
  ++ComponentIndex;
  const Reg W = fillerWindow();

  if (!Leaf) {
    Leaf = P.createFunction("leaf");
    BasicBlock *Entry = Leaf->createBlock("entry");
    B.setInsertPoint(Entry);
    B.emitFiller(6, /*FirstReg=*/16);
    B.ret();
  }

  B.setInsertPoint(Cur);
  loadSlot(Cond, /*DataReg=*/3);

  BasicBlock *Fall = newBlock("F");
  BasicBlock *Taken = newBlock("T");
  BasicBlock *Merge = newBlock("M");
  B.condBr(BrCond::Ne, /*A=*/3, /*B=*/0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, W);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  B.emitFiller(BodyLen / 2, W);
  B.call(Leaf);
  B.emitFiller(BodyLen / 2, W);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.emitFiller(MergeLen, W);
  Cur = Merge;
}
