//===- dataflow/Soundness.cpp - Dynamic soundness of static facts ----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "dataflow/Soundness.h"

#include "support/StringUtils.h"

#include <cassert>

namespace dmp::dataflow {

namespace {

/// Per-address claim tables derived from a ProgramDataflow, with the
/// call-site substitution: after a Call retires the callee body runs, so
/// the dead-after claim there is the callee's dynamic continuation.
std::vector<RegSet> dynamicLiveAfter(const ir::Program &P,
                                     const ProgramDataflow &PD) {
  std::vector<RegSet> L(P.instrCount());
  for (uint32_t Addr = 0; Addr < P.instrCount(); ++Addr) {
    const ir::Instruction &I = P.instrAt(Addr);
    if (I.Op == ir::Opcode::Call && I.Callee != nullptr) {
      const auto &S = PD.summary(*I.Callee);
      L[Addr] = S.LiveInEntry | (PD.liveAfter(Addr) & ~S.MustDef);
    } else {
      L[Addr] = PD.liveAfter(Addr);
    }
  }
  return L;
}

std::vector<RegSet> assignedBeforeTable(const ir::Program &P,
                                        const ProgramDataflow &PD) {
  std::vector<RegSet> A(P.instrCount());
  for (uint32_t Addr = 0; Addr < P.instrCount(); ++Addr)
    A[Addr] = PD.assignedBefore(Addr);
  return A;
}

} // namespace

SoundnessChecker::SoundnessChecker(const ir::Program &P,
                                   const ProgramDataflow &PD)
    : SoundnessChecker(P, assignedBeforeTable(P, PD), dynamicLiveAfter(P, PD)) {
}

SoundnessChecker::SoundnessChecker(const ir::Program &P,
                                   std::vector<RegSet> AssignedBeforeClaims,
                                   std::vector<RegSet> LiveAfterClaims)
    : P(P), AssignedClaims(std::move(AssignedBeforeClaims)),
      LiveClaims(std::move(LiveAfterClaims)) {
  assert(AssignedClaims.size() == P.instrCount() && "claim table size");
  assert(LiveClaims.size() == P.instrCount() && "claim table size");
}

bool SoundnessChecker::retire(const profile::DynInstr &D) {
  const ir::Instruction &I = *D.I;
  const uint32_t Addr = D.Addr;
  ++Result.Retired;

  // Definite-assignment claims: every register claimed assigned here must
  // actually have been written on the executed path.  Checked for all
  // registers, not just the ones this instruction reads — the claim
  // quantifies over the program point, so the stronger check is free.
  Result.ClaimsChecked += ir::NumRegs;
  if (const RegSet Unwritten = AssignedClaims[Addr] & ~WrittenEver) {
    for (unsigned R = 0; R < ir::NumRegs; ++R)
      if (Unwritten & regBit(static_cast<ir::Reg>(R))) {
        ++Result.Violations;
        if (Result.FirstViolation.empty())
          Result.FirstViolation = formatString(
              "definite-assignment: r%u claimed assigned before addr %u "
              "(retired #%llu) but never written on the executed path",
              R, Addr, static_cast<unsigned long long>(Result.Retired));
      }
  }

  // Liveness claims: a read of a register a prior instruction claimed dead
  // (with no intervening write) contradicts that claim.
  if (const RegSet DeadReads = instrUses(I) & DeadClaimed) {
    for (unsigned R = 0; R < ir::NumRegs; ++R)
      if (DeadReads & regBit(static_cast<ir::Reg>(R))) {
        ++Result.Violations;
        if (Result.FirstViolation.empty())
          Result.FirstViolation = formatString(
              "liveness: r%u claimed dead after addr %u but read at addr %u "
              "(retired #%llu) before any write",
              R, DeadClaimOrigin[R], Addr,
              static_cast<unsigned long long>(Result.Retired));
      }
  }

  const RegSet Defs = instrDefs(I);
  WrittenEver |= Defs;
  DeadClaimed &= ~Defs;

  const RegSet NewDead = ~LiveClaims[Addr] & ~ZeroRegBit & ~DeadClaimed;
  if (NewDead != 0)
    for (unsigned R = 0; R < ir::NumRegs; ++R)
      if (NewDead & regBit(static_cast<ir::Reg>(R)))
        DeadClaimOrigin[R] = Addr;
  DeadClaimed |= ~LiveClaims[Addr] & ~ZeroRegBit;

  return Result.Violations == 0;
}

SoundnessResult checkSoundness(const ir::Program &P, const ProgramDataflow &PD,
                               const std::vector<int64_t> &Image,
                               uint64_t MaxInstrs) {
  SoundnessChecker Checker(P, PD);
  profile::Emulator Emu(P, Image);
  profile::DynInstr D;
  while (Emu.executedCount() < MaxInstrs && Emu.step(D))
    Checker.retire(D);
  return Checker.result();
}

} // namespace dmp::dataflow
